#!/usr/bin/env python
"""MPEG macroblock decoding with adaptive scheduling (paper §IV).

Builds the paper's Figure-3 CTG (40 tasks, 9 branch forks) on the
3-PE platform, visualises the branch-probability dynamics of one clip
(Figure 4's three data series, rendered as ASCII), then compares the
non-adaptive online schedule against the adaptive framework at both
thresholds on that clip.

Run:  python examples/mpeg_adaptive.py [movie]
      (movie defaults to "Shuttle"; see repro.workloads.MOVIE_PROFILES)
"""

import sys

from repro.adaptive import AdaptiveConfig
from repro.analysis import format_table
from repro.experiments import run_figure4
from repro.scheduling import set_deadline_from_makespan
from repro.sim import empirical_distribution, energy_savings, run_adaptive, run_non_adaptive
from repro.workloads import MOVIE_PROFILES, movie_trace, mpeg_ctg, mpeg_platform


def ascii_plot(series, height: int = 8, width: int = 72) -> str:
    """Tiny ASCII chart of a 0..1 series (down-sampled to ``width``)."""
    step = max(1, len(series) // width)
    samples = series[::step][:width]
    rows = []
    for level in range(height, -1, -1):
        threshold = level / height
        row = "".join("█" if value >= threshold - 1e-9 else " " for value in samples)
        rows.append(f"{threshold:4.1f} |{row}")
    return "\n".join(rows)


def main() -> None:
    movie = sys.argv[1] if len(sys.argv) > 1 else "Shuttle"
    if movie not in MOVIE_PROFILES:
        raise SystemExit(f"unknown movie {movie!r}; choose from {sorted(MOVIE_PROFILES)}")

    ctg = mpeg_ctg()
    platform = mpeg_platform()
    deadline = set_deadline_from_makespan(ctg, platform, factor=1.6)
    print(
        f"MPEG macroblock decoder: {len(ctg)} tasks, "
        f"{len(ctg.branch_nodes())} branch forks, {len(platform)} PEs, "
        f"deadline {deadline:.1f}"
    )

    # Figure 4: the branch-probability dynamics of this clip.
    figure4 = run_figure4(movie=movie)
    print(f"\ntype-I branch probability (window 50) over 1000 macroblocks of {movie}:")
    print(ascii_plot(figure4.windowed))
    print(
        f"filtered staircase (T=0.1): {figure4.updates} updates, "
        f"tracking error {figure4.tracking_error():.3f}"
    )

    # Figure 5 / Table 2 for this clip.
    trace = movie_trace(ctg, movie, length=2000)
    train, test = trace[:1000], trace[1000:]
    profile = empirical_distribution(ctg, train)
    print(f"\ntrained profile: P(intra) = {profile['classify']['b1']:.2f}, "
          f"P(skip) = {profile['parse']['a2']:.2f}")

    online = run_non_adaptive(ctg, platform, test, profile)
    rows = [["online (non-adaptive)", round(online.total_energy), 0, "-"]]
    for threshold in (0.5, 0.1):
        adaptive = run_adaptive(
            ctg, platform, test, profile,
            AdaptiveConfig(window_size=20, threshold=threshold),
        )
        rows.append(
            [
                f"adaptive T={threshold}",
                round(adaptive.total_energy),
                adaptive.reschedule_calls,
                f"{100 * energy_savings(online, adaptive):.1f}%",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "energy (1000 MBs)", "re-scheduling calls", "savings"],
            rows,
            title=f"Adaptive vs online on {movie}",
        )
    )


if __name__ == "__main__":
    main()
