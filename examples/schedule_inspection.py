#!/usr/bin/env python
"""Deep-dive into one schedule: analytics, inspection, export.

Covers the tooling side of the library on the MPEG decoder:

1. characterise the CTG (workload spread, branch entropy, parallelism);
2. build the online schedule and print the per-scenario execution
   profile, slack utilisation and mutual-exclusion slot sharing;
3. render the schedule as an ASCII Gantt chart and export an SVG;
4. save the problem instance as a JSON bundle and reload it.

Run:  python examples/schedule_inspection.py [output_dir]
"""

import pathlib
import sys

from repro.ctg import summarize
from repro.io import load_instance, save_instance
from repro.scheduling import render_gantt, schedule_online, set_deadline_from_makespan
from repro.scheduling.inspection import inspect
from repro.viz import gantt_svg
from repro.workloads import mpeg_ctg, mpeg_platform


def main() -> None:
    out_dir = pathlib.Path(sys.argv[1]) if len(sys.argv) > 1 else pathlib.Path(".")

    # 1. Characterise the application.
    ctg = mpeg_ctg()
    platform = mpeg_platform()
    set_deadline_from_makespan(ctg, platform, factor=1.6)
    print(summarize(ctg, platform))

    # 2. Schedule and inspect.
    result = schedule_online(ctg, platform)
    result.schedule.validate()
    print()
    print(inspect(result.schedule))

    # 3. Render.
    print()
    print(render_gantt(result.schedule, width=76))
    svg_path = out_dir / "mpeg_schedule.svg"
    svg_path.write_text(gantt_svg(result.schedule, title="MPEG macroblock decoder"))
    print(f"\nSVG written to {svg_path}")

    # 4. Round-trip the problem instance.
    bundle_path = out_dir / "mpeg_instance.json"
    save_instance(bundle_path, ctg, platform)
    ctg2, platform2, _ = load_instance(bundle_path)
    print(
        f"instance bundle written to {bundle_path} "
        f"({len(ctg2)} tasks, {len(platform2)} PEs on reload)"
    )


if __name__ == "__main__":
    main()
