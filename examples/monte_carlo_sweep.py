#!/usr/bin/env python
"""Batched Monte-Carlo sweep: 10 000 MPEG instances in one kernel.

The paper's evaluation replays branch-decision *traces* instance by
instance.  This example asks the distributional question instead: under
the profiled branch probabilities, what do finish time, energy and the
deadline-miss rate look like across ten thousand sampled instances?

`repro.batch.monte_carlo` answers it without constructing a single
per-instance Python object: the schedule is snapshotted once into a
struct-of-arrays `BatchSchedule`, branch outcomes are sampled as index
arrays, and every instance's finish time and energy fall out of a few
numpy gathers (docs/algorithms.md §6.5).  The same sweep through the
object-walking executor is one-to-two orders of magnitude slower — the
executor stays the oracle, which step 4 spot-checks.

Run:  python examples/monte_carlo_sweep.py [instances]
"""

import sys
import time

import numpy as np

from repro.batch import BatchSchedule, monte_carlo
from repro.ctg import enumerate_scenarios
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.sim import execute_instance
from repro.workloads import mpeg_ctg, mpeg_platform


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 10_000

    # 1. Schedule the MPEG decoder once; the sweep reuses the schedule.
    ctg = mpeg_ctg()
    platform = mpeg_platform()
    deadline = set_deadline_from_makespan(ctg, platform, factor=1.3)
    schedule = schedule_online(ctg, platform).schedule
    probabilities = ctg.default_probabilities
    print(
        f"MPEG decoder: {len(ctg)} tasks, "
        f"{len(ctg.branch_nodes())} branches, deadline {deadline:.1f}"
    )

    # 2. The sweep itself: one kernel call for all n instances.
    started = time.perf_counter()
    result = monte_carlo(ctg, platform, n, seed=7, schedule=schedule)
    elapsed = time.perf_counter() - started
    print(f"\nsampled {n:,} instances in {elapsed:.3f}s "
          f"({n / elapsed:,.0f} instances/s)")
    print(f"  finish  mean {result.mean_finish:8.2f}   "
          f"p95 {result.finish_percentile(95):8.2f}   "
          f"max {result.finish_times.max():8.2f}")
    print(f"  energy  mean {result.mean_energy:8.2f}")
    print(f"  deadline misses: {int((~result.deadline_met).sum())} "
          f"(miss rate {result.miss_rate:.4f})")

    # 3. Sampled scenario occupancy vs the analytic probabilities.
    scenarios = enumerate_scenarios(ctg)
    counts = result.scenario_counts(len(scenarios))
    top = np.argsort(counts)[::-1][:5]
    print("\nmost frequent scenarios (sampled vs analytic):")
    for s in top:
        expected = scenarios[int(s)].probability(probabilities)
        print(f"  {str(scenarios[int(s)].product):12} "
              f"sampled {counts[int(s)] / n:.4f}   analytic {expected:.4f}")

    # 4. The executor is the oracle: replay a handful of the sampled
    #    instances through it and compare exactly.
    batch = BatchSchedule.from_ctg(schedule)
    for i in range(0, min(n, 200), 40):
        outcome = execute_instance(schedule, result.decisions(i))
        assert abs(outcome.finish_time - result.finish_times[i]) < 1e-9
        assert abs(outcome.energy - result.energies[i]) < 1e-9
    print("\noracle check: executor agrees exactly on spot-checked instances")

    # 5. WCET uncertainty: the same sweep with per-task execution-time
    #    factors drawn from [0.85, 1.10] — mild underruns and overruns.
    shaky = monte_carlo(
        ctg, platform, n, seed=7, schedule=schedule, batch=batch,
        wcet_range=(0.85, 1.10),
    )
    print(f"\nwith WCET factors in [0.85, 1.10]: "
          f"mean finish {shaky.mean_finish:.2f}, "
          f"p95 {shaky.finish_percentile(95):.2f}, "
          f"miss rate {shaky.miss_rate:.4f}")


if __name__ == "__main__":
    main()
