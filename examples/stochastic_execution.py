#!/usr/bin/env python
"""Stochastic execution times: distributions below the WCET.

The paper models nondeterminism only through conditional branches — a
task runs for its full WCET or not at all.  The stochastic scheduling
literature (Berten et al.; Leung & Tsui) adds a second axis: each
task's *actual* execution time varies below its WCET.  This example
attaches per-task execution-time distributions to the MPEG platform
and shows both consumers:

1. the batched Monte-Carlo kernel (`use_execution_profiles=True`)
   samples per-task WCET ratios for thousands of instances in the same
   single kernel call (docs/algorithms.md §6.5–6.6);
2. the trace runner (`et_seed=`) replays a trace with sampled ratios
   through the executor's dynamic path, where the `preemptive` speed
   policy (Leung–Tsui) reclaims the released slack as voltage
   reduction.

Run:  python examples/stochastic_execution.py [instances]
"""

import sys

from repro.batch import monte_carlo
from repro.platform import ExecutionTimeDistribution
from repro.scheduling import set_deadline_from_makespan
from repro.sim import empirical_distribution
from repro.sim.runner import run_non_adaptive
from repro.workloads import movie_trace, mpeg_ctg, mpeg_platform

#: Three workload classes: light tasks usually finish early, heavy
#: tasks usually run close to their WCET, the rest sit in between.
LIGHT = ExecutionTimeDistribution(ratios=(0.4, 0.7, 1.0), weights=(5, 3, 2))
MIXED = ExecutionTimeDistribution(ratios=(0.6, 0.85, 1.0), weights=(3, 4, 3))
HEAVY = ExecutionTimeDistribution(ratios=(0.85, 1.0), weights=(3, 7))


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 5_000

    ctg = mpeg_ctg()
    platform = mpeg_platform()
    deadline = set_deadline_from_makespan(ctg, platform, factor=1.3)

    # Attach a distribution to every task, cycling the three classes
    # deterministically (sorted task order keeps the run reproducible).
    classes = (LIGHT, MIXED, HEAVY)
    for i, task in enumerate(sorted(ctg.tasks())):
        platform.set_execution_profile(task, classes[i % len(classes)])
    print(
        f"MPEG decoder: {len(ctg)} tasks, deadline {deadline:.1f}, "
        f"ET profiles on every task"
    )

    # 1. Monte-Carlo with and without the execution-time distributions.
    wcet = monte_carlo(ctg, platform, n, seed=7)
    sampled = monte_carlo(ctg, platform, n, seed=7, use_execution_profiles=True)
    print(f"\nMonte-Carlo sweep, {n:,} instances (single kernel call):")
    print(
        f"  WCET replay:     mean finish {wcet.mean_finish:8.2f}   "
        f"mean energy {wcet.mean_energy:10.1f}   miss rate {wcet.miss_rate:.3f}"
    )
    print(
        f"  sampled ratios:  mean finish {sampled.mean_finish:8.2f}   "
        f"mean energy {sampled.mean_energy:10.1f}   miss rate {sampled.miss_rate:.3f}"
    )
    if sampled.mean_finish >= wcet.mean_finish:
        raise SystemExit("sampled execution times should finish earlier on average")

    # 2. Trace replay: static speeds vs preemptive slack reclamation.
    trace = movie_trace(ctg, "Airwolf", length=260)
    probabilities = empirical_distribution(ctg, trace[:60])
    static = run_non_adaptive(
        ctg, platform, trace[60:], probabilities, et_seed=11
    )
    reclaiming = run_non_adaptive(
        ctg, platform, trace[60:], probabilities,
        speed_policy="preemptive", et_seed=11,
    )
    saved = 1.0 - reclaiming.total_energy / static.total_energy
    reclaimed = reclaiming.profile.counters.get("executor.reclaimed", 0)
    print(f"\nTrace replay ({len(trace) - 60} instances, sampled ratios):")
    print(f"  static speeds:   energy {static.total_energy:12.1f}")
    print(
        f"  preemptive:      energy {reclaiming.total_energy:12.1f}   "
        f"({reclaimed} reclamations, {saved:.1%} energy saved)"
    )
    if reclaiming.total_energy > static.total_energy:
        raise SystemExit("slack reclamation must never increase energy")
    print("\nok: reclamation saved energy without losing the deadline")


if __name__ == "__main__":
    main()
