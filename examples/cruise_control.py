#!/usr/bin/env python
"""Vehicle cruise controller over changing roads (paper §IV, Table 3).

The 32-task, 2-branch cruise-controller CTG runs on a 5-PE MPSoC with
the deadline at twice the optimum schedule length.  A training road
trace profiles the non-adaptive schedule; the control loop then drives
over three fresh roads while the adaptive framework tracks the road
regime (uphill / downhill / straight / bumpy).

The point of the experiment (and of this example) is a *negative*
result the paper is candid about: with only three minterms of nearly
equal energy, adaptation buys just a few percent.

Run:  python examples/cruise_control.py
"""

from repro.adaptive import AdaptiveConfig
from repro.analysis import format_table
from repro.ctg import enumerate_scenarios
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.sim import empirical_distribution, energy_savings, run_adaptive, run_non_adaptive
from repro.workloads import cruise_ctg, cruise_platform, road_trace


def main() -> None:
    ctg = cruise_ctg()
    platform = cruise_platform()
    deadline = set_deadline_from_makespan(ctg, platform, factor=2.0)
    print(
        f"cruise controller: {len(ctg)} tasks on {len(platform)} PEs, "
        f"deadline {deadline:.1f} (2x optimum)"
    )
    scenarios = enumerate_scenarios(ctg)
    print("minterms and their workloads:")
    for scenario in scenarios:
        load = sum(platform.average_wcet(t) for t in scenario.active)
        print(f"  {str(scenario.product):6} -> {len(scenario.active):2} tasks, load {load:.0f}")

    # The initial schedule for balanced probabilities.
    result = schedule_online(ctg, platform)
    print(f"\nonline schedule: makespan {result.schedule.makespan():.1f}, "
          f"expected energy {result.schedule.expected_energy(ctg.default_probabilities):.1f}")
    per_pe = {pe: len(result.schedule.tasks_on(pe)) for pe in platform.pe_names}
    print(f"tasks per PE: {per_pe}")

    # Table 3: three road sequences.
    train = road_trace(ctg, 1000, seed=31)
    profile = empirical_distribution(ctg, train)
    rows = []
    for index, (seed, threshold) in enumerate([(32, 0.1), (33, 0.1), (34, 0.5)], start=1):
        road = road_trace(ctg, 1000, seed=seed)
        online = run_non_adaptive(ctg, platform, road, profile)
        adaptive = run_adaptive(
            ctg, platform, road, profile,
            AdaptiveConfig(window_size=20, threshold=threshold),
        )
        rows.append(
            [
                index,
                threshold,
                round(online.total_energy),
                round(adaptive.total_energy),
                f"{100 * energy_savings(online, adaptive):.1f}%",
                adaptive.reschedule_calls,
            ]
        )
    print()
    print(
        format_table(
            ["sequence", "T", "non-adaptive", "adaptive", "savings", "calls"],
            rows,
            title="Table 3 — cruise controller energy over three road traces",
        )
    )
    print(
        "\nAs the paper observes, the gain is small: the three minterms "
        "are nearly equal in energy and the loose deadline leaves the "
        "static schedule little to get wrong."
    )


if __name__ == "__main__":
    main()
