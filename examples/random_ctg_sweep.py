#!/usr/bin/env python
"""Scheduling-algorithm shoot-out on random conditional task graphs.

Generates a small sweep of TGFF-style CTGs of both structural
categories, schedules each with the three algorithms of the paper's
Table 1 (Reference 1, Reference 2, Online) and reports normalised
expected energies plus stage runtimes — a miniature, self-contained
version of the Table-1 and runtime experiments for playing with graph
shapes and deadline tightness.

Run:  python examples/random_ctg_sweep.py [deadline_factor]
"""

import sys
import time

from repro.analysis import format_table, normalise
from repro.ctg import GeneratorConfig, generate_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import (
    reference_algorithm_1,
    reference_algorithm_2,
    schedule_online,
    set_deadline_from_makespan,
)

SWEEP = [
    GeneratorConfig(nodes=15, branch_nodes=1, category=1, seed=201),
    GeneratorConfig(nodes=20, branch_nodes=2, category=1, seed=202),
    GeneratorConfig(nodes=25, branch_nodes=3, category=1, seed=203),
    GeneratorConfig(nodes=20, branch_nodes=2, category=2, seed=204),
    GeneratorConfig(nodes=25, branch_nodes=3, category=2, seed=205),
]


def main() -> None:
    factor = float(sys.argv[1]) if len(sys.argv) > 1 else 1.3
    rows = []
    for config in SWEEP:
        ctg = generate_ctg(config)
        platform = generate_platform(
            ctg.tasks(), PlatformConfig(pes=3, seed=config.seed)
        )
        set_deadline_from_makespan(ctg, platform, factor)
        probabilities = ctg.default_probabilities

        started = time.perf_counter()
        online = schedule_online(ctg, platform)
        online_ms = 1e3 * (time.perf_counter() - started)
        online.schedule.validate()

        ref1 = reference_algorithm_1(ctg, platform)
        started = time.perf_counter()
        ref2 = reference_algorithm_2(ctg, platform)
        ref2_ms = 1e3 * (time.perf_counter() - started)

        energies = normalise(
            {
                "online": online.schedule.expected_energy(probabilities),
                "ref1": ref1.schedule.expected_energy(probabilities),
                "ref2": ref2.schedule.expected_energy(probabilities),
            },
            reference="online",
        )
        rows.append(
            [
                ctg.name,
                f"cat{config.category}",
                round(energies["ref1"]),
                round(energies["ref2"]),
                100,
                f"{online_ms:.1f}",
                f"{ref2_ms:.0f}",
            ]
        )
    print(
        format_table(
            ["graph", "category", "ref1", "ref2", "online", "online (ms)", "ref2 (ms)"],
            rows,
            title=f"Normalised expected energy (deadline = {factor}x nominal makespan)",
        )
    )
    print(
        "\nExpected shape: ref2 (NLP optimum, slow) <= online (heuristic, "
        "fast) < ref1 (probability-blind mapping)."
    )


if __name__ == "__main__":
    main()
