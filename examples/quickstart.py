#!/usr/bin/env python
"""Quickstart: schedule the paper's Figure-1 CTG and adapt at runtime.

Walks the complete public API surface in one small scenario:

1. build a conditional task graph (the paper's running example);
2. generate a small MPSoC platform and pick a deadline;
3. run the online scheduling + DVFS algorithm and inspect the result;
4. execute individual instances under concrete branch decisions;
5. replay a drifting trace non-adaptively and adaptively and compare.

Run:  python examples/quickstart.py
"""

from repro.adaptive import AdaptiveConfig
from repro.analysis import format_table
from repro.ctg import enumerate_scenarios, figure1_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.sim import (
    energy_savings,
    execute_instance,
    run_adaptive,
    run_non_adaptive,
)
from repro.workloads import drifting_trace


def main() -> None:
    # 1. The application: the paper's Figure-1 conditional task graph.
    ctg = figure1_ctg()
    print(f"CTG {ctg.name!r}: {len(ctg)} tasks, branches {ctg.branch_nodes()}")
    for scenario in enumerate_scenarios(ctg):
        print(f"  minterm {str(scenario.product):6} activates {sorted(scenario.active)}")

    # 2. The platform: 2 heterogeneous PEs, full point-to-point fabric.
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=42))
    deadline = set_deadline_from_makespan(ctg, platform, factor=1.4)
    print(f"\ndeadline = {deadline:.1f} (1.4x the nominal-speed schedule)")

    # 3. Online scheduling + DVFS with the profiled probabilities.
    result = schedule_online(ctg, platform)
    schedule = result.schedule
    schedule.validate()
    print("\ntask  PE    speed  slack")
    for task in schedule.placement_order():
        placement = schedule.placement(task)
        print(
            f"{task:5} {placement.pe:5} {placement.speed:5.2f}  "
            f"{result.stretch.slack_given[task]:6.2f}"
        )
    probabilities = ctg.default_probabilities
    print(f"expected energy per period: {schedule.expected_energy(probabilities):.2f}")
    print(f"worst-case makespan: {schedule.makespan():.1f} <= {deadline:.1f}")

    # 4. Execute two concrete instances.
    for decisions in ({"t3": "a1", "t5": "b1"}, {"t3": "a2", "t5": "b2"}):
        outcome = execute_instance(schedule, decisions)
        print(
            f"instance {decisions}: energy {outcome.energy:.2f}, "
            f"finish {outcome.finish_time:.1f}, deadline met: {outcome.deadline_met}"
        )

    # 5. Adaptive vs non-adaptive over a drifting 300-instance trace.
    #    The online profile is deliberately mispredicted (biased toward
    #    the a1 side) — the situation of the paper's Table 4, where the
    #    adaptive framework shows its worth.
    from repro.workloads import biased_profile

    trace = drifting_trace(ctg, length=300, seed=7, amplitude=0.35)
    profile = biased_profile(ctg, {"t3": "a1"}, bias=0.9)
    online = run_non_adaptive(ctg, platform, trace, profile)
    adaptive = run_adaptive(
        ctg, platform, trace, profile, AdaptiveConfig(window_size=20, threshold=0.1)
    )
    print()
    print(
        format_table(
            ["policy", "total energy", "re-scheduling calls", "deadline misses"],
            [
                ["non-adaptive online", round(online.total_energy, 1), 0, online.deadline_misses],
                [
                    "adaptive (L=20, T=0.1)",
                    round(adaptive.total_energy, 1),
                    adaptive.reschedule_calls,
                    adaptive.deadline_misses,
                ],
            ],
            title="Policy comparison over a drifting trace",
        )
    )
    print(f"adaptive saves {100 * energy_savings(online, adaptive):.1f}%")


if __name__ == "__main__":
    main()
