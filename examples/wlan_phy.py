#!/usr/bin/env python
"""802.11b receiver under rate adaptation (the paper's intro example).

The paper motivates task-level branching with "branches that select
different modulation schemes for preamble and payload based on 802.11b
physical layer standard".  This example builds that receiver pipeline
(24 tasks, a preamble branch and a 4-way payload-rate branch), drives
it with a fading-channel frame trace whose rate distribution follows
the link quality, and shows the adaptive framework following the
channel where the statically profiled schedule cannot.

Run:  python examples/wlan_phy.py
"""

from repro.adaptive import AdaptiveConfig
from repro.analysis import format_table
from repro.ctg import enumerate_scenarios
from repro.scheduling import render_gantt, schedule_online, set_deadline_from_makespan
from repro.sim import empirical_distribution, energy_savings, run_adaptive, run_non_adaptive
from repro.workloads import channel_trace, wlan_ctg, wlan_platform


def main() -> None:
    ctg = wlan_ctg()
    platform = wlan_platform()
    deadline = set_deadline_from_makespan(ctg, platform, factor=1.5)
    print(
        f"802.11b receiver: {len(ctg)} tasks, branches {ctg.branch_nodes()}, "
        f"{len(platform)} PEs, frame deadline {deadline:.1f}"
    )
    scenarios = enumerate_scenarios(ctg)
    print("payload scenarios and workloads:")
    for scenario in scenarios:
        if scenario.product.label_for("plcp_sync") != "p2":
            continue  # show the short-preamble family once
        load = sum(platform.average_wcet(t) for t in scenario.active)
        rate = scenario.product.label_for("rate_select")
        print(f"  rate {rate:>3}: {len(scenario.active):2} tasks, load {load:.0f}")

    # Schedule for the profiled mix and draw it.
    result = schedule_online(ctg, platform)
    print()
    print(render_gantt(result.schedule, width=72))

    # Drive 1000 training + 1000 testing frames over a fading channel.
    trace = channel_trace(ctg, 2000, seed=9)
    train, test = trace[:1000], trace[1000:]
    profile = empirical_distribution(ctg, train)
    print(f"\ntrained payload-rate profile: "
          f"{ {k: round(v, 2) for k, v in profile['rate_select'].items()} }")

    online = run_non_adaptive(ctg, platform, test, profile)
    rows = [["online (static profile)", round(online.total_energy), 0, "-"]]
    for threshold in (0.5, 0.1):
        adaptive = run_adaptive(
            ctg, platform, test, profile,
            AdaptiveConfig(window_size=20, threshold=threshold),
        )
        rows.append(
            [
                f"adaptive T={threshold}",
                round(adaptive.total_energy),
                adaptive.reschedule_calls,
                f"{100 * energy_savings(online, adaptive):.1f}%",
            ]
        )
    print()
    print(
        format_table(
            ["policy", "energy (1000 frames)", "re-scheduling calls", "savings"],
            rows,
            title="Rate adaptation: adaptive vs statically profiled schedule",
        )
    )


if __name__ == "__main__":
    main()
