"""Fleet worker telemetry: heartbeat frames, per-worker profile
reports, stalled-worker detection (a killed worker and an
:class:`EngineError`, never a hung sweep) and structured frame-failure
handling."""

import os
import signal
import time

import pytest

from repro.experiments import (
    EngineError,
    SubprocessFleetPool,
    run_spec,
)
from repro.experiments.workers import MAX_FRAME_BYTES
from repro.experiments.spec import Cell, ExperimentSpec
from repro.obs import EventLedger


def paced_cell(params):
    """Module-level cell slow enough for heartbeats to interleave."""
    time.sleep(params.get("sleep", 0.6))
    return {
        "values": {"y": params["x"] * 2},
        "profile": {"counters": {"paced.cells": 1}},
    }


def quick_cell(params):
    return {"values": {"y": params["x"]}}


def _spec(xs=(1, 2), sleep=0.6):
    return ExperimentSpec(
        name="paced",
        cells=tuple(
            Cell(key=f"x{x}", params={"x": x, "sleep": sleep}) for x in xs
        ),
        cell_function=paced_cell,
        reducer=lambda cells: [c.values["y"] for c in cells],
    )


def _wait_alive(pool, timeout=20.0):
    """Block until every worker has sent its first frame (boot done)."""
    deadline = time.monotonic() + timeout
    channels = list(pool._channels.values())
    while time.monotonic() < deadline:
        if all(c.alive for c in channels):
            return channels
        time.sleep(0.02)
    raise AssertionError("fleet workers never came alive")


class TestHeartbeats:
    def test_heartbeated_run_matches_serial(self):
        ledger = EventLedger()
        serial = run_spec(_spec(), jobs=1)
        fleet = run_spec(
            _spec(), jobs=2, workers="fleet", heartbeat=0.2, events=ledger
        )
        assert fleet.result == serial.result
        counters = fleet.engine_profile.counters
        assert counters["engine.worker.spawned"] == 2
        assert counters["engine.worker.heartbeats"] >= 1
        assert ledger.counts.get("worker.heartbeat", 0) >= 1
        # one clean exit event per worker, with a real cell count
        exits = [r for r in ledger.records if r["event"] == "worker.exited"]
        assert len(exits) == 2
        assert sum(r["cells"] for r in exits) == 2

    def test_worker_profiles_merge_into_engine_profile(self):
        fleet = run_spec(_spec(), jobs=2, workers="fleet", heartbeat=0.2)
        # each worker aggregates its cells' profile counters and ships
        # them in the final telemetry frame; the pool merges them into
        # the engine profile (never the jobs-invariant cell aggregate)
        assert fleet.engine_profile.counters.get("paced.cells") == 2

    def test_legacy_protocol_without_heartbeat_is_untouched(self):
        ledger = EventLedger()
        fleet = run_spec(_spec(sleep=0.0), jobs=2, workers="fleet", events=ledger)
        assert fleet.result == [2, 4]
        assert "engine.worker.heartbeats" not in fleet.engine_profile.counters
        # exit events still appear, but the cell count is unknown (-1)
        exits = [r for r in ledger.records if r["event"] == "worker.exited"]
        assert {r["cells"] for r in exits} == {-1}


class TestStallDetection:
    def test_stopped_worker_is_detected_not_hung(self):
        ledger = EventLedger()
        pool = SubprocessFleetPool(
            paced_cell, 1, heartbeat=0.2, stall_misses=2, ledger=ledger
        )
        try:
            (channel,) = _wait_alive(pool)
            os.kill(channel.process.pid, signal.SIGSTOP)
            started = time.monotonic()
            pool.submit(0, {"x": 1, "sleep": 0.1})
            with pytest.raises(EngineError, match="stalled"):
                pool.ready()
            elapsed = time.monotonic() - started
            # detected within the heartbeat budget (0.4s) plus slack,
            # nowhere near a pipe-read hang
            assert elapsed < 10.0
            assert pool.profile.counters["engine.worker.stalled"] == 1
            assert ledger.counts.get("worker.stalled") == 1
            stalled = next(
                r for r in ledger.records if r["event"] == "worker.stalled"
            )
            assert stalled["pid"] == channel.process.pid
            assert stalled["silent_seconds"] > 0
        finally:
            pool.close()

    def test_stall_is_not_double_counted_as_frame_error(self):
        pool = SubprocessFleetPool(paced_cell, 1, heartbeat=0.2, stall_misses=2)
        try:
            (channel,) = _wait_alive(pool)
            os.kill(channel.process.pid, signal.SIGSTOP)
            pool.submit(0, {"x": 1})
            with pytest.raises(EngineError, match="stalled"):
                pool.ready()
            assert "engine.worker.frame_errors" not in pool.profile.counters
        finally:
            pool.close()


class TestFrameFailures:
    def test_dead_worker_surfaces_as_frame_error(self):
        ledger = EventLedger()
        pool = SubprocessFleetPool(quick_cell, 1, ledger=ledger)
        try:
            process = pool._processes[0]
            process.kill()
            process.wait()
            pool.submit(0, {"x": 1})
            with pytest.raises(EngineError, match="died|closed its pipe"):
                pool.ready()
            assert pool.profile.counters["engine.worker.frame_errors"] == 1
            assert ledger.counts.get("worker.error") == 1
        finally:
            pool.close()

    def test_corrupt_inbound_frame_fails_cleanly(self):
        # vandalise the worker's stdin with an absurd length prefix: the
        # worker must answer with a structured fatal frame and exit
        # nonzero, and the parent must surface it as an EngineError
        ledger = EventLedger()
        pool = SubprocessFleetPool(quick_cell, 1, ledger=ledger)
        try:
            process = pool._processes[0]
            process.stdin.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
            process.stdin.flush()
            pool.submit(0, {"x": 1})
            with pytest.raises(EngineError, match="fatally"):
                pool.ready()
            assert pool.profile.counters["engine.worker.frame_errors"] == 1
            assert ledger.counts.get("worker.error") == 1
            assert process.wait(timeout=10) == 2
        finally:
            pool.close()
