"""Oracle tests of the array-native batch core (:mod:`repro.batch`).

Every kernel is validated against the object-walking implementation it
batches: the instance executor, the faulted replay's baseline arm, the
scalar stretching heuristic and the controller's full re-scheduling
pipeline.  The scalar code is the specification; the arrays must agree.
"""

import numpy as np
import pytest

from repro.batch import (
    BatchSchedule,
    batched_stretch,
    instance_energies,
    instance_finish_times,
    monte_carlo,
    scenario_energies,
    scenario_finish_times,
)
from repro.adaptive import AdaptiveController
from repro.ctg import CtgAnalysis, GeneratorConfig, enumerate_scenarios, generate_ctg
from repro.faults.injectors import InstanceFaults
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import (
    dls_schedule,
    schedule_online,
    set_deadline_from_makespan,
    stretch_schedule,
)
from repro.scheduling.pathcache import structure_for
from repro.sim import InstanceExecutor
from repro.workloads import mpeg_ctg, mpeg_platform


def _mpeg_schedule():
    ctg = mpeg_ctg()
    platform = mpeg_platform()
    set_deadline_from_makespan(ctg, platform, 1.3)
    return ctg, platform, schedule_online(ctg, platform).schedule


def _decisions_of(scenario, ctg):
    vector = {}
    for branch in ctg.branch_nodes():
        chosen = scenario.product.label_for(branch)
        vector[branch] = chosen if chosen is not None else ctg.outcomes_of(branch)[0]
    return vector


def _random_distribution(ctg, rng):
    dist = {}
    for branch in ctg.branch_nodes():
        labels = ctg.outcomes_of(branch)
        weights = rng.uniform(0.05, 1.0, size=len(labels))
        weights /= weights.sum()
        dist[branch] = dict(zip(labels, weights))
    return dist


class TestRoundTrip:
    def test_mpeg_round_trip_is_bit_exact(self):
        _ctg, _platform, schedule = _mpeg_schedule()
        batch = BatchSchedule.from_ctg(schedule)
        rebuilt = batch.to_schedule()
        assert rebuilt.ctg is schedule.ctg
        assert rebuilt.platform is schedule.platform
        assert set(rebuilt.placements) == set(schedule.placements)
        for task, placement in schedule.placements.items():
            clone = rebuilt.placements[task]
            assert clone.pe == placement.pe
            assert clone.wcet == placement.wcet
            assert clone.nominal_energy == placement.nominal_energy
            assert clone.speed == placement.speed
            assert clone.order_index == placement.order_index
        assert rebuilt.comm_bookings == schedule.comm_bookings
        assert rebuilt.exclusions == schedule.exclusions

    def test_snapshot_is_insulated_from_later_speed_changes(self):
        _ctg, _platform, schedule = _mpeg_schedule()
        batch = BatchSchedule.from_ctg(schedule)
        before = batch.speed.copy()
        task = next(iter(schedule.placements))
        schedule.set_speed(task, 0.123)
        assert np.array_equal(batch.speed, before)


class TestFinishAndEnergyKernels:
    def test_scenario_kernels_match_executor_on_every_minterm(self):
        ctg, _platform, schedule = _mpeg_schedule()
        batch = BatchSchedule.from_ctg(schedule)
        executor = InstanceExecutor(schedule)
        finishes = scenario_finish_times(batch)
        energies = scenario_energies(batch)
        assert finishes.shape == (batch.n_scenarios,)
        for s, scenario in enumerate(batch.scenarios):
            outcome = executor.run(_decisions_of(scenario, ctg))
            assert finishes[s] == pytest.approx(outcome.finish_time, abs=1e-9)
            assert energies[s] == pytest.approx(outcome.energy, rel=1e-9)

    def test_scenario_kernels_match_executor_on_generated_graphs(self):
        for seed in (3, 17, 91):
            cfg = GeneratorConfig(nodes=18, branch_nodes=2, category=2, seed=seed)
            ctg = generate_ctg(cfg)
            platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=seed))
            set_deadline_from_makespan(ctg, platform, 1.4)
            schedule = schedule_online(ctg, platform).schedule
            batch = BatchSchedule.from_ctg(schedule)
            executor = InstanceExecutor(schedule)
            finishes = scenario_finish_times(batch)
            for s, scenario in enumerate(batch.scenarios):
                outcome = executor.run(_decisions_of(scenario, ctg))
                assert finishes[s] == pytest.approx(outcome.finish_time, abs=1e-9)

    def test_instance_kernel_matches_scenario_kernel_without_factors(self):
        _ctg, _platform, schedule = _mpeg_schedule()
        batch = BatchSchedule.from_ctg(schedule)
        scn = np.arange(batch.n_scenarios, dtype=np.intp)
        np.testing.assert_allclose(
            instance_finish_times(batch, scn), scenario_finish_times(batch),
            atol=1e-12,
        )
        np.testing.assert_allclose(
            instance_energies(batch, scn), scenario_energies(batch), rtol=1e-12
        )

    def test_wcet_factor_kernels_match_faulted_baseline_arm(self):
        ctg, _platform, schedule = _mpeg_schedule()
        batch = BatchSchedule.from_ctg(schedule)
        executor = InstanceExecutor(schedule)
        rng = np.random.default_rng(5)
        n = 24
        scn = rng.integers(0, batch.n_scenarios, size=n)
        factors = rng.uniform(1.0, 1.4, size=(n, batch.n_tasks))
        finishes = instance_finish_times(batch, scn, factors)
        energies = instance_energies(batch, scn, factors)
        for i in range(n):
            scenario = batch.scenarios[scn[i]]
            faults = InstanceFaults(
                instance=i,
                wcet_factors={
                    task: float(factors[i, t])
                    for t, task in enumerate(batch.tasks)
                },
            )
            outcome = executor.run_faulted(_decisions_of(scenario, ctg), faults)
            assert finishes[i] == pytest.approx(
                outcome.baseline_finish_time, abs=1e-9
            )
            assert energies[i] == pytest.approx(outcome.baseline_energy, rel=1e-9)


class TestMonteCarlo:
    def test_fast_path_matches_executor_elementwise(self):
        ctg, platform, schedule = _mpeg_schedule()
        result = monte_carlo(ctg, platform, 200, seed=11, schedule=schedule)
        executor = InstanceExecutor(schedule)
        for i in range(result.n):
            outcome = executor.run(result.decisions(i))
            assert result.finish_times[i] == pytest.approx(
                outcome.finish_time, abs=1e-9
            )
            assert result.energies[i] == pytest.approx(outcome.energy, rel=1e-9)
            assert bool(result.deadline_met[i]) == outcome.deadline_met

    def test_wcet_range_path_matches_faulted_baseline_arm(self):
        ctg, platform, schedule = _mpeg_schedule()
        result = monte_carlo(
            ctg, platform, 32, seed=4, schedule=schedule, wcet_range=(1.0, 1.3)
        )
        assert result.wcet_factors is not None
        executor = InstanceExecutor(schedule)
        for i in range(result.n):
            faults = InstanceFaults(
                instance=i,
                wcet_factors={
                    task: float(result.wcet_factors[i, t])
                    for t, task in enumerate(
                        BatchSchedule.from_ctg(schedule).tasks
                    )
                },
            )
            outcome = executor.run_faulted(result.decisions(i), faults)
            assert result.finish_times[i] == pytest.approx(
                outcome.baseline_finish_time, abs=1e-9
            )
            assert result.energies[i] == pytest.approx(
                outcome.baseline_energy, rel=1e-9
            )

    def test_same_seed_reproduces_and_seeds_differ(self):
        ctg, platform, schedule = _mpeg_schedule()
        a = monte_carlo(ctg, platform, 500, seed=2, schedule=schedule)
        b = monte_carlo(ctg, platform, 500, seed=2, schedule=schedule)
        c = monte_carlo(ctg, platform, 500, seed=3, schedule=schedule)
        assert np.array_equal(a.scenario_indices, b.scenario_indices)
        assert np.array_equal(a.finish_times, b.finish_times)
        assert not np.array_equal(a.scenario_indices, c.scenario_indices)

    def test_sampled_scenario_frequencies_track_probabilities(self):
        ctg, platform, schedule = _mpeg_schedule()
        probabilities = ctg.default_probabilities
        result = monte_carlo(ctg, platform, 20_000, seed=0, schedule=schedule)
        batch = BatchSchedule.from_ctg(schedule)
        counts = result.scenario_counts(batch.n_scenarios)
        for s, scenario in enumerate(batch.scenarios):
            expected = scenario.probability(probabilities)
            assert counts[s] / result.n == pytest.approx(expected, abs=0.02)

    def test_every_sampled_instance_meets_the_deadline(self):
        """Hard real-time through the batched path: the stretched
        schedule was built for the worst case, so no sampled scenario
        (without execution-time faults) may miss."""
        ctg, platform, schedule = _mpeg_schedule()
        result = monte_carlo(ctg, platform, 5_000, seed=9, schedule=schedule)
        assert result.miss_rate == 0.0

    def test_rejects_nonpositive_n(self):
        ctg, platform, schedule = _mpeg_schedule()
        with pytest.raises(ValueError):
            monte_carlo(ctg, platform, 0, schedule=schedule)


class TestBatchedStretch:
    def test_matches_scalar_stretch_per_distribution(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.3)
        analysis = CtgAnalysis.of(ctg)
        rng = np.random.default_rng(21)
        distributions = [_random_distribution(ctg, rng) for _ in range(6)]

        nominal = dls_schedule(ctg, platform, analysis=analysis)
        batch = BatchSchedule.from_ctg(nominal, analysis)
        structure = structure_for(nominal, analysis.scenarios, analysis.path_cache)
        report = batched_stretch(batch, structure, distributions)

        for i, dist in enumerate(distributions):
            schedule = dls_schedule(ctg, platform, analysis=analysis)
            scalar = stretch_schedule(schedule, dist, analysis=analysis)
            assert report.path_count == scalar.path_count
            for task in ctg.tasks():
                assert report.speed_map(i)[task] == pytest.approx(
                    schedule.placement(task).speed, rel=1e-9, abs=1e-9
                )
                expected = scalar.slack_given.get(task, 0.0)
                t = batch.task_index[task]
                assert report.slack_given[i, t] == pytest.approx(
                    expected, abs=1e-7
                )

    def test_matches_scalar_stretch_multi_pass(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.3)
        analysis = CtgAnalysis.of(ctg)
        rng = np.random.default_rng(33)
        distributions = [_random_distribution(ctg, rng) for _ in range(3)]
        nominal = dls_schedule(ctg, platform, analysis=analysis)
        batch = BatchSchedule.from_ctg(nominal, analysis)
        structure = structure_for(nominal, analysis.scenarios, analysis.path_cache)
        report = batched_stretch(batch, structure, distributions, max_passes=3)
        for i, dist in enumerate(distributions):
            schedule = dls_schedule(ctg, platform, analysis=analysis)
            stretch_schedule(schedule, dist, analysis=analysis, max_passes=3)
            for task in ctg.tasks():
                assert report.speed_map(i)[task] == pytest.approx(
                    schedule.placement(task).speed, rel=1e-9, abs=1e-9
                )


class TestMembershipMasks:
    def test_masks_pack_the_membership_matrix(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.3)
        analysis = CtgAnalysis.of(ctg)
        schedule = dls_schedule(ctg, platform, analysis=analysis)
        structure = structure_for(schedule, analysis.scenarios, analysis.path_cache)
        masks = structure.membership_masks()
        assert len(masks) == structure.path_count
        for p, mask in enumerate(masks):
            for s in range(len(structure.scenarios)):
                assert bool(mask >> s & 1) == bool(structure.membership[p, s])
        # cached: second call returns the identical tuple
        assert structure.membership_masks() is masks

    def test_task_scenario_masks_match_active_matrix(self):
        _ctg, _platform, schedule = _mpeg_schedule()
        batch = BatchSchedule.from_ctg(schedule)
        for t in range(batch.n_tasks):
            expected = sum(
                1 << s for s in range(batch.n_scenarios) if batch.active[s, t]
            )
            assert batch.task_scenario_masks[t] == expected


class TestControllerFastPath:
    def test_prestretched_reschedule_matches_full_pipeline(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.3)
        probabilities = ctg.default_probabilities

        fast = AdaptiveController(ctg, platform, probabilities)
        assert fast.prestretch([fast.profiler.distributions()]) == 1
        assert fast.reschedule() is False  # no fallback needed
        assert fast.stats.counters.get("reschedule.prestretched") == 1

        slow = AdaptiveController(ctg, platform, probabilities)
        assert slow.reschedule() is False
        assert slow.stats.counters.get("reschedule.prestretched") is None

        for task in ctg.tasks():
            assert fast.schedule.placement(task).speed == pytest.approx(
                slow.schedule.placement(task).speed, rel=1e-9
            )
            assert fast.schedule.placement(task).pe == slow.schedule.placement(task).pe

    def test_cache_miss_falls_back_to_full_pipeline(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.3)
        probabilities = ctg.default_probabilities
        controller = AdaptiveController(ctg, platform, probabilities)
        # a distribution the cache has never seen: full pipeline runs
        rng = np.random.default_rng(1)
        controller.prestretch([_random_distribution(ctg, rng)])
        assert controller.reschedule() is False
        assert controller.stats.counters.get("reschedule.prestretched") is None
