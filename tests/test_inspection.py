"""Tests for schedule inspection (repro.scheduling.inspection)."""

import pytest

from repro.ctg import figure1_ctg
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import dls_schedule, schedule_online, set_deadline_from_makespan
from repro.scheduling.inspection import (
    inspect,
    overlap_report,
    scenario_report,
    slack_utilisation,
)


@pytest.fixture
def fig1_schedule():
    ctg = figure1_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
    set_deadline_from_makespan(ctg, platform, 1.4)
    return schedule_online(ctg, platform).schedule


class TestScenarioReport:
    def test_one_row_per_scenario(self, fig1_schedule):
        reports = scenario_report(fig1_schedule)
        assert len(reports) == 3
        assert {r.product for r in reports} == {"a1", "a2b1", "a2b2"}

    def test_probabilities_sum_to_one(self, fig1_schedule):
        reports = scenario_report(fig1_schedule)
        assert sum(r.probability for r in reports) == pytest.approx(1.0)

    def test_all_scenarios_within_deadline(self, fig1_schedule):
        for report in scenario_report(fig1_schedule):
            assert report.slack >= -1e-6
            assert report.makespan <= fig1_schedule.ctg.deadline + 1e-6

    def test_expected_energy_consistent_with_schedule(self, fig1_schedule):
        reports = scenario_report(fig1_schedule)
        mixture = sum(r.probability * r.energy for r in reports)
        analytical = fig1_schedule.expected_energy(
            fig1_schedule.ctg.default_probabilities
        )
        assert mixture == pytest.approx(analytical, rel=1e-9)


class TestSlackUtilisation:
    def test_online_schedule_consumes_most_headroom(self, fig1_schedule):
        util = slack_utilisation(fig1_schedule)
        assert util.headroom > 0
        assert 0.5 <= util.utilisation <= 1.0 + 1e-9

    def test_measurement_does_not_mutate_speeds(self, fig1_schedule):
        before = {t: p.speed for t, p in fig1_schedule.placements.items()}
        slack_utilisation(fig1_schedule)
        after = {t: p.speed for t, p in fig1_schedule.placements.items()}
        assert before == after

    def test_nominal_schedule_consumes_nothing(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
        set_deadline_from_makespan(ctg, platform, 1.4)
        schedule = dls_schedule(ctg, platform)  # no stretching
        util = slack_utilisation(schedule)
        assert util.consumed == pytest.approx(0.0)


class TestOverlapReport:
    def test_single_pe_exclusive_arms_overlap(self):
        ctg = two_sided_branch_ctg()
        platform = Platform([ProcessingElement("pe0")])
        for task in ctg.tasks():
            platform.set_task_profile(task, "pe0", wcet=10.0, energy=1.0)
        schedule = dls_schedule(ctg, platform)
        overlaps = overlap_report(schedule)
        assert any({a, b} == {"heavy", "light"} for _pe, a, b, _d in overlaps)

    def test_no_false_overlaps(self, fig1_schedule):
        for _pe, a, b, duration in overlap_report(fig1_schedule):
            assert fig1_schedule.are_exclusive(a, b)
            assert duration > 0


class TestInspect:
    def test_report_contains_sections(self, fig1_schedule):
        text = inspect(fig1_schedule)
        assert "Per-scenario execution profile" in text
        assert "slack:" in text
        assert "expected energy" in text
        assert "mutual-exclusion" in text
