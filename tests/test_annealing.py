"""Tests for the simulated-annealing mapping optimiser."""

import pytest

from repro.ctg import GeneratorConfig, generate_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import (
    AnnealingConfig,
    SchedulingError,
    anneal_mapping,
    schedule_online,
    set_deadline_from_makespan,
)
from repro.scheduling.baselines import load_balanced_mapping


def make_instance(seed=7, nodes=16, branches=2, pes=3, factor=1.4):
    ctg = generate_ctg(GeneratorConfig(nodes=nodes, branch_nodes=branches, seed=seed))
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, factor)
    return ctg, platform


class TestAnnealingConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingConfig(iterations=0)
        with pytest.raises(ValueError):
            AnnealingConfig(cooling=1.0)
        with pytest.raises(ValueError):
            AnnealingConfig(initial_temperature=0.0)


class TestAnnealMapping:
    def test_never_worse_than_start(self):
        ctg, platform = make_instance()
        result = anneal_mapping(
            ctg, platform, config=AnnealingConfig(iterations=60, seed=2)
        )
        assert result.energy <= result.initial_energy + 1e-9
        assert 0.0 <= result.improvement < 1.0

    def test_result_schedule_valid_and_feasible(self):
        ctg, platform = make_instance(seed=9)
        result = anneal_mapping(
            ctg, platform, config=AnnealingConfig(iterations=50, seed=3)
        )
        result.schedule.validate()
        assert result.schedule.meets_deadline()
        # the reported mapping matches the reported schedule
        assert {t: result.schedule.pe_of(t) for t in ctg.tasks()} == result.mapping

    def test_deterministic_for_seed(self):
        ctg, platform = make_instance(seed=11)
        a = anneal_mapping(ctg, platform, config=AnnealingConfig(iterations=40, seed=5))
        b = anneal_mapping(ctg, platform, config=AnnealingConfig(iterations=40, seed=5))
        assert a.mapping == b.mapping
        assert a.energy == pytest.approx(b.energy)

    def test_improves_a_bad_initial_mapping(self):
        """Starting from the communication-blind load-balanced mapping,
        annealing must claw back a real share of the gap to DLS."""
        ctg, platform = make_instance(seed=13, factor=1.5)
        bad = load_balanced_mapping(ctg, platform)
        result = anneal_mapping(
            ctg,
            platform,
            config=AnnealingConfig(iterations=250, seed=4),
            initial_mapping=bad,
        )
        assert result.energy < result.initial_energy

    def test_requires_deadline(self):
        ctg, platform = make_instance()
        ctg.deadline = 0.0
        with pytest.raises(SchedulingError):
            anneal_mapping(ctg, platform)

    def test_energy_trace_recorded(self):
        ctg, platform = make_instance()
        result = anneal_mapping(
            ctg, platform, config=AnnealingConfig(iterations=30, seed=6)
        )
        assert len(result.energy_trace) == 31
        assert result.energy_trace[0] == pytest.approx(result.initial_energy)

    def test_dls_mapping_close_to_annealed(self):
        """The headline sanity check: the online DLS mapping should be
        within a modest factor of a 200-evaluation annealed mapping."""
        ctg, platform = make_instance(seed=21, factor=1.3)
        online = schedule_online(ctg, platform)
        online_energy = online.schedule.expected_energy(ctg.default_probabilities)
        annealed = anneal_mapping(
            ctg, platform, config=AnnealingConfig(iterations=200, seed=7)
        )
        assert annealed.energy <= online_energy + 1e-9
        assert online_energy <= annealed.energy * 1.5
