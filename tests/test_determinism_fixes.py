"""Regression tests for the sites the flow analyzer flagged.

Each fixed site gets a hash-seed-variation test: the computation runs
in two subprocesses with different ``PYTHONHASHSEED`` values and must
print byte-identical results.  Before the fixes, set-iteration order
(hash-seed-dependent for strings) could leak into float sums, dict
insertion orders and ready-list orders; sorting the iterations makes
the results seed-independent by construction.

The batch-kernel dtype fixes (NUM303) are locked in statically: the
flow rules must stay quiet on ``repro/batch/kernels.py``.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parents[1]
SRC = ROOT / "src"


def run_hashseeded(script: str, seed: str) -> str:
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = seed
    env["PYTHONPATH"] = str(SRC)
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return result.stdout


def assert_seed_independent(script: str) -> None:
    first = run_hashseeded(script, "1")
    second = run_hashseeded(script, "2")
    assert first == second
    assert first.strip(), "script produced no output"


class TestHashSeedIndependence:
    def test_table45_scenario_cost(self):
        """Float sum over ``scenario.active`` (the DET201 finding)."""
        assert_seed_independent(
            "from repro.workloads import mpeg_ctg, mpeg_platform\n"
            "from repro.ctg.minterms import enumerate_scenarios\n"
            "from repro.experiments.table45 import _scenario_cost\n"
            "ctg, platform = mpeg_ctg(), mpeg_platform()\n"
            "for s in enumerate_scenarios(ctg):\n"
            "    print(repr(_scenario_cost(platform, s)))\n"
        )

    def test_minterms_activation_and_exclusion(self):
        """Dict build-up over ``scenario.active`` (two DET201 findings)."""
        assert_seed_independent(
            "import json\n"
            "from repro.workloads import mpeg_ctg\n"
            "from repro.ctg.minterms import (\n"
            "    activation_probability, enumerate_scenarios, exclusion_table)\n"
            "ctg = mpeg_ctg()\n"
            "probs = activation_probability(ctg, ctg.default_probabilities)\n"
            "print(json.dumps(list(probs.items())))\n"
            "table = exclusion_table(ctg)\n"
            "print(json.dumps({t: sorted(v) for t, v in table.items()}))\n"
        )

    def test_dls_ready_list_order(self):
        """Ready-candidate enumeration over a task set (DET201 finding)."""
        assert_seed_independent(
            "from repro.workloads import mpeg_ctg, mpeg_platform\n"
            "from repro.scheduling.dls import dls_schedule\n"
            "schedule = dls_schedule(mpeg_ctg(), mpeg_platform())\n"
            "for task in sorted(schedule.placements):\n"
            "    p = schedule.placements[task]\n"
            "    print(task, p.pe, repr(p.wcet), repr(p.speed))\n"
        )


class TestKernelDtypePins:
    def test_kernels_have_no_unpinned_accumulators(self):
        """NUM303 must stay quiet on the batch kernels (the fixed sites)."""
        from repro.check.callgraph import parse_modules, build_callgraph
        from repro.check.flow import analyze_modules

        files = sorted((SRC / "repro").rglob("*.py"))
        modules = parse_modules(files, SRC)
        graph = build_callgraph(modules)
        kernel_findings = [
            d
            for d in analyze_modules(modules, graph)
            if d.code == "NUM303" and "kernels" in d.subject
        ]
        assert kernel_findings == []

    def test_stretch_pipeline_stays_float64_end_to_end(self):
        """Exercise the fixed accumulator path and pin the output dtype."""
        import numpy as np

        from repro.batch import BatchSchedule, batched_stretch
        from repro.ctg import CtgAnalysis
        from repro.scheduling import dls_schedule, set_deadline_from_makespan
        from repro.scheduling.pathcache import structure_for
        from repro.workloads import mpeg_ctg, mpeg_platform

        ctg, platform = mpeg_ctg(), mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.3)
        analysis = CtgAnalysis.of(ctg)
        nominal = dls_schedule(ctg, platform, analysis=analysis)
        batch = BatchSchedule.from_ctg(nominal, analysis)
        structure = structure_for(nominal, analysis.scenarios, analysis.path_cache)
        report = batched_stretch(batch, structure, [ctg.default_probabilities])
        speeds = np.asarray(
            [report.speed_map(0)[task] for task in sorted(ctg.tasks())]
        )
        assert speeds.dtype == np.float64
        assert np.isfinite(speeds).all()
