"""Property-based invariants of the speed-policy families.

Three contracts from ``docs/algorithms.md`` §6.6, on randomly
generated instances:

* **discrete safety** — a discrete-policy schedule only ever assigns
  speeds that sit on the PE's usable level table, and quantising *up*
  plus energy refinement never loses the deadline;
* **preemptive dominance** — Leung–Tsui run-time slack reclamation
  never consumes more energy than the static replay of the same
  instance with the same actual execution times, and never finishes
  later than its WCET budget allows;
* **scalar/batch quantisation agreement** — ``quantize_speed`` (the
  scalar rule the policy applies) and ``_clamp_speeds`` (the
  vectorised kernel rule) are bit-identical on arbitrary inputs.
"""

import random

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch.kernels import _clamp_speeds
from repro.check.tolerances import EXACT_EPS, TIME_EPS
from repro.ctg import GeneratorConfig, enumerate_scenarios, generate_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.scheduling.policies import (
    DiscreteSpeedPolicy,
    PreemptiveSpeedPolicy,
    quantize_speed,
)
from repro.sim import InstanceExecutor


def build_instance(nodes, branches, category, pes, seed, factor):
    cfg = GeneratorConfig(
        nodes=nodes, branch_nodes=branches, category=category, seed=seed
    )
    ctg = generate_ctg(cfg)
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, factor)
    return ctg, platform


def decisions_of(scenario, ctg):
    vector = {}
    for branch in ctg.branch_nodes():
        chosen = scenario.product.label_for(branch)
        vector[branch] = chosen if chosen is not None else ctg.outcomes_of(branch)[0]
    return vector


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(12, 24),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 4),
    seed=st.integers(0, 300),
    factor=st.floats(1.1, 2.0),
)
def test_discrete_speeds_sit_on_levels_and_keep_the_deadline(
    nodes, branches, category, pes, seed, factor
):
    try:
        ctg, platform = build_instance(nodes, branches, category, pes, seed, factor)
    except ValueError:
        return
    policy = DiscreteSpeedPolicy()
    result = schedule_online(ctg, platform, speed_policy=policy)
    schedule = result.schedule
    for task in schedule.placement_order():
        placement = schedule.placement(task)
        pe = platform.pe(placement.pe)
        levels = policy.levels_for(pe)
        assert any(
            abs(placement.speed - level) <= EXACT_EPS for level in levels
        ), (task, placement.speed, levels)
    assert schedule.makespan() <= ctg.deadline + TIME_EPS


@settings(max_examples=8, deadline=None)
@given(
    nodes=st.integers(12, 24),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 4),
    seed=st.integers(0, 300),
    factor=st.floats(1.1, 2.0),
)
def test_preemptive_reclamation_never_increases_energy(
    nodes, branches, category, pes, seed, factor
):
    try:
        ctg, platform = build_instance(nodes, branches, category, pes, seed, factor)
    except ValueError:
        return
    schedule = schedule_online(ctg, platform).schedule
    rng = random.Random(seed)
    ratios = {task: rng.uniform(0.2, 1.0) for task in ctg.tasks()}
    static = InstanceExecutor(schedule)
    reclaiming = InstanceExecutor(schedule, speed_policy=PreemptiveSpeedPolicy())
    for scenario in enumerate_scenarios(ctg):
        decisions = decisions_of(scenario, ctg)
        base = static.run(decisions, work_ratios=ratios)
        dyn = reclaiming.run(decisions, work_ratios=ratios)
        assert dyn.energy <= base.energy * (1.0 + 1e-9) + 1e-9, scenario
        # reclamation spends slack, never the deadline
        if base.deadline_met:
            assert dyn.deadline_met, scenario


@settings(max_examples=200, deadline=None)
@given(
    speed=st.floats(0.0, 1.5, allow_nan=False),
    min_speed=st.floats(0.05, 0.6),
    table=st.lists(
        st.floats(0.05, 1.0), min_size=1, max_size=6, unique=True
    ),
)
def test_scalar_and_batch_quantisation_agree(speed, min_speed, table):
    levels = tuple(sorted(table))
    scalar = quantize_speed(speed, min_speed, levels)
    batch = _clamp_speeds(
        np.asarray([speed], dtype=float), min_speed, np.asarray(levels)
    )
    assert scalar == batch[0], (speed, min_speed, levels)


def test_quantisation_examples_round_up():
    levels = (0.25, 0.5, 0.75, 1.0)
    assert quantize_speed(0.3, 0.25, levels) == 0.5
    assert quantize_speed(0.5, 0.25, levels) == 0.5
    assert quantize_speed(0.9, 0.25, levels) == 1.0
    # above the table: capped at the top level
    assert quantize_speed(1.2, 0.25, (0.25, 0.5)) == 0.5
    # below the floor: the envelope clamp applies first
    assert quantize_speed(0.1, 0.4, levels) == 0.5
