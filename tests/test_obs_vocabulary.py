"""Vocabulary drift tests — the two inclusions that keep the declared
metric registry honest:

* **emitted ⊆ declared** — a static AST sweep over ``src/repro``
  collects every metric-name literal and asserts each is declared in
  :data:`repro.obs.metrics.VOCABULARY`;
* **declared ⊆ emitted** — a battery of real runs (adaptive, faulted
  under three plans, scheduling fallback, ``check=True``, degenerate
  stretching, modal table) must emit every declared runtime name at
  least once, so the vocabulary cannot accumulate dead entries.

Plus the rendered-table drift checks: the tables embedded in
``repro/profiling.py``'s docstring and ``docs/observability.md`` must
be exactly ``vocabulary_table()``'s output.
"""

from pathlib import Path

import pytest

import repro.adaptive.controller as controller_mod
import repro.profiling
from repro.adaptive.controller import AdaptiveConfig, AdaptiveController
from repro.batch import monte_carlo
from repro.ctg import CTGError, figure1_ctg
from repro.ctg.examples import two_sided_branch_ctg
from repro.ctg.graph import ConditionalTaskGraph
from repro.experiments.chaos import fault_plan_catalogue
from repro.obs import (
    Tracer,
    TracingProfiler,
    declared_names,
    derive_run_metrics,
    emitted_names,
    vocabulary_table,
)
from repro.platform import PlatformConfig, generate_platform
from repro.profiling import StageProfiler
from repro.scheduling import SchedulingError, dls_schedule, stretch_schedule
from repro.scheduling.modal import build_modal_table
from repro.scheduling.online import schedule_online, set_deadline_from_makespan
from repro.scheduling.policies import DiscreteSpeedPolicy
from repro.sim import empirical_distribution
from repro.sim.runner import run_faulted, run_non_adaptive
from repro.workloads import movie_trace, mpeg_ctg, mpeg_platform

from .test_stretching_edge_cases import uniform_platform

REPO = Path(__file__).resolve().parent.parent


def _fabric_cell(params):
    """Module-level cell function for the engine-fabric battery leg."""
    return {"values": {"y": params["x"] * 2}}


class _FabricResult:
    def __init__(self, total):
        self.total = total

    def format(self):
        return f"total={self.total}"


def _names_of(profile, tracer=None):
    names = set(profile.calls) | set(profile.counters)
    if tracer is not None:
        names |= {e.name for e in tracer.events}
        names |= {s.name for s in tracer.spans if s.category == "stage"}
    return names


@pytest.fixture(scope="module")
def runtime_names():
    """Union of every metric name the coverage battery emits."""
    names = set()

    # -- faulted mpeg runs: three plans cover the fault/reschedule space
    ctg = mpeg_ctg()
    platform = mpeg_platform()
    set_deadline_from_makespan(ctg, platform, 1.6)
    trace = movie_trace(ctg, "Airwolf", length=200)
    probabilities = empirical_distribution(ctg, trace[:50])
    catalogue = fault_plan_catalogue()
    for plan_name in ("overrun", "overrun-drop", "noisy-links"):
        tracer = Tracer()
        result = run_faulted(
            ctg, platform, trace[50:], probabilities, catalogue[plan_name],
            config=AdaptiveConfig(window_size=20, threshold=0.1),
            tracer=tracer,
        )
        names |= _names_of(result.profile, tracer)
        if plan_name == "overrun":
            names |= set(derive_run_metrics(result, tracer=tracer).snapshot())

    # -- speed-policy families: quantisation + refinement counters on
    #    a discrete run, EAPS configuration enumeration, run-time slack
    #    reclamation, and a capped table whose escalation ceiling turns
    #    misses into quantisation losses
    capped = DiscreteSpeedPolicy(levels=(0.25, 0.5))
    result = run_faulted(
        ctg, platform, trace[50:], probabilities, catalogue["overrun"],
        config=AdaptiveConfig(window_size=20, threshold=0.1),
        speed_policy=capped,
    )
    assert result.fault_log.quantization_losses > 0
    names |= _names_of(result.profile)
    reclaiming = run_non_adaptive(
        ctg, platform, trace[50:80], probabilities=probabilities,
        speed_policy="preemptive",
    )
    names |= _names_of(reclaiming.profile)

    # -- check=True: the verification stage and its pass counter
    small = figure1_ctg()
    small_platform = generate_platform(small.tasks(), PlatformConfig(pes=2, seed=5))
    set_deadline_from_makespan(small, small_platform, 1.5)
    tracer = Tracer()
    checked = schedule_online(
        small, small_platform, check=True, profiler=TracingProfiler(tracer)
    )
    names |= _names_of(checked.profile, tracer)
    for family in ("discrete", "eaps"):
        profiler = StageProfiler()
        schedule_online(small, small_platform, profiler=profiler, speed_policy=family)
        names |= _names_of(profiler)

    # -- batched Monte-Carlo sweep + pre-stretched re-schedule fast path
    profiler = StageProfiler()
    monte_carlo(
        ctg, platform, 64, seed=1, probabilities=probabilities, profiler=profiler
    )
    names |= _names_of(profiler)
    batched = AdaptiveController(ctg, platform, probabilities)
    batched.prestretch([batched.profiler.distributions()])
    batched.reschedule()
    names |= _names_of(batched.stats)

    # -- scheduling failure: fallback schedule + its counter
    fallback_ctg = two_sided_branch_ctg()
    fallback_ctg.deadline = 60.0
    controller = AdaptiveController(
        fallback_ctg,
        uniform_platform(fallback_ctg, pes=1),
        fallback_ctg.default_probabilities,
    )
    original = controller_mod.schedule_online

    def refuse(*args, **kwargs):
        raise SchedulingError("forced failure")

    controller_mod.schedule_online = refuse
    try:
        controller.reschedule(on_error="fallback")
    finally:
        controller_mod.schedule_online = original
    names |= _names_of(controller.stats)

    # -- degenerate probabilities: the all-paths-pruned stretch fallback
    pruned = dls_schedule(
        fallback_ctg,
        uniform_platform(fallback_ctg, pes=1),
        {"fork": {"h": 0.0, "l": 1.0}},
    )
    pruned.ctg.deadline = 60.0
    profiler = StageProfiler()
    stretch_schedule(
        pruned, {"fork": {"h": 0.0, "l": 0.0}},
        prune_zero_probability=True, profiler=profiler,
    )
    names |= _names_of(profiler)

    # -- engine fabric: a cold cached run, one vandalised entry, then a
    #    warm --resume run — covers every cache.backend.* / engine.stream.*
    #    counter (corrupt via the garbage entry, resumed via resume=True)
    import tempfile

    from repro.experiments import CellCache, DirBackend, run_spec
    from repro.experiments.spec import Cell, ExperimentSpec

    fabric_spec = ExperimentSpec(
        name="vocabulary-battery",
        cell_function=_fabric_cell,
        cells=[Cell(key=f"c{i}", params={"x": i}) for i in range(3)],
        reducer=lambda cells: _FabricResult(total=sum(c.values["y"] for c in cells)),
    )
    with tempfile.TemporaryDirectory() as tmp:
        store = CellCache(backend=DirBackend(tmp))
        cold = run_spec(fabric_spec, jobs=1, cache=store)
        names |= set(cold.engine_profile.counters)
        victim = cold.cells[0].fingerprint
        store.backend.write(victim, "not json at all")
        warm = run_spec(fabric_spec, jobs=1, cache=store, resume=True)
        names |= set(warm.engine_profile.counters)
        assert warm.engine_profile.counters["cache.backend.corrupt"] == 1

    # -- fleet telemetry: a heartbeated fleet worker, then a stopped
    #    one and a dead one — covers every engine.worker.* counter
    import os
    import signal
    import time

    from repro.experiments import EngineError, SubprocessFleetPool

    pool = SubprocessFleetPool(_fabric_cell, 1, heartbeat=0.2, stall_misses=2)
    try:
        pool.submit(0, {"x": 1})
        pool.ready()
        deadline = time.monotonic() + 15
        while (
            pool.profile.counters.get("engine.worker.heartbeats", 0) == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.05)
        (channel,) = pool._channels.values()
        os.kill(channel.process.pid, signal.SIGSTOP)
        pool.submit(1, {"x": 2})
        try:
            pool.ready()
        except EngineError:
            pass
    finally:
        pool.close()
    names |= set(pool.profile.counters)

    dead_pool = SubprocessFleetPool(_fabric_cell, 1)
    try:
        dead_pool._processes[0].kill()
        dead_pool._processes[0].wait()
        dead_pool.submit(0, {"x": 1})
        try:
            dead_pool.ready()
        except EngineError:
            pass
    finally:
        dead_pool.close()
    names |= set(dead_pool.profile.counters)

    # -- modal table with cycle-closing pseudo-edges: the skip counter
    modal_result = schedule_online(small, small_platform)
    profiler = StageProfiler()
    original_edge = ConditionalTaskGraph.add_pseudo_edge

    def closing(self, *args, **kwargs):
        raise CTGError("forced cycle")

    ConditionalTaskGraph.add_pseudo_edge = closing
    try:
        build_modal_table(modal_result.schedule, profiler=profiler)
    finally:
        ConditionalTaskGraph.add_pseudo_edge = original_edge
    names |= _names_of(profiler)

    return names


class TestEmittedSubsetOfDeclared:
    def test_every_source_literal_is_declared(self):
        emitted = emitted_names(REPO / "src" / "repro")
        undeclared = emitted - declared_names()
        assert not undeclared, (
            f"metric names emitted in src/ but missing from VOCABULARY: "
            f"{sorted(undeclared)}"
        )

    def test_sweep_actually_sees_the_call_sites(self):
        emitted = emitted_names(REPO / "src" / "repro")
        # spot-check names emitted from four different modules
        assert {"online", "dls.tasks_placed", "sim.fault", "run.total_energy"} <= emitted


class TestDeclaredSubsetOfEmitted:
    def test_every_declared_name_is_emitted_by_some_run(self, runtime_names):
        dead = declared_names() - runtime_names
        assert not dead, (
            f"names declared in VOCABULARY but never emitted by the "
            f"coverage battery: {sorted(dead)}"
        )

    def test_battery_stays_inside_the_vocabulary(self, runtime_names):
        assert runtime_names <= declared_names()


class TestRenderedTableDrift:
    def test_profiling_docstring_embeds_the_table(self):
        assert vocabulary_table() in repro.profiling.__doc__

    def test_observability_doc_embeds_the_table(self):
        doc = (REPO / "docs" / "observability.md").read_text()
        assert vocabulary_table() in doc
