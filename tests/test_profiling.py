"""The StageProfiler itself, and its exposure on run results."""

import pytest

from repro.profiling import NULL_PROFILER, StageProfiler, as_profiler
from repro.adaptive.controller import AdaptiveConfig
from repro.ctg.examples import two_sided_branch_ctg
from repro.sim.executor import InstanceExecutor
from repro.sim.runner import run_adaptive, run_non_adaptive
from repro.scheduling import dls_schedule
from repro.workloads.traces import drifting_trace

from .test_stretching_edge_cases import uniform_platform


class TestStageProfiler:
    def test_stage_accumulates_time_and_calls(self):
        prof = StageProfiler()
        with prof.stage("work"):
            pass
        with prof.stage("work"):
            pass
        assert prof.calls["work"] == 2
        assert prof.timing("work") >= 0.0
        assert "work" in prof.timings

    def test_stage_records_even_on_exception(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.stage("boom"):
                raise RuntimeError("x")
        assert prof.calls["boom"] == 1

    def test_counters_accumulate(self):
        prof = StageProfiler()
        prof.count("events")
        prof.count("events", 4)
        assert prof.counter("events") == 5
        assert prof.counter("missing") == 0
        assert prof.timing("missing") == 0.0

    def test_merge_folds_everything(self):
        a, b = StageProfiler(), StageProfiler()
        with a.stage("s"):
            pass
        with b.stage("s"):
            pass
        b.count("c", 3)
        a.merge(b)
        assert a.calls["s"] == 2
        assert a.counter("c") == 3

    def test_format_lists_stages_and_counters(self):
        prof = StageProfiler()
        with prof.stage("alpha"):
            pass
        prof.count("beta", 2)
        text = prof.format()
        assert "alpha" in text and "beta" in text
        assert StageProfiler().format() == "(no profiling data)"

    def test_null_profiler_records_nothing(self):
        with NULL_PROFILER.stage("s"):
            NULL_PROFILER.count("c")
        assert not NULL_PROFILER.timings
        assert not NULL_PROFILER.counters
        assert as_profiler(None) is NULL_PROFILER
        real = StageProfiler()
        assert as_profiler(real) is real


class TestProfilerSerialization:
    """Snapshots and pickling — what worker processes rely on."""

    def _loaded(self):
        prof = StageProfiler()
        with prof.stage("schedule"):
            pass
        with prof.stage("replay"):
            pass
        prof.count("reschedules", 7)
        return prof

    def test_to_dict_from_dict_round_trip(self):
        prof = self._loaded()
        clone = StageProfiler.from_dict(prof.to_dict())
        assert clone.timings == prof.timings
        assert clone.calls == prof.calls
        assert clone.counters == prof.counters

    def test_from_dict_tolerates_empty_and_none(self):
        assert StageProfiler.from_dict(None).timings == {}
        assert StageProfiler.from_dict({}).counters == {}

    def test_pickle_round_trip(self):
        import pickle

        prof = self._loaded()
        clone = pickle.loads(pickle.dumps(prof))
        assert clone.timings == prof.timings
        assert clone.calls == prof.calls
        assert clone.counters == prof.counters

    def test_merge_of_partitions_equals_serial_accumulation(self):
        """Satellite: folding per-worker snapshots must equal the
        single-process profiler over the same work, exactly."""
        serial = StageProfiler()
        parts = [StageProfiler() for _ in range(3)]
        for i in range(9):
            for target in (serial, parts[i % 3]):
                with target.stage("work"):
                    pass
                target.count("items", i)
        merged = StageProfiler()
        for part in parts:
            merged.merge(StageProfiler.from_dict(part.to_dict()))
        assert merged.calls == serial.calls
        assert merged.counters == serial.counters
        assert set(merged.timings) == set(serial.timings)

    def test_merge_order_does_not_change_counters(self):
        parts = []
        for i in range(3):
            p = StageProfiler()
            p.count("c", i + 1)
            parts.append(p)
        forward, backward = StageProfiler(), StageProfiler()
        for p in parts:
            forward.merge(p)
        for p in reversed(parts):
            backward.merge(p)
        assert forward.counters == backward.counters


class TestRunResultProfile:
    def _setup(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        trace = drifting_trace(ctg, 25, seed=5)
        return ctg, platform, trace

    def test_non_adaptive_profile_covers_scheduling_and_replay(self):
        ctg, platform, trace = self._setup()
        result = run_non_adaptive(
            ctg, platform, trace, ctg.default_probabilities, deadline=60.0
        )
        prof = result.profile
        assert prof is not None
        assert prof.calls["online"] == 1
        assert prof.calls["dls"] == 1
        assert prof.calls["stretch"] == 1
        assert prof.counter("executor.instances") == len(trace)
        assert prof.calls["executor.replay"] == len(trace)
        assert prof.counter("path_cache.miss") == 1

    def test_adaptive_profile_counts_reschedules_and_cache(self):
        ctg, platform, trace = self._setup()
        result = run_adaptive(
            ctg,
            platform,
            trace,
            ctg.default_probabilities,
            AdaptiveConfig(window_size=8, threshold=0.1),
            deadline=60.0,
        )
        prof = result.profile
        assert prof is not None
        assert prof.counter("reschedule.calls") == result.reschedule_calls
        assert prof.calls["online"] == result.reschedule_calls + 1
        assert prof.counter("executor.instances") == len(trace)
        hits = prof.counter("path_cache.hit")
        misses = prof.counter("path_cache.miss")
        assert hits + misses == result.reschedule_calls + 1
        assert misses >= 1

    def test_executor_without_profiler_has_no_instrumentation_state(self):
        ctg, platform, _trace = self._setup()
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 60.0
        executor = InstanceExecutor(sched)
        assert executor._prof is NULL_PROFILER
