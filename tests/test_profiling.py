"""The StageProfiler itself, and its exposure on run results."""

import pytest

from repro.profiling import NULL_PROFILER, StageProfiler, as_profiler
from repro.adaptive.controller import AdaptiveConfig
from repro.ctg.examples import two_sided_branch_ctg
from repro.sim.executor import InstanceExecutor
from repro.sim.runner import run_adaptive, run_non_adaptive
from repro.scheduling import dls_schedule
from repro.workloads.traces import drifting_trace

from .test_stretching_edge_cases import uniform_platform


class TestStageProfiler:
    def test_stage_accumulates_time_and_calls(self):
        prof = StageProfiler()
        with prof.stage("work"):
            pass
        with prof.stage("work"):
            pass
        assert prof.calls["work"] == 2
        assert prof.timing("work") >= 0.0
        assert "work" in prof.timings

    def test_stage_records_even_on_exception(self):
        prof = StageProfiler()
        with pytest.raises(RuntimeError):
            with prof.stage("boom"):
                raise RuntimeError("x")
        assert prof.calls["boom"] == 1

    def test_counters_accumulate(self):
        prof = StageProfiler()
        prof.count("events")
        prof.count("events", 4)
        assert prof.counter("events") == 5
        assert prof.counter("missing") == 0
        assert prof.timing("missing") == 0.0

    def test_merge_folds_everything(self):
        a, b = StageProfiler(), StageProfiler()
        with a.stage("s"):
            pass
        with b.stage("s"):
            pass
        b.count("c", 3)
        a.merge(b)
        assert a.calls["s"] == 2
        assert a.counter("c") == 3

    def test_format_lists_stages_and_counters(self):
        prof = StageProfiler()
        with prof.stage("alpha"):
            pass
        prof.count("beta", 2)
        text = prof.format()
        assert "alpha" in text and "beta" in text
        assert StageProfiler().format() == "(no profiling data)"

    def test_null_profiler_records_nothing(self):
        with NULL_PROFILER.stage("s"):
            NULL_PROFILER.count("c")
        assert not NULL_PROFILER.timings
        assert not NULL_PROFILER.counters
        assert as_profiler(None) is NULL_PROFILER
        real = StageProfiler()
        assert as_profiler(real) is real


class TestRunResultProfile:
    def _setup(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        trace = drifting_trace(ctg, 25, seed=5)
        return ctg, platform, trace

    def test_non_adaptive_profile_covers_scheduling_and_replay(self):
        ctg, platform, trace = self._setup()
        result = run_non_adaptive(
            ctg, platform, trace, ctg.default_probabilities, deadline=60.0
        )
        prof = result.profile
        assert prof is not None
        assert prof.calls["online"] == 1
        assert prof.calls["dls"] == 1
        assert prof.calls["stretch"] == 1
        assert prof.counter("executor.instances") == len(trace)
        assert prof.calls["executor.replay"] == len(trace)
        assert prof.counter("path_cache.miss") == 1

    def test_adaptive_profile_counts_reschedules_and_cache(self):
        ctg, platform, trace = self._setup()
        result = run_adaptive(
            ctg,
            platform,
            trace,
            ctg.default_probabilities,
            AdaptiveConfig(window_size=8, threshold=0.1),
            deadline=60.0,
        )
        prof = result.profile
        assert prof is not None
        assert prof.counter("reschedule.calls") == result.reschedule_calls
        assert prof.calls["online"] == result.reschedule_calls + 1
        assert prof.counter("executor.instances") == len(trace)
        hits = prof.counter("path_cache.hit")
        misses = prof.counter("path_cache.miss")
        assert hits + misses == result.reschedule_calls + 1
        assert misses >= 1

    def test_executor_without_profiler_has_no_instrumentation_state(self):
        ctg, platform, _trace = self._setup()
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 60.0
        executor = InstanceExecutor(sched)
        assert executor._prof is NULL_PROFILER
