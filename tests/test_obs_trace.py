"""Tracing core: spans, events, merging, and — the PR's load-bearing
guarantee — that attaching a tracer changes *nothing* about a run's
results: ``profile`` dicts, energies and call sites are bit-for-bit
what un-traced runs produce.  The regression class pins the profile
contents of the MPEG/Airwolf runs to values captured *before* the
observability layer existed.
"""

import pytest

from repro.adaptive.controller import AdaptiveConfig
from repro.experiments.chaos import fault_plan_catalogue
from repro.obs import (
    EVENT_COUNTERS,
    NULL_TRACER,
    Span,
    TraceEvent,
    Tracer,
    TracingProfiler,
    as_tracer,
)
from repro.profiling import StageProfiler
from repro.scheduling.online import set_deadline_from_makespan
from repro.sim import empirical_distribution
from repro.sim.runner import run_adaptive, run_faulted, run_non_adaptive
from repro.workloads import movie_trace, mpeg_ctg, mpeg_platform


class TestTracerBasics:
    def test_span_records_interval_and_category(self):
        tracer = Tracer()
        with tracer.span("online"):
            pass
        (span,) = tracer.spans
        assert span.name == "online"
        assert span.category == "stage"
        assert span.end >= span.start >= 0.0
        assert span.parent == -1

    def test_nesting_follows_with_structure(self):
        tracer = Tracer()
        with tracer.span("online"):
            with tracer.span("dls"):
                pass
            with tracer.span("stretch"):
                with tracer.span("stretch.sweep"):
                    pass
        names = [s.name for s in tracer.spans]
        assert names == ["online", "dls", "stretch", "stretch.sweep"]
        parents = [s.parent for s in tracer.spans]
        assert parents == [-1, 0, 0, 2]

    def test_parent_indices_precede_children(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        for index, span in enumerate(tracer.spans):
            assert span.parent < index

    def test_nesting_is_per_track(self):
        tracer = Tracer()
        with tracer.span("outer"):
            tracer.add_span("task", 0.0, 1.0, category="sim.task", track="pe:0")
        assert tracer.spans[1].parent == -1  # different track, not nested

    def test_children_lie_within_parents(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.start <= inner.start
        assert inner.end <= outer.end

    def test_add_span_shifts_sim_categories_by_offset(self):
        tracer = Tracer()
        tracer.sim_offset = 100.0
        tracer.add_span("t", 1.0, 2.0, category="sim.task", track="pe:0")
        tracer.add_span("c", 1.0, 2.0, category="cell", track="engine")
        assert (tracer.spans[0].start, tracer.spans[0].end) == (101.0, 102.0)
        assert (tracer.spans[1].start, tracer.spans[1].end) == (1.0, 2.0)

    def test_event_defaults_to_wall_clock_now(self):
        tracer = Tracer()
        tracer.event("drift.detected", drift=0.2)
        (event,) = tracer.events
        assert event.ts >= 0.0
        assert event.attrs == {"drift": 0.2}

    def test_event_shifts_sim_categories(self):
        tracer = Tracer()
        tracer.sim_offset = 50.0
        tracer.event("sim.fault", ts=3.0, category="sim.event")
        tracer.event("reschedule.invoked", ts=3.0)
        assert tracer.events[0].ts == pytest.approx(53.0)
        assert tracer.events[1].ts == pytest.approx(3.0)

    def test_duration_never_negative(self):
        span = Span("x", "stage", 2.0, 1.0)
        assert span.duration == 0.0

    def test_counts_and_durations(self):
        tracer = Tracer()
        with tracer.span("online"):
            pass
        with tracer.span("online"):
            pass
        tracer.event("sim.fault", ts=0.0, category="sim.event")
        assert tracer.span_counts() == {"stage:online": 2}
        assert tracer.event_counts() == {"sim.fault": 1}
        assert len(tracer.durations("online")) == 2

    def test_stage_profile_is_a_projection_of_stage_spans(self):
        tracer = Tracer()
        with tracer.span("online"):
            with tracer.span("dls"):
                pass
        tracer.add_span("t", 0.0, 1.0, category="sim.task", track="pe:0")
        view = tracer.stage_profile()
        assert view.calls == {"online": 1, "dls": 1}
        assert set(view.timings) == {"online", "dls"}

    def test_round_trips_through_to_dict(self):
        tracer = Tracer()
        with tracer.span("online", mode="test"):
            pass
        tracer.event("sim.fault", ts=1.0, category="sim.event", kind="overrun")
        clone = Tracer.from_dict(tracer.to_dict())
        assert clone.spans == tracer.spans
        assert clone.events == tracer.events

    def test_span_and_event_dataclass_round_trip(self):
        span = Span("n", "sim.task", 0.5, 1.5, track="pe:0", parent=2, attrs={"speed": 0.8})
        assert Span.from_dict(span.to_dict()) == span
        event = TraceEvent("e", 1.0, "sim.event", "pe:0", {"k": 1})
        assert TraceEvent.from_dict(event.to_dict()) == event


class TestMerge:
    def _tracer_with(self, *names):
        tracer = Tracer()
        for name in names:
            with tracer.span(name):
                with tracer.span(name + ".inner"):
                    pass
        return tracer

    def test_merge_remaps_parent_indices(self):
        left = self._tracer_with("a")
        right = self._tracer_with("b")
        left.merge(right)
        assert [s.parent for s in left.spans] == [-1, 0, -1, 2]
        assert left.spans[3].name == "b.inner"

    def test_merge_is_associative_on_counts(self):
        a, b, c = (self._tracer_with(n) for n in "abc")
        left = Tracer().merge(a).merge(b).merge(c)
        bc = Tracer().merge(b).merge(c)
        right = Tracer().merge(a).merge(bc)
        assert left.span_counts() == right.span_counts()
        assert left.event_counts() == right.event_counts()

    def test_merge_returns_self(self):
        tracer = Tracer()
        assert tracer.merge(Tracer()) is tracer


class TestNullTracer:
    def test_disabled_and_recordless(self):
        assert NULL_TRACER.enabled is False
        with NULL_TRACER.span("online"):
            NULL_TRACER.add_span("t", 0.0, 1.0)
            NULL_TRACER.event("sim.fault")
        assert NULL_TRACER.spans == []
        assert NULL_TRACER.events == []

    def test_merge_is_a_no_op(self):
        other = Tracer()
        with other.span("x"):
            pass
        assert NULL_TRACER.merge(other) is NULL_TRACER
        assert NULL_TRACER.spans == []

    def test_as_tracer_normalises(self):
        assert as_tracer(None) is NULL_TRACER
        real = Tracer()
        assert as_tracer(real) is real


class TestTracingProfiler:
    def test_aggregates_match_plain_profiler(self):
        plain = StageProfiler()
        traced = TracingProfiler(Tracer())
        for prof in (plain, traced):
            with prof.stage("dls"):
                prof.count("dls.tasks_placed", 3)
        assert traced.calls == plain.calls
        assert traced.counters == plain.counters

    def test_stage_blocks_record_spans(self):
        tracer = Tracer()
        prof = TracingProfiler(tracer)
        with prof.stage("online"):
            with prof.stage("dls"):
                pass
        assert tracer.span_counts() == {"stage:online": 1, "stage:dls": 1}
        assert tracer.spans[1].parent == 0

    def test_cache_counters_double_as_events(self):
        tracer = Tracer()
        prof = TracingProfiler(tracer)
        for name in sorted(EVENT_COUNTERS):
            prof.count(name)
        prof.count("dls.tasks_placed", 5)  # not an event counter
        assert set(tracer.event_counts()) == EVENT_COUNTERS
        assert prof.counters["dls.tasks_placed"] == 5

    def test_event_forwards_to_tracer(self):
        tracer = Tracer()
        prof = TracingProfiler(tracer)
        prof.event("drift.detected", drift=0.3)
        assert tracer.event_counts() == {"drift.detected": 1}

    def test_plain_profiler_event_is_a_no_op(self):
        prof = StageProfiler()
        prof.event("drift.detected", drift=0.3)
        assert prof.to_dict() == StageProfiler().to_dict()


# ----------------------------------------------------------------------
# Profile-preservation regression (values captured before this PR)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mpeg_problem():
    ctg = mpeg_ctg()
    platform = mpeg_platform()
    set_deadline_from_makespan(ctg, platform, 1.6)
    trace = movie_trace(ctg, "Airwolf", length=200)
    probabilities = empirical_distribution(ctg, trace[:50])
    return ctg, platform, trace[50:], probabilities


@pytest.fixture(scope="module")
def traced_runs(mpeg_problem):
    ctg, platform, test, probabilities = mpeg_problem
    plan = fault_plan_catalogue()["overrun"]
    runs = {}
    tracer = Tracer()
    runs["non_adaptive"] = (
        run_non_adaptive(ctg, platform, test, probabilities, tracer=tracer),
        tracer,
    )
    tracer = Tracer()
    runs["adaptive"] = (
        run_adaptive(
            ctg, platform, test, probabilities,
            config=AdaptiveConfig(window_size=20, threshold=0.1),
            tracer=tracer,
        ),
        tracer,
    )
    tracer = Tracer()
    runs["faulted"] = (
        run_faulted(
            ctg, platform, test, probabilities, plan,
            config=AdaptiveConfig(window_size=20, threshold=0.1),
            tracer=tracer,
        ),
        tracer,
    )
    return runs


class TestProfilePreservation:
    """Traced runs must reproduce the pre-PR profiles exactly."""

    def test_non_adaptive_profile_unchanged(self, traced_runs):
        result, _ = traced_runs["non_adaptive"]
        assert result.profile.calls == {
            "dls": 1,
            "dls.levels": 1,
            "executor.replay": 150,
            "online": 1,
            "stretch": 1,
            "stretch.refresh": 1,
            "stretch.structure": 1,
            "stretch.sweep": 1,
        }
        assert result.profile.counters == {
            "dls.tasks_placed": 40,
            "executor.instances": 150,
            "path_cache.miss": 1,
            "paths.enumerated": 717,
            "prob_cache.miss": 1,
        }
        assert result.total_energy == pytest.approx(5064.055556, abs=1e-5)
        assert result.energies[:5] == pytest.approx(
            [37.825735, 37.825735, 30.566155, 37.825735, 37.825735], abs=1e-5
        )

    def test_adaptive_profile_unchanged(self, traced_runs):
        result, _ = traced_runs["adaptive"]
        assert result.profile.counters == {
            "dls.tasks_placed": 600,
            "executor.instances": 150,
            "path_cache.hit": 13,
            "path_cache.miss": 2,
            "paths.enumerated": 1364,
            "prob_cache.hit": 10,
            "prob_cache.miss": 5,
            "reschedule.calls": 14,
        }
        assert result.total_energy == pytest.approx(5098.960108, abs=1e-5)
        assert result.call_instances == [
            25, 28, 36, 45, 48, 63, 65, 81, 94, 122, 129, 133, 139, 146,
        ]

    def test_faulted_profile_unchanged(self, traced_runs):
        result, _ = traced_runs["faulted"]
        assert result.profile.counters == {
            "dls.tasks_placed": 640,
            "executor.faulted_instances": 30,
            "executor.instances": 150,
            "fault.escalations": 13,
            "fault.injected": 30,
            "fault.threatened": 12,
            "path_cache.hit": 14,
            "path_cache.miss": 2,
            "paths.enumerated": 1364,
            "prob_cache.hit": 10,
            "prob_cache.miss": 6,
            "reschedule.calls": 15,
            "reschedule.emergency": 1,
        }
        assert result.total_energy == pytest.approx(5455.128994, abs=1e-5)
        assert result.deadline_misses == 1

    def test_traced_equals_untraced(self, mpeg_problem, traced_runs):
        ctg, platform, test, probabilities = mpeg_problem
        plan = fault_plan_catalogue()["overrun"]
        plain = run_faulted(
            ctg, platform, test, probabilities, plan,
            config=AdaptiveConfig(window_size=20, threshold=0.1),
        )
        traced, _ = traced_runs["faulted"]
        assert plain.profile.counters == traced.profile.counters
        assert plain.profile.calls == traced.profile.calls
        assert plain.energies == traced.energies
        assert plain.call_instances == traced.call_instances


class TestTraceContents:
    """The ISSUE's acceptance shape: spans per task instance, one span
    per ``schedule_online`` invocation, events per re-schedule/fault."""

    def test_one_stage_span_per_online_invocation(self, traced_runs):
        for key in ("non_adaptive", "adaptive", "faulted"):
            result, tracer = traced_runs[key]
            assert tracer.span_counts()["stage:online"] == result.profile.calls["online"]

    def test_task_spans_cover_every_instance(self, traced_runs):
        result, tracer = traced_runs["adaptive"]
        task_spans = [s for s in tracer.spans if s.category == "sim.task"]
        assert len(task_spans) >= len(result.energies)
        assert all(s.track.startswith("pe:") for s in task_spans)
        assert all("speed" in s.attrs for s in task_spans)

    def test_sim_offset_spreads_instances_over_periods(self, mpeg_problem, traced_runs):
        ctg, _, test, _ = mpeg_problem
        _, tracer = traced_runs["non_adaptive"]
        starts = [s.start for s in tracer.spans if s.category == "sim.task"]
        assert max(starts) > ctg.deadline * (len(test) - 1) * 0.99

    def test_reschedule_events_match_calls(self, traced_runs):
        result, tracer = traced_runs["adaptive"]
        assert tracer.event_counts()["sim.reschedule"] == result.reschedule_calls
        assert tracer.event_counts()["reschedule.invoked"] == result.reschedule_calls

    def test_fault_events_match_injected_faults(self, traced_runs):
        result, tracer = traced_runs["faulted"]
        counts = tracer.event_counts()
        assert counts["sim.fault"] == result.profile.counters["fault.injected"]
        assert counts["sim.escalation"] == result.profile.counters["fault.escalations"]
        recovered = counts.get("sim.recovered", 0)
        unrecovered = counts.get("sim.unrecovered", 0)
        assert recovered + unrecovered == result.profile.counters["fault.threatened"]
