"""Flow-rule engine: one tripping snippet + one clean twin per code.

Mirrors the mutation style of ``test_check_mutations.py``: every
DET/NUM/ENG code gets a minimal fixture that trips it and a minimally
different twin that stays clean, so a rule can neither silently die
nor grow a blanket false positive.  The three reconstructed historical
bugs (PR 4 ``scenario_energy`` set iteration, PR 6 numpy-intp shift,
PR 4 ``ctg.deadline`` mutation) anchor the families to the failures
they encode.
"""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.callgraph import build_callgraph, parse_module_source
from repro.check.flow import analyze_modules, analyze_source


def codes(source: str) -> list:
    return [d.code for d in analyze_source(source)]


#: Wrapper making the body reachable from a canonical producer.
CANONICAL = "def canonical_json(x):\n    return probe(x)\n\n"


class TestDET201SetIteration:
    def test_for_loop_over_set(self):
        src = CANONICAL + (
            "def probe(xs):\n"
            "    total = 0.0\n"
            "    for x in set(xs):\n"
            "        total += x\n"
            "    return total\n"
        )
        assert "DET201" in codes(src)

    def test_sorted_iteration_is_clean(self):
        src = CANONICAL + (
            "def probe(xs):\n"
            "    total = 0.0\n"
            "    for x in sorted(set(xs)):\n"
            "        total += x\n"
            "    return total\n"
        )
        assert "DET201" not in codes(src)

    def test_unreachable_function_not_flagged(self):
        src = (
            "def probe(xs):\n"
            "    out = []\n"
            "    for x in set(xs):\n"
            "        out.append(x)\n"
            "    return out\n"
        )
        assert "DET201" not in codes(src)

    def test_list_of_set_flagged(self):
        src = CANONICAL + "def probe(xs):\n    return list(set(xs))\n"
        assert "DET201" in codes(src)

    def test_join_over_set_flagged(self):
        src = CANONICAL + "def probe(xs):\n    return ','.join(set(xs))\n"
        assert "DET201" in codes(src)

    def test_comprehension_over_set_flagged(self):
        src = CANONICAL + "def probe(xs):\n    return [x for x in set(xs)]\n"
        assert "DET201" in codes(src)

    def test_set_comprehension_result_is_clean(self):
        src = CANONICAL + "def probe(xs):\n    return {x for x in set(xs)}\n"
        assert "DET201" not in codes(src)

    def test_annotated_set_attribute_flagged(self):
        src = CANONICAL + (
            "from typing import FrozenSet\n"
            "class Scenario:\n"
            "    active: FrozenSet[str]\n"
            "def probe(scenario):\n"
            "    return list(scenario.active)\n"
        )
        assert "DET201" in codes(src)

    def test_inline_suppression(self):
        src = CANONICAL + (
            "def probe(xs):\n"
            "    return list(set(xs))  # lint: ignore[DET201]\n"
        )
        assert "DET201" not in codes(src)

    def test_pr4_scenario_energy_reconstruction(self):
        """The shipped bug: float sum over a frozenset attribute."""
        src = (
            "from typing import FrozenSet\n"
            "from dataclasses import dataclass\n"
            "@dataclass(frozen=True)\n"
            "class Scenario:\n"
            "    active: FrozenSet[str]\n"
            "def scenario_energy(scenario, energies):\n"
            "    total = 0.0\n"
            "    for name in scenario.active:\n"
            "        total += energies[name]\n"
            "    return total\n"
            "def canonical_json(scenario, energies):\n"
            "    return scenario_energy(scenario, energies)\n"
        )
        findings = analyze_source(src)
        assert [d.code for d in findings] == ["DET201"]
        assert findings[0].symbol.endswith(":scenario_energy")

    def test_pr4_fixed_version_is_clean(self):
        src = (
            "from typing import FrozenSet\n"
            "def scenario_energy(scenario, energies):\n"
            "    total = 0.0\n"
            "    for name in sorted(scenario.active):\n"
            "        total += energies[name]\n"
            "    return total\n"
            "def canonical_json(scenario, energies):\n"
            "    return scenario_energy(scenario, energies)\n"
        )
        assert codes(src) == []


class TestDET202ClockFlow:
    def test_returned_clock_difference(self):
        src = CANONICAL + (
            "import time\n"
            "def probe(x):\n"
            "    t0 = time.perf_counter()\n"
            "    work(x)\n"
            "    return time.perf_counter() - t0\n"
        )
        assert "DET202" in codes(src)

    def test_timing_key_is_exempt(self):
        src = CANONICAL + (
            "import time\n"
            "def probe(x):\n"
            "    t0 = time.perf_counter()\n"
            "    values = work(x)\n"
            "    elapsed = time.perf_counter() - t0\n"
            "    return {'values': values, 'timing': {'elapsed': elapsed}}\n"
        )
        assert "DET202" not in codes(src)

    def test_clock_under_other_key_flagged(self):
        src = CANONICAL + (
            "import time\n"
            "def probe(x):\n"
            "    return {'values': time.perf_counter()}\n"
        )
        assert "DET202" in codes(src)

    def test_unreachable_clock_is_clean(self):
        src = (
            "import time\n"
            "def stopwatch():\n"
            "    return time.perf_counter()\n"
        )
        assert "DET202" not in codes(src)

    def test_datetime_now_flagged(self):
        src = CANONICAL + (
            "import datetime\n"
            "def probe(x):\n"
            "    return datetime.datetime.now()\n"
        )
        assert "DET202" in codes(src)


class TestDET203UnseededRandom:
    def test_global_random_call(self):
        src = "import random\ndef f():\n    return random.random()\n"
        assert "DET203" in codes(src)

    def test_from_import_shuffle(self):
        src = "from random import shuffle\ndef f(xs):\n    shuffle(xs)\n"
        assert "DET203" in codes(src)

    def test_legacy_np_random(self):
        src = "import numpy as np\ndef f():\n    return np.random.rand(3)\n"
        assert "DET203" in codes(src)

    def test_seeded_instance_is_clean(self):
        src = (
            "import random\n"
            "def f(seed):\n"
            "    rng = random.Random(seed)\n"
            "    return rng.random()\n"
        )
        assert "DET203" not in codes(src)

    def test_default_rng_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(seed):\n"
            "    return np.random.default_rng(seed).random()\n"
        )
        assert "DET203" not in codes(src)


class TestDET204UnsortedListing:
    def test_bare_listdir(self):
        src = "import os\ndef f(d):\n    return [p for p in os.listdir(d)]\n"
        assert "DET204" in codes(src)

    def test_sorted_listdir_is_clean(self):
        src = "import os\ndef f(d):\n    return sorted(os.listdir(d))\n"
        assert "DET204" not in codes(src)

    def test_path_iterdir(self):
        src = "def f(path):\n    return list(path.iterdir())\n"
        assert "DET204" in codes(src)

    def test_sorted_glob_is_clean(self):
        src = "def f(path):\n    return sorted(path.glob('*.json'))\n"
        assert "DET204" not in codes(src)

    def test_set_of_listing_is_clean(self):
        src = "import os\ndef f(d):\n    return set(os.listdir(d))\n"
        assert "DET204" not in codes(src)


class TestNUM301NumpyShift:
    def test_pr6_intp_shift_reconstruction(self):
        """The shipped bug: ``1 << i`` with ``i`` a flatnonzero index."""
        src = (
            "import numpy as np\n"
            "def scenario_mask(active):\n"
            "    mask = 0\n"
            "    for i in np.flatnonzero(active):\n"
            "        mask |= 1 << i\n"
            "    return mask\n"
        )
        assert "NUM301" in codes(src)

    def test_pr6_fixed_version_is_clean(self):
        src = (
            "import numpy as np\n"
            "def scenario_mask(active):\n"
            "    mask = 0\n"
            "    for i in np.flatnonzero(active):\n"
            "        mask |= 1 << int(i)\n"
            "    return mask\n"
        )
        assert "NUM301" not in codes(src)

    def test_array_element_shift(self):
        src = (
            "import numpy as np\n"
            "def f(idx):\n"
            "    arr = np.arange(4)\n"
            "    return 1 << arr[0]\n"
        )
        assert "NUM301" in codes(src)

    def test_ndarray_annotation_taints_param(self):
        src = (
            "import numpy as np\n"
            "def f(arr: np.ndarray):\n"
            "    return 1 << arr[2]\n"
        )
        assert "NUM301" in codes(src)

    def test_plain_int_shift_is_clean(self):
        src = "def f(n):\n    return 1 << n\n"
        assert "NUM301" not in codes(src)

    def test_augmented_shift(self):
        src = (
            "import numpy as np\n"
            "def f(xs):\n"
            "    mask = 1\n"
            "    for i in np.nonzero(xs)[0]:\n"
            "        mask <<= i\n"
            "    return mask\n"
        )
        assert "NUM301" in codes(src)


class TestNUM302FloatArrayEquality:
    def test_float_array_eq(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    a = np.zeros(n)\n"
            "    b = np.ones(n)\n"
            "    return a == b\n"
        )
        assert "NUM302" in codes(src)

    def test_int_array_eq_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    a = np.zeros(n, dtype=int)\n"
            "    b = np.zeros(n, dtype=int)\n"
            "    return a == b\n"
        )
        assert "NUM302" not in codes(src)

    def test_isclose_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    a = np.zeros(n)\n"
            "    b = np.ones(n)\n"
            "    return np.isclose(a, b)\n"
        )
        assert "NUM302" not in codes(src)

    def test_division_result_eq_flagged(self):
        src = (
            "import numpy as np\n"
            "def f(a: np.ndarray, b: np.ndarray):\n"
            "    ratio = a / b\n"
            "    return ratio != 1\n"
        )
        assert "NUM302" in codes(src)


class TestNUM303UnpinnedAccumulator:
    def test_accumulation_without_dtype(self):
        src = (
            "import numpy as np\n"
            "def f(n, xs):\n"
            "    acc = np.zeros(n)\n"
            "    for x in xs:\n"
            "        acc += x\n"
            "    return acc\n"
        )
        assert "NUM303" in codes(src)

    def test_pinned_dtype_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(n, xs):\n"
            "    acc = np.zeros(n, dtype=float)\n"
            "    for x in xs:\n"
            "        acc += x\n"
            "    return acc\n"
        )
        assert "NUM303" not in codes(src)

    def test_no_accumulation_is_clean(self):
        src = (
            "import numpy as np\n"
            "def f(n):\n"
            "    scratch = np.zeros(n)\n"
            "    return scratch\n"
        )
        assert "NUM303" not in codes(src)

    def test_finding_points_at_the_allocation(self):
        src = (
            "import numpy as np\n"
            "def f(n, xs):\n"
            "    acc = np.zeros(n)\n"
            "    acc += xs\n"
            "    return acc\n"
        )
        (finding,) = [d for d in analyze_source(src) if d.code == "NUM303"]
        assert finding.subject.endswith(":3:11")


class TestENG401Registration:
    def test_lambda_cell(self):
        src = "SPEC = ExperimentSpec(name='x', cell_function=lambda p: p)\n"
        assert "ENG401" in codes(src)

    def test_nested_function_cell(self):
        src = (
            "def build():\n"
            "    def cell(p):\n"
            "        return p\n"
            "    return ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG401" in codes(src)

    def test_module_level_cell_is_clean(self):
        src = (
            "def cell(p):\n"
            "    return p\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG401" not in codes(src)

    def test_lambda_reducer_flagged_too(self):
        src = (
            "def cell(p):\n"
            "    return p\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell,\n"
            "                      reducer=lambda rows: rows)\n"
        )
        assert "ENG401" in codes(src)


class TestENG402GlobalWrites:
    def test_global_statement_write(self):
        src = (
            "COUNTER = {}\n"
            "def cell(p):\n"
            "    global COUNTER\n"
            "    COUNTER = {}\n"
            "    return p\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG402" in codes(src)

    def test_mutable_global_subscript_write(self):
        src = (
            "CACHE = {}\n"
            "def cell(p):\n"
            "    CACHE[p] = 1\n"
            "    return p\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG402" in codes(src)

    def test_mutable_global_method_call(self):
        src = (
            "SEEN = []\n"
            "def cell(p):\n"
            "    SEEN.append(p)\n"
            "    return p\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG402" in codes(src)

    def test_reading_global_is_clean(self):
        src = (
            "TABLE = {'a': 1}\n"
            "def cell(p):\n"
            "    return TABLE.get(p)\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG402" not in codes(src)

    def test_non_cell_function_may_write_globals(self):
        src = (
            "REGISTRY = {}\n"
            "def register(name, value):\n"
            "    REGISTRY[name] = value\n"
        )
        assert "ENG402" not in codes(src)


class TestENG403ArgumentMutation:
    def test_pr4_deadline_mutation_reconstruction(self):
        """The shipped bug: a cell scaling ``ctg.deadline`` in place."""
        src = (
            "def stretch_cell(ctg, factor):\n"
            "    ctg.deadline = ctg.deadline * factor\n"
            "    return run(ctg)\n"
            "SPEC = ExperimentSpec(name='x', cell_function=stretch_cell)\n"
        )
        findings = analyze_source(src)
        assert "ENG403" in [d.code for d in findings]

    def test_pr4_fixed_version_is_clean(self):
        src = (
            "import dataclasses\n"
            "def stretch_cell(ctg, factor):\n"
            "    ctg = dataclasses.replace(ctg, deadline=ctg.deadline * factor)\n"
            "    return run(ctg)\n"
            "SPEC = ExperimentSpec(name='x', cell_function=stretch_cell)\n"
        )
        assert "ENG403" not in codes(src)

    def test_mutating_method_on_param(self):
        src = (
            "def cell(rows):\n"
            "    rows.append(1)\n"
            "    return rows\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG403" in codes(src)

    def test_param_rebinding_clears_the_rule(self):
        src = (
            "def cell(params):\n"
            "    params = dict(params)\n"
            "    params['extra'] = 1\n"
            "    return params\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG403" not in codes(src)

    def test_subscript_write_to_param(self):
        src = (
            "def cell(params):\n"
            "    params['mode'] = 'hot'\n"
            "    return params\n"
            "SPEC = ExperimentSpec(name='x', cell_function=cell)\n"
        )
        assert "ENG403" in codes(src)

    def test_non_cell_function_may_mutate(self):
        src = "def helper(rows):\n    rows.append(1)\n"
        assert "ENG403" not in codes(src)


class TestFindingShape:
    def test_subject_and_symbol(self):
        src = CANONICAL + "def probe(xs):\n    return list(set(xs))\n"
        (finding,) = analyze_source(src, filename="mod.py", module="mod")
        assert finding.code == "DET201"
        assert finding.subject.startswith("mod.py:")
        assert finding.subject.count(":") == 2
        assert finding.symbol == "mod:probe"

    def test_findings_sorted_by_location(self):
        src = CANONICAL + (
            "import os\n"
            "def probe(xs, d):\n"
            "    a = list(set(xs))\n"
            "    b = os.listdir(d)\n"
            "    return a + b\n"
        )
        findings = analyze_source(src)
        keys = [(d.subject, d.code) for d in findings]
        assert keys == sorted(keys)


@settings(max_examples=20, deadline=None)
@given(order=st.permutations(["alpha", "beta", "gamma"]))
def test_rule_output_is_byte_stable_across_module_orderings(order):
    """Rule output serialises identically however modules are supplied."""
    sources = {
        "alpha": "import os\ndef f(d):\n    return list(os.listdir(d))\n",
        "beta": (
            "def canonical_json(xs):\n"
            "    return list(set(xs))\n"
        ),
        "gamma": "import random\ndef g():\n    return random.random()\n",
    }
    def run(names):
        modules = {
            name: parse_module_source(name, f"{name}.py", sources[name])
            for name in names
        }
        graph = build_callgraph(modules)
        return json.dumps(
            [d.to_dict() for d in analyze_modules(modules, graph)],
            sort_keys=True,
        )

    assert run(list(order)) == run(sorted(sources))
