"""Call-graph construction: resolution, roots, reachability, caching."""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check.callgraph import (
    MODULE_SCOPE,
    CallGraph,
    build_callgraph,
    load_or_build_callgraph,
    module_name_for,
    parse_module_source,
    parse_modules,
    sources_fingerprint,
)

SRC = Path(__file__).resolve().parents[1] / "src"


def graph_of(sources: dict) -> CallGraph:
    modules = {
        name: parse_module_source(name, f"{name.replace('.', '/')}.py", text)
        for name, text in sources.items()
    }
    return build_callgraph(modules)


class TestResolution:
    def test_same_module_call_edge(self):
        graph = graph_of({"m": "def helper():\n    pass\n\ndef top():\n    helper()\n"})
        assert "m:helper" in graph.edges["m:top"]

    def test_from_import_edge(self):
        graph = graph_of(
            {
                "a": "def f():\n    pass\n",
                "b": "from a import f\n\ndef g():\n    f()\n",
            }
        )
        assert graph.edges["b:g"] == ("a:f",)

    def test_import_alias_attribute_edge(self):
        graph = graph_of(
            {
                "pkg.util": "def f():\n    pass\n",
                "c": "import pkg.util as u\n\ndef g():\n    u.f()\n",
            }
        )
        assert graph.edges["c:g"] == ("pkg.util:f",)

    def test_method_call_links_every_same_named_function(self):
        graph = graph_of(
            {
                "x": "class A:\n    def run(self):\n        pass\n",
                "y": "class B:\n    def run(self):\n        pass\n",
                "z": "def go(obj):\n    obj.run()\n",
            }
        )
        assert set(graph.edges["z:go"]) == {"x:A.run", "y:B.run"}

    def test_bare_reference_counts_as_edge(self):
        graph = graph_of(
            {"m": "def cb():\n    pass\n\ndef reg():\n    handlers = [cb]\n"}
        )
        assert "m:cb" in graph.edges["m:reg"]

    def test_nested_function_linked_from_encloser(self):
        graph = graph_of(
            {"m": "def outer():\n    def inner():\n        pass\n    return 1\n"}
        )
        assert "m:outer.inner" in graph.edges["m:outer"]

    def test_module_scope_edges(self):
        graph = graph_of({"m": "def f():\n    pass\n\nVALUE = f()\n"})
        assert "m:f" in graph.edges[f"m:{MODULE_SCOPE}"]

    def test_relative_import_resolves(self):
        graph = graph_of(
            {
                "pkg.io": "def canon():\n    pass\n",
                "pkg.core": "from .io import canon\n\ndef g():\n    canon()\n",
            }
        )
        # relative import: pkg.core is a module (not a package), one level up
        assert graph.edges["pkg.core:g"] == ("pkg.io:canon",)


class TestRootsAndReachability:
    def test_canonical_producer_is_a_root(self):
        graph = graph_of(
            {
                "m": (
                    "def leaf():\n    pass\n\n"
                    "def canonical_json(x):\n    leaf()\n\n"
                    "def unrelated():\n    pass\n"
                )
            }
        )
        assert "m:canonical_json" in graph.roots()
        reach = graph.reachable()
        assert "m:leaf" in reach
        assert "m:unrelated" not in reach

    def test_cell_registration_is_a_root(self):
        graph = graph_of(
            {
                "m": (
                    "def my_cell(params):\n    return params\n\n"
                    "SPEC = ExperimentSpec(name='x', cell_function=my_cell)\n"
                )
            }
        )
        assert graph.cell_functions() == ("m:my_cell",)
        assert "m:my_cell" in graph.roots()

    def test_lambda_registration_recorded_without_qualname(self):
        graph = graph_of(
            {"m": "SPEC = ExperimentSpec(name='x', cell_function=lambda p: p)\n"}
        )
        (registration,) = graph.registrations
        assert registration.kind == "lambda"
        assert registration.qualname is None

    def test_set_annotation_collected(self):
        graph = graph_of(
            {
                "m": (
                    "from typing import FrozenSet\n\n"
                    "class S:\n    active: FrozenSet[str]\n"
                )
            }
        )
        assert "active" in graph.set_attrs


class TestSerialisation:
    def test_payload_round_trip(self):
        graph = graph_of(
            {
                "a": "def f():\n    pass\n",
                "b": "from a import f\n\ndef g():\n    f()\n",
            }
        )
        clone = CallGraph.from_payload(graph.to_payload())
        assert clone.to_payload() == graph.to_payload()
        assert clone.reachable(["b:g"]) == graph.reachable(["b:g"])

    def test_payload_is_json_stable(self):
        graph = graph_of({"m": "def f():\n    pass\n"})
        first = json.dumps(graph.to_payload(), sort_keys=True)
        second = json.dumps(graph.to_payload(), sort_keys=True)
        assert first == second


class TestDiskCache:
    def test_cache_round_trip(self, tmp_path):
        src_root = tmp_path / "src"
        (src_root / "pkg").mkdir(parents=True)
        file = src_root / "pkg" / "m.py"
        file.write_text("def f():\n    pass\n\ndef g():\n    f()\n")
        cache = tmp_path / "cache"
        first = load_or_build_callgraph([file], src_root, cache_dir=cache)
        assert list(cache.glob("callgraph-*.json"))
        second = load_or_build_callgraph([file], src_root, cache_dir=cache)
        assert second.to_payload() == first.to_payload()

    def test_cache_invalidated_on_edit(self, tmp_path):
        src_root = tmp_path / "src"
        src_root.mkdir()
        file = src_root / "m.py"
        file.write_text("def f():\n    pass\n")
        cache = tmp_path / "cache"
        load_or_build_callgraph([file], src_root, cache_dir=cache)
        file.write_text("def f():\n    pass\n\ndef h():\n    f()\n")
        graph = load_or_build_callgraph([file], src_root, cache_dir=cache)
        assert "m:h" in graph.functions

    def test_corrupt_cache_entry_is_rebuilt(self, tmp_path):
        src_root = tmp_path / "src"
        src_root.mkdir()
        file = src_root / "m.py"
        file.write_text("def f():\n    pass\n")
        cache = tmp_path / "cache"
        cache.mkdir()
        fingerprint = sources_fingerprint([file], src_root)
        (cache / f"callgraph-{fingerprint[:32]}.json").write_text("{broken")
        graph = load_or_build_callgraph([file], src_root, cache_dir=cache)
        assert "m:f" in graph.functions

    def test_fingerprint_is_order_independent(self, tmp_path):
        src_root = tmp_path / "src"
        src_root.mkdir()
        a = src_root / "a.py"
        b = src_root / "b.py"
        a.write_text("A = 1\n")
        b.write_text("B = 2\n")
        assert sources_fingerprint([a, b], src_root) == sources_fingerprint(
            [b, a], src_root
        )


class TestRepoTree:
    def repo_graph(self):
        files = sorted((SRC / "repro").rglob("*.py"))
        return build_callgraph(parse_modules(files, SRC))

    def test_repo_graph_has_expected_roots(self):
        graph = self.repo_graph()
        roots = graph.roots()
        assert "repro.io:canonical_json" in roots
        assert any(q.endswith(":runtime_cell") for q in roots)

    def test_scenario_energy_is_reachable(self):
        # the PR 4 bug site must be covered by the canonical reach set
        graph = self.repo_graph()
        assert (
            "repro.scheduling.schedule:Schedule.scenario_energy"
            in graph.reachable()
        )

    def test_module_names(self):
        assert (
            module_name_for(SRC / "repro" / "check" / "__init__.py", SRC)
            == "repro.check"
        )
        assert module_name_for(SRC / "repro" / "io.py", SRC) == "repro.io"


@settings(max_examples=25, deadline=None)
@given(order=st.permutations(list(range(4))))
def test_construction_is_byte_stable_across_file_orderings(tmp_path_factory, order):
    """Same sources, any discovery order → identical serialised graph."""
    tmp_path = tmp_path_factory.mktemp("cg")
    src_root = tmp_path / "src"
    src_root.mkdir()
    sources = {
        "a.py": "def f():\n    pass\n",
        "b.py": "from a import f\n\ndef g():\n    f()\n",
        "c.py": "import a\n\ndef h():\n    a.f()\n",
        "d.py": "def canonical_json(x):\n    from b import g\n    g()\n",
    }
    files = []
    for name, text in sources.items():
        path = src_root / name
        path.write_text(text)
        files.append(path)
    shuffled = [files[i] for i in order]
    baseline = build_callgraph(parse_modules(files, src_root))
    permuted = build_callgraph(parse_modules(shuffled, src_root))
    assert json.dumps(permuted.to_payload(), sort_keys=True) == json.dumps(
        baseline.to_payload(), sort_keys=True
    )
