"""Faulted replay and graceful degradation: executor dual arms, the
faulted trace runner, and the replay-determinism / escalation-
monotonicity properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import AdaptiveConfig
from repro.ctg import GeneratorConfig, generate_ctg
from repro.ctg.examples import two_sided_branch_ctg
from repro.faults import DegradationPolicy, FaultInjector, FaultPlan, InjectorSpec
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.sim import InstanceExecutor, run_adaptive, run_faulted


def heavy_light_setup(factor=1.6):
    ctg = two_sided_branch_ctg()
    platform = Platform(
        [ProcessingElement("pe0", min_speed=0.2), ProcessingElement("pe1", min_speed=0.2)]
    )
    platform.connect_all(bandwidth=2.0, energy_per_kbyte=0.05)
    weights = {"entry": 5, "fork": 5, "heavy": 40, "light": 10, "join": 5}
    for task, wcet in weights.items():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=float(wcet))
    set_deadline_from_makespan(ctg, platform, factor)
    return ctg, platform


def mixed_trace(length):
    return [{"fork": "h" if i % 3 else "l"} for i in range(length)]


UNIFORM = {"fork": {"h": 0.5, "l": 0.5}}


class TestExecutorFaulted:
    def executor(self):
        ctg, platform = heavy_light_setup()
        schedule = schedule_online(ctg, platform, UNIFORM).schedule
        return InstanceExecutor(schedule), ctg

    def test_control_plane_faults_match_plain_run(self):
        executor, _ctg = self.executor()
        ctg, platform = heavy_light_setup()
        plan = FaultPlan("drops", 1, (InjectorSpec("reschedule_drop", 1.0),))
        faults = FaultInjector(plan, ctg=ctg, platform=platform).faults_at(0)
        plain = executor.run({"fork": "h"})
        faulted = executor.run_faulted({"fork": "h"}, faults)
        assert faulted.energy == plain.energy
        assert faulted.finish_time == plain.finish_time
        assert faulted.baseline_finish_time == plain.finish_time
        assert faulted.baseline_deadline_met == plain.deadline_met

    def overrun_faults(self, magnitude, task="heavy"):
        ctg, platform = heavy_light_setup()
        plan = FaultPlan(
            "big", 1, (InjectorSpec("task_overrun", 1.0, magnitude, targets=(task,)),)
        )
        return FaultInjector(plan, ctg=ctg, platform=platform).faults_at(0)

    def test_overrun_slows_and_costs_energy(self):
        executor, _ = self.executor()
        plain = executor.run({"fork": "h"})
        faulted = executor.run_faulted(
            {"fork": "h"}, self.overrun_faults(1.5), DegradationPolicy.none()
        )
        assert faulted.baseline_finish_time > plain.finish_time
        assert faulted.baseline_energy > plain.energy

    def test_watchdog_escalates_and_recovers(self):
        executor, ctg = self.executor()
        faults = self.overrun_faults(2.0)
        unmanaged = executor.run_faulted(
            {"fork": "h"}, faults, DegradationPolicy.none()
        )
        managed = executor.run_faulted(
            {"fork": "h"}, faults, DegradationPolicy.default()
        )
        # baseline arms agree: same faults, same schedule
        assert managed.baseline_finish_time == unmanaged.baseline_finish_time
        assert not unmanaged.overrun_detected  # policy off: no detection
        assert managed.overrun_detected
        assert managed.escalated
        assert managed.finish_time < managed.baseline_finish_time
        # recovery is not free
        assert managed.energy > unmanaged.baseline_energy

    def test_pe_freeze_delays_starts(self):
        executor, ctg = self.executor()
        ctg2, platform = heavy_light_setup()
        plan = FaultPlan("ice", 1, (InjectorSpec("pe_freeze", 1.0, 0.4),))
        faults = FaultInjector(plan, ctg=ctg2, platform=platform).faults_at(0)
        plain = executor.run({"fork": "h"})
        frozen = executor.run_faulted({"fork": "h"}, faults, DegradationPolicy.none())
        assert frozen.baseline_finish_time >= plain.finish_time
        frozen_pe = next(iter(faults.pe_freezes))
        floor = faults.pe_freezes[frozen_pe] * ctg.deadline
        for task, start in frozen.start_times.items():
            if executor.schedule.pe_of(task) == frozen_pe:
                assert start >= floor - 1e-9


def drop_plan(seed=21):
    return FaultPlan(
        "dropper",
        seed,
        (
            InjectorSpec("task_overrun", 0.3, 1.8),
            InjectorSpec("reschedule_drop", 0.5),
        ),
    )


class TestRunFaulted:
    def run(self, plan, policy=None, length=60, config=None):
        ctg, platform = heavy_light_setup()
        return run_faulted(
            ctg,
            platform,
            mixed_trace(length),
            UNIFORM,
            plan,
            policy=policy,
            config=config or AdaptiveConfig(window_size=10, threshold=0.3),
        )

    def test_replay_is_deterministic(self):
        first = self.run(drop_plan())
        second = self.run(drop_plan())
        assert first.fault_log == second.fault_log
        assert first.energies == second.energies
        assert first.call_instances == second.call_instances

    def test_empty_plan_matches_run_adaptive(self):
        ctg, platform = heavy_light_setup()
        config = AdaptiveConfig(window_size=10, threshold=0.3)
        trace = mixed_trace(60)
        plain = run_adaptive(ctg, platform, trace, UNIFORM, config)
        faulted = self.run(FaultPlan("empty", 1), length=60)
        assert faulted.fault_log.fault_count == 0
        assert faulted.energies == plain.energies
        assert faulted.call_instances == plain.call_instances

    def test_dropped_invocations_are_counted_and_retried(self):
        result = self.run(drop_plan())
        counters = result.profile.counters
        assert counters.get("reschedule.dropped", 0) > 0
        kinds = result.fault_log.actions_by_kind()
        assert kinds.get("reschedule_retry", 0) > 0

    def test_corrupted_observations_counted(self):
        plan = FaultPlan("liar", 5, (InjectorSpec("branch_corruption", 0.5),))
        result = self.run(plan)
        assert result.profile.counters.get("fault.corrupted_observations", 0) > 0
        assert result.fault_log.events_by_kind() == {
            "branch_corruption": result.fault_log.fault_count
        }

    def test_policy_never_misses_more_than_no_policy(self):
        plan = FaultPlan("hot", 31, (InjectorSpec("task_overrun", 0.4, 2.0),))
        managed = self.run(plan, policy=DegradationPolicy.default())
        unmanaged = self.run(plan, policy=DegradationPolicy.none())
        assert managed.deadline_misses <= unmanaged.deadline_misses
        # injection is policy-independent (the determinism contract) —
        # threat counts may differ because the policies install
        # different schedules as the run unfolds
        assert sorted(managed.fault_log.events) == sorted(unmanaged.fault_log.events)

    def test_threat_accounting_consistent(self):
        log = self.run(drop_plan(), policy=DegradationPolicy.default()).fault_log
        assert log.recovered + log.unrecovered == log.threatened
        kinds = log.actions_by_kind()
        assert kinds.get("recovered", 0) == log.recovered
        assert kinds.get("unrecovered", 0) == log.unrecovered

    def test_deadline_override_leaves_graph_untouched(self):
        ctg, platform = heavy_light_setup()
        original = ctg.deadline
        run_faulted(
            ctg,
            platform,
            mixed_trace(5),
            UNIFORM,
            FaultPlan("empty", 1),
            deadline=original * 2,
        )
        assert ctg.deadline == original


# ----------------------------------------------------------------------
# Property-based invariants
# ----------------------------------------------------------------------

KIND_STRATEGY = st.sampled_from(
    ["task_overrun", "pe_slowdown", "reschedule_drop", "branch_corruption"]
)


def spec_for(kind, rate, magnitude):
    if kind in ("reschedule_drop", "branch_corruption"):
        return InjectorSpec(kind, rate)
    return InjectorSpec(kind, rate, magnitude)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10 ** 6),
    kinds=st.lists(KIND_STRATEGY, min_size=1, max_size=3),
    rate=st.floats(0.05, 0.9),
    magnitude=st.floats(1.1, 2.5),
)
def test_property_seeded_plan_replays_identically(seed, kinds, rate, magnitude):
    """The tentpole determinism contract: the same seeded plan replayed
    twice produces byte-identical fault logs and energies."""
    ctg, platform = heavy_light_setup()
    plan = FaultPlan("p", seed, tuple(spec_for(k, rate, magnitude) for k in kinds))
    config = AdaptiveConfig(window_size=8, threshold=0.3)
    trace = mixed_trace(30)
    first = run_faulted(ctg, platform, trace, UNIFORM, plan, config=config)
    second = run_faulted(ctg, platform, trace, UNIFORM, plan, config=config)
    assert first.fault_log == second.fault_log
    assert first.energies == second.energies
    assert first.fault_log.to_dict() == second.fault_log.to_dict()


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(10, 20),
    branches=st.integers(1, 2),
    pes=st.integers(2, 3),
    seed=st.integers(0, 300),
    fault_seed=st.integers(0, 10 ** 4),
    magnitude=st.floats(1.1, 3.0),
)
def test_property_escalation_never_finishes_later(
    nodes, branches, pes, seed, fault_seed, magnitude
):
    """Max-speed escalation can only raise speeds, so the policy arm
    never finishes later than the same faults left unmanaged."""
    try:
        cfg = GeneratorConfig(
            nodes=nodes, branch_nodes=branches, category=1, seed=seed
        )
        ctg = generate_ctg(cfg)
    except ValueError:
        return
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, 1.5)
    schedule = schedule_online(ctg, platform).schedule
    executor = InstanceExecutor(schedule)
    plan = FaultPlan(
        "stress",
        fault_seed,
        (
            InjectorSpec("task_overrun", 0.7, magnitude),
            InjectorSpec("pe_slowdown", 0.4, 1.0 + (magnitude - 1.0) / 2),
        ),
    )
    injector = FaultInjector(plan, ctg=ctg, platform=platform)
    decisions = {b: ctg.outcomes_of(b)[0] for b in ctg.branch_nodes()}
    for instance in range(8):
        faults = injector.faults_at(instance)
        outcome = executor.run_faulted(decisions, faults, DegradationPolicy.default())
        assert outcome.finish_time <= outcome.baseline_finish_time + 1e-9
        if outcome.baseline_deadline_met and faults.perturbs_timing:
            # the policy arm cannot un-meet a met deadline
            assert outcome.deadline_met
