"""Tests for JSON serialisation (repro.io)."""

import json

import pytest

from repro.ctg import CTGError, figure1_ctg, generate_ctg, GeneratorConfig
from repro.ctg.minterms import enumerate_scenarios
from repro.io import (
    ctg_from_dict,
    ctg_to_dict,
    load_instance,
    platform_from_dict,
    platform_to_dict,
    save_instance,
)
from repro.platform import PlatformConfig, ProcessingElement, Platform, generate_platform
from repro.workloads import drifting_trace


class TestCtgRoundTrip:
    def test_figure1_round_trip(self):
        original = figure1_ctg()
        original.deadline = 42.0
        clone = ctg_from_dict(ctg_to_dict(original))
        assert clone.tasks() == original.tasks()
        assert clone.deadline == 42.0
        assert clone.default_probabilities == original.default_probabilities
        assert clone.kind("t8").value == "or"
        assert clone.edge_data("t3", "t4").condition.label == "a1"
        assert clone.edge_data("t1", "t2").comm_kbytes == 4.0

    def test_scenarios_preserved(self):
        original = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=5))
        clone = ctg_from_dict(ctg_to_dict(original))
        a = {str(s.product) for s in enumerate_scenarios(original)}
        b = {str(s.product) for s in enumerate_scenarios(clone)}
        assert a == b

    def test_pseudo_edges_not_serialised(self):
        ctg = figure1_ctg()
        ctg.add_pseudo_edge("t4", "t5")
        clone = ctg_from_dict(ctg_to_dict(ctg))
        with pytest.raises(CTGError):
            clone.edge_data("t4", "t5")

    def test_json_serialisable(self):
        payload = ctg_to_dict(figure1_ctg())
        json.dumps(payload)  # must not raise

    def test_version_checked(self):
        payload = ctg_to_dict(figure1_ctg())
        payload["version"] = 999
        with pytest.raises(CTGError):
            ctg_from_dict(payload)


class TestPlatformRoundTrip:
    def test_generated_platform_round_trip(self):
        tasks = [f"t{i}" for i in range(6)]
        original = generate_platform(tasks, PlatformConfig(pes=3, seed=9))
        clone = platform_from_dict(platform_to_dict(original))
        assert clone.pe_names == original.pe_names
        for task in tasks:
            for pe in original.pe_names:
                assert clone.wcet(task, pe) == original.wcet(task, pe)
                assert clone.energy(task, pe) == original.energy(task, pe)
        assert clone.comm_time("pe0", "pe1", 4.0) == original.comm_time("pe0", "pe1", 4.0)
        assert clone.dvfs.exponent == original.dvfs.exponent

    def test_speed_levels_preserved(self):
        platform = Platform(
            [ProcessingElement("pe0", min_speed=0.25, speed_levels=(0.25, 0.5, 1.0))]
        )
        platform.set_task_profile("t", "pe0", wcet=1.0, energy=1.0)
        clone = platform_from_dict(platform_to_dict(platform))
        assert clone.pe("pe0").speed_levels == (0.25, 0.5, 1.0)


class TestInstanceBundle:
    def test_save_and_load(self, tmp_path):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=4))
        trace = drifting_trace(ctg, 20, seed=1)
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform, trace)
        ctg2, platform2, trace2 = load_instance(path)
        assert ctg2.tasks() == ctg.tasks()
        assert platform2.pe_names == platform.pe_names
        assert trace2 == [dict(v) for v in trace]

    def test_load_without_trace(self, tmp_path):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=4))
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform)
        _ctg2, _platform2, trace = load_instance(path)
        assert trace is None

    def test_bad_trace_rejected_on_save(self, tmp_path):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=4))
        with pytest.raises(ValueError):
            save_instance(tmp_path / "x.json", ctg, platform, [{"t3": "zz"}])

    def test_loaded_instance_schedulable(self, tmp_path):
        from repro.scheduling import schedule_online, set_deadline_from_makespan

        ctg = generate_ctg(GeneratorConfig(nodes=15, branch_nodes=1, seed=3))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=3))
        path = tmp_path / "inst.json"
        save_instance(path, ctg, platform)
        ctg2, platform2, _ = load_instance(path)
        set_deadline_from_makespan(ctg2, platform2, 1.4)
        result = schedule_online(ctg2, platform2)
        result.schedule.validate()
