"""Integration tests for the trace-driven policy runners."""

import pytest

from repro.adaptive import AdaptiveConfig
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import Platform, ProcessingElement
from repro.scheduling import set_deadline_from_makespan
from repro.sim import (
    RunResult,
    energy_savings,
    run_adaptive,
    run_non_adaptive,
)


def heavy_light_setup():
    ctg = two_sided_branch_ctg()
    platform = Platform([ProcessingElement("pe0", min_speed=0.2), ProcessingElement("pe1", min_speed=0.2)])
    platform.connect_all(bandwidth=2.0, energy_per_kbyte=0.05)
    weights = {"entry": 5, "fork": 5, "heavy": 40, "light": 10, "join": 5}
    for task, wcet in weights.items():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=float(wcet))
    set_deadline_from_makespan(ctg, platform, 1.6)
    return ctg, platform


def regime_trace(first, second, per=50):
    """A trace with two regimes: mostly-`first` then mostly-`second`."""
    trace = []
    for block, label in ((0, first), (1, second)):
        for i in range(per):
            other = "l" if label == "h" else "h"
            trace.append({"fork": label if i % 10 else other})
    return trace


class TestRunResult:
    def test_totals(self):
        result = RunResult(energies=[1.0, 2.0, 3.0])
        assert result.total_energy == pytest.approx(6.0)
        assert result.mean_energy == pytest.approx(2.0)

    def test_empty(self):
        result = RunResult()
        assert result.total_energy == 0.0
        assert result.mean_energy == 0.0


class TestNonAdaptive:
    def test_energy_recorded_per_instance(self):
        ctg, platform = heavy_light_setup()
        trace = regime_trace("h", "l", per=10)
        result = run_non_adaptive(ctg, platform, trace, {"fork": {"h": 0.5, "l": 0.5}})
        assert len(result.energies) == len(trace)
        assert result.reschedule_calls == 0
        assert result.deadline_misses == 0

    def test_heavy_instances_cost_more(self):
        ctg, platform = heavy_light_setup()
        trace = [{"fork": "h"}, {"fork": "l"}]
        result = run_non_adaptive(ctg, platform, trace, {"fork": {"h": 0.5, "l": 0.5}})
        assert result.energies[0] > result.energies[1]

    def test_deadline_override(self):
        ctg, platform = heavy_light_setup()
        trace = [{"fork": "h"}]
        tight = run_non_adaptive(
            ctg, platform, trace, {"fork": {"h": 0.5, "l": 0.5}}, deadline=ctg.deadline
        )
        loose = run_non_adaptive(
            ctg, platform, trace, {"fork": {"h": 0.5, "l": 0.5}}, deadline=ctg.deadline * 2
        )
        assert loose.total_energy <= tight.total_energy

    def test_deadline_override_leaves_graph_untouched(self):
        """Regression: the override used to be threaded straight into
        scheduling while the caller's graph kept its old deadline in
        some paths and was mutated in others; the runner now always
        applies it to a private copy."""
        ctg, platform = heavy_light_setup()
        original = ctg.deadline
        run_non_adaptive(
            ctg,
            platform,
            [{"fork": "h"}],
            {"fork": {"h": 0.5, "l": 0.5}},
            deadline=original * 2,
        )
        assert ctg.deadline == original


class TestAdaptive:
    def test_rescheduling_happens_on_regime_change(self):
        ctg, platform = heavy_light_setup()
        trace = regime_trace("h", "l")
        result = run_adaptive(
            ctg,
            platform,
            trace,
            {"fork": {"h": 0.9, "l": 0.1}},
            AdaptiveConfig(window_size=10, threshold=0.3),
        )
        assert result.reschedule_calls >= 1
        assert result.call_instances
        assert len(result.energies) == len(trace)

    def test_adaptive_beats_badly_profiled_online(self):
        """The Table-4 mechanism: a profile biased to the cheap arm makes
        the static schedule run the heavy arm hot; tracking fixes it."""
        ctg, platform = heavy_light_setup()
        trace = [{"fork": "h"} for _ in range(60)] + [{"fork": "l"} for _ in range(20)]
        bad_profile = {"fork": {"h": 0.1, "l": 0.9}}
        online = run_non_adaptive(ctg, platform, trace, bad_profile)
        adaptive = run_adaptive(
            ctg, platform, trace, bad_profile, AdaptiveConfig(window_size=10, threshold=0.2)
        )
        assert adaptive.total_energy < online.total_energy
        assert energy_savings(online, adaptive) > 0.05

    def test_no_deadline_misses_by_default(self):
        ctg, platform = heavy_light_setup()
        trace = regime_trace("h", "l")
        result = run_adaptive(
            ctg, platform, trace, {"fork": {"h": 0.5, "l": 0.5}},
            AdaptiveConfig(window_size=10, threshold=0.2),
        )
        assert result.deadline_misses == 0

    def test_original_graph_deadline_unchanged_with_override(self):
        ctg, platform = heavy_light_setup()
        original = ctg.deadline
        run_adaptive(
            ctg, platform, [{"fork": "h"}], {"fork": {"h": 0.5, "l": 0.5}},
            AdaptiveConfig(window_size=4, threshold=0.9),
            deadline=original * 2,
        )
        assert ctg.deadline == original


class TestEnergySavings:
    def test_positive_when_adaptive_cheaper(self):
        assert energy_savings(RunResult(energies=[100.0]), RunResult(energies=[80.0])) == pytest.approx(0.2)

    def test_zero_base(self):
        assert energy_savings(RunResult(), RunResult(energies=[1.0])) == 0.0
