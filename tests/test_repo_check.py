"""The repository analysis gate: baseline, CLI, and the repo's own health.

The flagship assertion of this module is ``test_repo_is_clean``: the
full static-analysis stack (AST lint + call-graph flow rules) must
produce **zero unwaived findings** on this repository — the same gate
CI runs via ``python -m repro check --repo``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.check.baseline import (
    BaselineError,
    Waiver,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.check.diagnostics import Diagnostic
from repro.check.repo import analyze_repo
from repro.check.sarif import validate_sarif

ROOT = Path(__file__).resolve().parents[1]


def finding(code="DET201", subject="src/repro/x.py:10:5", symbol="repro.x:f"):
    return Diagnostic(code, "msg", subject=subject, symbol=symbol)


class TestWaiverMatching:
    def test_code_only_waiver_matches_everywhere(self):
        waiver = Waiver(code="DET201", reason="r")
        assert waiver.matches(finding())
        assert waiver.matches(finding(subject="other.py:1:1", symbol="o:g"))

    def test_file_scoped_waiver(self):
        waiver = Waiver(code="DET201", file="src/repro/x.py", reason="r")
        assert waiver.matches(finding())
        assert not waiver.matches(finding(subject="src/repro/y.py:10:5"))

    def test_symbol_scoped_waiver(self):
        waiver = Waiver(code="DET201", symbol="repro.x:f", reason="r")
        assert waiver.matches(finding())
        assert not waiver.matches(finding(symbol="repro.x:g"))

    def test_code_mismatch_never_matches(self):
        waiver = Waiver(code="DET202", file="src/repro/x.py", reason="r")
        assert not waiver.matches(finding())

    def test_apply_baseline_splits_and_tracks_usage(self):
        waivers = [
            Waiver(code="DET201", symbol="repro.x:f", reason="r"),
            Waiver(code="NUM301", reason="never matches"),
        ]
        unwaived, waived, unused = apply_baseline(
            [finding(), finding(code="DET203")], waivers
        )
        assert [d.code for d in unwaived] == ["DET203"]
        assert [d.code for d in waived] == ["DET201"]
        assert unused == [waivers[1]]


class TestBaselineFile:
    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == []

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [finding()], reason="because")
        (waiver,) = load_baseline(path)
        assert waiver.code == "DET201"
        assert waiver.file == "src/repro/x.py"
        assert waiver.symbol == "repro.x:f"
        assert waiver.reason == "because"

    def test_keep_preserves_curated_reasons(self, tmp_path):
        path = tmp_path / "baseline.json"
        curated = Waiver(code="DET201", symbol="repro.x:f", reason="curated")
        written = write_baseline(
            path, [finding(), finding(code="DET203")], reason="TODO", keep=[curated]
        )
        reasons = {w.code: w.reason for w in written}
        assert reasons == {"DET201": "curated", "DET203": "TODO"}

    def test_rejects_unknown_code(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps(
                {"version": 1, "waivers": [{"code": "NOPE1", "reason": "x"}]}
            )
        )
        with pytest.raises(BaselineError, match="NOPE1"):
            load_baseline(path)

    def test_rejects_missing_reason(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "waivers": [{"code": "DET201"}]})
        )
        with pytest.raises(BaselineError, match="reason"):
            load_baseline(path)

    def test_rejects_bad_json(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{nope")
        with pytest.raises(BaselineError, match="JSON"):
            load_baseline(path)


class TestRepoGate:
    def test_repo_is_clean(self):
        """The committed tree passes its own gate with zero unwaived findings."""
        analysis = analyze_repo(ROOT)
        assert analysis.ok, analysis.report.render_text()
        assert not analysis.unused_waivers, [
            w.to_dict() for w in analysis.unused_waivers
        ]

    def test_committed_baseline_is_loadable_and_justified(self):
        waivers = load_baseline(ROOT / "lint-baseline.json")
        assert all(w.reason.strip() for w in waivers)

    def test_analysis_is_deterministic(self):
        first = analyze_repo(ROOT)
        second = analyze_repo(ROOT)
        assert first.report.to_json() == second.report.to_json()
        assert [d.to_dict() for d in first.all_diagnostics] == [
            d.to_dict() for d in second.all_diagnostics
        ]

    def test_graph_cache_gives_identical_analysis(self, tmp_path):
        cached = analyze_repo(ROOT, cache_dir=tmp_path)
        warm = analyze_repo(ROOT, cache_dir=tmp_path)
        fresh = analyze_repo(ROOT)
        assert cached.report.to_json() == fresh.report.to_json()
        assert warm.report.to_json() == fresh.report.to_json()
        assert list(tmp_path.glob("callgraph-*.json"))

    def test_waived_findings_reported_not_gating(self):
        analysis = analyze_repo(ROOT)
        assert all(d.code == "DET202" for d in analysis.waived)


class TestRepoGateOnFixtureTree:
    def make_repo(self, tmp_path, cell_body):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "core.py").write_text(cell_body)
        return tmp_path

    def test_finding_fails_the_gate(self, tmp_path):
        root = self.make_repo(
            tmp_path,
            "def canonical_json(xs):\n    return list(set(xs))\n",
        )
        analysis = analyze_repo(root)
        assert not analysis.ok
        assert analysis.report.codes() == ["DET201"]

    def test_baseline_waives_the_finding(self, tmp_path):
        root = self.make_repo(
            tmp_path,
            "def canonical_json(xs):\n    return list(set(xs))\n",
        )
        (root / "lint-baseline.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "waivers": [
                        {
                            "code": "DET201",
                            "symbol": "repro.core:canonical_json",
                            "reason": "fixture",
                        }
                    ],
                }
            )
        )
        analysis = analyze_repo(root)
        assert analysis.ok
        assert [d.code for d in analysis.waived] == ["DET201"]

    def test_stale_waiver_is_reported_unused(self, tmp_path):
        root = self.make_repo(tmp_path, "def fine():\n    return 1\n")
        (root / "lint-baseline.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "waivers": [{"code": "DET203", "reason": "stale"}],
                }
            )
        )
        analysis = analyze_repo(root)
        assert analysis.ok
        assert [w.code for w in analysis.unused_waivers] == ["DET203"]


class TestCli:
    def test_check_repo_exits_zero_on_this_repo(self, capsys):
        assert main(["check", "--repo", "--root", str(ROOT)]) == 0
        out = capsys.readouterr().out
        assert "check passed" in out

    def test_check_repo_sarif_stdout_validates(self, capsys):
        assert (
            main(["check", "--repo", "--root", str(ROOT), "--format", "sarif"])
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert validate_sarif(payload) == []

    def test_check_repo_sarif_out_file(self, tmp_path, capsys):
        out = tmp_path / "report.sarif"
        assert (
            main(
                [
                    "check",
                    "--repo",
                    "--root",
                    str(ROOT),
                    "--sarif-out",
                    str(out),
                ]
            )
            == 0
        )
        payload = json.loads(out.read_text())
        assert validate_sarif(payload) == []

    def test_check_repo_fails_on_finding(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "bad.py").write_text(
            "import random\ndef f():\n    return random.random()\n"
        )
        assert main(["check", "--repo", "--root", str(tmp_path)]) == 1
        assert "DET203" in capsys.readouterr().out

    def test_check_repo_stale_waiver_fails(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "ok.py").write_text("def f():\n    return 1\n")
        (tmp_path / "lint-baseline.json").write_text(
            json.dumps(
                {"version": 1, "waivers": [{"code": "DET203", "reason": "stale"}]}
            )
        )
        assert main(["check", "--repo", "--root", str(tmp_path)]) == 1
        assert "stale baseline waiver" in capsys.readouterr().err

    def test_update_baseline_writes_and_then_passes(self, tmp_path, capsys):
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "__init__.py").write_text("")
        (src / "bad.py").write_text(
            "import random\ndef f():\n    return random.random()\n"
        )
        assert (
            main(["check", "--repo", "--root", str(tmp_path), "--update-baseline"])
            == 0
        )
        assert (tmp_path / "lint-baseline.json").exists()
        capsys.readouterr()
        assert main(["check", "--repo", "--root", str(tmp_path)]) == 0

    def test_check_without_targets_or_repo_errors(self, capsys):
        assert main(["check"]) == 2
        assert "provide TARGET" in capsys.readouterr().err
