"""Tests for the modal (per-scenario) DVFS extension."""

import pytest

from repro.ctg import GeneratorConfig, enumerate_scenarios, figure1_ctg, generate_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.scheduling.modal import build_modal_table, modal_instance_energy
from repro.sim import execute_instance


def build(seed=5, pes=2, factor=1.5):
    ctg = figure1_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, factor)
    result = schedule_online(ctg, platform)
    return ctg, platform, result.schedule


def decisions_of(scenario, ctg):
    vector = {}
    for branch in ctg.branch_nodes():
        chosen = scenario.product.label_for(branch)
        vector[branch] = chosen if chosen is not None else ctg.outcomes_of(branch)[0]
    return vector


class TestModalTable:
    def test_one_row_per_scenario(self):
        ctg, _platform, schedule = build()
        table = build_modal_table(schedule)
        assert len(table.speeds) == len(table.scenarios) == 3

    def test_rows_cover_active_tasks_only(self):
        ctg, _platform, schedule = build()
        table = build_modal_table(schedule)
        for scenario, row in zip(table.scenarios, table.speeds):
            assert set(row) == set(scenario.active)

    def test_modal_speeds_mostly_deeper_than_single(self):
        """With other scenarios' paths pruned, the per-scenario stretch
        goes deeper for most tasks (not necessarily all: the mixed
        distribution can favour an individual task more than its own
        scenario's slack structure does)."""
        ctg, _platform, schedule = build()
        table = build_modal_table(schedule)
        deeper = total = 0
        for _scenario, row in zip(table.scenarios, table.speeds):
            for task, theta in row.items():
                total += 1
                if theta <= schedule.placement(task).speed + 1e-6:
                    deeper += 1
        assert deeper / total > 0.6

    def test_speed_for_takes_max_over_compatible(self):
        ctg, _platform, schedule = build()
        table = build_modal_table(schedule)
        # before t3 resolves, t1 must use the fastest of all three rows
        all_thetas = [row["t1"] for row in table.speeds]
        assert table.speed_for("t1", {}) == pytest.approx(max(all_thetas))

    def test_original_schedule_untouched(self):
        ctg, _platform, schedule = build()
        before = {t: p.speed for t, p in schedule.placements.items()}
        build_modal_table(schedule)
        after = {t: p.speed for t, p in schedule.placements.items()}
        assert before == after


class TestModalExecution:
    def test_every_scenario_meets_deadline(self):
        ctg, _platform, schedule = build()
        table = build_modal_table(schedule)
        for scenario in enumerate_scenarios(ctg):
            decisions = decisions_of(scenario, ctg)
            _energy, finish, met = modal_instance_energy(schedule, table, decisions)
            assert met, f"{scenario.product}: finish {finish} > {ctg.deadline}"

    def test_modal_beats_single_speed_in_expectation(self):
        """The headline claim of the extension: over the branch
        distribution, per-scenario speeds use the per-scenario slack
        the single compromise speed cannot, lowering expected energy
        (individual scenarios may be slightly worse)."""
        ctg, _platform, schedule = build()
        table = build_modal_table(schedule)
        probs = ctg.default_probabilities
        modal_expected = single_expected = 0.0
        for scenario in enumerate_scenarios(ctg):
            decisions = decisions_of(scenario, ctg)
            modal_e, _f, _m = modal_instance_energy(schedule, table, decisions)
            single_e = execute_instance(schedule, decisions).energy
            weight = scenario.probability(probs)
            modal_expected += weight * modal_e
            single_expected += weight * single_e
        assert modal_expected < single_expected

    @pytest.mark.parametrize("seed", [11, 13])
    def test_random_graphs_feasible(self, seed):
        ctg = generate_ctg(GeneratorConfig(nodes=16, branch_nodes=2, seed=seed))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=seed))
        set_deadline_from_makespan(ctg, platform, 1.4)
        schedule = schedule_online(ctg, platform).schedule
        table = build_modal_table(schedule)
        for scenario in enumerate_scenarios(ctg):
            decisions = decisions_of(scenario, ctg)
            _e, _f, met = modal_instance_energy(schedule, table, decisions)
            assert met


class TestPseudoEdgeSkips:
    """The implied-edge injection must skip narrowly and observably."""

    def test_clean_graph_counts_no_skips(self):
        from repro.profiling import StageProfiler

        _ctg, _platform, schedule = build()
        prof = StageProfiler()
        build_modal_table(schedule, profiler=prof)
        assert prof.counter("modal.pseudo_edge_skips") == 0

    def test_ctg_error_is_counted_not_swallowed_silently(self, monkeypatch):
        from repro.ctg.graph import CTGError, ConditionalTaskGraph
        from repro.profiling import StageProfiler

        _ctg, _platform, schedule = build()

        def refuse(self, src, dst):
            raise CTGError("injected")

        monkeypatch.setattr(ConditionalTaskGraph, "add_pseudo_edge", refuse)
        prof = StageProfiler()
        table = build_modal_table(schedule, profiler=prof)
        assert len(table.speeds) == len(table.scenarios)
        assert prof.counter("modal.pseudo_edge_skips") > 0

    def test_unrelated_errors_propagate(self, monkeypatch):
        """Regression: the handler used to be `except Exception: pass`."""
        from repro.ctg.graph import ConditionalTaskGraph

        _ctg, _platform, schedule = build()

        def explode(self, src, dst):
            raise RuntimeError("not a CTG problem")

        monkeypatch.setattr(ConditionalTaskGraph, "add_pseudo_edge", explode)
        with pytest.raises(RuntimeError, match="not a CTG problem"):
            build_modal_table(schedule)
