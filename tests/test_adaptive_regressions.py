"""Regression tests for the adaptive-loop state-leak fixes.

Three bugs, three locks:

* the shared mutable ``AdaptiveConfig()`` default leaked configuration
  between controllers (and between ``run_adaptive`` calls);
* ``BranchWindow.seed`` silently fabricated a first-label history when
  given an empty or all-zero distribution;
* ``stretch_schedule(prune_zero_probability=True)`` raised the
  misleading "no paths" error when pruning removed *every* path instead
  of falling back to unpruned stretching.
"""

import pytest

from repro.adaptive.controller import AdaptiveConfig, AdaptiveController
from repro.adaptive.window import BranchWindow
from repro.ctg.examples import two_sided_branch_ctg
from repro.profiling import StageProfiler
from repro.scheduling import SchedulingError, dls_schedule, stretch_schedule
from repro.sim.runner import run_adaptive
from repro.workloads.traces import drifting_trace

from .test_stretching_edge_cases import uniform_platform


class TestSharedConfigDefault:
    def _controller(self, config=None):
        ctg = two_sided_branch_ctg()
        ctg.deadline = 60.0
        platform = uniform_platform(ctg, pes=1)
        return AdaptiveController(ctg, platform, ctg.default_probabilities, config)

    def test_each_controller_gets_its_own_config(self):
        first = self._controller()
        second = self._controller()
        assert first.config is not second.config

    def test_mutating_one_default_config_does_not_leak(self):
        first = self._controller()
        first.config.threshold = 0.9
        first.config.window_size = 3
        second = self._controller()
        assert second.config.threshold == AdaptiveConfig().threshold
        assert second.config.window_size == AdaptiveConfig().window_size

    def test_explicit_config_is_used_as_given(self):
        config = AdaptiveConfig(window_size=5, threshold=0.25)
        controller = self._controller(config)
        assert controller.config is config

    def test_run_adaptive_accepts_missing_config(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        trace = drifting_trace(ctg, 10, seed=3)
        result = run_adaptive(
            ctg, platform, trace, ctg.default_probabilities, deadline=60.0
        )
        assert len(result.energies) == 10


class TestWindowSeedValidation:
    def test_all_zero_distribution_raises(self):
        window = BranchWindow("b", ["h", "l"], size=10)
        with pytest.raises(ValueError, match="sums to"):
            window.seed({"h": 0.0, "l": 0.0})

    def test_empty_distribution_raises(self):
        window = BranchWindow("b", ["h", "l"], size=10)
        with pytest.raises(ValueError, match="sums to"):
            window.seed({})

    def test_badly_scaled_distribution_raises(self):
        window = BranchWindow("b", ["h", "l"], size=10)
        with pytest.raises(ValueError, match="sums to"):
            window.seed({"h": 3.0, "l": 1.0})

    def test_negative_probability_raises(self):
        window = BranchWindow("b", ["h", "l"], size=10)
        with pytest.raises(ValueError, match="negative"):
            window.seed({"h": 1.5, "l": -0.5})

    def test_rounding_residue_is_renormalised(self):
        window = BranchWindow("b", ["h", "l"], size=10)
        window.seed({"h": 0.7002, "l": 0.3001})
        assert window.full
        assert window.probability("h") == pytest.approx(0.7)

    def test_failed_seed_does_not_clobber_history(self):
        window = BranchWindow("b", ["h", "l"], size=4)
        for label in ("h", "h", "l", "h"):
            window.push(label)
        with pytest.raises(ValueError):
            window.seed({"h": 0.0, "l": 0.0})
        assert window.probability("h") == pytest.approx(0.75)


class TestAllPathsPrunedFallback:
    def _schedule(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        sched = dls_schedule(ctg, platform, {"fork": {"h": 0.0, "l": 1.0}})
        sched.ctg.deadline = 60.0
        return sched

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_degenerate_probabilities_fall_back_to_unpruned(self, vectorized):
        # Every scenario has probability 0 under this (inconsistent)
        # distribution, so pruning would discard every path; the fixed
        # behaviour stretches over the full path set instead of raising
        # the misleading "no paths" error.
        dead = {"fork": {"h": 0.0, "l": 0.0}}
        sched = self._schedule()
        prof = StageProfiler()
        report = stretch_schedule(
            sched,
            dead,
            prune_zero_probability=True,
            vectorized=vectorized,
            profiler=prof,
        )
        assert report.path_count > 0
        assert prof.counter("stretch.prune_fallback") == 1
        assert sched.meets_deadline()

    @pytest.mark.parametrize("vectorized", [True, False])
    def test_fallback_matches_unpruned_result(self, vectorized):
        dead = {"fork": {"h": 0.0, "l": 0.0}}
        pruned = self._schedule()
        stretch_schedule(
            pruned, dead, prune_zero_probability=True, vectorized=vectorized
        )
        plain = self._schedule()
        stretch_schedule(
            plain, dead, prune_zero_probability=False, vectorized=vectorized
        )
        for task in plain.placements:
            assert pruned.placement(task).speed == pytest.approx(
                plain.placement(task).speed
            )

    def test_partial_pruning_still_prunes(self):
        probs = {"fork": {"h": 0.0, "l": 1.0}}
        sched = self._schedule()
        prof = StageProfiler()
        stretch_schedule(
            sched, probs, prune_zero_probability=True, profiler=prof
        )
        assert prof.counter("stretch.prune_fallback") == 0
        assert sched.placement("heavy").speed == pytest.approx(1.0)
        assert sched.placement("light").speed < 1.0
