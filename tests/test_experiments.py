"""Smoke tests for the experiment harnesses (scaled-down parameters).

The full-size experiments live in ``benchmarks/``; these tests only
check that each harness runs end to end, produces well-formed rows and
renders its table.
"""

import pytest

from repro.experiments import (
    run_figure4,
    run_mpeg_energy,
    run_runtime,
    run_table1,
    run_table3,
    run_window_threshold_sweep,
)
from repro.experiments.table45 import run_bias_experiment


class TestTable1Harness:
    def test_rows_and_format(self):
        result = run_table1()
        assert len(result.rows) == 5
        text = result.format()
        assert "Table 1" in text
        assert all(row.online == 100.0 for row in result.rows)

    def test_runtimes_recorded(self):
        result = run_table1()
        assert all(row.online_runtime > 0 for row in result.rows)
        assert all(row.reference_2_runtime > 0 for row in result.rows)


class TestFigure4Harness:
    def test_series_lengths_match(self):
        result = run_figure4(length=300)
        assert len(result.selections) == 300
        assert len(result.windowed) == 300
        assert len(result.filtered) == 300

    def test_format_mentions_branch(self):
        result = run_figure4(length=200)
        assert "classify" in result.format()

    def test_threshold_controls_updates(self):
        loose = run_figure4(length=500, threshold=0.5)
        tight = run_figure4(length=500, threshold=0.05)
        assert tight.updates >= loose.updates


class TestMpegHarness:
    def test_single_movie_small(self):
        result = run_mpeg_energy(movies=("Airwolf",), length=400)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.online_energy > 0
        assert set(row.adaptive_energy) == {0.5, 0.1}
        assert "Figure 5" in result.format()


class TestTable3Harness:
    def test_small_run(self):
        result = run_table3(length=150)
        assert len(result.rows) == 3
        assert "Table 3" in result.format()
        for row in result.rows:
            assert row.non_adaptive > 0
            assert row.adaptive > 0


class TestBiasHarness:
    def test_modes_validated(self):
        with pytest.raises(ValueError):
            run_bias_experiment("sideways")

    def test_small_ideal_run(self):
        result = run_bias_experiment("ideal", thresholds=(0.5,), trace_length=120)
        assert len(result.rows) == 10
        categories = {row.category for row in result.rows}
        assert categories == {1, 2}
        text = result.format("t", "note")
        assert "Cat1" in text


class TestRuntimeHarness:
    def test_speedups_positive(self):
        result = run_runtime(repeats=1)
        assert len(result.rows) == 5
        assert all(row.speedup > 0 for row in result.rows)
        assert result.mean_speedup > 0


class TestSweepHarness:
    def test_grid_shape(self):
        result = run_window_threshold_sweep(
            movie="Airwolf", windows=(10,), thresholds=(0.5, 0.1), length=300
        )
        assert len(result.rows) == 2
        assert "Ablation" in result.format()


class TestExtensionHarnesses:
    def test_predictor_comparison_small(self):
        from repro.experiments import run_predictor_comparison

        result = run_predictor_comparison(movies=("Airwolf",), length=400)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.window_energy > 0 and row.exponential_energy > 0
        assert "Extension" in result.format()

    def test_overhead_breakeven_small(self):
        from repro.experiments import run_overhead_breakeven

        result = run_overhead_breakeven(movie="Bike", thresholds=(0.5, 0.1), length=400)
        assert len(result.rows) == 2
        assert "break-even" in result.format()

    def test_discrete_dvfs(self):
        from repro.experiments import run_discrete_dvfs

        result = run_discrete_dvfs()
        assert result.rows[0].levels == "continuous"
        assert result.rows[0].penalty_percent == pytest.approx(0.0)
        assert all(row.penalty_percent >= -1e-9 for row in result.rows)

    def test_seed_robustness_small(self):
        from repro.experiments import run_seed_robustness

        result = run_seed_robustness(seeds=(40, 41, 42), length=600)
        assert len(result.savings_percent) == 3
        summary = result.summary()
        assert summary.count == 3
        assert "CI" in result.format()
