"""Tests for the HEFT baseline scheduler."""

import pytest

from repro.ctg import GeneratorConfig, figure1_ctg, generate_ctg
from repro.ctg.examples import diamond_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import (
    heft_mapping,
    heft_schedule,
    heft_with_nlp,
    set_deadline_from_makespan,
    upward_ranks,
)


def uniform_platform(ctg, pes=2, wcet=10.0, bandwidth=1.0):
    platform = Platform([ProcessingElement(f"pe{i}") for i in range(pes)])
    if pes > 1:
        platform.connect_all(bandwidth=bandwidth, energy_per_kbyte=0.1)
    for task in ctg.tasks():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
    return platform


class TestUpwardRanks:
    def test_ranks_decrease_along_edges(self):
        ctg = figure1_ctg()
        platform = uniform_platform(ctg)
        ranks = upward_ranks(ctg, platform)
        for src, dst, _data in ctg.edges(include_pseudo=False):
            assert ranks[src] > ranks[dst]

    def test_sink_rank_is_own_wcet(self):
        ctg = diamond_ctg()
        platform = uniform_platform(ctg)
        ranks = upward_ranks(ctg, platform)
        assert ranks["join"] == pytest.approx(10.0)

    def test_communication_enters_rank(self):
        ctg = diamond_ctg()
        slow_link = uniform_platform(ctg, bandwidth=0.1)
        fast_link = uniform_platform(ctg, bandwidth=100.0)
        assert (
            upward_ranks(ctg, slow_link)["src"]
            > upward_ranks(ctg, fast_link)["src"]
        )


class TestHeftMapping:
    def test_every_task_mapped_to_supporting_pe(self):
        ctg = generate_ctg(GeneratorConfig(nodes=18, branch_nodes=2, seed=3))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=3))
        mapping = heft_mapping(ctg, platform)
        assert set(mapping) == set(ctg.tasks())
        for task, pe in mapping.items():
            assert platform.supports(task, pe)

    def test_expensive_communication_clusters_tasks(self):
        """With near-zero link bandwidth HEFT keeps a chain on one PE."""
        from repro.ctg import ConditionalTaskGraph

        ctg = ConditionalTaskGraph(name="chain")
        prev = None
        for i in range(4):
            ctg.add_task(f"c{i}")
            if prev:
                ctg.add_edge(prev, f"c{i}", comm_kbytes=50.0)
            prev = f"c{i}"
        ctg.validate()
        platform = uniform_platform(ctg, pes=2, bandwidth=0.01)
        mapping = heft_mapping(ctg, platform)
        assert len(set(mapping.values())) == 1


class TestHeftSchedule:
    def test_schedule_valid(self):
        ctg = generate_ctg(GeneratorConfig(nodes=16, branch_nodes=2, seed=5))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=5))
        schedule = heft_schedule(ctg, platform)
        schedule.ctg.deadline = 0.0
        schedule.validate()
        assert set(schedule.placements) == set(ctg.tasks())

    def test_mutex_blind_serialises_arms(self):
        from repro.ctg.examples import two_sided_branch_ctg

        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        schedule = heft_schedule(ctg, platform)
        # worst-case semantics: all 5 tasks serialised
        assert schedule.makespan() == pytest.approx(50.0)

    def test_with_nlp_meets_deadline(self):
        ctg = generate_ctg(GeneratorConfig(nodes=16, branch_nodes=2, seed=7))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=7))
        set_deadline_from_makespan(ctg, platform, 1.5)
        schedule, report = heft_with_nlp(ctg, platform)
        if report.converged:
            assert schedule.meets_deadline(tol=1e-4)

    def test_nominal_fallback_when_deadline_unreachable(self):
        ctg = generate_ctg(GeneratorConfig(nodes=16, branch_nodes=2, seed=7))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=7))
        ctg.deadline = 1e-3  # impossible
        schedule, report = heft_with_nlp(ctg, platform)
        assert not report.converged
        assert all(p.speed == 1.0 for p in schedule.placements.values())
