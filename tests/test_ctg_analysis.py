"""Tests for the cached structural analysis (CtgAnalysis)."""

import pytest

from repro.ctg import (
    CtgAnalysis,
    GeneratorConfig,
    enumerate_scenarios,
    exclusion_table,
    figure1_ctg,
    gamma,
    generate_ctg,
)


class TestCtgAnalysis:
    def test_matches_fresh_computation(self):
        ctg = figure1_ctg()
        analysis = CtgAnalysis.of(ctg)
        assert {str(s.product) for s in analysis.scenarios} == {
            str(s.product) for s in enumerate_scenarios(ctg)
        }
        assert analysis.exclusions == exclusion_table(ctg)
        assert analysis.gammas == gamma(ctg)

    def test_ignores_pseudo_edges(self):
        ctg = figure1_ctg()
        plain = CtgAnalysis.of(ctg)
        ctg.add_pseudo_edge("t4", "t5")
        with_pseudo = CtgAnalysis.of(ctg)
        assert {str(s.product) for s in plain.scenarios} == {
            str(s.product) for s in with_pseudo.scenarios
        }
        assert plain.exclusions == with_pseudo.exclusions

    @pytest.mark.parametrize("seed", [3, 9, 27])
    def test_random_graphs_consistent(self, seed):
        ctg = generate_ctg(GeneratorConfig(nodes=18, branch_nodes=2, seed=seed))
        analysis = CtgAnalysis.of(ctg)
        # probabilities of all scenarios sum to 1 under the defaults
        total = sum(
            s.probability(ctg.default_probabilities) for s in analysis.scenarios
        )
        assert total == pytest.approx(1.0)
        # exclusion table covers every task
        assert set(analysis.exclusions) == set(ctg.tasks())
        # every task has at least one activation context
        assert all(analysis.gammas[t] for t in ctg.tasks())
