"""CLI surface of the observability layer: the ``trace`` and ``report``
verbs, ``--trace-dir`` on ``run``, and ``--profile`` on
``run``/``schedule``."""

import json

import pytest

from repro.__main__ import main
from repro.ctg import figure1_ctg
from repro.io import save_instance
from repro.obs import validate_chrome_trace
from repro.platform import PlatformConfig, generate_platform

FAST_TRACE = ["--length", "40", "--train", "10", "--plan", "none"]


def _trace(tmp_path, tag, extra=()):
    out = tmp_path / f"{tag}.trace.json"
    code = main(["trace", "mpeg", "--out", str(out), *FAST_TRACE, *extra])
    return code, out, out.with_name(f"{tag}.metrics.json")


class TestTraceVerb:
    def test_writes_valid_chrome_trace_and_metrics(self, tmp_path, capsys):
        code, out, metrics = _trace(tmp_path, "run")
        assert code == 0
        assert validate_chrome_trace(json.loads(out.read_text())) == []
        snapshot = json.loads(metrics.read_text())
        assert snapshot["schema"] == "repro.metrics/1"
        assert snapshot["canonical"] is True
        stdout = capsys.readouterr().out
        assert "traced mpeg" in stdout
        assert str(out) in stdout
        assert str(metrics) in stdout

    def test_trace_has_task_spans_and_online_stages(self, tmp_path, capsys):
        _, out, _ = _trace(tmp_path, "spans")
        capsys.readouterr()
        records = json.loads(out.read_text())["traceEvents"]
        assert any(r.get("cat") == "sim.task" for r in records)
        assert any(
            r.get("cat") == "stage" and r["name"] == "online" for r in records
        )

    def test_metrics_snapshot_is_byte_stable(self, tmp_path, capsys):
        _, _, first = _trace(tmp_path, "a")
        _, _, second = _trace(tmp_path, "b")
        capsys.readouterr()
        assert first.read_bytes() == second.read_bytes()

    def test_faulted_plan_records_fault_events(self, tmp_path, capsys):
        out = tmp_path / "faulted.trace.json"
        code = main(
            ["trace", "mpeg", "--out", str(out), "--length", "60", "--train", "15"]
        )  # default plan: overrun
        assert code == 0
        capsys.readouterr()
        records = json.loads(out.read_text())["traceEvents"]
        assert any(r["name"] == "sim.fault" for r in records)

    def test_timeline_flag_prints_tracks(self, tmp_path, capsys):
        code, _, _ = _trace(tmp_path, "tl", extra=["--timeline"])
        assert code == 0
        assert "track runtime:" in capsys.readouterr().out

    def test_unknown_plan_exits_2(self, tmp_path, capsys):
        out = tmp_path / "x.trace.json"
        code = main(["trace", "mpeg", "--out", str(out), "--plan", "nonsense"])
        assert code == 2
        assert "unknown fault plan" in capsys.readouterr().err

    def test_unknown_workload_is_rejected_by_argparse(self):
        with pytest.raises(SystemExit):
            main(["trace", "nonsense"])


class TestReportVerb:
    def test_reports_a_trace_file(self, tmp_path, capsys):
        _, out, _ = _trace(tmp_path, "rep")
        capsys.readouterr()
        assert main(["report", str(out)]) == 0
        text = capsys.readouterr().out
        assert "trace report" in text
        assert "online" in text

    def test_reports_a_metrics_file(self, tmp_path, capsys):
        _, _, metrics = _trace(tmp_path, "met")
        capsys.readouterr()
        assert main(["report", str(metrics)]) == 0
        text = capsys.readouterr().out
        assert "metrics" in text
        assert "counters" in text

    def test_reports_an_experiment_artifact(self, tmp_path, capsys):
        assert main(
            ["run", "table1", "--smoke", "--artifacts-dir", str(tmp_path)]
        ) == 0
        capsys.readouterr()
        assert main(["report", str(tmp_path / "table1.json")]) == 0
        text = capsys.readouterr().out
        assert "table1" in text
        assert "cells" in text

    def test_json_mode_emits_structured_summary(self, tmp_path, capsys):
        _, out, _ = _trace(tmp_path, "js")
        capsys.readouterr()
        assert main(["report", str(out), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["task_spans"] > 0
        assert "online" in payload["stage_calls"]

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "absent.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_unrecognisable_payload_exits_2(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text('{"what": "is this"}')
        assert main(["report", str(bad)]) == 2
        assert "report:" in capsys.readouterr().err
        notjson = tmp_path / "notjson.json"
        notjson.write_text("{nope")
        assert main(["report", str(notjson)]) == 2


class TestEngineTraceDir:
    def test_run_trace_dir_writes_trace_and_metrics(self, tmp_path, capsys):
        assert main(
            ["run", "table1", "--smoke", "--trace-dir", str(tmp_path)]
        ) == 0
        err = capsys.readouterr().err
        assert "trace written" in err
        trace = tmp_path / "table1.trace.json"
        metrics = tmp_path / "table1.metrics.json"
        assert validate_chrome_trace(json.loads(trace.read_text())) == []
        records = json.loads(trace.read_text())["traceEvents"]
        assert any(r.get("cat") == "cell" for r in records)
        assert json.loads(metrics.read_text())["canonical"] is True

    def test_trace_dir_is_jobs_invariant(self, tmp_path, capsys):
        for jobs, sub in (("1", "serial"), ("2", "parallel")):
            assert main(
                [
                    "run", "table1", "--smoke", "--jobs", jobs,
                    "--trace-dir", str(tmp_path / sub),
                ]
            ) == 0
        capsys.readouterr()
        serial = (tmp_path / "serial" / "table1.metrics.json").read_bytes()
        parallel = (tmp_path / "parallel" / "table1.metrics.json").read_bytes()
        assert serial == parallel


class TestProfileFlags:
    def test_run_profile_prints_stage_table(self, capsys):
        assert main(["run", "table1", "--smoke", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "table1 profile" in out
        assert "stage timings:" in out

    def test_schedule_profile_prints_stage_table(self, tmp_path, capsys):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform)
        assert main(
            ["schedule", str(path), "--deadline-factor", "1.5", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "stage timings:" in out
        assert "online" in out
