"""Unit + property tests for the modified DLS scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctg import GeneratorConfig, figure1_ctg, generate_ctg
from repro.ctg.examples import diamond_ctg, two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import dls_schedule, static_levels
from repro.scheduling.baselines import load_balanced_mapping


def uniform_platform(ctg, pes=2, wcet=10.0, energy=10.0, bandwidth=1.0):
    platform = Platform([ProcessingElement(f"pe{i}") for i in range(pes)])
    if pes > 1:
        platform.connect_all(bandwidth=bandwidth, energy_per_kbyte=0.1)
    for task in ctg.tasks():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=energy)
    return platform


class TestStaticLevels:
    def test_chain_levels_accumulate(self):
        ctg = diamond_ctg()
        platform = uniform_platform(ctg)
        levels = static_levels(ctg, platform, {})
        assert levels["join"] == pytest.approx(10.0)
        assert levels["left"] == pytest.approx(20.0)
        assert levels["src"] == pytest.approx(30.0)

    def test_branch_level_probability_weighted(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg)
        probs = {"fork": {"h": 0.8, "l": 0.2}}
        levels = static_levels(ctg, platform, probs, probability_aware=True)
        # fork: 10 + 0.8·SL(heavy) + 0.2·SL(light); heavy/light: 10+10
        assert levels["fork"] == pytest.approx(10 + 0.8 * 20 + 0.2 * 20)

    def test_worst_case_levels_take_max(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg)
        probs = {"fork": {"h": 0.5, "l": 0.5}}
        levels = static_levels(ctg, platform, probs, probability_aware=False)
        assert levels["fork"] == pytest.approx(30.0)

    def test_figure1_prob_weighting_lowers_level(self):
        ctg = figure1_ctg()
        platform = uniform_platform(ctg)
        weighted = static_levels(ctg, platform, ctg.default_probabilities, True)
        worst = static_levels(ctg, platform, ctg.default_probabilities, False)
        assert weighted["t3"] <= worst["t3"]
        # non-branching nodes unaffected
        assert weighted["t6"] == worst["t6"]


class TestDlsBasics:
    def test_all_tasks_placed(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=1))
        sched = dls_schedule(ctg, platform)
        assert set(sched.placements) == set(ctg.tasks())

    def test_original_graph_untouched(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=1))
        edges_before = list(ctg.edges())
        dls_schedule(ctg, platform)
        assert list(ctg.edges()) == edges_before

    def test_schedule_validates(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=1))
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 0.0  # no deadline: structural checks only
        sched.validate()

    def test_deterministic(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=1))
        a = dls_schedule(ctg, platform)
        b = dls_schedule(ctg, platform)
        assert {t: p.pe for t, p in a.placements.items()} == {
            t: p.pe for t, p in b.placements.items()
        }
        assert a.makespan() == b.makespan()

    def test_precedence_respected_in_timing(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=2))
        sched = dls_schedule(ctg, platform)
        times = sched.worst_case_times()
        for src, dst, data in ctg.edges(include_pseudo=False):
            assert times[dst][0] >= times[src][1] - 1e-9

    def test_single_pe_serialises_non_exclusive(self):
        ctg = diamond_ctg()
        platform = uniform_platform(ctg, pes=1)
        sched = dls_schedule(ctg, platform)
        # src, left, right, join must serialise: makespan = 4 × 10
        assert sched.makespan() == pytest.approx(40.0)


class TestMutexOverlap:
    def test_exclusive_arms_share_pe_slot(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        sched = dls_schedule(ctg, platform, mutex_overlap=True)
        # entry, fork, (heavy ∥ light), join → 4 slots of 10
        assert sched.makespan() == pytest.approx(40.0)

    def test_disabling_overlap_serialises(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        sched = dls_schedule(ctg, platform, mutex_overlap=False)
        assert sched.makespan() == pytest.approx(50.0)

    def test_overlap_never_between_non_exclusive(self):
        ctg = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=9))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=9))
        sched = dls_schedule(ctg, platform)
        times = sched.worst_case_times()
        for pe in platform.pe_names:
            tasks = sched.tasks_on(pe)
            for i, a in enumerate(tasks):
                for b in tasks[i + 1 :]:
                    if sched.are_exclusive(a, b):
                        continue
                    sa, fa = times[a]
                    sb, fb = times[b]
                    assert fa <= sb + 1e-9 or fb <= sa + 1e-9


class TestFixedMapping:
    def test_mapping_respected(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=1))
        mapping = load_balanced_mapping(ctg, platform)
        sched = dls_schedule(ctg, platform, fixed_mapping=mapping)
        assert {t: sched.pe_of(t) for t in ctg.tasks()} == mapping

    def test_load_balanced_mapping_spreads_load(self):
        ctg = generate_ctg(GeneratorConfig(nodes=24, branch_nodes=0, category=2, seed=3))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=3))
        mapping = load_balanced_mapping(ctg, platform)
        per_pe = {pe: 0 for pe in platform.pe_names}
        for task, pe in mapping.items():
            per_pe[pe] += 1
        assert max(per_pe.values()) - min(per_pe.values()) <= 4


class TestCommunication:
    def test_cross_pe_data_waits_for_transfer(self):
        ctg = diamond_ctg()
        platform = uniform_platform(ctg, pes=2, bandwidth=0.5)
        sched = dls_schedule(ctg, platform)
        times = sched.worst_case_times()
        for src, dst, data in ctg.edges(include_pseudo=False):
            gap = times[dst][0] - times[src][1]
            expected = sched.platform.comm_time(
                sched.pe_of(src), sched.pe_of(dst), data.comm_kbytes
            )
            assert gap >= expected - 1e-9

    def test_comm_bookings_recorded_for_cross_pe_edges(self):
        ctg = diamond_ctg()
        platform = uniform_platform(ctg, pes=2, bandwidth=0.5)
        sched = dls_schedule(ctg, platform)
        cross = [
            (src, dst)
            for src, dst, data in ctg.edges(include_pseudo=False)
            if sched.pe_of(src) != sched.pe_of(dst)
        ]
        booked = {(b.src_task, b.dst_task) for b in sched.comm_bookings}
        assert set(cross) == booked


@settings(max_examples=15, deadline=None)
@given(
    nodes=st.integers(10, 28),
    branches=st.integers(0, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(1, 4),
    seed=st.integers(0, 500),
)
def test_dls_invariants(nodes, branches, category, pes, seed):
    """Property: DLS always places every task, respects precedence and
    produces a structurally valid schedule on any generated instance."""
    try:
        cfg = GeneratorConfig(nodes=nodes, branch_nodes=branches, category=category, seed=seed)
    except ValueError:
        return
    ctg = generate_ctg(cfg)
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    sched = dls_schedule(ctg, platform)
    assert set(sched.placements) == set(ctg.tasks())
    sched.validate()
    times = sched.worst_case_times()
    for src, dst, _data in ctg.edges(include_pseudo=False):
        assert times[dst][0] >= times[src][1] - 1e-9
