"""Property-based tests of the condition algebra laws."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctg.conditions import TRUE, ConditionProduct, Outcome

BRANCHES = ["b0", "b1", "b2", "b3"]
LABELS = ["x", "y", "z"]


@st.composite
def products(draw):
    pairs = draw(
        st.dictionaries(st.sampled_from(BRANCHES), st.sampled_from(LABELS), max_size=4)
    )
    return ConditionProduct(Outcome(b, l) for b, l in pairs.items())


@settings(max_examples=80, deadline=None)
@given(a=products(), b=products())
def test_conjoin_commutative(a, b):
    assert a.conjoin(b) == b.conjoin(a)


@settings(max_examples=80, deadline=None)
@given(a=products(), b=products(), c=products())
def test_conjoin_associative(a, b, c):
    left_first = a.conjoin(b)
    right_first = b.conjoin(c)
    left = left_first.conjoin(c) if left_first is not None else None
    right = a.conjoin(right_first) if right_first is not None else None
    # if either grouping is defined, both agree; a contradiction in any
    # pair forces both groupings to None or to the same product
    if left is not None and right is not None:
        assert left == right
    if left is None or right is None:
        # the overall conjunction is contradictory; verify directly
        merged = {}
        contradictory = False
        for p in (a, b, c):
            for branch, label in p.assignment.items():
                if merged.get(branch, label) != label:
                    contradictory = True
                merged[branch] = label
        assert contradictory or (left == right)


@settings(max_examples=80, deadline=None)
@given(a=products())
def test_true_is_identity(a):
    assert a.conjoin(TRUE) == a
    assert TRUE.conjoin(a) == a


@settings(max_examples=80, deadline=None)
@given(a=products())
def test_conjoin_idempotent(a):
    assert a.conjoin(a) == a


@settings(max_examples=80, deadline=None)
@given(a=products(), b=products())
def test_conjunction_implies_both_factors(a, b):
    joined = a.conjoin(b)
    if joined is not None:
        assert joined.implies(a)
        assert joined.implies(b)


@settings(max_examples=80, deadline=None)
@given(a=products(), b=products(), c=products())
def test_implication_transitive(a, b, c):
    if a.implies(b) and b.implies(c):
        assert a.implies(c)


@settings(max_examples=80, deadline=None)
@given(a=products(), b=products())
def test_implication_iff_conjunction_absorbs(a, b):
    # a ⇒ b exactly when a ∧ b = a
    assert a.implies(b) == (a.conjoin(b) == a)


@settings(max_examples=80, deadline=None)
@given(a=products(), b=products())
def test_consistency_symmetric(a, b):
    assert a.is_consistent_with(b) == b.is_consistent_with(a)


@settings(max_examples=80, deadline=None)
@given(a=products())
def test_restrict_projects(a):
    kept = a.restrict(["b0", "b1"])
    assert set(kept.branches) <= {"b0", "b1"}
    assert a.implies(kept)
