"""Path-analytics cache: fingerprints, reuse, and equivalence.

The tentpole contract: with caching and vectorization on (the
defaults), repeated ``schedule_online`` calls must produce exactly the
schedules the scalar seed implementation produced — the cache is keyed
so that any change to the mapping/ordering or the probability snapshot
transparently rebuilds what it must.
"""

import pytest

from repro.ctg import GeneratorConfig, generate_ctg
from repro.ctg.minterms import CtgAnalysis
from repro.platform import PlatformConfig, generate_platform
from repro.profiling import StageProfiler
from repro.scheduling import (
    dls_schedule,
    freeze_probabilities,
    schedule_fingerprint,
    schedule_online,
    set_deadline_from_makespan,
    structure_for,
)
from repro.workloads.cruise import cruise_ctg, cruise_platform
from repro.workloads.mpeg import mpeg_ctg, mpeg_platform


def _workload(name):
    if name == "mpeg":
        ctg, platform = mpeg_ctg(), mpeg_platform()
    elif name == "cruise":
        ctg, platform = cruise_ctg(), cruise_platform()
    else:
        ctg = generate_ctg(GeneratorConfig(nodes=24, branch_nodes=3, seed=11))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=11))
    set_deadline_from_makespan(ctg, platform, 1.6)
    return ctg, platform


class TestFingerprints:
    def test_identical_schedules_share_a_fingerprint(self):
        ctg, platform = _workload("tgff")
        a = dls_schedule(ctg, platform)
        b = dls_schedule(ctg, platform)
        assert schedule_fingerprint(a) == schedule_fingerprint(b)

    def test_extra_pseudo_edge_changes_the_fingerprint(self):
        ctg, platform = _workload("tgff")
        a = dls_schedule(ctg, platform)
        b = dls_schedule(ctg, platform)
        order = b.ctg.topological_order()
        pair = next(
            (u, v)
            for i, u in enumerate(order)
            for v in order[i + 1 :]
            if not b.ctg.graph.has_edge(u, v)
        )
        b.ctg.add_pseudo_edge(*pair)
        assert schedule_fingerprint(a) != schedule_fingerprint(b)

    def test_frozen_probabilities_are_order_insensitive(self):
        a = freeze_probabilities({"b1": {"x": 0.3, "y": 0.7}, "b2": {"u": 1.0}})
        b = freeze_probabilities({"b2": {"u": 1.0}, "b1": {"y": 0.7, "x": 0.3}})
        assert a == b
        c = freeze_probabilities({"b1": {"x": 0.4, "y": 0.6}, "b2": {"u": 1.0}})
        assert a != c


class TestCacheReuse:
    def test_second_call_hits_the_structure_cache(self):
        ctg, platform = _workload("cruise")
        analysis = CtgAnalysis.of(ctg)
        prof = StageProfiler()
        schedule_online(ctg, platform, analysis=analysis, profiler=prof)
        schedule_online(ctg, platform, analysis=analysis, profiler=prof)
        assert prof.counter("path_cache.miss") == 1
        assert prof.counter("path_cache.hit") == 1
        # path enumeration ran exactly once
        assert prof.timing("stretch.structure") > 0.0
        assert prof.calls["stretch.structure"] == 1

    def test_structure_identity_on_hit(self):
        ctg, platform = _workload("tgff")
        analysis = CtgAnalysis.of(ctg)
        sched_a = dls_schedule(ctg, platform, analysis=analysis)
        sched_b = dls_schedule(ctg, platform, analysis=analysis)
        first = structure_for(sched_a, analysis.scenarios, analysis.path_cache, None)
        second = structure_for(sched_b, analysis.scenarios, analysis.path_cache, None)
        assert first is second

    def test_probability_tables_rebuild_per_snapshot(self):
        ctg, platform = _workload("cruise")
        analysis = CtgAnalysis.of(ctg)
        prof = StageProfiler()
        base = ctg.default_probabilities
        shifted = {
            branch: dict(dist) for branch, dist in base.items()
        }
        branch = next(iter(shifted))
        labels = sorted(shifted[branch])
        shifted[branch][labels[0]] = 0.9
        rest = 0.1 / (len(labels) - 1)
        for label in labels[1:]:
            shifted[branch][label] = rest
        schedule_online(ctg, platform, base, analysis=analysis, profiler=prof)
        schedule_online(ctg, platform, shifted, analysis=analysis, profiler=prof)
        schedule_online(ctg, platform, base, analysis=analysis, profiler=prof)
        # distinct snapshots → two misses; the repeat of `base` can hit
        # only if the mapping came out identical both times, so just
        # check the invariant hit + miss == lookups.
        hits = prof.counter("prob_cache.hit")
        misses = prof.counter("prob_cache.miss")
        assert misses >= 2
        assert hits + misses == 3


@pytest.mark.parametrize("name", ["mpeg", "cruise", "tgff"])
class TestEquivalence:
    def test_vectorized_cached_matches_scalar_seed(self, name):
        ctg, platform = _workload(name)
        analysis = CtgAnalysis.of(ctg)
        probs = ctg.default_probabilities
        scalar = schedule_online(
            ctg, platform, probs, analysis=analysis, vectorized=False, use_cache=False
        )
        fast = schedule_online(ctg, platform, probs, analysis=analysis)
        again = schedule_online(ctg, platform, probs, analysis=analysis)

        assert fast.stretch.path_count == scalar.stretch.path_count
        assert again.stretch.path_count == scalar.stretch.path_count
        for task, speed in scalar.stretch.speeds.items():
            assert fast.stretch.speeds[task] == pytest.approx(speed, rel=1e-9)
        for task, slack in scalar.stretch.slack_given.items():
            assert fast.stretch.slack_given[task] == pytest.approx(
                slack, rel=1e-9, abs=1e-12
            )
        for task in scalar.schedule.placements:
            assert fast.schedule.placement(task).speed == pytest.approx(
                scalar.schedule.placement(task).speed, rel=1e-9
            )
            assert again.schedule.placement(task).speed == pytest.approx(
                scalar.schedule.placement(task).speed, rel=1e-9
            )
        assert fast.schedule.expected_energy(probs) == pytest.approx(
            scalar.schedule.expected_energy(probs), rel=1e-9
        )

    def test_equivalence_holds_under_drifted_probabilities(self, name):
        ctg, platform = _workload(name)
        analysis = CtgAnalysis.of(ctg)
        probs = {branch: dict(dist) for branch, dist in ctg.default_probabilities.items()}
        branch = sorted(probs)[0]
        labels = sorted(probs[branch])
        probs[branch][labels[0]] = 0.85
        rest = 0.15 / (len(labels) - 1)
        for label in labels[1:]:
            probs[branch][label] = rest
        # warm the cache with the default distribution first, as the
        # adaptive controller does before drift hits
        schedule_online(ctg, platform, analysis=analysis)
        scalar = schedule_online(
            ctg, platform, probs, analysis=analysis, vectorized=False, use_cache=False
        )
        fast = schedule_online(ctg, platform, probs, analysis=analysis)
        for task in scalar.schedule.placements:
            assert fast.schedule.placement(task).speed == pytest.approx(
                scalar.schedule.placement(task).speed, rel=1e-9
            )
        assert fast.schedule.expected_energy(probs) == pytest.approx(
            scalar.schedule.expected_energy(probs), rel=1e-9
        )
