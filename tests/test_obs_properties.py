"""Property-based tests of the tracing invariants.

Randomly generated span programs and tracers must satisfy:

* spans are well-nested per track (parents precede and contain their
  children, sibling order follows close order);
* ``merge`` is associative on the observable counts, and the canonical
  metrics snapshot of a merged tracer is insensitive to merge order;
* the Chrome trace export round-trips through JSON and always passes
  the schema validator (``ph:"X"`` records carry ``ts`` + ``dur``).
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.io import canonical_json
from repro.obs import Tracer, chrome_trace, metrics_snapshot, validate_chrome_trace

# -- strategies --------------------------------------------------------
names = st.sampled_from(["online", "dls", "stretch", "check", "stretch.sweep"])
tracks = st.sampled_from(["runtime", "pe:0", "pe:1"])
times = st.floats(min_value=0.0, max_value=1e4, allow_nan=False, allow_infinity=False)

# a span program: a forest of nested (name, children) nodes
span_trees = st.recursive(
    st.tuples(names, st.just(())),
    lambda children: st.tuples(names, st.lists(children, max_size=3)),
    max_leaves=12,
)
span_forests = st.lists(span_trees, min_size=1, max_size=4)


def _execute(tracer, node, track):
    name, children = node
    with tracer.span(name, track=track):
        for child in children:
            _execute(tracer, child, track)


@st.composite
def tracers(draw):
    """A tracer with nested wall-clock spans, sim spans and events."""
    tracer = Tracer()
    for track, forest in draw(
        st.dictionaries(tracks, span_forests, min_size=1, max_size=3)
    ).items():
        for tree in forest:
            _execute(tracer, tree, track)
    for name, start, length in draw(
        st.lists(st.tuples(names, times, times), max_size=5)
    ):
        tracer.add_span(name, start, start + length, category="sim.task", track="pe:0")
    for name, ts in draw(st.lists(st.tuples(names, times), max_size=5)):
        tracer.event(name, ts=ts, category="sim.event", track="pe:0")
    return tracer


# -- well-nestedness ---------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(forest=span_forests, track=tracks)
def test_spans_are_well_nested_per_track(forest, track):
    tracer = Tracer()
    for tree in forest:
        _execute(tracer, tree, track)
    for index, span in enumerate(tracer.spans):
        assert span.parent < index  # parents are recorded first
        if span.parent >= 0:
            parent = tracer.spans[span.parent]
            assert parent.track == span.track
            assert parent.start <= span.start
            assert span.end <= parent.end


@settings(max_examples=50, deadline=None)
@given(forest=span_forests)
def test_span_count_matches_program_size(forest):
    tracer = Tracer()
    for tree in forest:
        _execute(tracer, tree, "runtime")

    def size(node):
        return 1 + sum(size(child) for child in node[1])

    assert len(tracer.spans) == sum(size(tree) for tree in forest)


@settings(max_examples=50, deadline=None)
@given(forest=span_forests)
def test_stage_profile_projection_counts_every_span(forest):
    tracer = Tracer()
    for tree in forest:
        _execute(tracer, tree, "runtime")
    profile = tracer.stage_profile()
    assert sum(profile.calls.values()) == len(tracer.spans)


# -- merge -------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(parts=st.lists(tracers(), min_size=3, max_size=3))
def test_merge_is_associative_on_counts(parts):
    a, b, c = parts
    left = Tracer().merge(a).merge(b).merge(c)
    right = Tracer().merge(a).merge(Tracer().merge(b).merge(c))
    assert left.span_counts() == right.span_counts()
    assert left.event_counts() == right.event_counts()


@settings(max_examples=30, deadline=None)
@given(parts=st.lists(tracers(), min_size=2, max_size=3), seed=st.randoms())
def test_merge_preserves_nesting_invariants(parts, seed):
    merged = Tracer()
    for part in parts:
        merged.merge(part)
    for index, span in enumerate(merged.spans):
        assert span.parent < index
        if span.parent >= 0:
            assert merged.spans[span.parent].track == span.track


@settings(max_examples=30, deadline=None)
@given(parts=st.lists(tracers(), min_size=2, max_size=4))
def test_canonical_snapshot_is_merge_order_insensitive(parts):
    forward = Tracer()
    for part in parts:
        forward.merge(part)
    backward = Tracer()
    for part in reversed(parts):
        backward.merge(part)
    lhs = canonical_json(metrics_snapshot(tracer=forward, canonical=True))
    rhs = canonical_json(metrics_snapshot(tracer=backward, canonical=True))
    assert lhs == rhs


# -- Chrome trace export ----------------------------------------------
@settings(max_examples=30, deadline=None)
@given(tracer=tracers())
def test_chrome_trace_round_trips_and_validates(tracer):
    payload = json.loads(json.dumps(chrome_trace(tracer)))
    assert validate_chrome_trace(payload) == []
    records = payload["traceEvents"]
    complete = [r for r in records if r["ph"] == "X"]
    instants = [r for r in records if r["ph"] == "i"]
    assert len(complete) == len(tracer.spans)
    assert len(instants) == len(tracer.events)
    for record in complete:
        assert record["dur"] >= 0
        assert isinstance(record["ts"], (int, float))
    for record in instants:
        assert record["s"] == "t"


@settings(max_examples=30, deadline=None)
@given(tracer=tracers())
def test_every_track_gets_exactly_one_process_name(tracer):
    payload = chrome_trace(tracer)
    metadata = [
        r for r in payload["traceEvents"]
        if r["ph"] == "M" and r["name"] == "process_name"
    ]
    tracks = {s.track for s in tracer.spans} | {e.track for e in tracer.events}
    assert {r["args"]["name"] for r in metadata} == tracks
    assert len(metadata) == len(tracks)
