"""Tests for the content-addressed cell cache and its engine wiring."""

import json

import pytest

from repro.experiments import (
    Cell,
    CellCache,
    ExperimentSpec,
    resolve_cache,
    run_spec,
)
from repro.experiments.cache import ENTRY_VERSION


def double_cell(params):
    """Module-level toy cell for cache tests."""
    return {"values": {"double": params["x"] * 2}}


def _collect(cells):
    return [(c.key, c.values["double"]) for c in cells]


def _spec(xs=(1, 2, 3), context=None, name="doubles"):
    return ExperimentSpec(
        name=name,
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in xs),
        cell_function=double_cell,
        reducer=_collect,
        context=context or {},
    )


class TestCellCache:
    def test_miss_then_put_then_hit(self, tmp_path):
        cache = CellCache(tmp_path)
        assert cache.get("ab" * 32) is None
        assert cache.stats.misses == 1
        cache.put("ab" * 32, {"experiment": "x", "key": "a", "values": {"v": 1}})
        entry = cache.get("ab" * 32)
        assert entry is not None
        assert entry["values"] == {"v": 1}
        assert cache.stats.hits == 1

    def test_two_level_fanout_layout(self, tmp_path):
        cache = CellCache(tmp_path)
        fp = "cd" * 32
        path = cache.put(fp, {"experiment": "x", "key": "a", "values": {}})
        assert path == tmp_path / "cd" / f"{fp}.json"
        assert path.exists()

    def test_corrupt_json_is_a_counted_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        fp = "ef" * 32
        path = cache.path_for(fp)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_schema_mismatch_is_corrupt(self, tmp_path):
        cache = CellCache(tmp_path)
        fp = "01" * 32
        cache.put(fp, {"experiment": "x", "key": "a", "values": {}})
        payload = json.loads(cache.path_for(fp).read_text())

        payload["entry_version"] = ENTRY_VERSION + 1
        cache.path_for(fp).write_text(json.dumps(payload))
        assert cache.get(fp) is None

        payload["entry_version"] = ENTRY_VERSION
        payload["fingerprint"] = "f" * 64
        cache.path_for(fp).write_text(json.dumps(payload))
        assert cache.get(fp) is None

        del payload["fingerprint"]
        cache.path_for(fp).write_text(json.dumps(payload))
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 3

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        cache = CellCache(tmp_path)
        assert resolve_cache(cache) is cache
        resolved = resolve_cache(str(tmp_path))
        assert isinstance(resolved, CellCache)
        assert resolved.root == tmp_path


class TestEngineCaching:
    def test_cold_then_warm(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_spec(_spec(), jobs=1, cache=cache)
        assert cold.stats.misses == 3
        assert cold.stats.hits == 0
        warm = run_spec(_spec(), jobs=1, cache=cache)
        assert warm.stats.hits == 3
        assert warm.stats.misses == 0
        assert warm.stats.hit_rate == 1.0
        assert warm.result == cold.result
        assert all(cell.cached for cell in warm.cells)

    def test_warm_cache_matches_at_any_jobs(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_spec(_spec(), jobs=2, cache=cache)
        warm = run_spec(_spec(), jobs=2, cache=cache)
        assert warm.result == cold.result
        assert warm.stats.hits == 3

    def test_param_change_invalidates_only_that_cell(self, tmp_path):
        cache = CellCache(tmp_path)
        run_spec(_spec((1, 2, 3)), jobs=1, cache=cache)
        partial = run_spec(_spec((1, 2, 9)), jobs=1, cache=cache)
        assert partial.stats.hits == 2
        assert partial.stats.misses == 1
        assert partial.result[-1] == ("x9", 18)

    def test_context_change_invalidates_everything(self, tmp_path):
        cache = CellCache(tmp_path)
        run_spec(_spec(context={"instance": "a"}), jobs=1, cache=cache)
        changed = run_spec(_spec(context={"instance": "b"}), jobs=1, cache=cache)
        assert changed.stats.hits == 0
        assert changed.stats.misses == 3

    def test_package_version_change_invalidates_everything(self, tmp_path, monkeypatch):
        cache = CellCache(tmp_path)
        run_spec(_spec(), jobs=1, cache=cache)
        monkeypatch.setattr("repro.experiments.spec.__version__", "0.0.0-test")
        bumped = run_spec(_spec(), jobs=1, cache=cache)
        assert bumped.stats.hits == 0
        assert bumped.stats.misses == 3

    def test_corrupted_entry_recovers_by_recomputing(self, tmp_path):
        cache = CellCache(tmp_path)
        first = run_spec(_spec(), jobs=1, cache=cache)
        # vandalise one entry on disk
        victim = cache.path_for(first.cells[0].fingerprint)
        victim.write_text("garbage", encoding="utf-8")
        recovered = run_spec(_spec(), jobs=1, cache=cache)
        assert recovered.result == first.result
        assert recovered.stats.corrupt == 1
        assert recovered.stats.hits == 2
        assert recovered.stats.misses == 1
        # the recompute healed the entry
        healed = run_spec(_spec(), jobs=1, cache=cache)
        assert healed.stats.hits == 3

    def test_cached_cells_keep_profile_and_seconds(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_spec(_profiled_spec(), jobs=1, cache=cache)
        warm = run_spec(_profiled_spec(), jobs=1, cache=cache)
        assert warm.profile.counters == cold.profile.counters
        for cell in warm.cells:
            assert cell.cached
            assert cell.seconds >= 0.0


def profiled_cell(params):
    return {
        "values": {"double": params["x"] * 2},
        "profile": {"counters": {"work": params["x"]}},
    }


def _profiled_spec():
    return ExperimentSpec(
        name="profiled",
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in (1, 2)),
        cell_function=profiled_cell,
        reducer=_collect,
    )


class TestRealExperimentCaching:
    def test_figure4_round_trips_through_cache(self, tmp_path):
        from repro.experiments import figure4_spec

        cold = run_spec(figure4_spec(length=150), jobs=1, cache=str(tmp_path))
        warm = run_spec(figure4_spec(length=150), jobs=1, cache=str(tmp_path))
        assert warm.stats.hits == 1
        assert warm.result.selections == cold.result.selections
        assert warm.result.windowed == cold.result.windowed
        assert warm.result.filtered == cold.result.filtered
