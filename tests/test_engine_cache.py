"""Tests for the content-addressed cell cache and its engine wiring."""

import json
import threading

import pytest

from repro.experiments import (
    BackendError,
    Cell,
    CellCache,
    DirBackend,
    ExperimentSpec,
    SqliteBackend,
    parse_backend_uri,
    resolve_cache,
    run_spec,
)
from repro.experiments.cache import ENTRY_VERSION


def double_cell(params):
    """Module-level toy cell for cache tests."""
    return {"values": {"double": params["x"] * 2}}


def _collect(cells):
    return [(c.key, c.values["double"]) for c in cells]


def _spec(xs=(1, 2, 3), context=None, name="doubles"):
    return ExperimentSpec(
        name=name,
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in xs),
        cell_function=double_cell,
        reducer=_collect,
        context=context or {},
    )


class TestCellCache:
    def test_miss_then_put_then_hit(self, tmp_path):
        cache = CellCache(tmp_path)
        assert cache.get("ab" * 32) is None
        assert cache.stats.misses == 1
        cache.put("ab" * 32, {"experiment": "x", "key": "a", "values": {"v": 1}})
        entry = cache.get("ab" * 32)
        assert entry is not None
        assert entry["values"] == {"v": 1}
        assert cache.stats.hits == 1

    def test_two_level_fanout_layout(self, tmp_path):
        cache = CellCache(tmp_path)
        fp = "cd" * 32
        path = cache.put(fp, {"experiment": "x", "key": "a", "values": {}})
        assert path == tmp_path / "cd" / f"{fp}.json"
        assert path.exists()

    def test_corrupt_json_is_a_counted_miss(self, tmp_path):
        cache = CellCache(tmp_path)
        fp = "ef" * 32
        path = cache.path_for(fp)
        path.parent.mkdir(parents=True)
        path.write_text("{not json", encoding="utf-8")
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1
        assert cache.stats.misses == 1

    def test_schema_mismatch_is_corrupt(self, tmp_path):
        cache = CellCache(tmp_path)
        fp = "01" * 32
        cache.put(fp, {"experiment": "x", "key": "a", "values": {}})
        payload = json.loads(cache.path_for(fp).read_text())

        payload["entry_version"] = ENTRY_VERSION + 1
        cache.path_for(fp).write_text(json.dumps(payload))
        assert cache.get(fp) is None

        payload["entry_version"] = ENTRY_VERSION
        payload["fingerprint"] = "f" * 64
        cache.path_for(fp).write_text(json.dumps(payload))
        assert cache.get(fp) is None

        del payload["fingerprint"]
        cache.path_for(fp).write_text(json.dumps(payload))
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 3

    def test_resolve_cache_forms(self, tmp_path):
        assert resolve_cache(None) is None
        cache = CellCache(tmp_path)
        assert resolve_cache(cache) is cache
        resolved = resolve_cache(str(tmp_path))
        assert isinstance(resolved, CellCache)
        assert resolved.root == tmp_path


class TestEngineCaching:
    def test_cold_then_warm(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_spec(_spec(), jobs=1, cache=cache)
        assert cold.stats.misses == 3
        assert cold.stats.hits == 0
        warm = run_spec(_spec(), jobs=1, cache=cache)
        assert warm.stats.hits == 3
        assert warm.stats.misses == 0
        assert warm.stats.hit_rate == 1.0
        assert warm.result == cold.result
        assert all(cell.cached for cell in warm.cells)

    def test_warm_cache_matches_at_any_jobs(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_spec(_spec(), jobs=2, cache=cache)
        warm = run_spec(_spec(), jobs=2, cache=cache)
        assert warm.result == cold.result
        assert warm.stats.hits == 3

    def test_param_change_invalidates_only_that_cell(self, tmp_path):
        cache = CellCache(tmp_path)
        run_spec(_spec((1, 2, 3)), jobs=1, cache=cache)
        partial = run_spec(_spec((1, 2, 9)), jobs=1, cache=cache)
        assert partial.stats.hits == 2
        assert partial.stats.misses == 1
        assert partial.result[-1] == ("x9", 18)

    def test_context_change_invalidates_everything(self, tmp_path):
        cache = CellCache(tmp_path)
        run_spec(_spec(context={"instance": "a"}), jobs=1, cache=cache)
        changed = run_spec(_spec(context={"instance": "b"}), jobs=1, cache=cache)
        assert changed.stats.hits == 0
        assert changed.stats.misses == 3

    def test_package_version_change_invalidates_everything(self, tmp_path, monkeypatch):
        cache = CellCache(tmp_path)
        run_spec(_spec(), jobs=1, cache=cache)
        monkeypatch.setattr("repro.experiments.spec.__version__", "0.0.0-test")
        bumped = run_spec(_spec(), jobs=1, cache=cache)
        assert bumped.stats.hits == 0
        assert bumped.stats.misses == 3

    def test_corrupted_entry_recovers_by_recomputing(self, tmp_path):
        cache = CellCache(tmp_path)
        first = run_spec(_spec(), jobs=1, cache=cache)
        # vandalise one entry on disk
        victim = cache.path_for(first.cells[0].fingerprint)
        victim.write_text("garbage", encoding="utf-8")
        recovered = run_spec(_spec(), jobs=1, cache=cache)
        assert recovered.result == first.result
        assert recovered.stats.corrupt == 1
        assert recovered.stats.hits == 2
        assert recovered.stats.misses == 1
        # the recompute healed the entry
        healed = run_spec(_spec(), jobs=1, cache=cache)
        assert healed.stats.hits == 3

    def test_cached_cells_keep_profile_and_seconds(self, tmp_path):
        cache = CellCache(tmp_path)
        cold = run_spec(_profiled_spec(), jobs=1, cache=cache)
        warm = run_spec(_profiled_spec(), jobs=1, cache=cache)
        assert warm.profile.counters == cold.profile.counters
        for cell in warm.cells:
            assert cell.cached
            assert cell.seconds >= 0.0


def profiled_cell(params):
    return {
        "values": {"double": params["x"] * 2},
        "profile": {"counters": {"work": params["x"]}},
    }


def _profiled_spec():
    return ExperimentSpec(
        name="profiled",
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in (1, 2)),
        cell_function=profiled_cell,
        reducer=_collect,
    )


class TestBackendSelection:
    def test_uri_forms(self, tmp_path):
        assert isinstance(parse_backend_uri(tmp_path), DirBackend)
        assert isinstance(parse_backend_uri(str(tmp_path)), DirBackend)
        assert isinstance(parse_backend_uri(f"dir:{tmp_path}"), DirBackend)
        sqlite = parse_backend_uri(f"sqlite:{tmp_path}/c.db")
        assert isinstance(sqlite, SqliteBackend)
        assert sqlite.path == tmp_path / "c.db"

    def test_empty_path_after_scheme_rejected(self):
        with pytest.raises(BackendError, match="empty path"):
            parse_backend_uri("sqlite:")

    def test_resolve_cache_accepts_uri_and_backend(self, tmp_path):
        via_uri = resolve_cache(f"sqlite:{tmp_path}/c.db")
        assert isinstance(via_uri.backend, SqliteBackend)
        via_backend = resolve_cache(DirBackend(tmp_path))
        assert isinstance(via_backend, CellCache)
        assert via_backend.root == tmp_path

    def test_cell_cache_needs_exactly_one_source(self, tmp_path):
        with pytest.raises(BackendError, match="exactly one"):
            CellCache()
        with pytest.raises(BackendError, match="exactly one"):
            CellCache(tmp_path, backend=DirBackend(tmp_path))


class TestSqliteBackend:
    def test_miss_then_put_then_hit(self, tmp_path):
        cache = CellCache(backend=SqliteBackend(tmp_path / "c.db"))
        fp = "ab" * 32
        assert cache.get(fp) is None
        assert cache.stats.misses == 1
        cache.put(fp, {"experiment": "x", "key": "a", "values": {"v": 1}})
        entry = cache.get(fp)
        assert entry is not None
        assert entry["values"] == {"v": 1}
        assert cache.stats.hits == 1
        assert cache.contains(fp)
        assert cache.fingerprints() == [fp]
        cache.close()

    def test_corrupt_row_is_a_counted_miss(self, tmp_path):
        cache = CellCache(backend=SqliteBackend(tmp_path / "c.db"))
        fp = "cd" * 32
        cache.backend.write(fp, "{not json")
        assert cache.get(fp) is None
        assert cache.stats.corrupt == 1
        cache.close()

    def test_upsert_replaces_in_place(self, tmp_path):
        cache = CellCache(backend=SqliteBackend(tmp_path / "c.db"))
        fp = "ef" * 32
        cache.put(fp, {"experiment": "x", "key": "a", "values": {"v": 1}})
        cache.put(fp, {"experiment": "x", "key": "a", "values": {"v": 2}})
        assert cache.get(fp)["values"] == {"v": 2}
        assert len(cache.fingerprints()) == 1
        cache.close()

    def test_engine_round_trip_and_dir_parity(self, tmp_path):
        from repro.experiments import canonical_artifact_payload

        dir_cache = CellCache(backend=DirBackend(tmp_path / "tree"))
        sql_cache = CellCache(backend=SqliteBackend(tmp_path / "c.db"))
        via_dir_cold = run_spec(_spec(), jobs=1, cache=dir_cache)
        via_sql_cold = run_spec(_spec(), jobs=1, cache=sql_cache)
        via_dir = run_spec(_spec(), jobs=1, cache=dir_cache)
        via_sql = run_spec(_spec(), jobs=1, cache=sql_cache)
        assert via_sql.stats.hits == 3
        assert via_dir.result == via_sql.result
        # canonical artifacts are byte-identical across backends, cold
        # and warm alike (the CI backend-parity leg in bash form)
        payloads = [
            json.dumps(canonical_artifact_payload(r), sort_keys=True)
            for r in (via_dir_cold, via_sql_cold, via_dir, via_sql)
        ]
        assert len(set(payloads)) == 1
        sql_cache.close()

    def test_maintenance_surface(self, tmp_path):
        cache = CellCache(backend=SqliteBackend(tmp_path / "c.db"))
        run_spec(_spec(), jobs=1, cache=cache)
        checked, corrupt = cache.verify()
        assert checked == 3
        assert corrupt == []
        assert cache.backend.size_bytes() > 0
        victim = cache.fingerprints()[0]
        cache.backend.write(victim, "garbage")
        assert cache.verify()[1] == [victim]
        counts = cache.gc()
        assert counts["corrupt_removed"] == 1
        assert len(cache.fingerprints()) == 2
        cache.close()


class TestConcurrentWriters:
    def test_parallel_puts_never_corrupt(self, tmp_path):
        """Many threads upserting the same fingerprints concurrently must
        leave every entry readable — the regression for the old
        ``.tmp{pid}`` temp-name collision between threads of one
        process."""
        cache = CellCache(tmp_path)
        fps = [format(i, "02x") * 32 for i in range(4)]
        errors = []

        def hammer(worker):
            try:
                for round_no in range(25):
                    for fp in fps:
                        cache.put(
                            fp,
                            {
                                "experiment": "x",
                                "key": f"w{worker}",
                                "values": {"round": round_no},
                            },
                        )
            except Exception as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(w,)) for w in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        checked, corrupt = cache.verify()
        assert checked == len(fps)
        assert corrupt == []
        # no temp-file debris left behind by the writers
        assert cache.backend.tmp_garbage() == []

    def test_tmp_names_are_distinct_within_a_process(self, tmp_path):
        from repro.experiments.backends import _TMP_COUNTER

        first = next(_TMP_COUNTER)
        second = next(_TMP_COUNTER)
        assert second == first + 1


class TestCrashMidPutResume:
    def test_resume_recomputes_the_torn_tail(self, tmp_path):
        """A sweep killed mid-``put`` leaves (at worst, on a non-atomic
        filesystem) a torn final entry; ``--resume`` must treat it as
        corrupt, recompute it, and heal the store."""
        cache = CellCache(tmp_path)
        reference = run_spec(_spec(), jobs=1, cache=cache)
        # simulate the torn tail: truncated JSON in the last entry
        victim_fp = reference.cells[-1].fingerprint
        victim = cache.path_for(victim_fp)
        victim.write_text(victim.read_text()[: len(victim.read_text()) // 2])
        resumed = run_spec(_spec(), jobs=1, cache=cache, resume=True)
        assert resumed.result == reference.result
        assert resumed.stats.corrupt == 1
        assert resumed.stats.hits == 2
        assert resumed.stats.resumed == 2
        assert resumed.engine_profile.counters["cache.backend.corrupt"] == 1
        healed = run_spec(_spec(), jobs=1, cache=cache, resume=True)
        assert healed.stats.hits == 3
        assert healed.stats.resumed == 3
        assert healed.engine_profile.counters["engine.stream.resumed"] == 3

    def test_resume_without_cache_is_an_error(self):
        from repro.experiments import EngineError

        with pytest.raises(EngineError, match="resume"):
            run_spec(_spec(), jobs=1, cache=None, resume=True)


class TestRealExperimentCaching:
    def test_figure4_round_trips_through_cache(self, tmp_path):
        from repro.experiments import figure4_spec

        cold = run_spec(figure4_spec(length=150), jobs=1, cache=str(tmp_path))
        warm = run_spec(figure4_spec(length=150), jobs=1, cache=str(tmp_path))
        assert warm.stats.hits == 1
        assert warm.result.selections == cold.result.selections
        assert warm.result.windowed == cold.result.windowed
        assert warm.result.filtered == cold.result.filtered
