"""Unit tests for the Schedule data structure."""

import pytest

from repro.ctg import enumerate_scenarios, exclusion_table, figure1_ctg
from repro.ctg.examples import diamond_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling.schedule import CommBooking, Placement, Schedule, SchedulingError


def make_schedule(ctg=None, pes=2, seed=3):
    ctg = (ctg or figure1_ctg()).copy()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    exclusions = exclusion_table(ctg)
    return Schedule(ctg, platform, exclusions)


class TestPlacement:
    def test_duration_tracks_speed(self):
        p = Placement(task="t", pe="pe0", wcet=10.0, nominal_energy=20.0)
        assert p.duration == 10.0
        p.speed = 0.5
        assert p.duration == 20.0

    def test_energy_quadratic(self):
        p = Placement(task="t", pe="pe0", wcet=10.0, nominal_energy=20.0, speed=0.5)
        assert p.energy(exponent=2.0) == pytest.approx(5.0)


class TestPlacementBookkeeping:
    def test_place_and_query(self):
        sched = make_schedule()
        sched.place("t1", "pe0")
        assert sched.pe_of("t1") == "pe0"
        assert sched.placement("t1").wcet == sched.platform.wcet("t1", "pe0")

    def test_double_place_rejected(self):
        sched = make_schedule()
        sched.place("t1", "pe0")
        with pytest.raises(SchedulingError):
            sched.place("t1", "pe1")

    def test_unplaced_query_raises(self):
        with pytest.raises(SchedulingError):
            make_schedule().placement("t1")

    def test_placement_order_preserved(self):
        sched = make_schedule()
        for task in ("t1", "t3", "t2"):
            sched.place(task, "pe0")
        assert sched.placement_order() == ["t1", "t3", "t2"]

    def test_tasks_on_filters_by_pe(self):
        sched = make_schedule()
        sched.place("t1", "pe0")
        sched.place("t2", "pe1")
        sched.place("t3", "pe0")
        assert sched.tasks_on("pe0") == ["t1", "t3"]
        assert sched.tasks_on("pe1") == ["t2"]

    def test_set_speed_clamped_by_pe(self):
        sched = make_schedule()
        sched.place("t1", "pe0")
        sched.set_speed("t1", 0.01)
        assert sched.placement("t1").speed == sched.platform.pe("pe0").min_speed

    def test_are_exclusive_uses_table(self):
        sched = make_schedule()
        assert sched.are_exclusive("t4", "t5")
        assert not sched.are_exclusive("t1", "t2")


class TestTiming:
    def _full_schedule(self):
        """Place the whole Figure-1 graph on a single PE serialised."""
        ctg = figure1_ctg().copy()
        platform = Platform([ProcessingElement("pe0")])
        for task in ctg.tasks():
            platform.set_task_profile(task, "pe0", wcet=10.0, energy=10.0)
        sched = Schedule(ctg, platform, exclusion_table(ctg))
        previous = None
        for task in ctg.topological_order():
            sched.place(task, "pe0")
            if previous is not None:
                ctg.add_pseudo_edge(previous, task)
            previous = task
        return sched

    def test_serialised_makespan(self):
        sched = self._full_schedule()
        assert sched.makespan() == pytest.approx(80.0)

    def test_stretching_extends_makespan(self):
        sched = self._full_schedule()
        sched.set_speed("t1", 0.5)
        assert sched.makespan() == pytest.approx(90.0)

    def test_meets_deadline(self):
        sched = self._full_schedule()
        sched.ctg.deadline = 80.0
        assert sched.meets_deadline()
        sched.ctg.deadline = 79.0
        assert not sched.meets_deadline()

    def test_comm_delay_counted_cross_pe(self):
        ctg = diamond_ctg().copy()
        platform = Platform([ProcessingElement("pe0"), ProcessingElement("pe1")])
        platform.connect_all(bandwidth=1.0, energy_per_kbyte=0.1)
        for task in ctg.tasks():
            platform.set_task_profile(task, "pe0", wcet=10.0, energy=10.0)
            platform.set_task_profile(task, "pe1", wcet=10.0, energy=10.0)
        sched = Schedule(ctg, platform, exclusion_table(ctg))
        sched.place("src", "pe0")
        sched.place("left", "pe0")
        sched.place("right", "pe1")  # 1 KB transfer at bw 1 → +1 delay
        sched.place("join", "pe0")
        times = sched.worst_case_times()
        assert times["left"][0] == pytest.approx(10.0)
        assert times["right"][0] == pytest.approx(11.0)
        # join waits for right's data to ship back
        assert times["join"][0] == pytest.approx(22.0)


class TestEnergy:
    def test_scenario_energy_counts_active_only(self):
        sched = make_schedule(seed=4)
        for task in sched.ctg.topological_order():
            sched.place(task, "pe0")
        scenarios = {str(s.product): s for s in enumerate_scenarios(sched.ctg)}
        e_a1 = sched.scenario_energy(scenarios["a1"])
        expected = sum(
            sched.placement(t).nominal_energy for t in scenarios["a1"].active
        )
        assert e_a1 == pytest.approx(expected)  # same PE → no comm energy

    def test_expected_energy_is_scenario_mixture(self):
        sched = make_schedule(seed=4)
        for task in sched.ctg.topological_order():
            sched.place(task, "pe0")
        probs = sched.ctg.default_probabilities
        scenarios = enumerate_scenarios(sched.ctg)
        mixture = sum(
            s.probability(probs) * sched.scenario_energy(s) for s in scenarios
        )
        assert sched.expected_energy(probs) == pytest.approx(mixture)

    def test_comm_energy_added_cross_pe(self):
        sched = make_schedule(seed=4)
        order = sched.ctg.topological_order()
        for i, task in enumerate(order):
            sched.place(task, f"pe{i % 2}")
        probs = sched.ctg.default_probabilities
        same_pe = make_schedule(seed=4)
        for task in order:
            same_pe.place(task, "pe0")
        # cross-PE placement must add transfer energy on top of any
        # computation-energy differences
        from repro.ctg.minterms import activation_probability

        cross = sched.expected_energy(probs)
        act = activation_probability(sched.ctg.without_pseudo_edges(), probs)
        base = sum(p * sched.placement(t).nominal_energy for t, p in act.items())
        assert cross > base

    def test_speed_reduces_expected_energy(self):
        sched = make_schedule(seed=4)
        for task in sched.ctg.topological_order():
            sched.place(task, "pe0")
        probs = sched.ctg.default_probabilities
        before = sched.expected_energy(probs)
        sched.set_speed("t1", 0.5)
        after = sched.expected_energy(probs)
        assert after < before


class TestValidation:
    def test_unplaced_task_fails(self):
        sched = make_schedule()
        sched.place("t1", "pe0")
        with pytest.raises(SchedulingError):
            sched.validate()

    def test_overlap_of_non_exclusive_fails(self):
        ctg = diamond_ctg().copy()
        platform = Platform([ProcessingElement("pe0")])
        for task in ctg.tasks():
            platform.set_task_profile(task, "pe0", wcet=10.0, energy=1.0)
        sched = Schedule(ctg, platform, exclusion_table(ctg))
        for task in ctg.topological_order():
            sched.place(task, "pe0")
        # left and right both start at t=10 on pe0 without serialisation
        with pytest.raises(SchedulingError):
            sched.validate()

    def test_mutually_exclusive_overlap_allowed(self):
        from repro.ctg.examples import two_sided_branch_ctg

        ctg = two_sided_branch_ctg().copy()
        platform = Platform([ProcessingElement("pe0")])
        for task in ctg.tasks():
            platform.set_task_profile(task, "pe0", wcet=10.0, energy=1.0)
        sched = Schedule(ctg, platform, exclusion_table(ctg))
        for task in ("entry", "fork", "heavy", "light", "join"):
            sched.place(task, "pe0")
        ctg.add_pseudo_edge("entry", "fork")
        # heavy ∥ light share the slot after fork (they are exclusive)
        ctg.add_pseudo_edge("heavy", "join")
        ctg.add_pseudo_edge("light", "join")
        times = sched.worst_case_times()
        sa, fa = times["heavy"]
        sb, fb = times["light"]
        assert sa < fb and sb < fa  # genuinely overlapping
        sched.validate()  # and accepted because they are exclusive


class TestCommBooking:
    def test_bookings_sorted_by_start(self):
        sched = make_schedule()
        late = CommBooking("a", "b", "pe0", "pe1", start=5.0, duration=1.0, kbytes=1.0)
        early = CommBooking("c", "d", "pe0", "pe1", start=1.0, duration=1.0, kbytes=1.0)
        sched.book_comm(late)
        sched.book_comm(early)
        assert [b.start for b in sched.comm_bookings] == [1.0, 5.0]

    def test_finish_property(self):
        booking = CommBooking("a", "b", "pe0", "pe1", start=2.0, duration=3.0, kbytes=1.0)
        assert booking.finish == 5.0
