"""Edge-case tests for the stretching heuristic's optional behaviours."""

import pytest

from repro.ctg import ConditionalTaskGraph, GeneratorConfig, NodeKind, generate_ctg
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import dls_schedule, set_deadline_from_makespan, stretch_schedule


def uniform_platform(ctg, pes=1, wcet=10.0, min_speed=0.1, speed_levels=None):
    platform = Platform(
        [
            ProcessingElement(f"pe{i}", min_speed=min_speed, speed_levels=speed_levels)
            for i in range(pes)
        ]
    )
    if pes > 1:
        platform.connect_all(bandwidth=1.0, energy_per_kbyte=0.1)
    for task in ctg.tasks():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
    return platform


class TestZeroProbabilityPruning:
    def _setup(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        probs = {"fork": {"h": 0.0, "l": 1.0}}
        return ctg, platform, probs

    def test_pruned_branch_keeps_nominal_speed(self):
        ctg, platform, probs = self._setup()
        sched = dls_schedule(ctg, platform, probs)
        sched.ctg.deadline = 60.0
        stretch_schedule(sched, probs, prune_zero_probability=True)
        # the impossible heavy arm is untouched...
        assert sched.placement("heavy").speed == pytest.approx(1.0)
        # ...while the certain arm absorbs slack
        assert sched.placement("light").speed < 1.0

    def test_without_pruning_zero_prob_arm_still_constrains(self):
        ctg, platform, probs = self._setup()
        sched = dls_schedule(ctg, platform, probs)
        sched.ctg.deadline = 60.0
        stretch_schedule(sched, probs, prune_zero_probability=False)
        # worst case still counts the heavy arm: deadline must hold
        assert sched.meets_deadline()

    def test_pruning_can_deepen_stretch_of_live_paths(self):
        ctg, platform, probs = self._setup()
        pruned = dls_schedule(ctg, platform, probs)
        pruned.ctg.deadline = 60.0
        stretch_schedule(pruned, probs, prune_zero_probability=True)
        strict = dls_schedule(ctg, platform, probs)
        strict.ctg.deadline = 60.0
        stretch_schedule(strict, probs, prune_zero_probability=False)
        assert pruned.placement("light").speed <= strict.placement("light").speed + 1e-9


class TestMultiPassConvergence:
    def test_passes_monotonically_reduce_expected_energy(self):
        ctg = generate_ctg(GeneratorConfig(nodes=18, branch_nodes=2, seed=17))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=17))
        set_deadline_from_makespan(ctg, platform, 1.6)
        probs = ctg.default_probabilities
        energies = []
        for passes in (1, 2, 4, 8):
            sched = dls_schedule(ctg, platform, probs)
            stretch_schedule(sched, probs, max_passes=passes)
            energies.append(sched.expected_energy(probs))
        for earlier, later in zip(energies, energies[1:]):
            assert later <= earlier + 1e-9

    def test_extra_passes_never_break_the_deadline(self):
        ctg = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=3, seed=19))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=19))
        set_deadline_from_makespan(ctg, platform, 1.8)
        sched = dls_schedule(ctg, platform)
        stretch_schedule(sched, max_passes=8)
        assert sched.meets_deadline()
        sched.validate()


class TestDiscreteLevels:
    def test_speeds_land_on_levels(self):
        levels = (0.25, 0.5, 0.75, 1.0)
        ctg = generate_ctg(GeneratorConfig(nodes=14, branch_nodes=1, seed=23))
        platform = uniform_platform(ctg, pes=2, min_speed=0.25, speed_levels=levels)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = sched.makespan() * 1.5
        stretch_schedule(sched)
        for task in ctg.tasks():
            assert sched.placement(task).speed in levels

    def test_quantised_schedule_still_meets_deadline(self):
        levels = (0.5, 1.0)
        ctg = generate_ctg(GeneratorConfig(nodes=14, branch_nodes=1, seed=23))
        platform = uniform_platform(ctg, pes=2, min_speed=0.5, speed_levels=levels)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = sched.makespan() * 1.3
        stretch_schedule(sched)
        assert sched.meets_deadline()


class TestShareExponent:
    def test_root_weight_softens_probability_response(self):
        """Moving from linear to root weighting must narrow the slack
        gap between a likely and an unlikely arm."""
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        probs = {"fork": {"h": 0.9, "l": 0.1}}

        def arm_gap(exponent):
            sched = dls_schedule(ctg, platform, probs)
            sched.ctg.deadline = 60.0
            report = stretch_schedule(sched, probs, share_exponent=exponent)
            return report.slack_given["heavy"] - report.slack_given["light"]

        assert 0 < arm_gap(1.0 / 3.0) < arm_gap(1.0)


class TestDegenerateGraphs:
    def test_single_task_graph(self):
        ctg = ConditionalTaskGraph(name="single")
        ctg.add_task("only")
        ctg.validate()
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 20.0
        stretch_schedule(sched)
        assert sched.placement("only").speed == pytest.approx(0.5)
        assert sched.meets_deadline()

    def test_two_independent_tasks(self):
        ctg = ConditionalTaskGraph(name="pair")
        ctg.add_task("a")
        ctg.add_task("b")
        ctg.validate()
        platform = uniform_platform(ctg, pes=2)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 30.0
        stretch_schedule(sched)
        assert sched.meets_deadline()
        for task in ("a", "b"):
            assert sched.placement(task).speed <= 1.0
