"""Tests for the run-event ledger (``repro.events/1``): the declared
vocabulary, the :class:`EventLedger` writer, canonicalisation (the
byte-identity CI ``cmp``\\ s across jobs/backends/resume), the engine's
emission sequence, the ``repro tail`` renderer and the ``--live``
progress view."""

import io
import json
from pathlib import Path

import pytest

from repro.experiments import Cell, ExperimentSpec, run_spec
from repro.io import canonical_json
from repro.obs import (
    EVENTS,
    EVENTS_SCHEMA,
    EventError,
    EventLedger,
    LiveProgress,
    as_ledger,
    canonical_event_names,
    canonical_ledger,
    canonical_records,
    event_names,
    events_table,
    read_ledger,
    render_event,
)
from repro.obs.events import EVENT_SPECS, looks_like_ledger

REPO = Path(__file__).resolve().parent.parent


def doubling_cell(params):
    """Module-level cell function (importable by worker processes)."""
    return {"values": {"y": params["x"] * 2}}


def recovering_cell(params):
    """Cell whose profile carries fault-recovery counters."""
    return {
        "values": {"y": params["x"]},
        "profile": {
            "counters": {
                "fault.injected": 3,
                "fault.threatened": 2,
                "fault.escalations": 1,
            }
        },
    }


def _spec(name="ledgered", xs=(1, 2, 3), cell_function=doubling_cell):
    return ExperimentSpec(
        name=name,
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in xs),
        cell_function=cell_function,
        reducer=lambda cells: sum(c.values["y"] for c in cells),
    )


class TestVocabulary:
    def test_names_are_unique_and_ordered(self):
        names = event_names()
        assert len(names) == len(set(names)) == len(EVENTS)

    def test_canonical_subset(self):
        assert set(canonical_event_names()) <= set(event_names())
        assert "cell.completed" in canonical_event_names()
        assert "worker.heartbeat" not in canonical_event_names()

    def test_table_lists_every_event(self):
        table = events_table()
        for name in event_names():
            assert f"``{name}``" in table

    def test_observability_doc_embeds_the_table(self):
        doc = (REPO / "docs" / "observability.md").read_text()
        assert events_table() in doc


class TestEventLedger:
    def test_opens_with_schema_header(self):
        ledger = EventLedger()
        assert ledger.records[0]["event"] == "ledger.opened"
        assert ledger.records[0]["schema"] == EVENTS_SCHEMA

    def test_undeclared_event_rejected(self):
        with pytest.raises(EventError, match="undeclared event"):
            EventLedger().emit("sweep.teleported")

    def test_missing_required_field_rejected(self):
        with pytest.raises(EventError, match="missing required field"):
            EventLedger().emit("cell.completed", key="a")  # no fingerprint

    def test_extras_land_in_meta_not_toplevel(self):
        record = EventLedger().emit(
            "sweep.started", experiment="t", cells=3, jobs=4
        )
        assert record["experiment"] == "t"
        assert "jobs" not in record
        assert record["meta"]["jobs"] == 4

    def test_wall_clock_confined_to_meta(self):
        record = EventLedger().emit("cell.cached", key="a")
        assert "wall" in record["meta"]
        assert "wall" not in record

    def test_seq_and_counts(self):
        ledger = EventLedger()
        ledger.emit("cell.cached", key="a")
        ledger.emit("cell.cached", key="b")
        assert [r["seq"] for r in ledger.records] == [0, 1, 2]
        assert ledger.counts["cell.cached"] == 2

    def test_subscribers_see_records(self):
        ledger = EventLedger()
        seen = []
        ledger.subscribe(seen.append)
        ledger.emit("cell.flushed", key="k")
        assert [r["event"] for r in seen] == ["cell.flushed"]

    def test_file_backed_write_through(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLedger(path=path) as ledger:
            ledger.emit("cell.cached", key="a")
            assert not ledger.records  # file-backed ledgers do not buffer
        records = read_ledger(path)
        assert [r["event"] for r in records] == ["ledger.opened", "cell.cached"]

    def test_reopening_truncates(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with EventLedger(path=path) as ledger:
            ledger.emit("cell.cached", key="stale")
        with EventLedger(path=path):
            pass
        assert [r["event"] for r in read_ledger(path)] == ["ledger.opened"]

    def test_close_is_idempotent(self, tmp_path):
        ledger = EventLedger(path=tmp_path / "e.jsonl")
        ledger.close()
        ledger.close()

    def test_as_ledger_ownership(self, tmp_path):
        assert as_ledger(None) == (None, False)
        existing = EventLedger()
        assert as_ledger(existing) == (existing, False)
        created, owned = as_ledger(tmp_path / "e.jsonl")
        assert owned and created.path is not None
        created.close()


class TestReadLedger:
    def test_rejects_non_json_line(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "ledger.opened", "schema": "%s"}\nnope\n' % EVENTS_SCHEMA)
        with pytest.raises(EventError, match="not JSON"):
            read_ledger(path)

    def test_rejects_missing_header(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text('{"event": "cell.cached", "key": "a"}\n')
        with pytest.raises(EventError, match="ledger header"):
            read_ledger(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "e.jsonl"
        path.write_text("")
        with pytest.raises(EventError, match="empty ledger"):
            read_ledger(path)

    def test_looks_like_ledger(self):
        good = [{"event": "ledger.opened", "schema": EVENTS_SCHEMA}]
        assert looks_like_ledger(good)
        assert not looks_like_ledger([])
        assert not looks_like_ledger({"schema": EVENTS_SCHEMA})
        assert not looks_like_ledger([{"event": "cell.cached"}])


class TestCanonicalisation:
    def test_drops_non_canonical_and_meta(self):
        ledger = EventLedger()
        ledger.emit("sweep.started", experiment="t", cells=1, jobs=8)
        ledger.emit("cell.submitted", key="a")
        ledger.emit("cell.completed", key="a", fingerprint="f" * 8)
        records = canonical_records(ledger.records)
        assert [r["event"] for r in records] == [
            "ledger.opened",
            "sweep.started",
            "cell.completed",
        ]
        assert all("meta" not in r for r in records)
        assert "jobs" not in records[1]

    def test_renumbers_seq(self):
        ledger = EventLedger()
        ledger.emit("cell.submitted", key="a")  # non-canonical gap
        ledger.emit("cell.completed", key="a", fingerprint="f")
        records = canonical_records(ledger.records)
        assert [r["seq"] for r in records] == [0, 1]

    def test_canonical_ledger_is_canonical_json_lines(self):
        ledger = EventLedger()
        ledger.emit("cell.completed", key="a", fingerprint="f")
        text = canonical_ledger(ledger.records)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert all(line == canonical_json(json.loads(line)) for line in lines)


class TestRunSpecEmission:
    def test_cold_run_event_sequence(self):
        ledger = EventLedger()
        report = run_spec(_spec(), jobs=1, events=ledger)
        assert report.result == 12
        names = [r["event"] for r in ledger.records]
        assert names[0] == "ledger.opened"
        assert names[1] == "sweep.started"
        assert names[-1] == "sweep.finished"
        assert names.count("cell.submitted") == 3
        assert names.count("cell.flushed") == 3
        # canonical tail in declaration order
        completed = [r["key"] for r in ledger.records if r["event"] == "cell.completed"]
        assert completed == ["x1", "x2", "x3"]

    def test_warm_run_emits_cached_then_resumed(self, tmp_path):
        cache = str(tmp_path / "cache")
        run_spec(_spec(), jobs=1, cache=cache)
        warm = EventLedger()
        run_spec(_spec(), jobs=1, cache=cache, events=warm)
        assert warm.counts.get("cell.cached") == 3
        resumed = EventLedger()
        run_spec(_spec(), jobs=1, cache=cache, resume=True, events=resumed)
        assert resumed.counts.get("cell.resumed") == 3

    def test_recovery_events_replay_fault_counters(self):
        ledger = EventLedger()
        run_spec(_spec(cell_function=recovering_cell), jobs=1, events=ledger)
        recoveries = [r for r in ledger.records if r["event"] == "cell.recovery"]
        assert len(recoveries) == 3
        assert recoveries[0]["injected"] == 3
        assert recoveries[0]["threatened"] == 2
        assert recoveries[0]["escalations"] == 1

    def test_events_path_argument_writes_file(self, tmp_path):
        path = tmp_path / "events.jsonl"
        run_spec(_spec(), jobs=1, events=path)
        names = [r["event"] for r in read_ledger(path)]
        assert "sweep.finished" in names

    def test_sweep_started_declares_jobs_in_meta_only(self):
        ledger = EventLedger()
        run_spec(_spec(), jobs=1, events=ledger)
        started = next(r for r in ledger.records if r["event"] == "sweep.started")
        assert started["meta"]["jobs"] == 1
        assert "jobs" not in canonical_records([started])[0]


class TestCanonicalByteIdentity:
    """The acceptance criterion: canonicalised ledgers are byte-stable
    across ``--jobs``, cache backends and interrupted-then-resumed runs."""

    def _canonical(self, tmp_path, tag, **kwargs):
        path = tmp_path / f"{tag}.events.jsonl"
        run_spec(_spec(xs=(1, 2, 3, 4)), events=path, **kwargs)
        return canonical_ledger(read_ledger(path))

    def test_stable_across_jobs_backends_and_resume(self, tmp_path):
        serial = self._canonical(tmp_path, "serial", jobs=1)
        parallel = self._canonical(
            tmp_path, "parallel", jobs=2, cache=str(tmp_path / "dircache")
        )
        sqlite = self._canonical(
            tmp_path, "sqlite", jobs=2, cache=f"sqlite:{tmp_path / 'cells.db'}"
        )
        resumed = self._canonical(
            tmp_path, "resumed", jobs=1, cache=str(tmp_path / "dircache"), resume=True
        )
        assert serial == parallel == sqlite == resumed

    def test_interrupted_then_resumed_matches_uninterrupted(self, tmp_path):
        # simulate an interrupted sweep: a warm cache holding only the
        # first two cells, plus the dead run's partial ledger on disk
        cache = str(tmp_path / "cache")
        run_spec(_spec(xs=(1, 2)), jobs=1, cache=cache)
        partial = tmp_path / "resumed.events.jsonl"
        partial.write_text('{"event": "ledger.opened", "torn": true}\n')
        resumed = run_spec(
            _spec(xs=(1, 2, 3, 4)), jobs=1, cache=cache, resume=True, events=partial
        )
        clean = self._canonical(tmp_path, "clean", jobs=1)
        assert resumed.stats.resumed == 2
        assert canonical_ledger(read_ledger(partial)) == clean


class TestRenderEvent:
    def test_renders_fields_and_meta(self):
        record = EventLedger().emit("cell.completed", key="a", fingerprint="abc")
        line = render_event(record)
        assert "cell.completed" in line
        assert "key=a" in line
        assert "fingerprint=abc" in line
        assert line.startswith("+")

    def test_meta_extras_follow_fields(self):
        record = EventLedger().emit("sweep.started", experiment="t", cells=2, jobs=4)
        line = render_event(record)
        assert "cells=2" in line and "jobs=4" in line

    def test_tolerates_unknown_event(self):
        assert "mystery" in render_event({"event": "mystery"})


class TestLiveProgress:
    def _feed(self, progress, *events):
        for event in events:
            progress(event)

    def test_counts_and_line(self):
        stream = io.StringIO()
        progress = LiveProgress(stream=stream, interval=0.0)
        self._feed(
            progress,
            {"event": "sweep.started", "experiment": "t", "cells": 4},
            {"event": "cell.cached", "key": "a"},
            {"event": "cell.flushed", "key": "b"},
            {"event": "worker.spawned", "pid": 1},
        )
        line = progress.line()
        assert "[t] 2/4 cells" in line
        assert "workers 1" in line
        assert progress.warm == 1

    def test_stall_and_exit_bookkeeping(self):
        progress = LiveProgress(stream=io.StringIO(), interval=0.0)
        self._feed(
            progress,
            {"event": "sweep.started", "experiment": "t", "cells": 2},
            {"event": "worker.spawned", "pid": 1},
            {"event": "worker.spawned", "pid": 2},
            {"event": "worker.stalled", "pid": 2, "silent_seconds": 1.0},
            {"event": "worker.exited", "pid": 1, "cells": 2},
        )
        assert progress.workers == 0
        assert progress.stalled == 1
        assert "stalled 1" in progress.line()

    def test_sweep_finished_ends_the_line(self):
        stream = io.StringIO()
        progress = LiveProgress(stream=stream, interval=0.0)
        self._feed(
            progress,
            {"event": "sweep.started", "experiment": "t", "cells": 1},
            {"event": "cell.flushed", "key": "a"},
            {"event": "sweep.finished", "experiment": "t", "cells": 1},
        )
        assert stream.getvalue().endswith("\n")

    def test_subscribes_to_a_real_ledger(self):
        stream = io.StringIO()
        ledger = EventLedger()
        ledger.subscribe(LiveProgress(stream=stream, interval=0.0))
        run_spec(_spec(), jobs=1, events=ledger)
        assert "3/3 cells" in stream.getvalue()
