"""Unit tests for path enumeration (repro.ctg.paths)."""

import pytest

from repro.ctg import (
    TRUE,
    enumerate_paths,
    path_delay,
    paths_of_minterm,
    paths_through,
)
from repro.ctg.conditions import ConditionProduct, Outcome
from repro.ctg.examples import diamond_ctg, figure1_ctg


def product(*pairs):
    return ConditionProduct(Outcome(b, l) for b, l in pairs)


@pytest.fixture
def fig1_paths():
    return enumerate_paths(figure1_ctg())


class TestEnumeratePaths:
    def test_figure1_has_four_paths(self, fig1_paths):
        chains = {p.nodes for p in fig1_paths}
        assert chains == {
            ("t1", "t2", "t8"),
            ("t1", "t3", "t4", "t8"),
            ("t1", "t3", "t5", "t6"),
            ("t1", "t3", "t5", "t7"),
        }

    def test_path_conditions(self, fig1_paths):
        by_nodes = {p.nodes: p for p in fig1_paths}
        assert by_nodes[("t1", "t2", "t8")].condition == TRUE
        assert by_nodes[("t1", "t3", "t4", "t8")].condition == product(("t3", "a1"))
        assert by_nodes[("t1", "t3", "t5", "t6")].condition == product(
            ("t3", "a2"), ("t5", "b1")
        )

    def test_diamond_two_paths(self):
        assert len(enumerate_paths(diamond_ctg())) == 2

    def test_pseudo_edges_extend_paths(self):
        ctg = diamond_ctg()
        ctg.add_pseudo_edge("left", "right")
        with_pseudo = enumerate_paths(ctg, include_pseudo=True)
        without = enumerate_paths(ctg, include_pseudo=False)
        assert {p.nodes for p in without} == {
            ("src", "left", "join"),
            ("src", "right", "join"),
        }
        assert ("src", "left", "right", "join") in {p.nodes for p in with_pseudo}

    def test_contradictory_paths_dropped(self):
        # or-join of two arms then continuation: a chain picking a1 then
        # a2 would be contradictory and must not be enumerated.
        from repro.ctg.examples import two_sided_branch_ctg

        paths = enumerate_paths(two_sided_branch_ctg())
        assert all(p.condition is not None for p in paths)
        assert len(paths) == 2

    def test_max_paths_guard(self):
        with pytest.raises(RuntimeError):
            enumerate_paths(figure1_ctg(), max_paths=2)


class TestProbAfter:
    PROBS = {"t3": {"a1": 0.4, "a2": 0.6}, "t5": {"b1": 0.5, "b2": 0.5}}

    def _path(self, fig1_paths, nodes):
        return next(p for p in fig1_paths if p.nodes == nodes)

    def test_paper_example_prob_after_t5(self, fig1_paths):
        # prob(τ₁-τ₃-τ₅-τ₆, τ₅) = prob(b₁) = 0.5
        p = self._path(fig1_paths, ("t1", "t3", "t5", "t6"))
        assert p.prob_after("t5", self.PROBS) == pytest.approx(0.5)

    def test_paper_example_prob_after_t8(self, fig1_paths):
        # prob(τ₁-τ₃-τ₄-τ₈, τ₈) = 1 — no conditional branch after τ₈.
        p = self._path(fig1_paths, ("t1", "t3", "t4", "t8"))
        assert p.prob_after("t8", self.PROBS) == pytest.approx(1.0)
        assert p.is_certain_after("t8")

    def test_prob_after_source_is_joint(self, fig1_paths):
        p = self._path(fig1_paths, ("t1", "t3", "t5", "t6"))
        assert p.prob_after("t1", self.PROBS) == pytest.approx(0.6 * 0.5)

    def test_conditions_after_excludes_earlier_hops(self, fig1_paths):
        p = self._path(fig1_paths, ("t1", "t3", "t5", "t6"))
        # After t5 only the b-branch hop remains.
        assert [o.label for o in p.conditions_after("t5")] == ["b1"]
        assert [o.label for o in p.conditions_after("t3")] == ["a2", "b1"]

    def test_index_and_contains(self, fig1_paths):
        p = self._path(fig1_paths, ("t1", "t2", "t8"))
        assert "t2" in p
        assert "t4" not in p
        assert p.index("t8") == 2


class TestFilters:
    def test_paths_through(self, fig1_paths):
        through_t8 = paths_through(fig1_paths, "t8")
        assert {p.nodes for p in through_t8} == {
            ("t1", "t2", "t8"),
            ("t1", "t3", "t4", "t8"),
        }

    def test_paths_of_true_minterm_is_everything(self, fig1_paths):
        assert len(paths_of_minterm(fig1_paths, TRUE)) == len(fig1_paths)

    def test_paths_of_a1_excludes_a2_paths(self, fig1_paths):
        selected = paths_of_minterm(fig1_paths, product(("t3", "a1")))
        assert {p.nodes for p in selected} == {
            ("t1", "t2", "t8"),
            ("t1", "t3", "t4", "t8"),
        }


class TestPathDelay:
    def test_sum_of_execution_times(self, fig1_paths):
        times = {f"t{i}": float(i) for i in range(1, 9)}
        p = next(p for p in fig1_paths if p.nodes == ("t1", "t2", "t8"))
        assert path_delay(p, times) == pytest.approx(1 + 2 + 8)

    def test_edge_delays_added(self, fig1_paths):
        times = {f"t{i}": 1.0 for i in range(1, 9)}
        p = next(p for p in fig1_paths if p.nodes == ("t1", "t2", "t8"))
        hops = {("t1", "t2"): 0.5, ("t2", "t8"): 0.25}
        assert path_delay(p, times, hops) == pytest.approx(3.75)

    def test_missing_edge_delay_defaults_to_zero(self, fig1_paths):
        times = {f"t{i}": 1.0 for i in range(1, 9)}
        p = next(p for p in fig1_paths if p.nodes == ("t1", "t2", "t8"))
        assert path_delay(p, times, {}) == pytest.approx(3.0)
