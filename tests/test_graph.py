"""Unit tests for the CTG structure (repro.ctg.graph)."""

import pytest

from repro.ctg import CTGError, ConditionalTaskGraph, NodeKind, Outcome
from repro.ctg.examples import diamond_ctg, figure1_ctg


class TestConstruction:
    def test_add_task_returns_name(self):
        ctg = ConditionalTaskGraph()
        assert ctg.add_task("a") == "a"
        assert "a" in ctg

    def test_duplicate_task_rejected(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        with pytest.raises(CTGError):
            ctg.add_task("a")

    def test_edge_to_unknown_task_rejected(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        with pytest.raises(CTGError):
            ctg.add_edge("a", "missing")

    def test_duplicate_edge_rejected(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        ctg.add_task("b")
        ctg.add_edge("a", "b")
        with pytest.raises(CTGError):
            ctg.add_edge("a", "b")

    def test_conditional_edge_must_be_guarded_by_source(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        ctg.add_task("b")
        with pytest.raises(CTGError):
            ctg.add_edge("a", "b", condition=Outcome("b", "x1"))

    def test_default_node_kind_is_and(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        assert ctg.kind("a") is NodeKind.AND

    def test_or_node_kind(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a", NodeKind.OR)
        assert ctg.kind("a") is NodeKind.OR


class TestQueries:
    def test_figure1_sources_and_sinks(self):
        ctg = figure1_ctg()
        assert ctg.sources() == ["t1"]
        assert set(ctg.sinks()) == {"t6", "t7", "t8"}

    def test_topological_order_respects_edges(self):
        ctg = figure1_ctg()
        order = ctg.topological_order()
        for src, dst, _data in ctg.edges():
            assert order.index(src) < order.index(dst)

    def test_len_counts_tasks(self):
        assert len(figure1_ctg()) == 8
        assert len(diamond_ctg()) == 4

    def test_edge_data_roundtrip(self):
        ctg = figure1_ctg()
        data = ctg.edge_data("t3", "t4")
        assert data.condition == Outcome("t3", "a1")
        assert data.comm_kbytes == 3.0

    def test_edge_data_missing_raises(self):
        with pytest.raises(CTGError):
            figure1_ctg().edge_data("t1", "t8")

    def test_predecessors_successors(self):
        ctg = figure1_ctg()
        assert set(ctg.predecessors("t8")) == {"t2", "t4"}
        assert set(ctg.successors("t3")) == {"t4", "t5"}


class TestBranchStructure:
    def test_branch_nodes_detected_from_edges(self):
        assert figure1_ctg().branch_nodes() == ["t3", "t5"]

    def test_outcomes_of_branch(self):
        ctg = figure1_ctg()
        assert set(ctg.outcomes_of("t3")) == {"a1", "a2"}

    def test_outcomes_of_non_branch_raises(self):
        with pytest.raises(CTGError):
            figure1_ctg().outcomes_of("t1")

    def test_declared_outcomes_merge_with_edges(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("f")
        ctg.add_task("x")
        ctg.add_conditional_edge("f", "x", "a1")
        ctg.declare_outcomes("f", ["a2"])
        assert set(ctg.outcomes_of("f")) == {"a1", "a2"}

    def test_deciding_branches_of_or_node(self):
        # Example 1: τ₈ waits on branch fork τ₃ even when a₁ deselects τ₄.
        assert figure1_ctg().deciding_branches("t8") == ["t3"]

    def test_deciding_branches_unconditional_graph(self):
        assert diamond_ctg().deciding_branches("join") == []


class TestPseudoEdges:
    def test_pseudo_edge_added_and_flagged(self):
        ctg = diamond_ctg()
        ctg.add_pseudo_edge("left", "right")
        assert ctg.edge_data("left", "right").pseudo

    def test_pseudo_edge_over_existing_real_edge_is_noop(self):
        ctg = diamond_ctg()
        ctg.add_pseudo_edge("src", "left")
        assert not ctg.edge_data("src", "left").pseudo

    def test_pseudo_edge_cycle_rejected(self):
        ctg = diamond_ctg()
        with pytest.raises(CTGError):
            ctg.add_pseudo_edge("join", "src")

    def test_pseudo_edges_invisible_to_real_queries(self):
        ctg = diamond_ctg()
        ctg.add_pseudo_edge("left", "right")
        assert "left" not in ctg.predecessors("right", include_pseudo=False)
        assert "left" in ctg.predecessors("right", include_pseudo=True)

    def test_without_pseudo_edges_strips_them(self):
        ctg = diamond_ctg()
        ctg.add_pseudo_edge("left", "right")
        clean = ctg.without_pseudo_edges()
        with pytest.raises(CTGError):
            clean.edge_data("left", "right")
        # original untouched
        assert ctg.edge_data("left", "right").pseudo


class TestValidation:
    def test_figure1_validates(self):
        figure1_ctg().validate()

    def test_cycle_rejected(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        ctg.add_task("b")
        ctg.add_edge("a", "b")
        ctg.graph.add_edge("b", "a", data=ctg.edge_data("a", "b"))
        with pytest.raises(CTGError):
            ctg.validate()

    def test_single_outcome_branch_rejected(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("f")
        ctg.add_task("x")
        ctg.add_conditional_edge("f", "x", "a1")
        with pytest.raises(CTGError):
            ctg.validate()

    def test_negative_comm_rejected(self):
        ctg = ConditionalTaskGraph()
        ctg.add_task("a")
        ctg.add_task("b")
        ctg.graph.add_node("a")
        with pytest.raises(CTGError):
            ctg.add_edge("a", "b", comm_kbytes=-1.0)
            ctg.validate()

    def test_valid_default_probabilities_accepted(self):
        ctg = figure1_ctg()
        assert ctg.default_probabilities  # the example ships a table
        ctg.validate()

    def test_probabilities_for_non_branch_rejected(self):
        ctg = figure1_ctg()
        ctg.default_probabilities["t2"] = {"a1": 0.5, "a2": 0.5}
        with pytest.raises(CTGError, match="not a branch"):
            ctg.validate()

    def test_probability_for_undeclared_outcome_rejected(self):
        ctg = figure1_ctg()
        branch = ctg.branch_nodes()[0]
        ctg.default_probabilities[branch]["bogus"] = 0.0
        with pytest.raises(CTGError, match="undeclared outcome"):
            ctg.validate()

    def test_probability_outside_unit_interval_rejected(self):
        ctg = figure1_ctg()
        branch = ctg.branch_nodes()[0]
        labels = ctg.outcomes_of(branch)
        ctg.default_probabilities[branch] = {labels[0]: 1.3, labels[1]: -0.3}
        with pytest.raises(CTGError, match="outside"):
            ctg.validate()

    def test_probability_sum_must_be_one(self):
        ctg = figure1_ctg()
        branch = ctg.branch_nodes()[0]
        labels = ctg.outcomes_of(branch)
        ctg.default_probabilities[branch] = {labels[0]: 0.6, labels[1]: 0.6}
        with pytest.raises(CTGError, match="sum"):
            ctg.validate()

    def test_probability_sum_tolerates_rounding(self):
        ctg = figure1_ctg()
        branch = ctg.branch_nodes()[0]
        labels = ctg.outcomes_of(branch)
        ctg.default_probabilities[branch] = {
            labels[0]: 1.0 / 3.0,
            labels[1]: 2.0 / 3.0,
        }
        ctg.validate()


class TestCopy:
    def test_copy_is_independent(self):
        ctg = figure1_ctg()
        clone = ctg.copy()
        clone.add_task("extra")
        assert "extra" not in ctg
        clone.default_probabilities["t3"]["a1"] = 0.9
        assert ctg.default_probabilities["t3"]["a1"] == 0.4

    def test_copy_preserves_structure(self):
        ctg = figure1_ctg()
        clone = ctg.copy()
        assert set(clone.tasks()) == set(ctg.tasks())
        assert clone.kind("t8") is NodeKind.OR
        assert clone.deadline == ctg.deadline


class TestPathCondition:
    def test_unconditional_path(self):
        ctg = figure1_ctg()
        assert ctg.path_condition(["t1", "t2", "t8"]).is_true()

    def test_conditional_path(self):
        ctg = figure1_ctg()
        cond = ctg.path_condition(["t1", "t3", "t5", "t6"])
        assert str(cond) == "a2b1"

    def test_contradictory_path_returns_none(self):
        ctg = ConditionalTaskGraph()
        for n in ("f", "x", "g"):
            ctg.add_task(n)
        ctg.add_task("y")
        ctg.add_conditional_edge("f", "x", "a1")
        ctg.add_conditional_edge("f", "y", "a2")
        ctg.add_edge("x", "g")
        # fabricate a contradictory chain by querying across arms
        ctg.add_edge("y", "g")
        # a path using both arms cannot exist structurally; check the
        # condition helper directly on a contrived chain
        assert ctg.path_condition(["f", "x", "g"]) is not None
