"""Unit + property tests for the MPSoC platform substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.platform import (
    PAPER_MODEL,
    DvfsModel,
    Link,
    Platform,
    PlatformConfig,
    PlatformError,
    ProcessingElement,
    generate_platform,
)


class TestProcessingElement:
    def test_defaults(self):
        pe = ProcessingElement("pe0")
        assert pe.min_speed == 0.25
        assert pe.speed_levels is None

    def test_bad_min_speed_rejected(self):
        with pytest.raises(ValueError):
            ProcessingElement("pe0", min_speed=0.0)
        with pytest.raises(ValueError):
            ProcessingElement("pe0", min_speed=1.5)

    def test_clamp_continuous(self):
        pe = ProcessingElement("pe0", min_speed=0.4)
        assert pe.clamp_speed(0.1) == 0.4
        assert pe.clamp_speed(0.7) == 0.7
        assert pe.clamp_speed(2.0) == 1.0

    def test_discrete_levels_round_up(self):
        pe = ProcessingElement("pe0", min_speed=0.25, speed_levels=(0.25, 0.5, 0.75, 1.0))
        assert pe.clamp_speed(0.3) == 0.5
        assert pe.clamp_speed(0.5) == 0.5
        assert pe.clamp_speed(0.76) == 1.0

    def test_levels_must_include_nominal(self):
        with pytest.raises(ValueError):
            ProcessingElement("pe0", speed_levels=(0.5, 0.9))

    def test_levels_must_be_sorted(self):
        with pytest.raises(ValueError):
            ProcessingElement("pe0", speed_levels=(1.0, 0.5))

    def test_levels_must_respect_min_speed(self):
        with pytest.raises(ValueError):
            ProcessingElement("pe0", min_speed=0.5, speed_levels=(0.25, 1.0))


class TestDvfsModel:
    def test_paper_model_quadratic(self):
        assert PAPER_MODEL.energy_at_speed(100.0, 0.5) == pytest.approx(25.0)

    def test_nominal_speed_identity(self):
        assert PAPER_MODEL.energy_at_speed(42.0, 1.0) == pytest.approx(42.0)
        assert PAPER_MODEL.time_at_speed(10.0, 1.0) == pytest.approx(10.0)

    def test_time_scales_inverse(self):
        assert PAPER_MODEL.time_at_speed(10.0, 0.5) == pytest.approx(20.0)

    def test_speed_for_time(self):
        assert PAPER_MODEL.speed_for_time(10.0, 20.0) == pytest.approx(0.5)
        # never overclock
        assert PAPER_MODEL.speed_for_time(10.0, 5.0) == 1.0

    def test_energy_for_time(self):
        # stretching 2x quarters the energy
        assert PAPER_MODEL.energy_for_time(100.0, 10.0, 20.0) == pytest.approx(25.0)

    def test_invalid_speed_rejected(self):
        with pytest.raises(ValueError):
            PAPER_MODEL.energy_at_speed(1.0, 0.0)
        with pytest.raises(ValueError):
            PAPER_MODEL.time_at_speed(1.0, 1.5)

    def test_custom_exponent(self):
        cubic = DvfsModel(exponent=3.0)
        assert cubic.energy_at_speed(8.0, 0.5) == pytest.approx(1.0)

    def test_bad_exponent_rejected(self):
        with pytest.raises(ValueError):
            DvfsModel(exponent=0.0)

    @settings(max_examples=50, deadline=None)
    @given(
        wcet=st.floats(0.1, 1000),
        stretch=st.floats(1.0, 10.0),
        energy=st.floats(0.0, 1000),
    )
    def test_stretching_never_increases_energy(self, wcet, stretch, energy):
        stretched = PAPER_MODEL.energy_for_time(energy, wcet, wcet * stretch)
        assert stretched <= energy + 1e-9


class TestLink:
    def test_transfer_math(self):
        link = Link("a", "b", bandwidth=4.0, energy_per_kbyte=0.1)
        assert link.transfer_time(8.0) == pytest.approx(2.0)
        assert link.transfer_energy(8.0) == pytest.approx(0.8)

    def test_self_link_rejected(self):
        with pytest.raises(ValueError):
            Link("a", "a", 1.0, 0.0)

    def test_key_unordered(self):
        assert Link("a", "b", 1.0, 0.0).key == Link("b", "a", 1.0, 0.0).key


def small_platform():
    platform = Platform([ProcessingElement("pe0"), ProcessingElement("pe1")])
    platform.connect_all(bandwidth=4.0, energy_per_kbyte=0.1)
    platform.set_task_profile("t", "pe0", wcet=10.0, energy=20.0)
    platform.set_task_profile("t", "pe1", wcet=20.0, energy=15.0)
    return platform


class TestPlatform:
    def test_duplicate_pe_rejected(self):
        with pytest.raises(PlatformError):
            Platform([ProcessingElement("pe0"), ProcessingElement("pe0")])

    def test_empty_platform_rejected(self):
        with pytest.raises(PlatformError):
            Platform([])

    def test_profile_roundtrip(self):
        p = small_platform()
        assert p.wcet("t", "pe0") == 10.0
        assert p.energy("t", "pe1") == 15.0

    def test_missing_profile_raises(self):
        p = small_platform()
        with pytest.raises(PlatformError):
            p.wcet("missing", "pe0")

    def test_average_wcet(self):
        assert small_platform().average_wcet("t") == pytest.approx(15.0)

    def test_supports(self):
        p = small_platform()
        assert p.supports("t", "pe0")
        assert not p.supports("u", "pe0")

    def test_comm_same_pe_free(self):
        p = small_platform()
        assert p.comm_time("pe0", "pe0", 100.0) == 0.0
        assert p.comm_energy("pe0", "pe0", 100.0) == 0.0

    def test_comm_cross_pe(self):
        p = small_platform()
        assert p.comm_time("pe0", "pe1", 8.0) == pytest.approx(2.0)
        assert p.comm_energy("pe0", "pe1", 8.0) == pytest.approx(0.8)

    def test_zero_volume_free(self):
        p = small_platform()
        assert p.comm_time("pe0", "pe1", 0.0) == 0.0

    def test_missing_link_raises(self):
        platform = Platform([ProcessingElement("a"), ProcessingElement("b")])
        with pytest.raises(PlatformError):
            platform.comm_time("a", "b", 1.0)

    def test_duplicate_link_rejected(self):
        p = small_platform()
        with pytest.raises(PlatformError):
            p.add_link(Link("pe0", "pe1", 1.0, 0.0))

    def test_invalid_wcet_rejected(self):
        p = small_platform()
        with pytest.raises(PlatformError):
            p.set_task_profile("u", "pe0", wcet=0.0, energy=1.0)
        with pytest.raises(PlatformError):
            p.set_task_profile("u", "pe0", wcet=1.0, energy=-1.0)

    def test_validate_for(self):
        p = small_platform()
        p.validate_for(["t"])
        with pytest.raises(PlatformError):
            p.validate_for(["t", "unknown"])


class TestGeneratePlatform:
    def test_deterministic(self):
        tasks = [f"t{i}" for i in range(10)]
        cfg = PlatformConfig(pes=3, seed=42)
        a = generate_platform(tasks, cfg)
        b = generate_platform(tasks, cfg)
        assert all(
            a.wcet(t, pe) == b.wcet(t, pe) for t in tasks for pe in a.pe_names
        )

    def test_full_profile_and_fabric(self):
        tasks = [f"t{i}" for i in range(6)]
        platform = generate_platform(tasks, PlatformConfig(pes=4, seed=1))
        platform.validate_for(tasks)
        assert len(platform) == 4
        for t in tasks:
            for pe in platform.pe_names:
                assert platform.wcet(t, pe) > 0
                assert platform.energy(t, pe) > 0

    def test_heterogeneity_within_bounds(self):
        tasks = ["a", "b"]
        cfg = PlatformConfig(pes=3, seed=5, base_wcet_range=(10, 10), heterogeneity=(0.5, 2.0))
        platform = generate_platform(tasks, cfg)
        for t in tasks:
            for pe in platform.pe_names:
                assert 5.0 <= platform.wcet(t, pe) <= 20.0

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            PlatformConfig(pes=0)
        with pytest.raises(ValueError):
            PlatformConfig(bandwidth=0)

    @settings(max_examples=20, deadline=None)
    @given(pes=st.integers(1, 6), seed=st.integers(0, 1000))
    def test_generated_platform_always_valid(self, pes, seed):
        tasks = [f"t{i}" for i in range(8)]
        platform = generate_platform(tasks, PlatformConfig(pes=pes, seed=seed))
        platform.validate_for(tasks)
        for t in tasks:
            assert platform.average_wcet(t) > 0
