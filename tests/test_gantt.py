"""Tests for the schedule text rendering (repro.scheduling.gantt)."""

import pytest

from repro.ctg import figure1_ctg
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import (
    dls_schedule,
    render_gantt,
    render_listing,
    schedule_online,
    set_deadline_from_makespan,
)


@pytest.fixture
def fig1_schedule():
    ctg = figure1_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=3))
    set_deadline_from_makespan(ctg, platform, 1.4)
    return schedule_online(ctg, platform).schedule


class TestGantt:
    def test_contains_all_pe_lanes(self, fig1_schedule):
        text = render_gantt(fig1_schedule)
        for pe in fig1_schedule.platform.pe_names:
            assert pe in text

    def test_contains_deadline_header(self, fig1_schedule):
        text = render_gantt(fig1_schedule)
        assert "deadline" in text

    def test_every_task_appears(self, fig1_schedule):
        text = render_gantt(fig1_schedule, width=160)
        for task in fig1_schedule.ctg.tasks():
            assert task in text

    def test_mutually_exclusive_tasks_share_overlapping_lanes(self):
        """Mutex arms on one PE must render on separate sub-lanes."""
        ctg = two_sided_branch_ctg()
        platform = Platform([ProcessingElement("pe0")])
        for task in ctg.tasks():
            platform.set_task_profile(task, "pe0", wcet=10.0, energy=1.0)
        schedule = dls_schedule(ctg, platform)
        schedule.ctg.deadline = 50.0
        text = render_gantt(schedule, width=100)
        assert "heavy" in text
        assert "light" in text
        # two sub-lanes for pe0: more lines than PEs + header
        lane_lines = [l for l in text.splitlines() if "[" in l]
        assert len(lane_lines) >= 2

    def test_width_respected(self, fig1_schedule):
        text = render_gantt(fig1_schedule, width=60)
        for line in text.splitlines():
            assert len(line) <= 60 + 12  # label prefix allowance

    def test_empty_schedule(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=1, seed=1))
        from repro.ctg import exclusion_table
        from repro.scheduling.schedule import Schedule

        schedule = Schedule(ctg.copy(), platform, exclusion_table(ctg))
        assert render_gantt(schedule) == "(empty schedule)"

    def test_links_lane_optional(self, fig1_schedule):
        with_links = render_gantt(fig1_schedule, show_links=True)
        without = render_gantt(fig1_schedule, show_links=False)
        if fig1_schedule.comm_bookings:
            assert "links:" in with_links
        assert "links:" not in without


class TestListing:
    def test_lists_every_task(self, fig1_schedule):
        text = render_listing(fig1_schedule)
        for task in fig1_schedule.ctg.tasks():
            assert task in text

    def test_reports_makespan_and_deadline(self, fig1_schedule):
        text = render_listing(fig1_schedule)
        assert "makespan" in text
        assert f"{fig1_schedule.ctg.deadline:.2f}" in text

    def test_rows_sorted_by_start(self, fig1_schedule):
        lines = render_listing(fig1_schedule).splitlines()[2:-1]
        starts = [float(line.split()[2]) for line in lines]
        assert starts == sorted(starts)
