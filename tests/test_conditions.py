"""Unit tests for the condition algebra (repro.ctg.conditions)."""

import pytest

from repro.ctg.conditions import (
    TRUE,
    ConditionProduct,
    Outcome,
    minimal_products,
    product_probability,
)


def product(*pairs):
    return ConditionProduct(Outcome(b, l) for b, l in pairs)


class TestOutcome:
    def test_equality_and_hash(self):
        assert Outcome("b", "a1") == Outcome("b", "a1")
        assert hash(Outcome("b", "a1")) == hash(Outcome("b", "a1"))
        assert Outcome("b", "a1") != Outcome("b", "a2")

    def test_conflicts_same_branch_different_label(self):
        assert Outcome("b", "a1").conflicts_with(Outcome("b", "a2"))

    def test_no_conflict_same_outcome(self):
        assert not Outcome("b", "a1").conflicts_with(Outcome("b", "a1"))

    def test_no_conflict_different_branch(self):
        assert not Outcome("b", "a1").conflicts_with(Outcome("c", "a1"))


class TestConditionProduct:
    def test_empty_product_is_true(self):
        assert TRUE.is_true()
        assert len(TRUE) == 0
        assert str(TRUE) == "1"

    def test_single_outcome(self):
        p = product(("t3", "a1"))
        assert not p.is_true()
        assert p.label_for("t3") == "a1"
        assert p.label_for("t5") is None

    def test_duplicate_outcome_collapses(self):
        p = ConditionProduct([Outcome("t3", "a1"), Outcome("t3", "a1")])
        assert len(p) == 1

    def test_contradictory_construction_raises(self):
        with pytest.raises(ValueError):
            ConditionProduct([Outcome("t3", "a1"), Outcome("t3", "a2")])

    def test_str_concatenates_labels(self):
        p = product(("t3", "a2"), ("t5", "b1"))
        assert str(p) == "a2b1"

    def test_equality_order_independent(self):
        assert product(("x", "a"), ("y", "b")) == product(("y", "b"), ("x", "a"))

    def test_hashable(self):
        s = {product(("x", "a")), product(("x", "a")), TRUE}
        assert len(s) == 2


class TestConjoin:
    def test_conjoin_disjoint_branches(self):
        p = product(("t3", "a2")).conjoin(product(("t5", "b1")))
        assert p == product(("t3", "a2"), ("t5", "b1"))

    def test_conjoin_contradiction_returns_none(self):
        assert product(("t3", "a1")).conjoin(product(("t3", "a2"))) is None

    def test_conjoin_idempotent(self):
        p = product(("t3", "a1"))
        assert p.conjoin(p) == p

    def test_conjoin_with_true_is_identity(self):
        p = product(("t3", "a1"))
        assert p.conjoin(TRUE) == p
        assert TRUE.conjoin(p) == p

    def test_conjoin_outcome(self):
        p = TRUE.conjoin_outcome(Outcome("t3", "a1"))
        assert p == product(("t3", "a1"))

    def test_consistency(self):
        assert product(("t3", "a1")).is_consistent_with(product(("t5", "b1")))
        assert not product(("t3", "a1")).is_consistent_with(product(("t3", "a2")))


class TestImplication:
    def test_everything_implies_true(self):
        assert product(("t3", "a1")).implies(TRUE)
        assert TRUE.implies(TRUE)

    def test_true_implies_only_true(self):
        assert not TRUE.implies(product(("t3", "a1")))

    def test_more_specific_implies_general(self):
        specific = product(("t3", "a2"), ("t5", "b1"))
        assert specific.implies(product(("t3", "a2")))
        assert not product(("t3", "a2")).implies(specific)

    def test_conflicting_does_not_imply(self):
        assert not product(("t3", "a1")).implies(product(("t3", "a2")))


class TestRestrict:
    def test_restrict_keeps_subset(self):
        p = product(("t3", "a2"), ("t5", "b1"))
        assert p.restrict(["t3"]) == product(("t3", "a2"))

    def test_restrict_to_nothing_gives_true(self):
        assert product(("t3", "a2")).restrict([]) == TRUE


class TestProductProbability:
    PROBS = {"t3": {"a1": 0.4, "a2": 0.6}, "t5": {"b1": 0.5, "b2": 0.5}}

    def test_true_has_probability_one(self):
        assert product_probability(TRUE, self.PROBS) == 1.0

    def test_single(self):
        assert product_probability(product(("t3", "a1")), self.PROBS) == pytest.approx(0.4)

    def test_joint(self):
        p = product(("t3", "a2"), ("t5", "b1"))
        assert product_probability(p, self.PROBS) == pytest.approx(0.3)

    def test_missing_outcome_raises(self):
        with pytest.raises(KeyError):
            product_probability(product(("zz", "q1")), self.PROBS)


class TestMinimalProducts:
    def test_deduplicates(self):
        terms = [product(("t3", "a1")), product(("t3", "a1")), TRUE]
        assert len(minimal_products(terms)) == 2

    def test_no_absorption(self):
        # The paper keeps Γ(τ₈) = {1, a₁}: 1 must NOT absorb a₁.
        terms = [TRUE, product(("t3", "a1"))]
        assert set(minimal_products(terms)) == {TRUE, product(("t3", "a1"))}

    def test_sorted_deterministically(self):
        terms = [product(("t5", "b1")), TRUE, product(("t3", "a1"))]
        result = minimal_products(terms)
        assert result[0] == TRUE
        assert [str(t) for t in result] == ["1", "a1", "b1"]
