"""SARIF 2.1.0 rendering and its structural validator."""

from __future__ import annotations

import json

import pytest

from repro.check.diagnostics import CODE_TABLE, Diagnostic
from repro.check.sarif import (
    SARIF_VERSION,
    render_sarif,
    sarif_payload,
    validate_sarif,
)


def sample_diagnostics():
    return [
        Diagnostic(
            "DET201",
            "iteration over a set",
            subject="src/repro/x.py:10:5",
            symbol="repro.x:f",
        ),
        Diagnostic("CTG006", "no deadline set", subject="mpeg"),
        Diagnostic("NUM301", "numpy shift", subject="src/repro/y.py:3:1"),
    ]


class TestPayload:
    def test_emitted_payload_validates(self):
        payload = sarif_payload(sample_diagnostics(), tool_version="1.0.0")
        assert validate_sarif(payload) == []

    def test_version_and_schema(self):
        payload = sarif_payload([])
        assert payload["version"] == SARIF_VERSION
        assert payload["$schema"].endswith("sarif-schema-2.1.0.json")

    def test_every_registered_code_is_a_rule(self):
        payload = sarif_payload([])
        rules = payload["runs"][0]["tool"]["driver"]["rules"]
        assert [r["id"] for r in rules] == [info.code for info in CODE_TABLE]

    def test_source_subject_becomes_physical_location(self):
        payload = sarif_payload(sample_diagnostics())
        result = payload["runs"][0]["results"][0]
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/repro/x.py"
        assert location["region"] == {"startLine": 10, "startColumn": 5}

    def test_non_source_subject_folds_into_message(self):
        payload = sarif_payload(sample_diagnostics())
        result = payload["runs"][0]["results"][1]
        assert "locations" not in result
        assert result["message"]["text"].startswith("[mpeg]")

    def test_levels_map_severities(self):
        payload = sarif_payload(sample_diagnostics())
        results = payload["runs"][0]["results"]
        assert results[0]["level"] == "error"
        assert results[1]["level"] == "warning"

    def test_symbol_carried_in_properties(self):
        payload = sarif_payload(sample_diagnostics())
        assert payload["runs"][0]["results"][0]["properties"] == {
            "symbol": "repro.x:f"
        }

    def test_rule_index_consistent(self):
        payload = sarif_payload(sample_diagnostics())
        run = payload["runs"][0]
        for result in run["results"]:
            rule = run["tool"]["driver"]["rules"][result["ruleIndex"]]
            assert rule["id"] == result["ruleId"]

    def test_render_is_byte_stable(self):
        diags = sample_diagnostics()
        assert render_sarif(diags) == render_sarif(list(diags))
        json.loads(render_sarif(diags))  # well-formed JSON


class TestValidator:
    def payload(self):
        return sarif_payload(sample_diagnostics())

    def test_rejects_non_object(self):
        assert validate_sarif([]) == ["payload is not an object"]

    def test_rejects_wrong_version(self):
        payload = self.payload()
        payload["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(payload))

    def test_rejects_empty_runs(self):
        assert any("runs" in p for p in validate_sarif({"version": SARIF_VERSION}))

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda r: r.pop("ruleId"), "ruleId"),
            (lambda r: r.update(level="fatal"), "level"),
            (lambda r: r.update(message={}), "message.text"),
            (lambda r: r.update(ruleIndex=10_000), "ruleIndex"),
            (lambda r: r.update(ruleId="ZZZ999"), "not in driver rules"),
        ],
    )
    def test_rejects_mutated_results(self, mutate, fragment):
        payload = self.payload()
        mutate(payload["runs"][0]["results"][0])
        problems = validate_sarif(payload)
        assert any(fragment in p for p in problems), problems

    def test_rejects_bad_region(self):
        payload = self.payload()
        location = payload["runs"][0]["results"][0]["locations"][0]
        location["physicalLocation"]["region"]["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(payload))

    def test_rejects_missing_driver_name(self):
        payload = self.payload()
        del payload["runs"][0]["tool"]["driver"]["name"]
        assert any("driver.name" in p for p in validate_sarif(payload))
