"""Tests for the MPEG / cruise-controller models and trace generators."""

import pytest

from repro.ctg import enumerate_paths, enumerate_scenarios, gamma
from repro.sim import empirical_distribution, validate_trace
from repro.workloads import (
    MOVIE_PROFILES,
    biased_profile,
    cruise_ctg,
    cruise_platform,
    drifting_trace,
    fluctuating_trace,
    movie_trace,
    mpeg_ctg,
    mpeg_platform,
    road_trace,
)


class TestMpegModel:
    def test_paper_dimensions(self):
        ctg = mpeg_ctg()
        assert len(ctg) == 40
        assert len(ctg.branch_nodes()) == 9

    def test_scenario_count(self):
        # 1 skipped + 2 intra (DCT type) + 2^6 inter block combinations
        assert len(enumerate_scenarios(mpeg_ctg())) == 1 + 2 + 64

    def test_skipped_scenario_is_smallest(self):
        scenarios = enumerate_scenarios(mpeg_ctg())
        skipped = [s for s in scenarios if s.product.label_for("parse") == "a2"]
        assert len(skipped) == 1
        assert len(skipped[0].active) == min(len(s.active) for s in scenarios)

    def test_intra_and_inter_mutually_exclusive(self):
        from repro.ctg import mutually_exclusive

        ctg = mpeg_ctg()
        assert mutually_exclusive(ctg, "idct_frame", "mc_luma")
        assert mutually_exclusive(ctg, "copy_mb", "vld_header")
        assert not mutually_exclusive(ctg, "mc_luma", "idct1")

    def test_platform_profiles_all_tasks(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        platform.validate_for(ctg.tasks())
        assert len(platform) == 3  # the paper's 3-PE system

    def test_probabilities_cover_all_branches(self):
        ctg = mpeg_ctg()
        assert set(ctg.default_probabilities) == set(ctg.branch_nodes())

    def test_path_count_tractable(self):
        assert len(enumerate_paths(mpeg_ctg())) < 100


class TestCruiseModel:
    def test_paper_dimensions(self):
        ctg = cruise_ctg()
        assert len(ctg) == 32
        assert len(ctg.branch_nodes()) == 2

    def test_three_minterms(self):
        # The paper: "there are only three minterms in the CTG model".
        scenarios = enumerate_scenarios(cruise_ctg())
        assert len(scenarios) == 3
        products = {str(s.product) for s in scenarios}
        assert products == {"c1", "g1c2", "g2c2"}

    def test_five_pe_platform(self):
        platform = cruise_platform()
        assert len(platform) == 5
        platform.validate_for(cruise_ctg().tasks())

    def test_arms_nearly_equal_energy(self):
        """The paper attributes the low adaptive gain to near-equal
        minterm energies; the model must preserve that property."""
        ctg = cruise_ctg()
        platform = cruise_platform()
        scenarios = enumerate_scenarios(ctg)
        costs = sorted(
            sum(platform.average_wcet(t) for t in s.active) for s in scenarios
        )
        assert costs[-1] / costs[0] < 1.25


class TestMovieTraces:
    def test_all_profiles_generate_valid_traces(self):
        ctg = mpeg_ctg()
        for movie in MOVIE_PROFILES:
            trace = movie_trace(ctg, movie, length=300)
            assert len(trace) == 300
            validate_trace(ctg, trace)

    def test_deterministic(self):
        ctg = mpeg_ctg()
        assert movie_trace(ctg, "Bike", 200) == movie_trace(ctg, "Bike", 200)

    def test_unknown_movie_rejected(self):
        with pytest.raises(KeyError):
            movie_trace(mpeg_ctg(), "Nonexistent", 100)

    def test_requires_mpeg_graph(self):
        with pytest.raises(ValueError):
            movie_trace(cruise_ctg(), "Bike", 100)

    def test_i_frames_force_intra(self):
        ctg = mpeg_ctg()
        trace = movie_trace(ctg, "Airwolf", length=330)  # first frame is I
        intra = sum(1 for v in trace if v["classify"] == "b1")
        assert intra == len(trace)
        assert all(v["parse"] == "a1" for v in trace)

    def test_pb_frames_mostly_inter(self):
        ctg = mpeg_ctg()
        trace = movie_trace(ctg, "Train", length=990)
        later = trace[330:]  # B/P frames
        inter = sum(1 for v in later if v["classify"] == "b2")
        assert inter > len(later) * 0.4


class TestRoadTraces:
    def test_valid_and_deterministic(self):
        ctg = cruise_ctg()
        trace = road_trace(ctg, 500, seed=3)
        assert len(trace) == 500
        validate_trace(ctg, trace)
        assert trace == road_trace(ctg, 500, seed=3)

    def test_regime_structure_moves_probabilities(self):
        ctg = cruise_ctg()
        trace = road_trace(ctg, 2000, seed=5, segment_range=(200, 400))
        # windowed probability of the control branch should vary widely
        branch = "control_law"
        windows = [
            sum(1 for v in trace[i : i + 100] if v[branch] == "c1") / 100
            for i in range(0, 2000, 100)
        ]
        assert max(windows) - min(windows) > 0.3


class TestFluctuatingTraces:
    def test_equal_long_run_average(self):
        ctg = mpeg_ctg()
        trace = fluctuating_trace(ctg, 4000, seed=2)
        dist = empirical_distribution(ctg, trace)
        # the a-branch executes always: its average must be near 0.5
        assert dist["parse"]["a1"] == pytest.approx(0.5, abs=0.08)

    def test_fluctuation_amplitude(self):
        ctg = mpeg_ctg()
        trace = fluctuating_trace(ctg, 3000, seed=4, fluctuation=0.45)
        branch = "parse"
        windows = [
            sum(1 for v in trace[i : i + 60] if v[branch] == "a1") / 60
            for i in range(0, 3000, 60)
        ]
        assert max(windows) - min(windows) >= 0.3

    def test_validates(self):
        ctg = mpeg_ctg()
        validate_trace(ctg, fluctuating_trace(ctg, 200, seed=7))


class TestDriftingTrace:
    def test_valid_for_any_graph(self):
        ctg = cruise_ctg()
        trace = drifting_trace(ctg, 300, seed=1)
        validate_trace(ctg, trace)

    def test_mean_override(self):
        ctg = cruise_ctg()
        branch = ctg.branch_nodes()[0]
        label = ctg.outcomes_of(branch)[0]
        trace = drifting_trace(
            ctg, 2000, seed=2, amplitude=0.05, mean_overrides={branch: 0.9}
        )
        share = sum(1 for v in trace if v[branch] == label) / len(trace)
        assert share > 0.75


class TestBiasedProfile:
    def test_biased_branches(self):
        ctg = mpeg_ctg()
        profile = biased_profile(ctg, {"parse": "a2"}, bias=0.9)
        assert profile["parse"]["a2"] == pytest.approx(0.9)
        assert profile["parse"]["a1"] == pytest.approx(0.1)
        # unmentioned branches uniform
        assert profile["classify"]["b1"] == pytest.approx(0.5)

    def test_bias_bounds(self):
        with pytest.raises(ValueError):
            biased_profile(mpeg_ctg(), {}, bias=1.0)
