"""Mutation tests: every corruption class maps to its diagnostic code.

Each test seeds one specific defect into a known-good cruise-controller
online schedule and asserts the checker names it with the documented
code — the checkers earn their keep by *distinguishing* failure modes,
not by flagging "something is wrong".
"""

import dataclasses

import pytest

from repro.check import check_instance, check_pathcache, verify_schedule
from repro.ctg.graph import EdgeData
from repro.ctg.minterms import CtgAnalysis
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.scheduling.pathcache import schedule_fingerprint
from repro.workloads import cruise_ctg, cruise_platform


@pytest.fixture()
def instance():
    ctg, platform = cruise_ctg(), cruise_platform()
    set_deadline_from_makespan(ctg, platform, 2.0)
    analysis = CtgAnalysis.of(ctg)
    schedule = schedule_online(ctg, platform, analysis=analysis).schedule
    return ctg, platform, schedule, analysis


def run_check(instance, **kwargs):
    ctg, platform, schedule, analysis = instance
    return check_instance(ctg, platform, schedule, analysis=analysis, **kwargs)


def test_baseline_is_clean(instance):
    report = run_check(instance)
    assert report.ok, report.render_text()


def test_dropped_pseudo_edge_breaks_serialisation(instance):
    """SCHED021 (+ the SCHED020 overlap it permits)."""
    _ctg, _platform, schedule, _analysis = instance
    graph = schedule.ctg.graph
    pseudo = [
        (src, dst)
        for src, dst, data in schedule.ctg.edges(include_pseudo=True)
        if data.pseudo
    ]
    assert pseudo, "cruise schedule should carry serialisation edges"
    hits = set()
    for src, dst in pseudo:
        payload = graph[src][dst]["data"]
        graph.remove_edge(src, dst)
        report = run_check(instance)
        hits.update(report.codes())
        graph.add_edge(src, dst, data=payload)
    assert "SCHED021" in hits
    assert "SCHED020" in hits


def test_placement_moved_to_foreign_pe(instance):
    """SCHED002 when a task is re-mapped to a PE that can't run it."""
    _ctg, _platform, schedule, _analysis = instance
    task = schedule.placement_order()[0]
    schedule.placements[task].pe = "pe99"
    report = run_check(instance)
    assert report.has("SCHED002")


def test_unplaced_task(instance):
    """SCHED001 when a placement is missing entirely."""
    _ctg, _platform, schedule, _analysis = instance
    task = schedule.placement_order()[-1]
    del schedule.placements[task]
    report = run_check(instance)
    assert report.has("SCHED001")


def test_over_stretched_speed(instance):
    """PLAT003 below the envelope, and the deadline miss it causes."""
    ctg, _platform, schedule, _analysis = instance
    longest = max(schedule.placements.values(), key=lambda p: p.wcet)
    longest.speed = 0.01
    report = run_check(instance)
    assert report.has("PLAT003")
    assert report.has("SCHED030")
    assert report.has("SCHED031")


def test_speed_above_nominal(instance):
    """PLAT003 also above 1.0 — overclocking is outside the model."""
    _ctg, _platform, schedule, _analysis = instance
    task = schedule.placement_order()[0]
    schedule.placements[task].speed = 1.25
    report = run_check(instance)
    assert report.has("PLAT003")


def test_bad_probability_sum(instance):
    """CTG012 when a distribution does not sum to 1."""
    ctg = instance[0]
    branch = ctg.branch_nodes()[0]
    labels = ctg.outcomes_of(branch)
    table = {branch: {labels[0]: 0.9, labels[1]: 0.3}}
    report = run_check(instance, probabilities=table)
    assert report.has("CTG012")


def test_probability_for_unknown_outcome(instance):
    """CTG013 when a label is not a declared outcome."""
    ctg = instance[0]
    branch = ctg.branch_nodes()[0]
    labels = ctg.outcomes_of(branch)
    table = {branch: {labels[0]: 0.5, "warp_drive": 0.5}}
    report = run_check(instance, probabilities=table)
    assert report.has("CTG013")


def test_probability_outside_unit_interval(instance):
    """CTG014 on a negative or >1 probability value."""
    ctg = instance[0]
    branch = ctg.branch_nodes()[0]
    labels = ctg.outcomes_of(branch)
    table = {branch: {labels[0]: 1.4, labels[1]: -0.4}}
    report = run_check(instance, probabilities=table)
    assert report.has("CTG014")


def test_overbooked_link(instance):
    """LINK005 when two co-occurring transfers overlap on one link."""
    _ctg, _platform, schedule, _analysis = instance
    booking = schedule.comm_bookings[0]
    rival = next(
        b
        for b in schedule.comm_bookings
        if b is not booking
        and not schedule.are_exclusive(b.src_task, booking.src_task)
    )
    clash = dataclasses.replace(
        rival,
        src_pe=booking.src_pe,
        dst_pe=booking.dst_pe,
        start=booking.start,
        duration=booking.duration,
    )
    schedule.comm_bookings.append(clash)
    report = run_check(instance)
    assert report.has("LINK005")


def test_booking_endpoints_disagree_with_mapping(instance):
    """LINK002 when a booking's PEs don't match the task mapping."""
    _ctg, _platform, schedule, _analysis = instance
    booking = schedule.comm_bookings[0]
    swapped = dataclasses.replace(
        booking, src_pe=booking.dst_pe, dst_pe=booking.src_pe
    )
    schedule.comm_bookings[0] = swapped
    report = run_check(instance)
    assert report.has("LINK002")


def test_booking_on_missing_link(instance):
    """LINK001 when a transfer is booked PE-to-itself (no link)."""
    _ctg, _platform, schedule, _analysis = instance
    booking = schedule.comm_bookings[0]
    schedule.comm_bookings[0] = dataclasses.replace(
        booking, dst_pe=booking.src_pe
    )
    report = run_check(instance)
    assert report.has("LINK001")


def test_booked_duration_disagrees_with_bandwidth(instance):
    """LINK003 (warning) when the booked duration is off."""
    _ctg, _platform, schedule, _analysis = instance
    booking = schedule.comm_bookings[0]
    schedule.comm_bookings[0] = dataclasses.replace(
        booking, duration=booking.duration * 3.0
    )
    report = run_check(instance)
    assert report.has("LINK003")


def test_injected_cycle(instance):
    """CTG001; schedule-level stages are skipped on a cyclic graph."""
    _ctg, _platform, schedule, _analysis = instance
    order = schedule.ctg.topological_order()
    schedule.ctg.graph.add_edge(order[-1], order[0], data=EdgeData(pseudo=True))
    ctg, platform, _schedule, analysis = instance
    report = check_instance(
        schedule.ctg, platform, schedule, analysis=analysis
    )
    assert report.has("CTG001")
    assert "schedule" not in report.checks_run
    assert "feasibility" not in report.checks_run


def test_shrunk_deadline(instance):
    """SCHED030 + the exact minterms via SCHED031."""
    _ctg, _platform, schedule, _analysis = instance
    schedule.ctg.deadline = schedule.makespan() / 2.0
    report = verify_schedule(schedule)
    assert report.has("SCHED030")
    assert report.has("SCHED031")
    overshoot = report.by_code("SCHED031")
    assert all(d.subject for d in overshoot)


def test_stale_path_cache_structure(instance):
    """CACHE001 when the cached task universe no longer matches."""
    _ctg, _platform, schedule, analysis = instance
    key = schedule_fingerprint(schedule)
    structure = analysis.path_cache[key]
    analysis.path_cache[key] = dataclasses.replace(
        structure, task_list=structure.task_list[:-1]
    )
    findings = check_pathcache(schedule, analysis)
    assert any(d.code == "CACHE001" for d in findings)


def test_path_cache_scenario_mismatch(instance):
    """CACHE002 when the cached scenario tuple is foreign."""
    _ctg, _platform, schedule, analysis = instance
    key = schedule_fingerprint(schedule)
    structure = analysis.path_cache[key]
    analysis.path_cache[key] = dataclasses.replace(
        structure, scenarios=structure.scenarios[:-1]
    )
    findings = check_pathcache(schedule, analysis)
    assert any(d.code == "CACHE002" for d in findings)
