"""Tests for the SVG renderers (repro.viz)."""

import xml.etree.ElementTree as ET

import pytest

from repro.ctg import figure1_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.viz import bars_svg, gantt_svg, series_svg


@pytest.fixture
def fig1_schedule():
    ctg = figure1_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=3))
    set_deadline_from_makespan(ctg, platform, 1.4)
    return schedule_online(ctg, platform).schedule


def parse(svg: str) -> ET.Element:
    """Well-formedness check: the output must be valid XML."""
    return ET.fromstring(svg)


class TestGanttSvg:
    def test_well_formed(self, fig1_schedule):
        root = parse(gantt_svg(fig1_schedule, title="demo"))
        assert root.tag.endswith("svg")

    def test_one_bar_per_task(self, fig1_schedule):
        svg = gantt_svg(fig1_schedule)
        root = parse(svg)
        bars = [
            el for el in root.iter()
            if el.tag.endswith("rect") and el.find("{http://www.w3.org/2000/svg}title") is not None
        ]
        assert len(bars) == len(fig1_schedule.ctg.tasks())

    def test_deadline_marker_present(self, fig1_schedule):
        assert "deadline" in gantt_svg(fig1_schedule)

    def test_tooltips_carry_speed(self, fig1_schedule):
        svg = gantt_svg(fig1_schedule)
        assert "speed" in svg

    def test_empty_schedule_rejected(self):
        from repro.ctg import exclusion_table
        from repro.scheduling.schedule import Schedule

        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=1, seed=1))
        empty = Schedule(ctg.copy(), platform, exclusion_table(ctg))
        empty.ctg.deadline = 0.0
        with pytest.raises(ValueError):
            gantt_svg(empty)


class TestSeriesSvg:
    def test_well_formed_multi_series(self):
        svg = series_svg(
            {"prob": [0.1, 0.5, 0.9, 0.4], "filtered": [0.1, 0.1, 0.9, 0.9]},
            title="figure 4",
        )
        root = parse(svg)
        polylines = [el for el in root.iter() if el.tag.endswith("polyline")]
        assert len(polylines) == 2

    def test_series_names_in_legend(self):
        svg = series_svg({"windowed": [0, 1, 0]})
        assert "windowed" in svg

    def test_values_clamped_into_range(self):
        svg = series_svg({"s": [-1.0, 2.0, 0.5]})
        parse(svg)  # no crash, still well-formed

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            series_svg({})
        with pytest.raises(ValueError):
            series_svg({"s": [0.5]})


class TestBarsSvg:
    def test_well_formed(self):
        svg = bars_svg(
            ["Airwolf", "Bike"],
            {"online": [40.0, 43.0], "adaptive": [32.0, 34.0]},
            title="figure 5",
        )
        root = parse(svg)
        bars = [
            el for el in root.iter()
            if el.tag.endswith("rect") and el.find("{http://www.w3.org/2000/svg}title") is not None
        ]
        assert len(bars) == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            bars_svg(["a", "b"], {"g": [1.0]})

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            bars_svg(["a"], {"g": [0.0]})

    def test_category_labels_present(self):
        svg = bars_svg(["Shuttle"], {"online": [10.0]})
        assert "Shuttle" in svg
