"""Tests for the 802.11b receiver workload."""

import pytest

from repro.adaptive import AdaptiveConfig
from repro.ctg import enumerate_scenarios, mutually_exclusive
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.sim import empirical_distribution, energy_savings, run_adaptive, run_non_adaptive, validate_trace
from repro.workloads import CHANNEL_STATES, channel_trace, cruise_ctg, wlan_ctg, wlan_platform


class TestWlanModel:
    def test_dimensions(self):
        ctg = wlan_ctg()
        assert len(ctg) == 24
        assert set(ctg.branch_nodes()) == {"plcp_sync", "rate_select"}

    def test_eight_scenarios(self):
        # 2 preamble × 4 payload rates
        assert len(enumerate_scenarios(wlan_ctg())) == 8

    def test_rate_chains_mutually_exclusive(self):
        ctg = wlan_ctg()
        assert mutually_exclusive(ctg, "dbpsk_demod", "cck11_correlate")
        assert mutually_exclusive(ctg, "cck55_decode", "dqpsk_demod")
        assert not mutually_exclusive(ctg, "cck11_chunk", "cck11_decode")

    def test_cck11_is_heaviest_rate(self):
        ctg = wlan_ctg()
        platform = wlan_platform()
        loads = {}
        for scenario in enumerate_scenarios(ctg):
            rate = scenario.product.label_for("rate_select")
            load = sum(platform.average_wcet(t) for t in scenario.active)
            loads[rate] = max(loads.get(rate, 0.0), load)
        assert loads["r11"] == max(loads.values())
        assert loads["r1"] == min(loads.values())

    def test_platform_supports_all_tasks(self):
        ctg = wlan_ctg()
        wlan_platform().validate_for(ctg.tasks())

    def test_schedulable(self):
        ctg = wlan_ctg()
        platform = wlan_platform()
        set_deadline_from_makespan(ctg, platform, 1.4)
        result = schedule_online(ctg, platform)
        result.schedule.validate()


class TestChannelTrace:
    def test_valid_and_deterministic(self):
        ctg = wlan_ctg()
        trace = channel_trace(ctg, 400, seed=3)
        assert len(trace) == 400
        validate_trace(ctg, trace)
        assert trace == channel_trace(ctg, 400, seed=3)

    def test_rejects_foreign_graph(self):
        with pytest.raises(ValueError):
            channel_trace(cruise_ctg(), 100, seed=1)

    def test_channel_states_normalised(self):
        for state in CHANNEL_STATES.values():
            assert sum(state["rates"].values()) == pytest.approx(1.0)

    def test_regime_structure(self):
        ctg = wlan_ctg()
        trace = channel_trace(ctg, 3000, seed=5, dwell_range=(300, 500))
        windows = [
            sum(1 for v in trace[i : i + 150] if v["rate_select"] == "r11") / 150
            for i in range(0, 3000, 150)
        ]
        assert max(windows) - min(windows) > 0.3


class TestWlanAdaptivity:
    def test_adaptive_follows_the_channel(self):
        ctg = wlan_ctg()
        platform = wlan_platform()
        set_deadline_from_makespan(ctg, platform, 1.5)
        trace = channel_trace(ctg, 1200, seed=12)
        train, test = trace[:400], trace[400:]
        profile = empirical_distribution(ctg, train)
        online = run_non_adaptive(ctg, platform, test, profile)
        adaptive = run_adaptive(
            ctg, platform, test, profile, AdaptiveConfig(window_size=20, threshold=0.1)
        )
        assert adaptive.deadline_misses == 0
        assert energy_savings(online, adaptive) > 0.02
