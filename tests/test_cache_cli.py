"""Tests for the ``repro cache`` verb and the engine-fabric CLI flags
(``--cache`` URIs, ``--resume`` validation, ``--no-canonical``)."""

import json
import os
import time

import pytest

from repro.__main__ import main
from repro.experiments import CellCache, SqliteBackend, run_spec
from repro.experiments.spec import Cell, ExperimentSpec


def tiny_cell(params):
    """Module-level cell for CLI cache tests."""
    return {"values": {"y": params["x"] + 1}}


def _seed_cache(uri, n=3):
    """Populate a cache through a real engine run; returns the report."""
    spec = ExperimentSpec(
        name="tiny",
        cells=tuple(Cell(key=f"x{i}", params={"x": i}) for i in range(n)),
        cell_function=tiny_cell,
        reducer=lambda cells: [c.values["y"] for c in cells],
    )
    return run_spec(spec, jobs=1, cache=str(uri))


class TestCacheVerb:
    @pytest.mark.parametrize("scheme", ["dir", "sqlite"])
    def test_stats(self, tmp_path, capsys, scheme):
        uri = (
            str(tmp_path / "tree")
            if scheme == "dir"
            else f"sqlite:{tmp_path}/c.db"
        )
        _seed_cache(uri)
        assert main(["cache", "stats", uri]) == 0
        out = capsys.readouterr().out
        assert "entries:  3" in out
        assert scheme in out

    def test_verify_clean_and_corrupt(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path}/c.db"
        report = _seed_cache(uri)
        assert main(["cache", "verify", uri]) == 0
        store = CellCache(backend=SqliteBackend(tmp_path / "c.db"))
        store.backend.write(report.cells[0].fingerprint, "garbage")
        store.close()
        assert main(["cache", "verify", uri]) == 1
        assert "1 corrupt" in capsys.readouterr().out

    def test_gc_removes_corruption(self, tmp_path, capsys):
        uri = str(tmp_path / "tree")
        report = _seed_cache(uri)
        store = CellCache(tmp_path / "tree")
        store.backend.write(report.cells[0].fingerprint, "garbage")
        assert main(["cache", "gc", uri]) == 0
        assert "removed 1 corrupt" in capsys.readouterr().out
        assert main(["cache", "verify", uri]) == 0

    def test_prune_requires_older_than(self, tmp_path, capsys):
        uri = str(tmp_path / "tree")
        _seed_cache(uri)
        assert main(["cache", "prune", uri]) == 2
        assert "--older-than" in capsys.readouterr().err

    def test_prune_evicts_by_age(self, tmp_path, capsys):
        uri = str(tmp_path / "tree")
        _seed_cache(uri)
        # nothing is older than a day
        assert main(["cache", "prune", uri, "--older-than", "1"]) == 0
        assert "pruned 0" in capsys.readouterr().out
        # --older-than 0 evicts everything unprotected
        assert main(["cache", "prune", uri, "--older-than", "0"]) == 0
        assert "pruned 3" in capsys.readouterr().out
        store = CellCache(tmp_path / "tree")
        assert store.fingerprints() == []

    def test_prune_never_touches_a_live_sweeps_fingerprints(
        self, tmp_path, capsys
    ):
        """The satellite guarantee: fingerprints referenced by a live
        sweep's artifact survive any prune, whatever their age."""
        cache_uri = str(tmp_path / "tree")
        report = _seed_cache(cache_uri)
        from repro.experiments import write_artifact

        artifact = write_artifact(tmp_path / "artifacts", report)
        # back-date every entry so an age-based prune would take them all
        store = CellCache(tmp_path / "tree")
        for fp in store.fingerprints():
            path = store.path_for(fp)
            old = time.time() - 30 * 86400
            os.utime(path, (old, old))
        live = {cell.fingerprint for cell in report.cells}
        assert (
            main(
                [
                    "cache", "prune", cache_uri,
                    "--older-than", "7",
                    "--keep-artifact", str(artifact),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "3 protected" in out
        assert set(store.fingerprints()) == live
        # the warm sweep still replays entirely from cache
        warm = _seed_cache(cache_uri)
        assert warm.stats.hits == 3

    def test_bad_keep_artifact_is_a_usage_error(self, tmp_path, capsys):
        uri = str(tmp_path / "tree")
        _seed_cache(uri)
        missing = tmp_path / "nope.json"
        code = main(
            ["cache", "prune", uri, "--older-than", "0",
             "--keep-artifact", str(missing)]
        )
        assert code == 2
        assert "cannot read" in capsys.readouterr().err


class TestEngineCliFlags:
    def test_cache_and_cache_dir_are_exclusive(self, tmp_path, capsys):
        code = main(
            ["run", "table1", "--smoke",
             "--cache", f"sqlite:{tmp_path}/c.db",
             "--cache-dir", str(tmp_path / "tree")]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_resume_requires_a_cache(self, capsys):
        assert main(["run", "table1", "--smoke", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err
        assert main(["chaos", "--smoke", "--resume"]) == 2
        assert "--resume requires" in capsys.readouterr().err

    def test_sqlite_uri_round_trips_through_run(self, tmp_path, capsys):
        uri = f"sqlite:{tmp_path}/cells.db"
        assert main(["run", "table1", "--smoke", "--jobs", "1",
                     "--cache", uri]) == 0
        capsys.readouterr()
        assert main(["run", "table1", "--smoke", "--jobs", "1",
                     "--cache", uri, "--resume", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["backend"] == uri
        assert payload["cache"]["hits"] > 0
        assert payload["cache"]["misses"] == 0

    def test_chaos_no_canonical_keeps_real_cache_stats(self, tmp_path, capsys):
        cache = str(tmp_path / "tree")
        args = ["chaos", "--smoke", "--jobs", "1", "--cache-dir", cache,
                "--length", "40"]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args + ["--format", "json", "--no-canonical"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cache"]["enabled"] is True
        assert payload["cache"]["hit_rate"] == 1.0
        assert payload["engine"]["counters"]["cache.backend.hit"] > 0
