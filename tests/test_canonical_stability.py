"""Warm-cache canonical artifacts are byte-identical to cold ones.

The regression this pins down: wall-clock measurements used to live
inside cached cell ``values``, so a warm replay of the ``runtime`` (or
``table1``) experiment silently presented stale timings as canonical
data, and its canonical artifact differed byte-for-byte from a cold
run's.  Timings now live in each cell's explicitly non-canonical
``timing`` section (flagged ``cached=True`` on replay) and the spec's
``timing_keys`` are zeroed inside the reduced result, so for *every*
registered experiment a cold run and a warm replay must produce the
same canonical artifact bytes.
"""

import json

import pytest

from repro.__main__ import EXPERIMENTS
from repro.experiments import (
    CellCache,
    canonical_artifact_payload,
    run_spec,
    validate_artifact,
)


def _canonical_bytes(report) -> bytes:
    payload = validate_artifact(canonical_artifact_payload(report))
    return (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8")


@pytest.mark.parametrize("name", sorted(EXPERIMENTS))
def test_warm_canonical_artifact_is_byte_identical_to_cold(name, tmp_path):
    cache = CellCache(tmp_path)
    cold = run_spec(EXPERIMENTS[name](True), jobs=1, cache=cache)
    warm = run_spec(EXPERIMENTS[name](True), jobs=1, cache=cache)

    assert cold.stats.misses == len(cold.cells)
    assert warm.stats.hits == len(warm.cells)
    assert all(cell.cached for cell in warm.cells)
    assert _canonical_bytes(warm) == _canonical_bytes(cold)


def test_timed_specs_declare_their_timing_keys():
    """The experiments that measure wall-clock must mark those fields
    non-canonical; a new timed result field without a matching
    ``timing_keys`` entry would leak machine-dependent numbers back
    into canonical artifacts."""
    expected = {
        "runtime": ("heuristic_seconds", "nlp_seconds"),
        "table1": ("online_runtime", "reference_2_runtime"),
        "montecarlo": ("sweep_seconds",),
    }
    for name, keys in expected.items():
        assert EXPERIMENTS[name](True).timing_keys == keys


def test_cached_replay_keeps_timing_but_flags_it(tmp_path):
    """A warm cell still carries its compute-time measurements (for
    ``repro report``-style consumers) but is flagged ``cached`` so they
    are never mistaken for fresh numbers."""
    cache = CellCache(tmp_path)
    run_spec(EXPERIMENTS["runtime"](True), jobs=1, cache=cache)
    warm = run_spec(EXPERIMENTS["runtime"](True), jobs=1, cache=cache)
    for cell in warm.cells:
        assert cell.cached
        assert cell.timing["heuristic_seconds"] > 0.0
        assert cell.timing["nlp_seconds"] > 0.0
        assert "heuristic_seconds" not in cell.values
