"""Tests for the exponential-smoothing branch estimator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    ExponentialBranchEstimator,
    ExponentialProfiler,
    WindowProfiler,
)
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import set_deadline_from_makespan


class TestExponentialBranchEstimator:
    def test_empty_estimate_is_zero(self):
        est = ExponentialBranchEstimator("b", ["x", "y"], smoothing=0.9)
        assert est.distribution() == {"x": 0.0, "y": 0.0}
        assert len(est) == 0

    def test_converges_to_observed_rate(self):
        est = ExponentialBranchEstimator("b", ["x", "y"], smoothing=0.9)
        for i in range(500):
            est.push("x" if i % 4 else "y")
        assert est.distribution()["x"] == pytest.approx(0.75, abs=0.12)

    def test_seed_sets_distribution_exactly(self):
        est = ExponentialBranchEstimator("b", ["x", "y"], smoothing=0.9)
        est.seed({"x": 0.7, "y": 0.3})
        assert est.distribution()["x"] == pytest.approx(0.7)

    def test_recent_samples_dominate(self):
        est = ExponentialBranchEstimator("b", ["x", "y"], smoothing=0.8)
        for _ in range(50):
            est.push("x")
        for _ in range(20):
            est.push("y")
        assert est.distribution()["y"] > 0.9

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            ExponentialBranchEstimator("b", ["x", "y"], smoothing=1.0)
        with pytest.raises(ValueError):
            ExponentialBranchEstimator("b", ["x", "y"], smoothing=0.0)

    def test_unknown_label(self):
        est = ExponentialBranchEstimator("b", ["x", "y"], smoothing=0.9)
        with pytest.raises(ValueError):
            est.push("z")

    @settings(max_examples=25, deadline=None)
    @given(smoothing=st.floats(0.05, 0.95), n=st.integers(1, 200))
    def test_distribution_always_normalised(self, smoothing, n):
        est = ExponentialBranchEstimator("b", ["x", "y"], smoothing=smoothing)
        for i in range(n):
            est.push("x" if i % 2 else "y")
        assert sum(est.distribution().values()) == pytest.approx(1.0)


class TestExponentialProfiler:
    LABELS = {"b1": ["x", "y"]}

    def test_equivalent_window_derivation(self):
        prof = ExponentialProfiler(self.LABELS, equivalent_window=20)
        assert prof.smoothing == pytest.approx(1 - 2 / 21)

    def test_max_deviation_like_window(self):
        initial = {"b1": {"x": 0.5, "y": 0.5}}
        prof = ExponentialProfiler(self.LABELS, smoothing=0.7, initial=initial)
        for _ in range(20):
            prof.observe({"b1": "x"})
        assert prof.max_deviation(initial) > 0.4

    def test_monotone_drift_under_constant_input(self):
        """Under a constant stream the estimate approaches 1 strictly
        monotonically (no window-eviction jitter)."""
        initial = {"b1": {"x": 0.5, "y": 0.5}}
        exp = ExponentialProfiler(self.LABELS, equivalent_window=20, initial=initial)
        previous = 0.5
        for _ in range(30):
            exp.observe({"b1": "x"})
            current = exp.distributions()["b1"]["x"]
            assert current > previous
            previous = current
        assert previous > 0.9

    def test_works_with_controller(self):
        ctg = two_sided_branch_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=8))
        set_deadline_from_makespan(ctg, platform, 1.5)
        initial = {"fork": {"h": 0.5, "l": 0.5}}
        profiler = ExponentialProfiler(
            {"fork": ["h", "l"]}, smoothing=0.6, initial=initial
        )
        controller = AdaptiveController(
            ctg, platform, initial,
            AdaptiveConfig(window_size=4, threshold=0.25),
            profiler=profiler,
        )
        triggered = [controller.observe({"fork": "h"}) for _ in range(6)]
        assert any(triggered)
        controller.schedule.validate()
