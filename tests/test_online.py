"""Tests for the online entry points (repro.scheduling.online)."""

import pytest

from repro.ctg import ConditionalTaskGraph, GeneratorConfig, NodeKind, figure1_ctg, generate_ctg
from repro.ctg.minterms import CtgAnalysis, enumerate_scenarios
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import (
    minimal_makespan,
    schedule_online,
    set_deadline_from_makespan,
)


@pytest.fixture
def instance():
    ctg = figure1_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
    return ctg, platform


class TestMinimalMakespan:
    def test_positive_and_deterministic(self, instance):
        ctg, platform = instance
        a = minimal_makespan(ctg, platform)
        b = minimal_makespan(ctg, platform)
        assert a == b > 0

    def test_set_deadline_scales(self, instance):
        ctg, platform = instance
        base = minimal_makespan(ctg, platform)
        deadline = set_deadline_from_makespan(ctg, platform, 1.7)
        assert deadline == pytest.approx(1.7 * base)
        assert ctg.deadline == deadline

    def test_factor_below_one_rejected(self, instance):
        ctg, platform = instance
        with pytest.raises(ValueError):
            set_deadline_from_makespan(ctg, platform, 0.9)


class TestScheduleOnline:
    def test_analysis_reuse_gives_identical_schedule(self, instance):
        ctg, platform = instance
        set_deadline_from_makespan(ctg, platform, 1.4)
        analysis = CtgAnalysis.of(ctg)
        with_cache = schedule_online(ctg, platform, analysis=analysis)
        without = schedule_online(ctg, platform)
        probs = ctg.default_probabilities
        assert with_cache.schedule.expected_energy(probs) == pytest.approx(
            without.schedule.expected_energy(probs)
        )
        assert {t: p.pe for t, p in with_cache.schedule.placements.items()} == {
            t: p.pe for t, p in without.schedule.placements.items()
        }

    def test_probability_weighted_flag_changes_speeds(self, instance):
        ctg, platform = instance
        set_deadline_from_makespan(ctg, platform, 1.4)
        probs = {"t3": {"a1": 0.9, "a2": 0.1}, "t5": {"b1": 0.5, "b2": 0.5}}
        weighted = schedule_online(ctg, platform, probs)
        unweighted = schedule_online(ctg, platform, probs, probability_weighted=False)
        assert weighted.stretch.speeds != unweighted.stretch.speeds

    def test_max_passes_forwarded(self, instance):
        ctg, platform = instance
        set_deadline_from_makespan(ctg, platform, 1.6)
        single = schedule_online(ctg, platform, max_passes=1)
        multi = schedule_online(ctg, platform, max_passes=4)
        probs = ctg.default_probabilities
        assert multi.schedule.expected_energy(probs) <= (
            single.schedule.expected_energy(probs) + 1e-9
        )

    def test_share_exponent_forwarded(self, instance):
        ctg, platform = instance
        set_deadline_from_makespan(ctg, platform, 1.6)
        probs = {"t3": {"a1": 0.9, "a2": 0.1}, "t5": {"b1": 0.5, "b2": 0.5}}
        linear = schedule_online(ctg, platform, probs)
        root = schedule_online(ctg, platform, probs, share_exponent=1 / 3)
        assert linear.stretch.slack_given != root.stretch.slack_given


class TestDeclaredOutcomeBranch:
    def test_branch_side_with_no_tasks(self):
        """A branch outcome may guard no edge at all (a 'skip' side
        declared via declare_outcomes); scenarios and scheduling must
        handle the empty side."""
        ctg = ConditionalTaskGraph(name="skip_side")
        ctg.add_task("a")
        ctg.add_task("work")
        ctg.add_task("end", NodeKind.OR)
        ctg.add_conditional_edge("a", "work", "x1", comm_kbytes=1.0)
        ctg.add_edge("work", "end", comm_kbytes=1.0)
        ctg.add_edge("a", "end", comm_kbytes=0.5)
        ctg.declare_outcomes("a", ["x1", "x2"])
        ctg.default_probabilities = {"a": {"x1": 0.5, "x2": 0.5}}
        ctg.validate()

        scenarios = enumerate_scenarios(ctg)
        assert len(scenarios) == 2
        actives = {str(s.product): s.active for s in scenarios}
        assert "work" in actives["x1"]
        assert "work" not in actives["x2"]

        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=1))
        set_deadline_from_makespan(ctg, platform, 1.5)
        result = schedule_online(ctg, platform)
        result.schedule.validate()


class TestLargerGraphs:
    @pytest.mark.parametrize("seed", [31, 32])
    def test_online_on_category2(self, seed):
        ctg = generate_ctg(GeneratorConfig(nodes=22, branch_nodes=3, category=2, seed=seed))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=seed))
        set_deadline_from_makespan(ctg, platform, 1.3)
        result = schedule_online(ctg, platform)
        result.schedule.validate()
        assert result.schedule.meets_deadline()
