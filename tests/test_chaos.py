"""The chaos experiment: spec construction, canonical artifacts, and
the ``repro chaos`` CLI verb."""

import json

import pytest

from repro.__main__ import main
from repro.experiments import (
    canonical_artifact_payload,
    chaos_spec,
    fault_plan_catalogue,
    load_artifact,
    run_spec,
    validate_artifact,
    write_artifact,
)
from repro.experiments.chaos import SMOKE_PLANS

SMALL = dict(
    workloads=("mpeg",),
    plans=("overrun",),
    policies=("default", "none"),
    length=60,
    train=20,
)

SMALL_ARGS = [
    "chaos",
    "--workloads", "mpeg",
    "--plans", "overrun",
    "--policies", "default", "none",
    "--length", "60",
]


class TestCatalogue:
    def test_plans_are_valid_and_distinctly_seeded(self):
        catalogue = fault_plan_catalogue()
        assert set(SMOKE_PLANS) <= set(catalogue)
        seeds = [plan.seed for plan in catalogue.values()]
        assert len(set(seeds)) == len(seeds)
        for name, plan in catalogue.items():
            assert plan.name == name
            assert plan.diagnose() == []

    def test_seed_parameter_shifts_every_plan(self):
        a, b = fault_plan_catalogue(1), fault_plan_catalogue(2)
        for name in a:
            assert a[name].seed != b[name].seed


class TestChaosSpec:
    def test_cells_cover_the_product(self):
        spec = chaos_spec(**SMALL)
        assert [cell.key for cell in spec.cells] == [
            "mpeg:overrun:default",
            "mpeg:overrun:none",
        ]
        assert "instances" in spec.context

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError, match="unknown fault plan"):
            chaos_spec(("mpeg",), plans=("nonsense",))

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown degradation policy"):
            chaos_spec(("mpeg",), policies=("yolo",))

    def test_rows_and_summary(self):
        report = run_spec(chaos_spec(**SMALL), jobs=1)
        result = report.result
        assert len(result.rows) == 2
        by_policy = {row.policy: row for row in result.rows}
        assert by_policy["default"].faults == by_policy["none"].faults
        assert 0.0 <= result.overall_recovery_rate() <= 1.0
        assert "recovery rate" in result.format()


class TestCanonicalArtifacts:
    def test_volatile_fields_zeroed_data_kept(self):
        report = run_spec(chaos_spec(**SMALL), jobs=2)
        payload = canonical_artifact_payload(report)
        validate_artifact(payload)
        assert payload["jobs"] == 0
        assert payload["seconds"] == 0.0
        assert payload["cache"]["hits"] == 0
        assert all(cell["seconds"] == 0.0 for cell in payload["cells"])
        assert all(not cell["cached"] for cell in payload["cells"])
        assert all(t == 0.0 for t in payload["profile"]["timings"].values())
        # the deterministic content survives
        assert payload["result"]["rows"]
        assert payload["profile"]["counters"]

    def test_byte_stable_across_jobs(self, tmp_path):
        serial = run_spec(chaos_spec(**SMALL), jobs=1)
        parallel = run_spec(chaos_spec(**SMALL), jobs=2)
        a = write_artifact(tmp_path / "a", serial, canonical=True)
        b = write_artifact(tmp_path / "b", parallel, canonical=True)
        assert a.read_bytes() == b.read_bytes()


class TestChaosVerb:
    def test_text_output_and_exit_code(self, capsys):
        assert main(SMALL_ARGS) == 0
        out = capsys.readouterr().out
        assert "Chaos matrix" in out
        assert "recovery rate" in out

    def test_json_output_is_canonical(self, capsys):
        assert main(SMALL_ARGS + ["--format", "json", "--jobs", "2"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_artifact(payload)
        assert payload["experiment"] == "chaos"
        assert payload["jobs"] == 0
        assert payload["seconds"] == 0.0

    def test_artifact_byte_stable_across_runs(self, tmp_path, capsys):
        assert main(SMALL_ARGS + ["--artifacts-dir", str(tmp_path / "x")]) == 0
        assert main(SMALL_ARGS + ["--artifacts-dir", str(tmp_path / "y")]) == 0
        capsys.readouterr()
        first = (tmp_path / "x" / "chaos.json").read_bytes()
        second = (tmp_path / "y" / "chaos.json").read_bytes()
        assert first == second
        validate_artifact(load_artifact(tmp_path / "x" / "chaos.json"))

    def test_gate_passes_on_small_matrix(self, capsys):
        assert main(SMALL_ARGS + ["--gate"]) == 0
        assert "chaos gate passed" in capsys.readouterr().err

    def test_unknown_plan_exits_2(self, capsys):
        assert main(["chaos", "--plans", "nonsense"]) == 2
        assert "unknown fault plan" in capsys.readouterr().err
