"""Tests for the re-scheduling cooldown extension."""

import pytest

from repro.adaptive import AdaptiveConfig, AdaptiveController
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import set_deadline_from_makespan


def make_controller(cooldown, threshold=0.2, window=4):
    ctg = two_sided_branch_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=8))
    set_deadline_from_makespan(ctg, platform, 1.5)
    return AdaptiveController(
        ctg,
        platform,
        {"fork": {"h": 0.5, "l": 0.5}},
        AdaptiveConfig(window_size=window, threshold=threshold, cooldown=cooldown),
    )


class TestCooldown:
    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(cooldown=-1)

    def test_cooldown_suppresses_rapid_recalls(self):
        """An alternating stream trips the threshold repeatedly; the
        cooldown must bound the call rate."""
        free = make_controller(cooldown=0)
        limited = make_controller(cooldown=20)
        stream = (["h"] * 4 + ["l"] * 4) * 10
        for label in stream:
            free.observe({"fork": label})
            limited.observe({"fork": label})
        assert limited.calls < free.calls
        # calls at least `cooldown` instances apart
        for a, b in zip(limited.call_log, limited.call_log[1:]):
            assert b - a >= 20

    def test_zero_cooldown_is_default_behaviour(self):
        a = make_controller(cooldown=0)
        stream = ["h"] * 4 + ["l"] * 4
        calls = sum(bool(a.observe({"fork": s})) for s in stream)
        assert calls == a.calls
