"""Exporters: Chrome trace-event JSON, canonical metrics snapshots,
text timelines — and their stability contracts (byte-identical
snapshots across runs and across ``--jobs`` values)."""

import json

import pytest

from repro.adaptive.controller import AdaptiveConfig
from repro.ctg.examples import two_sided_branch_ctg
from repro.experiments import Cell, ExperimentSpec, run_spec
from repro.obs import (
    METRICS_SCHEMA,
    Tracer,
    chrome_trace,
    derive_run_metrics,
    metrics_snapshot,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.sim.runner import run_adaptive
from repro.workloads.traces import drifting_trace

from .test_engine import _square_spec
from .test_stretching_edge_cases import uniform_platform


def _small_run(tracer=None):
    ctg = two_sided_branch_ctg()
    ctg.deadline = 60.0
    platform = uniform_platform(ctg, pes=1)
    trace = drifting_trace(ctg, 12, seed=3)
    return run_adaptive(
        ctg, platform, trace, ctg.default_probabilities,
        config=AdaptiveConfig(window_size=4, threshold=0.05),
        tracer=tracer,
    )


@pytest.fixture(scope="module")
def traced_small_run():
    tracer = Tracer()
    result = _small_run(tracer)
    return result, tracer


class TestChromeTrace:
    def test_real_run_validates_clean(self, traced_small_run):
        _, tracer = traced_small_run
        payload = chrome_trace(tracer)
        assert validate_chrome_trace(payload) == []

    def test_runtime_track_is_pid_one(self, traced_small_run):
        _, tracer = traced_small_run
        payload = chrome_trace(tracer)
        names = {
            r["pid"]: r["args"]["name"]
            for r in payload["traceEvents"]
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names[1] == "runtime"
        assert set(names.values()) >= {"runtime", "pe:pe0"}

    def test_wall_and_sim_scaling(self):
        tracer = Tracer()
        tracer.add_span("stage-like", 1.0, 2.0, category="cell", track="engine")
        tracer.add_span("task", 1.0, 2.0, category="sim.task", track="pe:0")
        records = {
            r["name"]: r for r in chrome_trace(tracer)["traceEvents"] if r["ph"] == "X"
        }
        assert records["stage-like"]["ts"] == pytest.approx(1e6)  # seconds → µs
        assert records["task"]["ts"] == pytest.approx(1e3)  # time units → ms

    def test_span_attrs_become_args(self, traced_small_run):
        _, tracer = traced_small_run
        payload = chrome_trace(tracer)
        task = next(
            r for r in payload["traceEvents"]
            if r["ph"] == "X" and r.get("cat") == "sim.task"
        )
        assert "speed" in task["args"]

    def test_events_render_as_instants(self, traced_small_run):
        _, tracer = traced_small_run
        payload = chrome_trace(tracer)
        instants = [r for r in payload["traceEvents"] if r["ph"] == "i"]
        assert len(instants) == len(tracer.events)
        assert all(r["s"] == "t" for r in instants)

    def test_validator_flags_broken_records(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"traceEvents": "nope"}) != []
        problems = validate_chrome_trace(
            {
                "traceEvents": [
                    {"ph": "X", "ts": 0.0, "dur": 1, "pid": 1, "tid": 1},  # no name
                    {"name": "a", "ph": "X", "ts": 0.0, "pid": 1, "tid": 1},  # no dur
                    {"name": "b", "ph": "X", "ts": 0.0, "dur": -1, "pid": 1, "tid": 1},
                    {"name": "c", "ph": "i", "pid": 1, "tid": 1},  # no ts
                    {"name": "d", "ph": "i", "ts": 0.0, "pid": "x", "tid": 1},
                ]
            }
        )
        assert len(problems) == 5

    def test_write_round_trips_and_refuses_invalid(self, traced_small_run, tmp_path):
        _, tracer = traced_small_run
        path = write_chrome_trace(tmp_path / "run.trace.json", tracer)
        payload = json.loads(path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["displayTimeUnit"] == "ms"
        with pytest.raises(ValueError, match="invalid Chrome trace"):
            write_chrome_trace(tmp_path / "bad.json", Tracer.from_dict(
                {"spans": [{"name": "", "start": 0.0, "end": 1.0}]}
            ))


class TestMetricsSnapshot:
    def test_snapshot_shape(self, traced_small_run):
        result, tracer = traced_small_run
        snap = metrics_snapshot(
            profile=result.profile,
            tracer=tracer,
            derived=derive_run_metrics(result, tracer=tracer),
        )
        assert snap["schema"] == METRICS_SCHEMA
        assert snap["counters"] == dict(sorted(result.profile.counters.items()))
        assert snap["stage_calls"] == dict(sorted(result.profile.calls.items()))
        assert "stage_seconds" in snap
        assert snap["spans"] == tracer.span_counts()
        assert snap["events"] == tracer.event_counts()
        assert "run.total_energy" in snap["derived"]

    def test_canonical_drops_wall_clock_values(self, traced_small_run):
        result, tracer = traced_small_run
        snap = metrics_snapshot(
            profile=result.profile,
            tracer=tracer,
            derived=derive_run_metrics(result, tracer=tracer),
            canonical=True,
        )
        assert "stage_seconds" not in snap
        assert "run.reschedule_latency" not in snap["derived"]
        assert "run.total_energy" in snap["derived"]

    def test_two_runs_write_identical_canonical_bytes(self, tmp_path):
        paths = []
        for index in range(2):
            tracer = Tracer()
            result = _small_run(tracer)
            snap = metrics_snapshot(
                profile=result.profile,
                tracer=tracer,
                derived=derive_run_metrics(result, tracer=tracer),
                canonical=True,
            )
            paths.append(write_metrics_snapshot(tmp_path / f"{index}.json", snap))
        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_undeclared_profile_names_warn(self, traced_small_run):
        _, _ = traced_small_run
        from repro.profiling import StageProfiler

        prof = StageProfiler()
        prof.count("path_cache.hti")
        with pytest.warns(UserWarning, match="path_cache.hti"):
            metrics_snapshot(profile=prof)


class TestEngineTracing:
    def _snapshot_bytes(self, tmp_path, jobs, tag):
        tracer = Tracer()
        report = run_spec(_square_spec(), jobs=jobs, tracer=tracer)
        snap = metrics_snapshot(tracer=tracer, canonical=True)
        path = write_metrics_snapshot(tmp_path / f"{tag}.json", snap)
        return report, tracer, path.read_bytes()

    def test_one_cell_span_per_cell_in_declaration_order(self, tmp_path):
        report, tracer, _ = self._snapshot_bytes(tmp_path, 1, "order")
        cells = [s for s in tracer.spans if s.category == "cell"]
        assert [s.name for s in cells] == [c.key for c in report.cells]
        starts = [s.start for s in cells]
        assert starts == sorted(starts)
        assert all(s.track == "engine" for s in cells)

    def test_snapshot_is_jobs_invariant(self, tmp_path):
        _, _, serial = self._snapshot_bytes(tmp_path, 1, "serial")
        _, _, parallel = self._snapshot_bytes(tmp_path, 2, "parallel")
        assert serial == parallel


class TestTimeline:
    def test_renders_tracks_spans_and_events(self, traced_small_run):
        _, tracer = traced_small_run
        text = render_timeline(tracer)
        assert "track runtime:" in text
        assert "track pe:pe0:" in text
        assert "online" in text
        assert " tu)" in text  # sim spans in time units
        assert " ms)" in text  # wall spans in milliseconds

    def test_limit_elides_long_tracks(self, traced_small_run):
        _, tracer = traced_small_run
        text = render_timeline(tracer, limit=3)
        assert "more" in text

    def test_empty_tracer(self):
        assert render_timeline(Tracer()) == "(empty trace)"
