"""Unit tests for the online stretching heuristic (paper Figure 2)."""

import pytest

from repro.ctg import (
    ConditionalTaskGraph,
    GeneratorConfig,
    figure1_ctg,
    generate_ctg,
)
from repro.ctg.examples import diamond_ctg, two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import (
    SchedulingError,
    dls_schedule,
    set_deadline_from_makespan,
    stretch_schedule,
)


def uniform_platform(ctg, pes=1, wcet=10.0, energy=10.0):
    platform = Platform([ProcessingElement(f"pe{i}", min_speed=0.1) for i in range(pes)])
    if pes > 1:
        platform.connect_all(bandwidth=1.0, energy_per_kbyte=0.1)
    for task in ctg.tasks():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=energy)
    return platform


def chain_ctg(n=4):
    ctg = ConditionalTaskGraph(name="chain")
    prev = None
    for i in range(n):
        ctg.add_task(f"c{i}")
        if prev is not None:
            ctg.add_edge(prev, f"c{i}")
        prev = f"c{i}"
    ctg.validate()
    return ctg


class TestChainExactness:
    def test_chain_distributes_all_slack_evenly(self):
        """On an unconditional chain the heuristic must match the NLP
        optimum: every task at the same speed, deadline met exactly."""
        ctg = chain_ctg(5)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 100.0  # 2× the 50-unit chain
        stretch_schedule(sched, {})
        for task in ctg.tasks():
            assert sched.placement(task).speed == pytest.approx(0.5, rel=1e-6)
        assert sched.makespan() == pytest.approx(100.0)

    def test_tight_deadline_no_stretch(self):
        ctg = chain_ctg(3)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 30.0
        stretch_schedule(sched, {})
        for task in ctg.tasks():
            assert sched.placement(task).speed == pytest.approx(1.0)

    def test_infeasible_deadline_raises(self):
        ctg = chain_ctg(3)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 20.0
        with pytest.raises(SchedulingError):
            stretch_schedule(sched, {})

    def test_missing_deadline_raises(self):
        ctg = chain_ctg(3)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        with pytest.raises(SchedulingError):
            stretch_schedule(sched, {})


class TestDeadlineGuarantee:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_every_scenario_meets_deadline(self, seed):
        ctg = generate_ctg(GeneratorConfig(nodes=18, branch_nodes=2, seed=seed))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=seed))
        set_deadline_from_makespan(ctg, platform, 1.4)
        sched = dls_schedule(ctg, platform)
        stretch_schedule(sched)
        assert sched.meets_deadline()
        sched.validate()

    def test_loose_deadline_fully_used_on_critical_path(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=7))
        set_deadline_from_makespan(ctg, platform, 1.5)
        sched = dls_schedule(ctg, platform)
        stretch_schedule(sched)
        # With min_speed=0.25 and only 50% extra slack the critical path
        # should be stretched close to the deadline.
        assert sched.makespan() >= 0.9 * ctg.deadline


class TestProbabilityWeighting:
    def test_likely_arm_gets_more_slack(self):
        """The heavy-probability arm of a branch must receive at least
        as much slack as its mirror (paper: 'more slack ... to tasks
        that are more likely to be activated')."""
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        probs = {"fork": {"h": 0.9, "l": 0.1}}
        sched = dls_schedule(ctg, platform, probs)
        sched.ctg.deadline = 60.0
        report = stretch_schedule(sched, probs)
        assert report.slack_given["heavy"] > report.slack_given["light"]

    def test_unweighted_variant_treats_arms_alike(self):
        ctg = two_sided_branch_ctg()
        platform = uniform_platform(ctg, pes=1)
        probs = {"fork": {"h": 0.9, "l": 0.1}}
        sched = dls_schedule(ctg, platform, probs)
        sched.ctg.deadline = 60.0
        report = stretch_schedule(sched, probs, probability_weighted=False)
        assert report.slack_given["heavy"] == pytest.approx(
            report.slack_given["light"], rel=1e-6
        )

    def test_weighting_lowers_expected_energy_under_competition(self):
        """When a low-probability heavy arm competes for slack with an
        always-activated downstream task, probability-aware distribution
        must beat the unweighted ref-[9] flavour (that is the paper's
        criticism of [9]: it 'does not differentiate tasks with high
        activation probability from tasks with low')."""
        from repro.ctg import NodeKind

        ctg = ConditionalTaskGraph(name="compete")
        for name in ("A", "fork", "B", "C"):
            ctg.add_task(name)
        ctg.add_task("join", NodeKind.OR)
        ctg.add_task("D")
        ctg.add_edge("A", "fork")
        ctg.add_conditional_edge("fork", "B", "b")
        ctg.add_conditional_edge("fork", "C", "c")
        ctg.add_edge("B", "join")
        ctg.add_edge("C", "join")
        ctg.add_edge("join", "D")
        ctg.validate()
        platform = Platform([ProcessingElement("pe0", min_speed=0.1)])
        for task, wcet in {"A": 10, "fork": 10, "B": 10, "C": 40, "join": 10, "D": 40}.items():
            platform.set_task_profile(task, "pe0", wcet=wcet, energy=float(wcet))
        probs = {"fork": {"b": 0.9, "c": 0.1}}

        energies = {}
        for flag in (True, False):
            sched = dls_schedule(ctg, platform, probs)
            sched.ctg.deadline = 165.0
            stretch_schedule(sched, probs, probability_weighted=flag)
            energies[flag] = sched.expected_energy(probs)
        assert energies[True] < energies[False]


class TestReport:
    def test_report_covers_all_tasks(self):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=3))
        set_deadline_from_makespan(ctg, platform, 1.3)
        sched = dls_schedule(ctg, platform)
        report = stretch_schedule(sched)
        assert set(report.slack_given) == set(ctg.tasks())
        assert set(report.speeds) == set(ctg.tasks())
        assert report.path_count >= 4

    def test_slack_never_negative(self):
        ctg = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=11))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=11))
        set_deadline_from_makespan(ctg, platform, 1.2)
        sched = dls_schedule(ctg, platform)
        report = stretch_schedule(sched)
        assert all(slack >= 0 for slack in report.slack_given.values())

    def test_speeds_within_envelope(self):
        ctg = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=12))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=12))
        set_deadline_from_makespan(ctg, platform, 2.0)
        sched = dls_schedule(ctg, platform)
        stretch_schedule(sched)
        for task in ctg.tasks():
            placement = sched.placement(task)
            pe = platform.pe(placement.pe)
            assert pe.min_speed - 1e-9 <= placement.speed <= 1.0 + 1e-9


class TestDiamond:
    def test_parallel_arms_share_deadline(self):
        ctg = diamond_ctg()
        platform = uniform_platform(ctg, pes=2)
        sched = dls_schedule(ctg, platform)
        base = sched.makespan()
        sched.ctg.deadline = base * 2
        stretch_schedule(sched, {})
        assert sched.meets_deadline()
        assert sched.expected_energy({}) < 4 * 10.0  # strictly below nominal
