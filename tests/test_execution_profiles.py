"""Per-task execution-time distributions: model, generator, consumers.

The stochastic-workload axis (docs/algorithms.md §6.6): distributions
of actual execution time below the WCET, attached per task on the
platform, consumed by the trace runner (``et_seed``) and the batched
Monte-Carlo kernel (``use_execution_profiles``).
"""

import random

import numpy as np
import pytest

from repro.batch import monte_carlo
from repro.ctg import figure1_ctg
from repro.platform import (
    ExecutionTimeDistribution,
    PlatformConfig,
    generate_platform,
)
from repro.scheduling import set_deadline_from_makespan
from repro.sim import empirical_distribution
from repro.sim.runner import run_non_adaptive
from repro.workloads import movie_trace, mpeg_ctg, mpeg_platform


class TestDistribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExecutionTimeDistribution((), ())
        with pytest.raises(ValueError):
            ExecutionTimeDistribution((0.5, 1.0), (1.0,))
        with pytest.raises(ValueError):
            ExecutionTimeDistribution((0.0, 1.0), (1.0, 1.0))
        with pytest.raises(ValueError):
            ExecutionTimeDistribution((1.5,), (1.0,))
        with pytest.raises(ValueError):
            ExecutionTimeDistribution((0.5, 1.0), (0.0, 0.0))

    def test_mean_and_probabilities(self):
        dist = ExecutionTimeDistribution((0.5, 1.0), (1.0, 3.0))
        assert dist.probabilities() == (0.25, 0.75)
        assert dist.mean_ratio() == pytest.approx(0.875)

    def test_sampling_is_deterministic_and_in_support(self):
        dist = ExecutionTimeDistribution((0.4, 0.7, 1.0), (2.0, 5.0, 3.0))
        draws = [dist.sample(random.Random(9)) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]
        rng = random.Random(1)
        seen = {dist.sample(rng) for _ in range(300)}
        assert seen == {0.4, 0.7, 1.0}

    def test_sampling_tracks_weights(self):
        dist = ExecutionTimeDistribution((0.4, 1.0), (9.0, 1.0))
        rng = random.Random(3)
        draws = [dist.sample(rng) for _ in range(2000)]
        assert draws.count(0.4) / len(draws) == pytest.approx(0.9, abs=0.03)


class TestPlatformProfiles:
    def test_default_platform_has_no_profiles(self):
        platform = mpeg_platform()
        assert not platform.has_execution_profiles
        assert platform.execution_profiles() == []

    def test_set_and_query(self):
        platform = mpeg_platform()
        dist = ExecutionTimeDistribution((0.5, 1.0), (1.0, 1.0))
        platform.set_execution_profile("idct", dist)
        assert platform.has_execution_profiles
        assert platform.execution_profile("idct") is dist
        assert platform.execution_profile("nope") is None

    def test_generator_knob_attaches_distributions(self):
        ctg = figure1_ctg()
        platform = generate_platform(
            ctg.tasks(), PlatformConfig(pes=2, seed=3, et_levels=3)
        )
        profiles = dict(platform.execution_profiles())
        assert set(profiles) == set(ctg.tasks())
        for dist in profiles.values():
            assert len(dist.ratios) == 3
            assert dist.ratios[-1] == 1.0
            assert dist.ratios == tuple(sorted(dist.ratios))

    def test_generator_knob_leaves_wcet_stream_untouched(self):
        ctg = figure1_ctg()
        plain = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=3))
        with_et = generate_platform(
            ctg.tasks(), PlatformConfig(pes=2, seed=3, et_levels=3)
        )
        for task in ctg.tasks():
            for pe in plain.pe_names:
                assert plain.wcet(task, pe) == with_et.wcet(task, pe)
                assert plain.energy(task, pe) == with_et.energy(task, pe)


def mpeg_with_profiles():
    ctg = mpeg_ctg()
    platform = mpeg_platform()
    set_deadline_from_makespan(ctg, platform, 1.4)
    dist = ExecutionTimeDistribution((0.5, 0.8, 1.0), (4.0, 4.0, 2.0))
    for task in sorted(ctg.tasks()):
        platform.set_execution_profile(task, dist)
    return ctg, platform


class TestRunnerSampling:
    def test_et_seed_is_deterministic(self):
        ctg, platform = mpeg_with_profiles()
        trace = movie_trace(ctg, "Airwolf", length=80)
        probs = empirical_distribution(ctg, trace[:30])
        a = run_non_adaptive(ctg, platform, trace[30:], probs, et_seed=5)
        b = run_non_adaptive(ctg, platform, trace[30:], probs, et_seed=5)
        assert a.total_energy == b.total_energy
        assert a.deadline_misses == b.deadline_misses

    def test_sampled_runs_spend_less_energy_than_wcet(self):
        ctg, platform = mpeg_with_profiles()
        trace = movie_trace(ctg, "Airwolf", length=80)
        probs = empirical_distribution(ctg, trace[:30])
        wcet = run_non_adaptive(ctg, platform, trace[30:], probs)
        sampled = run_non_adaptive(ctg, platform, trace[30:], probs, et_seed=5)
        assert sampled.total_energy < wcet.total_energy

    def test_et_seed_without_profiles_is_byte_identical(self):
        ctg = mpeg_ctg()
        platform = mpeg_platform()
        set_deadline_from_makespan(ctg, platform, 1.4)
        trace = movie_trace(ctg, "Airwolf", length=80)
        probs = empirical_distribution(ctg, trace[:30])
        plain = run_non_adaptive(ctg, platform, trace[30:], probs)
        seeded = run_non_adaptive(ctg, platform, trace[30:], probs, et_seed=5)
        assert plain.total_energy == seeded.total_energy


class TestMonteCarloSampling:
    def test_profiles_shift_the_distributions_down(self):
        ctg, platform = mpeg_with_profiles()
        base = monte_carlo(ctg, platform, 500, seed=2)
        sampled = monte_carlo(
            ctg, platform, 500, seed=2, use_execution_profiles=True
        )
        assert sampled.mean_finish < base.mean_finish
        assert sampled.mean_energy < base.mean_energy

    def test_flag_off_preserves_draw_order(self):
        ctg, platform = mpeg_with_profiles()
        base = monte_carlo(ctg, platform, 300, seed=2)
        off = monte_carlo(
            ctg, platform, 300, seed=2, use_execution_profiles=False
        )
        assert np.array_equal(base.label_samples, off.label_samples)
        assert np.array_equal(base.finish_times, off.finish_times)
        assert np.array_equal(base.energies, off.energies)

    def test_profiles_compose_with_wcet_range(self):
        ctg, platform = mpeg_with_profiles()
        ranged = monte_carlo(ctg, platform, 300, seed=2, wcet_range=(0.9, 1.0))
        both = monte_carlo(
            ctg, platform, 300, seed=2, wcet_range=(0.9, 1.0),
            use_execution_profiles=True,
        )
        # branch + wcet_range draws come first, so the sampled scenarios
        # agree; the extra ratio factors only shrink times further
        assert np.array_equal(ranged.label_samples, both.label_samples)
        assert float(both.finish_times.mean()) < float(ranged.finish_times.mean())
