"""Unit + property tests for the sliding-window profiler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.adaptive import BranchWindow, WindowProfiler


class TestBranchWindow:
    def test_empty_window(self):
        w = BranchWindow("b", ["x", "y"], size=4)
        assert len(w) == 0
        assert not w.full
        assert w.probability("x") == 0.0
        assert w.distribution() == {"x": 0.0, "y": 0.0}

    def test_push_and_probability(self):
        w = BranchWindow("b", ["x", "y"], size=4)
        for label in ("x", "x", "y", "x"):
            w.push(label)
        assert w.full
        assert w.probability("x") == pytest.approx(0.75)
        assert w.probability("y") == pytest.approx(0.25)

    def test_window_evicts_oldest(self):
        w = BranchWindow("b", ["x", "y"], size=2)
        w.push("x")
        w.push("x")
        w.push("y")  # evicts the first x
        assert w.probability("x") == pytest.approx(0.5)

    def test_unknown_label_rejected(self):
        w = BranchWindow("b", ["x", "y"], size=2)
        with pytest.raises(ValueError):
            w.push("z")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            BranchWindow("b", ["x", "y"], size=0)
        with pytest.raises(ValueError):
            BranchWindow("b", ["only"], size=4)

    def test_seed_approximates_distribution(self):
        w = BranchWindow("b", ["x", "y"], size=20)
        w.seed({"x": 0.7, "y": 0.3})
        assert w.full
        assert w.probability("x") == pytest.approx(0.7, abs=0.051)

    def test_seed_uniform(self):
        w = BranchWindow("b", ["x", "y", "z"], size=21)
        w.seed({"x": 1 / 3, "y": 1 / 3, "z": 1 / 3})
        assert w.probability("x") == pytest.approx(1 / 3, abs=0.05)

    @settings(max_examples=30, deadline=None)
    @given(p=st.floats(0.0, 1.0), size=st.integers(1, 50))
    def test_seed_bounded_error(self, p, size):
        """Property: seeding error is bounded by one sample weight."""
        w = BranchWindow("b", ["x", "y"], size=size)
        w.seed({"x": p, "y": 1 - p})
        assert abs(w.probability("x") - p) <= 1.0 / size + 1e-9

    def test_distribution_sums_to_one_when_filled(self):
        w = BranchWindow("b", ["x", "y", "z"], size=5)
        for label in ("x", "y", "z", "x", "x"):
            w.push(label)
        assert sum(w.distribution().values()) == pytest.approx(1.0)


class TestWindowProfiler:
    LABELS = {"b1": ["x", "y"], "b2": ["p", "q"]}

    def test_observe_updates_only_named_branches(self):
        prof = WindowProfiler(self.LABELS, size=4)
        prof.observe({"b1": "x"})
        assert len(prof.windows["b1"]) == 1
        assert len(prof.windows["b2"]) == 0

    def test_observe_ignores_unknown_branches(self):
        prof = WindowProfiler(self.LABELS, size=4)
        prof.observe({"zz": "x"})  # silently skipped
        assert all(len(w) == 0 for w in prof.windows.values())

    def test_initial_seeding(self):
        initial = {"b1": {"x": 0.75, "y": 0.25}, "b2": {"p": 0.5, "q": 0.5}}
        prof = WindowProfiler(self.LABELS, size=20, initial=initial)
        assert prof.windows["b1"].probability("x") == pytest.approx(0.75, abs=0.051)

    def test_max_deviation_zero_when_matching(self):
        initial = {"b1": {"x": 0.5, "y": 0.5}, "b2": {"p": 0.5, "q": 0.5}}
        prof = WindowProfiler(self.LABELS, size=4, initial=initial)
        assert prof.max_deviation(initial) == pytest.approx(0.0)

    def test_max_deviation_tracks_shift(self):
        initial = {"b1": {"x": 0.5, "y": 0.5}, "b2": {"p": 0.5, "q": 0.5}}
        prof = WindowProfiler(self.LABELS, size=4, initial=initial)
        for _ in range(4):
            prof.observe({"b1": "x"})
        assert prof.max_deviation(initial) == pytest.approx(0.5)

    def test_max_deviation_skips_empty_windows(self):
        prof = WindowProfiler(self.LABELS, size=4)  # unseeded
        reference = {"b1": {"x": 0.5, "y": 0.5}, "b2": {"p": 0.5, "q": 0.5}}
        assert prof.max_deviation(reference) == 0.0

    def test_distributions_shape(self):
        prof = WindowProfiler(self.LABELS, size=4)
        prof.observe({"b1": "x", "b2": "q"})
        dists = prof.distributions()
        assert dists["b1"] == {"x": 1.0, "y": 0.0}
        assert dists["b2"] == {"p": 0.0, "q": 1.0}
