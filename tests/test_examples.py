"""Smoke tests: the shipped example scripts must run end to end.

Only the fast examples run here (the MPEG/WLAN ones replay thousands
of instances and belong to the benchmark tier); each is executed in a
subprocess exactly as a user would run it.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=180):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )


class TestExamples:
    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "Policy comparison" in result.stdout
        assert "deadline met: True" in result.stdout

    def test_random_ctg_sweep(self):
        result = run_example("random_ctg_sweep.py", "1.4")
        assert result.returncode == 0, result.stderr
        assert "Normalised expected energy" in result.stdout

    def test_monte_carlo_sweep(self):
        result = run_example("monte_carlo_sweep.py", "2000")
        assert result.returncode == 0, result.stderr
        assert "instances/s" in result.stdout
        assert "oracle check: executor agrees exactly" in result.stdout
        assert "miss rate" in result.stdout

    def test_stochastic_execution(self):
        result = run_example("stochastic_execution.py", "1000")
        assert result.returncode == 0, result.stderr
        assert "single kernel call" in result.stdout
        assert "reclamations" in result.stdout
        assert "ok: reclamation saved energy" in result.stdout

    def test_schedule_inspection(self, tmp_path):
        result = run_example("schedule_inspection.py", str(tmp_path))
        assert result.returncode == 0, result.stderr
        assert (tmp_path / "mpeg_schedule.svg").exists()
        assert (tmp_path / "mpeg_instance.json").exists()
        assert "Per-scenario execution profile" in result.stdout
