"""Unit tests for the fault-injection subsystem (plans, injectors,
logs, policies, and the FAULT checker)."""

import pytest

from repro.check import check_fault_plan
from repro.faults import (
    INJECTOR_KINDS,
    DegradationPolicy,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    FaultPlanError,
    InjectorSpec,
    RecoveryAction,
)
from repro.faults.injectors import no_faults, rotate_label
from repro.faults.policy import POLICIES
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import PlatformConfig, generate_platform


def toy_instance():
    ctg = two_sided_branch_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=7))
    return ctg, platform


def overrun_plan(seed=11, rate=0.5, magnitude=1.5, **kwargs):
    return FaultPlan(
        "t", seed, (InjectorSpec("task_overrun", rate, magnitude, **kwargs),)
    )


class TestInjectorSpec:
    def test_round_trip(self):
        spec = InjectorSpec(
            "link_jitter", 0.25, 3.0, targets=("a->b",), start=5, stop=50
        )
        assert InjectorSpec.from_dict(spec.to_dict()) == spec

    def test_missing_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="kind"):
            InjectorSpec.from_dict({"rate": 0.5})

    def test_unknown_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown field"):
            InjectorSpec.from_dict({"kind": "task_overrun", "severity": 2.0})

    def test_wrong_type_rejected(self):
        with pytest.raises(FaultPlanError, match="wrong type"):
            InjectorSpec.from_dict({"kind": "task_overrun", "rate": "often"})

    def test_activation_window(self):
        spec = InjectorSpec("task_overrun", 1.0, 2.0, start=3, stop=6)
        assert [spec.active_at(i) for i in range(8)] == [
            False, False, False, True, True, True, False, False,
        ]
        open_ended = InjectorSpec("task_overrun", 1.0, 2.0, start=2)
        assert open_ended.active_at(10 ** 9)


class TestFaultPlan:
    def test_round_trip_and_fingerprint_stability(self):
        plan = overrun_plan()
        clone = FaultPlan.from_dict(plan.to_dict())
        assert clone == plan
        assert clone.fingerprint() == plan.fingerprint()

    def test_seed_changes_fingerprint(self):
        plan = overrun_plan(seed=1)
        assert plan.with_seed(2).fingerprint() != plan.fingerprint()
        assert plan.with_seed(2).injectors == plan.injectors

    def test_non_mapping_rejected(self):
        with pytest.raises(FaultPlanError, match="must be an object"):
            FaultPlan.from_dict(["not", "a", "plan"])

    def test_unknown_plan_field_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown field"):
            FaultPlan.from_dict({"name": "x", "seed": 1, "faults": []})


class TestDiagnose:
    def codes(self, plan, with_instance=False):
        ctg, platform = toy_instance() if with_instance else (None, None)
        return [d.code for d in plan.diagnose(ctg, platform)]

    def test_valid_plan_is_clean(self):
        assert self.codes(overrun_plan()) == []

    def test_unknown_kind(self):
        plan = FaultPlan("t", 1, (InjectorSpec("cosmic_ray", 0.5),))
        assert self.codes(plan) == ["FAULT001"]

    def test_rate_out_of_range(self):
        assert self.codes(overrun_plan(rate=1.5)) == ["FAULT002"]

    def test_magnitude_rules_per_kind(self):
        assert self.codes(overrun_plan(magnitude=0.9)) == ["FAULT003"]
        additive = overrun_plan(magnitude=-1.0, mode="additive")
        assert self.codes(additive) == ["FAULT003"]
        freeze = FaultPlan("t", 1, (InjectorSpec("pe_freeze", 0.5, 1.5),))
        assert self.codes(freeze) == ["FAULT003"]

    def test_unknown_overrun_mode(self):
        assert self.codes(overrun_plan(mode="sideways")) == ["FAULT003"]

    def test_empty_window(self):
        assert self.codes(overrun_plan(start=5, stop=5)) == ["FAULT004"]

    def test_targets_resolved_against_instance(self):
        plan = overrun_plan(targets=("heavy",))
        assert self.codes(plan, with_instance=True) == []
        bad = overrun_plan(targets=("nonexistent",))
        assert self.codes(bad, with_instance=True) == ["FAULT005"]

    def test_targets_on_untargeted_kind(self):
        plan = FaultPlan(
            "t", 1, (InjectorSpec("reschedule_drop", 0.5, targets=("x",)),)
        )
        assert self.codes(plan) == ["FAULT005"]

    def test_no_injectors_warns(self):
        findings = FaultPlan("empty", 1).diagnose()
        assert [d.code for d in findings] == ["FAULT006"]
        assert findings[0].severity.label == "warning"


class TestCheckFaultPlan:
    def test_accepts_plan_object_and_payload(self):
        ctg, platform = toy_instance()
        plan = overrun_plan()
        for target in (plan, plan.to_dict()):
            report = check_fault_plan(target, ctg=ctg, platform=platform)
            assert report.ok
            assert report.checks_run == ["fault_plan"]

    def test_malformed_payload_reports_instead_of_raising(self):
        report = check_fault_plan({"kind": "not-a-plan"})
        assert not report.ok
        assert report.codes() == ["FAULT001"]


class TestFaultInjector:
    def test_deterministic_and_order_independent(self):
        ctg, platform = toy_instance()
        plan = FaultPlan(
            "mix",
            99,
            (
                InjectorSpec("task_overrun", 0.4, 1.5),
                InjectorSpec("pe_slowdown", 0.3, 1.2),
                InjectorSpec("reschedule_drop", 0.2),
                InjectorSpec("branch_corruption", 0.3),
            ),
        )
        forward = FaultInjector(plan, ctg=ctg, platform=platform).timeline(40)
        backward = [
            FaultInjector(plan, ctg=ctg, platform=platform).faults_at(i)
            for i in reversed(range(40))
        ]
        assert forward == list(reversed(backward))
        assert any(not f.empty for f in forward)

    def test_draws_are_random_access(self):
        ctg, platform = toy_instance()
        injector = FaultInjector(overrun_plan(seed=5), ctg=ctg, platform=platform)
        # the same instance resolves identically no matter what ran before
        first = injector.faults_at(17)
        injector.timeline(30)
        assert injector.faults_at(17) == first

    def test_targets_stay_eligible(self):
        ctg, platform = toy_instance()
        plan = FaultPlan(
            "p",
            3,
            (
                InjectorSpec("task_overrun", 1.0, 2.0),
                InjectorSpec("pe_slowdown", 1.0, 1.5),
            ),
        )
        injector = FaultInjector(plan, ctg=ctg, platform=platform)
        tasks, pes = set(ctg.tasks()), set(platform.pe_names)
        for faults in injector.timeline(25):
            assert set(faults.wcet_factors) <= tasks
            assert set(faults.pe_factors) <= pes

    def test_explicit_targets_hit_every_firing(self):
        ctg, platform = toy_instance()
        plan = overrun_plan(rate=1.0, targets=("heavy", "light"))
        faults = FaultInjector(plan, ctg=ctg, platform=platform).faults_at(0)
        assert set(faults.wcet_factors) == {"heavy", "light"}

    def test_combination_rules(self):
        ctg, platform = toy_instance()
        plan = FaultPlan(
            "stack",
            8,
            (
                InjectorSpec("task_overrun", 1.0, 1.5, targets=("heavy",)),
                InjectorSpec("task_overrun", 1.0, 2.0, targets=("heavy",)),
                InjectorSpec("task_overrun", 1.0, 3.0, mode="additive", targets=("heavy",)),
                InjectorSpec("reschedule_delay", 1.0, 2.0),
                InjectorSpec("reschedule_delay", 1.0, 4.0),
            ),
        )
        faults = FaultInjector(plan, ctg=ctg, platform=platform).faults_at(0)
        assert faults.wcet_factors["heavy"] == pytest.approx(3.0)
        assert faults.wcet_additions["heavy"] == pytest.approx(3.0)
        assert faults.delay_reschedule == 4
        assert faults.perturbs_timing

    def test_link_jitter_severity_in_declared_range(self):
        ctg, platform = toy_instance()
        plan = FaultPlan("j", 4, (InjectorSpec("link_jitter", 1.0, 3.0),))
        injector = FaultInjector(plan, ctg=ctg, platform=platform)
        severities = [
            factor
            for faults in injector.timeline(30)
            for factor in faults.edge_factors.values()
        ]
        assert severities
        assert all(1.0 <= s <= 3.0 for s in severities)
        assert len(set(severities)) > 1  # per-firing draw, not a constant

    def test_no_faults_helper(self):
        faults = no_faults(7)
        assert faults.empty
        assert not faults.perturbs_timing
        assert faults.instance == 7


class TestRotateLabel:
    def test_rotates_within_declared_outcomes(self):
        assert rotate_label(("a", "b", "c"), "a", 1) == "b"
        assert rotate_label(("a", "b", "c"), "c", 2) == "b"

    def test_unknown_label_passes_through(self):
        assert rotate_label(("a", "b"), "z", 1) == "z"
        assert rotate_label((), "a", 1) == "a"


class TestFaultLog:
    def sample(self, order=1):
        log = FaultLog()
        events = [
            FaultEvent(0, 0, "task_overrun", "t1", 1.5),
            FaultEvent(2, 1, "pe_slowdown", "pe0", 1.2),
        ]
        actions = [
            RecoveryAction(0, "escalate", "2 tasks to max speed"),
            RecoveryAction(2, "recovered"),
        ]
        for event in events[::order]:
            log.record(event)
        for action in actions[::order]:
            log.act(action)
        log.threatened, log.recovered = 2, 2
        log.policy_energy, log.baseline_energy = 110.0, 100.0
        return log

    def test_equality_is_append_order_independent(self):
        assert self.sample(order=1) == self.sample(order=-1)

    def test_round_trip(self):
        log = self.sample()
        assert FaultLog.from_dict(log.to_dict()) == log

    def test_summary_and_rates(self):
        log = self.sample()
        summary = log.summary()
        assert summary["faults"] == 2
        assert summary["by_kind"] == {"pe_slowdown": 1, "task_overrun": 1}
        assert summary["recovery_rate"] == pytest.approx(1.0)
        assert summary["energy_cost_of_recovery"] == pytest.approx(10.0)

    def test_empty_log_recovery_rate_is_one(self):
        assert FaultLog().recovery_rate() == 1.0

    def test_merge_accumulates(self):
        merged = FaultLog().merge(self.sample()).merge(self.sample())
        assert merged.fault_count == 4
        assert merged.threatened == 4
        assert merged.energy_cost_of_recovery() == pytest.approx(20.0)


class TestDegradationPolicy:
    def test_named_policies_cover_cli_names(self):
        assert set(POLICIES) == {"default", "none", "escalate-only"}
        assert POLICIES["none"].is_none
        assert not POLICIES["default"].is_none
        assert not POLICIES["escalate-only"].emergency_reschedule

    def test_round_trip(self):
        policy = DegradationPolicy(overrun_margin=0.1, max_retries=5)
        assert DegradationPolicy.from_dict(policy.to_dict()) == policy


def test_injector_kinds_all_have_target_domains():
    from repro.faults.plan import _TARGET_DOMAIN

    assert set(_TARGET_DOMAIN) == set(INJECTOR_KINDS)
