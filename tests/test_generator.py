"""Unit + property tests for the TGFF-like CTG generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctg import (
    GeneratorConfig,
    enumerate_paths,
    enumerate_scenarios,
    generate_ctg,
    paper_table1_configs,
    paper_table4_configs,
)
from repro.ctg.minterms import gamma


class TestConfigValidation:
    def test_bad_category_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(category=3)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(nodes=5, branch_nodes=3, category=1)

    def test_single_outcome_rejected(self):
        with pytest.raises(ValueError):
            GeneratorConfig(outcomes_per_branch=1)

    def test_minimum_nodes_formula(self):
        cfg = GeneratorConfig(nodes=30, branch_nodes=3, category=1)
        assert cfg.minimum_nodes() == 2 + 3 * 4
        cfg2 = GeneratorConfig(nodes=30, branch_nodes=3, category=2)
        assert cfg2.minimum_nodes() == 2 + 3 * 3


class TestDeterminism:
    def test_same_seed_same_graph(self):
        a = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=7))
        b = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=7))
        assert a.tasks() == b.tasks()
        assert list(a.edges()) == list(b.edges())
        assert a.default_probabilities == b.default_probabilities

    def test_different_seed_differs(self):
        a = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=7))
        b = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=2, seed=8))
        assert list(a.edges()) != list(b.edges()) or a.default_probabilities != b.default_probabilities


class TestCategory1:
    def test_exact_node_and_branch_count(self):
        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=1, seed=1))
        assert len(ctg) == 25
        assert len(ctg.branch_nodes()) == 3

    def test_single_source_single_sink(self):
        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=1, seed=2))
        assert len(ctg.sources()) == 1
        assert len(ctg.sinks()) == 1

    def test_probabilities_normalised(self):
        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=1, seed=3))
        for dist in ctg.default_probabilities.values():
            assert sum(dist.values()) == pytest.approx(1.0)
            assert all(0 < p < 1 for p in dist.values())


class TestCategory2:
    def test_exact_node_and_branch_count(self):
        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=2, seed=1))
        assert len(ctg) == 25
        assert len(ctg.branch_nodes()) == 3

    def test_no_or_nodes(self):
        from repro.ctg import NodeKind

        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=2, seed=4))
        assert all(ctg.kind(t) is not NodeKind.OR for t in ctg.tasks())

    def test_no_nested_branches(self):
        # No branch fork may lie in a conditional activation context.
        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=2, seed=5))
        g = gamma(ctg)
        for branch in ctg.branch_nodes():
            assert all(term.is_true() for term in g[branch])

    def test_scenario_count_is_power_of_outcomes(self):
        ctg = generate_ctg(GeneratorConfig(nodes=25, branch_nodes=3, category=2, seed=6))
        assert len(enumerate_scenarios(ctg)) == 2 ** 3

    def test_zero_branches_is_a_chain_family(self):
        ctg = generate_ctg(GeneratorConfig(nodes=10, branch_nodes=0, category=2, seed=7))
        assert len(ctg) == 10
        assert len(enumerate_scenarios(ctg)) == 1


class TestPaperConfigs:
    def test_table1_shapes(self):
        shapes = [(c.nodes, c.branch_nodes) for c in paper_table1_configs()]
        assert shapes == [(25, 3), (16, 1), (15, 2), (15, 2), (25, 3)]

    def test_table4_has_five_per_category(self):
        configs = paper_table4_configs()
        assert len(configs) == 10
        assert [c.category for c in configs] == [1] * 5 + [2] * 5

    def test_all_paper_graphs_build_and_validate(self):
        for cfg in paper_table1_configs() + paper_table4_configs():
            ctg = generate_ctg(cfg)
            ctg.validate()
            assert len(enumerate_paths(ctg)) >= 1


@settings(max_examples=25, deadline=None)
@given(
    nodes=st.integers(14, 40),
    branches=st.integers(0, 3),
    category=st.sampled_from([1, 2]),
    seed=st.integers(0, 10_000),
)
def test_generator_invariants(nodes, branches, category, seed):
    """Property: any in-range config yields a valid graph with the exact
    node/branch counts, consistent scenarios and feasible paths."""
    cfg = GeneratorConfig(nodes=nodes, branch_nodes=branches, category=category, seed=seed)
    ctg = generate_ctg(cfg)
    ctg.validate()
    assert len(ctg) == nodes
    assert len(ctg.branch_nodes()) == branches
    scenarios = enumerate_scenarios(ctg)
    total = sum(s.probability(ctg.default_probabilities) for s in scenarios)
    assert abs(total - 1.0) < 1e-9
    for path in enumerate_paths(ctg):
        assert path.condition is not None
