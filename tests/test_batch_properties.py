"""Property-based agreement between the batch kernels and the scalar
object-walking implementations, on randomly generated instances.

The contract under test (see ``docs/algorithms.md`` §6.5): for any
generable CTG/platform pair, the array-native kernels agree elementwise
with the scalar loops they batch — the executor for replay, the
stretching heuristic for speeds — and the struct-of-arrays round trip
is bit-exact.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import (
    BatchSchedule,
    batched_stretch,
    monte_carlo,
    scenario_energies,
    scenario_finish_times,
)
from repro.ctg import CtgAnalysis, GeneratorConfig, generate_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import (
    dls_schedule,
    schedule_online,
    set_deadline_from_makespan,
    stretch_schedule,
)
from repro.scheduling.pathcache import structure_for
from repro.sim import InstanceExecutor


def build_instance(nodes, branches, category, pes, seed, factor):
    cfg = GeneratorConfig(nodes=nodes, branch_nodes=branches, category=category, seed=seed)
    ctg = generate_ctg(cfg)
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, factor)
    return ctg, platform


def decisions_of(scenario, ctg):
    vector = {}
    for branch in ctg.branch_nodes():
        chosen = scenario.product.label_for(branch)
        vector[branch] = chosen if chosen is not None else ctg.outcomes_of(branch)[0]
    return vector


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(12, 26),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 4),
    seed=st.integers(0, 400),
    factor=st.floats(1.05, 2.0),
)
def test_round_trip_is_bit_exact(nodes, branches, category, pes, seed, factor):
    """from_ctg → to_schedule preserves every placement field exactly."""
    try:
        ctg, platform = build_instance(nodes, branches, category, pes, seed, factor)
    except ValueError:
        return
    schedule = schedule_online(ctg, platform).schedule
    rebuilt = BatchSchedule.from_ctg(schedule).to_schedule()
    assert set(rebuilt.placements) == set(schedule.placements)
    for task, placement in schedule.placements.items():
        clone = rebuilt.placements[task]
        assert clone.pe == placement.pe
        assert clone.wcet == placement.wcet
        assert clone.nominal_energy == placement.nominal_energy
        assert clone.speed == placement.speed
        assert clone.order_index == placement.order_index
    assert rebuilt.comm_bookings == schedule.comm_bookings


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(12, 26),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 4),
    seed=st.integers(0, 400),
    factor=st.floats(1.05, 2.0),
)
def test_scenario_kernels_agree_with_executor(
    nodes, branches, category, pes, seed, factor
):
    """Batched per-scenario finish times and energies equal the
    executor's replay of every minterm."""
    try:
        ctg, platform = build_instance(nodes, branches, category, pes, seed, factor)
    except ValueError:
        return
    schedule = schedule_online(ctg, platform).schedule
    batch = BatchSchedule.from_ctg(schedule)
    executor = InstanceExecutor(schedule)
    finishes = scenario_finish_times(batch)
    energies = scenario_energies(batch)
    for s, scenario in enumerate(batch.scenarios):
        outcome = executor.run(decisions_of(scenario, ctg))
        assert finishes[s] == pytest.approx(outcome.finish_time, abs=1e-9)
        assert energies[s] == pytest.approx(outcome.energy, rel=1e-9)


@settings(max_examples=8, deadline=None)
@given(
    nodes=st.integers(12, 24),
    branches=st.integers(1, 3),
    pes=st.integers(2, 4),
    seed=st.integers(0, 300),
    mc_seed=st.integers(0, 50),
)
def test_monte_carlo_agrees_with_executor_elementwise(
    nodes, branches, pes, seed, mc_seed
):
    """Every sampled instance's finish/energy/deadline flag equals the
    executor's replay of the same decision vector."""
    try:
        ctg, platform = build_instance(nodes, branches, 1, pes, seed, 1.4)
    except ValueError:
        return
    schedule = schedule_online(ctg, platform).schedule
    result = monte_carlo(ctg, platform, 64, seed=mc_seed, schedule=schedule)
    executor = InstanceExecutor(schedule)
    for i in range(result.n):
        outcome = executor.run(result.decisions(i))
        assert result.finish_times[i] == pytest.approx(outcome.finish_time, abs=1e-9)
        assert result.energies[i] == pytest.approx(outcome.energy, rel=1e-9)
        assert bool(result.deadline_met[i]) == outcome.deadline_met


@settings(max_examples=8, deadline=None)
@given(
    nodes=st.integers(12, 24),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 3),
    seed=st.integers(0, 300),
    dist_seed=st.integers(0, 50),
)
def test_batched_stretch_agrees_with_scalar(
    nodes, branches, category, pes, seed, dist_seed
):
    """One batched sweep over N random distributions produces the same
    speeds as N scalar stretch_schedule calls (shared tolerances)."""
    try:
        ctg, platform = build_instance(nodes, branches, category, pes, seed, 1.4)
    except ValueError:
        return
    analysis = CtgAnalysis.of(ctg)
    rng = np.random.default_rng(dist_seed)
    distributions = []
    for _ in range(3):
        dist = {}
        for branch in ctg.branch_nodes():
            labels = ctg.outcomes_of(branch)
            weights = rng.uniform(0.05, 1.0, size=len(labels))
            weights /= weights.sum()
            dist[branch] = dict(zip(labels, weights))
        distributions.append(dist)

    nominal = dls_schedule(ctg, platform, analysis=analysis)
    batch = BatchSchedule.from_ctg(nominal, analysis)
    structure = structure_for(nominal, analysis.scenarios, analysis.path_cache)
    report = batched_stretch(batch, structure, distributions)
    for i, dist in enumerate(distributions):
        schedule = dls_schedule(ctg, platform, analysis=analysis)
        stretch_schedule(schedule, dist, analysis=analysis)
        speeds = report.speed_map(i)
        for task in ctg.tasks():
            assert speeds[task] == pytest.approx(
                schedule.placement(task).speed, rel=1e-9, abs=1e-9
            )


@settings(max_examples=8, deadline=None)
@given(
    nodes=st.integers(12, 24),
    branches=st.integers(1, 3),
    pes=st.integers(2, 4),
    seed=st.integers(0, 300),
)
def test_task_scenario_masks_pack_activation(nodes, branches, pes, seed):
    """The packed per-task scenario bitmasks equal the activation
    matrix column by column — including past 63 scenarios (the numpy
    shift-overflow regression)."""
    try:
        ctg, platform = build_instance(nodes, branches, 1, pes, seed, 1.4)
    except ValueError:
        return
    schedule = schedule_online(ctg, platform).schedule
    batch = BatchSchedule.from_ctg(schedule)
    for t in range(batch.n_tasks):
        expected = sum(
            1 << s for s in range(batch.n_scenarios) if batch.active[s, t]
        )
        assert batch.task_scenario_masks[t] == expected
        assert batch.task_scenario_masks[t] >= 0
