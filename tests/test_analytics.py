"""Tests for the CTG analytics (repro.ctg.analytics)."""

import pytest

from repro.ctg import (
    branch_entropy,
    criticality,
    figure1_ctg,
    parallelism_profile,
    summarize,
    workload_statistics,
)
from repro.ctg.examples import diamond_ctg, two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.workloads import mpeg_ctg, mpeg_platform


def uniform_platform(ctg, wcet=10.0):
    platform = Platform([ProcessingElement("pe0")])
    for task in ctg.tasks():
        platform.set_task_profile(task, "pe0", wcet=wcet, energy=wcet)
    return platform


class TestWorkloadStatistics:
    def test_unconditional_graph_no_spread(self):
        ctg = diamond_ctg()
        stats = workload_statistics(ctg, uniform_platform(ctg), {})
        assert stats.minimum == stats.maximum == stats.expected == pytest.approx(40.0)
        assert stats.conditional_share == pytest.approx(0.0)
        assert stats.spread == pytest.approx(1.0)

    def test_figure1_statistics(self):
        ctg = figure1_ctg()
        stats = workload_statistics(ctg, uniform_platform(ctg))
        # scenarios activate 5, 6, 6 of 8 tasks
        assert stats.minimum == pytest.approx(50.0)
        assert stats.maximum == pytest.approx(60.0)
        # expected = 0.4·50 + 0.6·60
        assert stats.expected == pytest.approx(56.0)
        # t1,t2,t3,t8 always active → conditional share 4/8
        assert stats.conditional_share == pytest.approx(0.5)

    def test_expected_respects_probabilities(self):
        ctg = figure1_ctg()
        platform = uniform_platform(ctg)
        skewed = workload_statistics(
            ctg, platform, {"t3": {"a1": 1.0, "a2": 0.0}, "t5": {"b1": 0.5, "b2": 0.5}}
        )
        assert skewed.expected == pytest.approx(50.0)


class TestBranchEntropy:
    def test_uniform_binary_is_one_bit(self):
        ctg = two_sided_branch_ctg()
        entropies = branch_entropy(ctg, {"fork": {"h": 0.5, "l": 0.5}})
        assert entropies["fork"] == pytest.approx(1.0)
        assert entropies["*scenarios*"] == pytest.approx(1.0)

    def test_deterministic_branch_zero_entropy(self):
        ctg = two_sided_branch_ctg()
        entropies = branch_entropy(ctg, {"fork": {"h": 1.0, "l": 0.0}})
        assert entropies["fork"] == pytest.approx(0.0)

    def test_figure1_joint_entropy(self):
        ctg = figure1_ctg()
        entropies = branch_entropy(ctg)
        # three scenarios at 0.4/0.3/0.3
        expected = -(0.4 * __import__("math").log2(0.4) + 2 * 0.3 * __import__("math").log2(0.3))
        assert entropies["*scenarios*"] == pytest.approx(expected)


class TestParallelismProfile:
    def test_diamond(self):
        assert parallelism_profile(diamond_ctg()) == [1, 2, 1]

    def test_figure1(self):
        # levels: t1 | t2,t3 | t4,t5 | t6,t7,t8
        assert parallelism_profile(figure1_ctg()) == [1, 2, 2, 3]

    def test_profile_sums_to_task_count(self):
        ctg = mpeg_ctg()
        assert sum(parallelism_profile(ctg)) == len(ctg)


class TestCriticality:
    def test_always_on_chain_fully_critical(self):
        ctg = diamond_ctg()
        crit = criticality(ctg, uniform_platform(ctg), {})
        assert crit["src"] == pytest.approx(1.0)
        assert crit["join"] == pytest.approx(1.0)
        # exactly one of the two equal arms is on the critical chain
        assert crit["left"] + crit["right"] == pytest.approx(1.0)

    def test_probabilities_weight_criticality(self):
        ctg = two_sided_branch_ctg()
        platform = Platform([ProcessingElement("pe0")])
        for task, wcet in {"entry": 5, "fork": 5, "heavy": 30, "light": 10, "join": 5}.items():
            platform.set_task_profile(task, "pe0", wcet=wcet, energy=wcet)
        crit = criticality(ctg, platform, {"fork": {"h": 0.8, "l": 0.2}})
        assert crit["heavy"] == pytest.approx(0.8)
        assert crit["light"] == pytest.approx(0.2)
        assert crit["entry"] == pytest.approx(1.0)

    def test_values_bounded(self):
        ctg = mpeg_ctg()
        crit = criticality(ctg, mpeg_platform())
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in crit.values())


class TestSummarize:
    def test_mentions_key_numbers(self):
        ctg = figure1_ctg()
        text = summarize(ctg, uniform_platform(ctg))
        assert "8 tasks" in text
        assert "2 branch" in text
        assert "3 scenarios" in text
        assert "conditional share" in text
