"""Known-good instances must pass static verification clean.

The workload checks pin the CI contract (``python -m repro check mpeg
cruise wlan`` exits 0); the hypothesis test generalises it: whatever
graph the generator produces, the online algorithm's output satisfies
every invariant the checkers can express.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import CheckError, assert_clean, check_instance, verify_schedule
from repro.ctg import GeneratorConfig, generate_ctg
from repro.ctg.minterms import CtgAnalysis
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.workloads import (
    cruise_ctg,
    cruise_platform,
    mpeg_ctg,
    mpeg_platform,
    wlan_ctg,
    wlan_platform,
)

WORKLOADS = {
    "mpeg": (mpeg_ctg, mpeg_platform, 1.3),
    "cruise": (cruise_ctg, cruise_platform, 2.0),
    "wlan": (wlan_ctg, wlan_platform, 1.5),
}


def build(name):
    make_ctg, make_platform, factor = WORKLOADS[name]
    ctg, platform = make_ctg(), make_platform()
    set_deadline_from_makespan(ctg, platform, factor)
    analysis = CtgAnalysis.of(ctg)
    schedule = schedule_online(ctg, platform, analysis=analysis).schedule
    return ctg, platform, schedule, analysis


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_workload_checks_clean(name):
    ctg, platform, schedule, analysis = build(name)
    report = check_instance(ctg, platform, schedule, analysis=analysis)
    assert report.ok, report.render_text(header=name)
    assert report.checks_run == [
        "ctg",
        "platform",
        "schedule",
        "feasibility",
        "pathcache",
    ]


def test_verify_schedule_clean_and_assert_clean_returns_report():
    _ctg, _platform, schedule, analysis = build("cruise")
    report = verify_schedule(schedule, analysis)
    assert assert_clean(report, "unit") is report


def test_assert_clean_raises_with_codes_and_report():
    ctg, platform, schedule, _analysis = build("cruise")
    schedule.ctg.deadline = schedule.makespan() / 2.0
    report = verify_schedule(schedule)
    with pytest.raises(CheckError, match="SCHED030") as err:
        assert_clean(report, "unit")
    assert err.value.report is report


def test_online_check_flag_passes_on_clean_instance():
    ctg, platform = cruise_ctg(), cruise_platform()
    set_deadline_from_makespan(ctg, platform, 2.0)
    result = schedule_online(ctg, platform, check=True)
    assert result.schedule.meets_deadline()


@settings(max_examples=12, deadline=None)
@given(
    nodes=st.integers(10, 24),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 4),
    seed=st.integers(0, 300),
    factor=st.floats(1.1, 2.0),
)
def test_generated_instances_check_clean(nodes, branches, category, pes, seed, factor):
    """Property: schedule_online output passes the full static check."""
    try:
        cfg = GeneratorConfig(
            nodes=nodes, branch_nodes=branches, category=category, seed=seed
        )
        ctg = generate_ctg(cfg)
    except ValueError:
        return  # generator rejected the parameter combination
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, factor)
    analysis = CtgAnalysis.of(ctg)
    schedule = schedule_online(ctg, platform, analysis=analysis).schedule
    report = check_instance(ctg, platform, schedule, analysis=analysis)
    assert report.ok, report.render_text(header=f"seed={seed}")
