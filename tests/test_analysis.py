"""Unit tests for the analysis helpers."""

import pytest

from repro.analysis import (
    format_series,
    format_table,
    geometric_mean,
    normalise,
    percent_savings,
    sliding_window_series,
    threshold_filter_series,
)


class TestNormalise:
    def test_reference_gets_scale(self):
        result = normalise({"a": 50.0, "b": 100.0}, reference="a")
        assert result["a"] == pytest.approx(100.0)
        assert result["b"] == pytest.approx(200.0)

    def test_zero_reference_rejected(self):
        with pytest.raises(ValueError):
            normalise({"a": 0.0}, reference="a")


class TestPercentSavings:
    def test_basic(self):
        assert percent_savings(100.0, 80.0) == pytest.approx(20.0)

    def test_negative_when_worse(self):
        assert percent_savings(100.0, 110.0) == pytest.approx(-10.0)

    def test_zero_baseline(self):
        assert percent_savings(0.0, 10.0) == 0.0


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_empty_and_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])


class TestSlidingWindowSeries:
    def test_prefix_growth(self):
        series = sliding_window_series([1, 1, 0, 0], window=2)
        assert series == pytest.approx([1.0, 1.0, 0.5, 0.0])

    def test_window_one_is_identity(self):
        assert sliding_window_series([0, 1, 1], window=1) == [0.0, 1.0, 1.0]

    def test_bad_window(self):
        with pytest.raises(ValueError):
            sliding_window_series([1], window=0)

    def test_bounded_between_zero_and_one(self):
        series = sliding_window_series([1, 0] * 50, window=7)
        assert all(0.0 <= v <= 1.0 for v in series)


class TestThresholdFilterSeries:
    def test_holds_until_threshold_crossed(self):
        probs = [0.5, 0.55, 0.62, 0.9]
        filtered = threshold_filter_series(probs, threshold=0.1, initial=0.5)
        assert filtered == pytest.approx([0.5, 0.5, 0.62, 0.9])

    def test_never_updates_with_huge_threshold(self):
        filtered = threshold_filter_series([0.1, 0.9, 0.1], threshold=0.95, initial=0.5)
        assert filtered == [0.5, 0.5, 0.5]

    def test_snap_count_matches_call_count_semantics(self):
        probs = [0.5] * 5 + [1.0] * 5 + [0.0] * 5
        filtered = threshold_filter_series(probs, threshold=0.3, initial=0.5)
        snaps = sum(1 for a, b in zip(filtered, filtered[1:]) if a != b)
        assert snaps == 2


class TestFormatting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1.0], ["long-name", 12.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "long-name" in lines[-1]
        assert "12.5" in lines[-1]

    def test_format_table_with_title(self):
        text = format_table(["x"], [[1]], title="Table 1")
        assert text.splitlines()[0] == "Table 1"

    def test_format_series_chunks(self):
        text = format_series("s", [0.1] * 25, per_line=10)
        assert len(text.splitlines()) == 1 + 3
