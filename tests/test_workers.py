"""Tests for the worker-dispatch layer: the frame protocol, the
``repro worker`` loop, and the pool implementations behind
``run_spec(workers=...)``."""

import io

import pytest

from repro.experiments import (
    Cell,
    EngineError,
    ExperimentSpec,
    SerialPool,
    read_frame,
    resolve_pool,
    run_spec,
    worker_main,
    write_frame,
)
from repro.experiments.workers import (
    MAX_FRAME_BYTES,
    function_reference,
    resolve_function,
)


def triple_cell(params):
    """Module-level cell function (importable by fleet workers)."""
    return {"values": {"triple": params["x"] * 3}}


def bad_cell(params):
    """Cell function violating the payload contract."""
    return {"no_values": True}


def _collect(cells):
    return [(c.key, c.values["triple"]) for c in cells]


def _spec(xs=(1, 2, 3, 4)):
    return ExperimentSpec(
        name="triples",
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in xs),
        cell_function=triple_cell,
        reducer=_collect,
    )


class TestFrameProtocol:
    def test_round_trip(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"a": 1, "b": [2, 3]})
        write_frame(buffer, {"c": "two"})
        buffer.seek(0)
        assert read_frame(buffer) == {"a": 1, "b": [2, 3]}
        assert read_frame(buffer) == {"c": "two"}
        assert read_frame(buffer) is None  # clean EOF

    def test_torn_header_raises(self):
        buffer = io.BytesIO(b"\x00\x00")
        with pytest.raises(EngineError, match="torn frame header"):
            read_frame(buffer)

    def test_torn_body_raises(self):
        buffer = io.BytesIO()
        write_frame(buffer, {"a": 1})
        torn = io.BytesIO(buffer.getvalue()[:-2])
        with pytest.raises(EngineError, match="torn frame body"):
            read_frame(torn)

    def test_absurd_length_rejected(self):
        buffer = io.BytesIO()
        buffer.write((MAX_FRAME_BYTES + 1).to_bytes(4, "big"))
        buffer.seek(0)
        with pytest.raises(EngineError, match="exceeds"):
            read_frame(buffer)

    def test_non_object_payload_rejected(self):
        import json

        data = json.dumps([1, 2]).encode()
        buffer = io.BytesIO(len(data).to_bytes(4, "big") + data)
        with pytest.raises(EngineError, match="JSON object"):
            read_frame(buffer)


class TestFunctionReferences:
    def test_round_trip(self):
        ref = function_reference(triple_cell)
        assert ref == f"{__name__}:triple_cell"
        assert resolve_function(ref) is triple_cell

    def test_local_function_rejected(self):
        def local(params):
            return {"values": {}}

        with pytest.raises(EngineError, match="module-level"):
            function_reference(local)

    def test_malformed_reference_rejected(self):
        with pytest.raises(EngineError, match="malformed"):
            resolve_function("no-colon-here")

    def test_missing_attribute_rejected(self):
        with pytest.raises(EngineError, match="does not name"):
            resolve_function(f"{__name__}:does_not_exist")

    def test_unimportable_module_rejected(self):
        with pytest.raises(EngineError, match="cannot import"):
            resolve_function("definitely_not_a_module_xyz:fn")


class TestWorkerMain:
    def _run(self, *requests):
        stdin = io.BytesIO()
        for request in requests:
            write_frame(stdin, request)
        stdin.seek(0)
        stdout = io.BytesIO()
        code = worker_main(stdin, stdout)
        stdout.seek(0)
        responses = []
        while (frame := read_frame(stdout)) is not None:
            responses.append(frame)
        return code, responses

    def test_computes_cells(self):
        ref = function_reference(triple_cell)
        code, responses = self._run(
            {"function": ref, "params": {"x": 2}},
            {"function": ref, "params": {"x": 5}},
        )
        assert code == 0
        assert [r["payload"]["values"] for r in responses] == [
            {"triple": 6},
            {"triple": 15},
        ]
        assert all(r["payload"]["seconds"] >= 0.0 for r in responses)

    def test_errors_are_reported_not_fatal(self):
        code, responses = self._run(
            {"function": function_reference(bad_cell), "params": {"x": 1}},
            {"function": function_reference(triple_cell), "params": {"x": 1}},
        )
        assert code == 0  # the loop survives a failing cell
        assert "EngineError" in responses[0]["error"]
        assert responses[1]["payload"]["values"] == {"triple": 3}

    def test_unknown_function_is_an_error_response(self):
        code, responses = self._run({"function": "nope:nope", "params": {}})
        assert code == 0
        assert "error" in responses[0]

    def test_corrupt_frame_is_fatal_with_structured_error(self):
        # a torn/garbage inbound frame leaves the stream offset
        # unknowable: the worker must answer with a fatal error frame
        # and exit nonzero instead of resynchronising by guesswork
        stdin = io.BytesIO(b"\x00\x00\x00\x08only4")
        stdout = io.BytesIO()
        code = worker_main(stdin, stdout)
        assert code == 2
        stdout.seek(0)
        frame = read_frame(stdout)
        assert frame["fatal"] is True
        assert "worker frame error" in frame["error"]

    def test_good_cells_before_the_corrupt_frame_still_answered(self):
        stdin = io.BytesIO()
        write_frame(stdin, {"function": function_reference(triple_cell), "params": {"x": 2}})
        stdin.write(b"\xff\xff\xff\xff")  # absurd length prefix
        stdin.seek(0)
        stdout = io.BytesIO()
        code = worker_main(stdin, stdout)
        assert code == 2
        stdout.seek(0)
        first = read_frame(stdout)
        assert first["payload"]["values"] == {"triple": 6}
        assert read_frame(stdout)["fatal"] is True


class TestPoolSelection:
    def test_serial_below_fanout(self):
        assert isinstance(resolve_pool("local", triple_cell, 1), SerialPool)
        assert isinstance(resolve_pool("fleet", triple_cell, 0), SerialPool)

    def test_unknown_substrate_rejected(self):
        with pytest.raises(EngineError, match="unknown worker substrate"):
            resolve_pool("cloud", triple_cell, 4)

    def test_serial_pool_contract(self):
        pool = SerialPool(triple_cell)
        pool.submit(0, {"x": 1})
        pool.submit(1, {"x": 2})
        tag, payload = pool.ready()
        assert tag == 0
        assert payload["values"] == {"triple": 3}
        assert payload["seconds"] >= 0.0
        tag, payload = pool.ready()
        assert tag == 1
        assert payload["values"] == {"triple": 6}
        with pytest.raises(EngineError, match="empty serial pool"):
            pool.ready()


class TestFleetEndToEnd:
    def test_fleet_matches_serial_bit_for_bit(self):
        serial = run_spec(_spec(), jobs=1)
        fleet = run_spec(_spec(), jobs=2, workers="fleet")
        assert fleet.result == serial.result
        assert [c.values for c in fleet.cells] == [c.values for c in serial.cells]

    def test_subprocess_fleet_alias(self):
        report = run_spec(_spec((1, 2)), jobs=2, workers="subprocess-fleet")
        assert report.result == [("x1", 3), ("x2", 6)]

    def test_fleet_propagates_cell_failures(self):
        spec = ExperimentSpec(
            name="bad",
            cells=(Cell(key="a", params={"x": 1}), Cell(key="b", params={"x": 2})),
            cell_function=bad_cell,
            reducer=lambda cells: None,
        )
        with pytest.raises(EngineError, match="fleet worker"):
            run_spec(spec, jobs=2, workers="fleet")

    def test_fleet_shares_the_cache_with_the_parent(self, tmp_path):
        cache_dir = tmp_path / "cache"
        cold = run_spec(_spec(), jobs=2, workers="fleet", cache=str(cache_dir))
        assert cold.stats.misses == 4
        assert cold.engine_profile.counters["cache.backend.put"] == 4
        warm = run_spec(_spec(), jobs=1, cache=str(cache_dir))
        assert warm.stats.hits == 4
        assert warm.result == cold.result
