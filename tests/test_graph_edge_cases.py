"""Additional edge-case tests for graph semantics and the simulator.

Covers behaviours not exercised by the main suites: multi-outcome
branches (fan-out > 2), chained or-nodes, conditional re-convergence
through and-nodes within one arm, and executor behaviour under unusual
topologies.
"""

import pytest

from repro.ctg import (
    ConditionalTaskGraph,
    NodeKind,
    enumerate_paths,
    enumerate_scenarios,
    exclusion_table,
    gamma,
    mutually_exclusive,
)
from repro.platform import Platform, ProcessingElement
from repro.scheduling import dls_schedule, stretch_schedule
from repro.sim import execute_instance


def uniform_platform(ctg, pes=2, wcet=10.0):
    platform = Platform([ProcessingElement(f"pe{i}", min_speed=0.1) for i in range(pes)])
    if pes > 1:
        platform.connect_all(bandwidth=2.0, energy_per_kbyte=0.05)
    for task in ctg.tasks():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
    return platform


def four_way_branch():
    """A 4-outcome branch (like the WLAN rate selector)."""
    ctg = ConditionalTaskGraph(name="four_way")
    ctg.add_task("head")
    ctg.add_task("fork")
    ctg.add_task("merge", NodeKind.OR)
    ctg.add_edge("head", "fork", comm_kbytes=1.0)
    for i in range(1, 5):
        arm = f"arm{i}"
        ctg.add_task(arm)
        ctg.add_conditional_edge("fork", arm, f"x{i}", comm_kbytes=1.0)
        ctg.add_edge(arm, "merge", comm_kbytes=1.0)
    ctg.default_probabilities = {"fork": {f"x{i}": 0.25 for i in range(1, 5)}}
    ctg.validate()
    return ctg


class TestMultiOutcomeBranch:
    def test_four_scenarios(self):
        assert len(enumerate_scenarios(four_way_branch())) == 4

    def test_all_arms_pairwise_exclusive(self):
        ctg = four_way_branch()
        for i in range(1, 5):
            for j in range(i + 1, 5):
                assert mutually_exclusive(ctg, f"arm{i}", f"arm{j}")

    def test_single_pe_all_arms_share_one_slot(self):
        ctg = four_way_branch()
        platform = uniform_platform(ctg, pes=1)
        schedule = dls_schedule(ctg, platform)
        # head, fork, (4 arms in parallel), merge → 4 slots of 10
        assert schedule.makespan() == pytest.approx(40.0)

    def test_executor_runs_each_arm(self):
        ctg = four_way_branch()
        platform = uniform_platform(ctg, pes=1)
        schedule = dls_schedule(ctg, platform)
        schedule.ctg.deadline = 80.0
        stretch_schedule(schedule)
        for i in range(1, 5):
            outcome = execute_instance(schedule, {"fork": f"x{i}"})
            assert f"arm{i}" in outcome.finish_times
            assert outcome.deadline_met


class TestChainedOrNodes:
    def build(self):
        """fork → (a | b) → or1 → mid → fork2 → (c | d) → or2."""
        ctg = ConditionalTaskGraph(name="chained_or")
        for name in ("fork", "a", "b", "mid", "fork2", "c", "d"):
            ctg.add_task(name)
        ctg.add_task("or1", NodeKind.OR)
        ctg.add_task("or2", NodeKind.OR)
        ctg.add_conditional_edge("fork", "a", "x1")
        ctg.add_conditional_edge("fork", "b", "x2")
        ctg.add_edge("a", "or1")
        ctg.add_edge("b", "or1")
        ctg.add_edge("or1", "mid")
        ctg.add_edge("mid", "fork2")
        ctg.add_conditional_edge("fork2", "c", "y1")
        ctg.add_conditional_edge("fork2", "d", "y2")
        ctg.add_edge("c", "or2")
        ctg.add_edge("d", "or2")
        ctg.default_probabilities = {
            "fork": {"x1": 0.5, "x2": 0.5},
            "fork2": {"y1": 0.5, "y2": 0.5},
        }
        ctg.validate()
        return ctg

    def test_four_scenarios_over_two_independent_branches(self):
        scenarios = enumerate_scenarios(self.build())
        assert len(scenarios) == 4

    def test_gamma_of_downstream_or(self):
        g = gamma(self.build())
        # Γ keeps the structural contexts without absorption (paper
        # Example 1), so the upstream x-branch stays in the products.
        labels = {str(term) for term in g["or2"]}
        assert labels == {"x1y1", "x1y2", "x2y1", "x2y2"}
        # the join of the upstream branch carries both of its contexts
        assert {str(term) for term in g["or1"]} == {"x1", "x2"}

    def test_cross_branch_tasks_not_exclusive(self):
        ctg = self.build()
        assert not mutually_exclusive(ctg, "a", "c")
        assert mutually_exclusive(ctg, "a", "b")
        assert mutually_exclusive(ctg, "c", "d")

    def test_path_count(self):
        # 2 upstream arms × 2 downstream arms
        assert len(enumerate_paths(self.build())) == 4

    def test_executor_all_combinations(self):
        ctg = self.build()
        platform = uniform_platform(ctg, pes=2)
        schedule = dls_schedule(ctg, platform)
        schedule.ctg.deadline = schedule.makespan() * 1.3
        stretch_schedule(schedule)
        for x in ("x1", "x2"):
            for y in ("y1", "y2"):
                outcome = execute_instance(schedule, {"fork": x, "fork2": y})
                assert outcome.deadline_met
                assert ("a" in outcome.finish_times) == (x == "x1")
                assert ("c" in outcome.finish_times) == (y == "y1")


class TestConditionalSubgraphWithJoin:
    def test_and_join_inside_one_arm(self):
        """An and-node deep inside a conditional arm inherits the arm's
        context through both of its parents (consistent conjunction)."""
        ctg = ConditionalTaskGraph(name="arm_join")
        for name in ("fork", "p", "q", "j", "other"):
            ctg.add_task(name)
        ctg.add_task("merge", NodeKind.OR)
        ctg.add_conditional_edge("fork", "p", "x1")
        ctg.add_edge("p", "q")
        ctg.add_edge("p", "j")
        ctg.add_edge("q", "j")  # and-join of q and p, both in arm x1
        ctg.add_conditional_edge("fork", "other", "x2")
        ctg.add_edge("j", "merge")
        ctg.add_edge("other", "merge")
        ctg.default_probabilities = {"fork": {"x1": 0.6, "x2": 0.4}}
        ctg.validate()

        g = gamma(ctg)
        assert [str(t) for t in g["j"]] == ["x1"]
        scenarios = {str(s.product): s for s in enumerate_scenarios(ctg)}
        assert "j" in scenarios["x1"].active
        assert "j" not in scenarios["x2"].active

    def test_exclusion_table_respects_arm_membership(self):
        ctg = ConditionalTaskGraph(name="arm_join2")
        for name in ("fork", "p", "q"):
            ctg.add_task(name)
        ctg.add_task("other")
        ctg.add_conditional_edge("fork", "p", "x1")
        ctg.add_edge("p", "q")
        ctg.add_conditional_edge("fork", "other", "x2")
        ctg.default_probabilities = {"fork": {"x1": 0.5, "x2": 0.5}}
        ctg.validate()
        table = exclusion_table(ctg)
        assert "other" in table["q"]
        assert "p" not in table["q"]
