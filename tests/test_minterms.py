"""Unit tests for scenario/minterm analysis (repro.ctg.minterms)."""

import pytest

from repro.ctg import (
    TRUE,
    ConditionalTaskGraph,
    NodeKind,
    activation_probability,
    activation_sets,
    enumerate_scenarios,
    exclusion_table,
    gamma,
    mutually_exclusive,
    resolve_activation,
)
from repro.ctg.conditions import ConditionProduct, Outcome
from repro.ctg.examples import diamond_ctg, figure1_ctg, two_sided_branch_ctg


def product(*pairs):
    return ConditionProduct(Outcome(b, l) for b, l in pairs)


class TestResolveActivation:
    def test_unconditional_graph_fully_active(self):
        ctg = diamond_ctg()
        active, unresolved = resolve_activation(ctg, {})
        assert unresolved is None
        assert active == frozenset(ctg.tasks())

    def test_unresolved_branch_reported(self):
        ctg = figure1_ctg()
        _active, unresolved = resolve_activation(ctg, {})
        assert unresolved == "t3"

    def test_a1_scenario(self):
        ctg = figure1_ctg()
        active, unresolved = resolve_activation(ctg, {"t3": "a1"})
        assert unresolved is None
        assert active == frozenset({"t1", "t2", "t3", "t4", "t8"})

    def test_nested_branch_needs_second_decision(self):
        ctg = figure1_ctg()
        _active, unresolved = resolve_activation(ctg, {"t3": "a2"})
        assert unresolved == "t5"

    def test_or_node_active_through_unconditional_input(self):
        ctg = figure1_ctg()
        active, _ = resolve_activation(ctg, {"t3": "a2", "t5": "b1"})
        assert "t8" in active
        assert "t4" not in active


class TestEnumerateScenarios:
    def test_figure1_minterms(self):
        # Paper Example 1: M = {1, a₁, a₂b₁, a₂b₂}; the executable
        # scenarios are the three non-trivial products.
        scenarios = enumerate_scenarios(figure1_ctg())
        products = {str(s.product) for s in scenarios}
        assert products == {"a1", "a2b1", "a2b2"}

    def test_unconditional_graph_single_scenario(self):
        scenarios = enumerate_scenarios(diamond_ctg())
        assert len(scenarios) == 1
        assert scenarios[0].product.is_true()

    def test_probabilities_sum_to_one(self):
        ctg = figure1_ctg()
        scenarios = enumerate_scenarios(ctg)
        total = sum(s.probability(ctg.default_probabilities) for s in scenarios)
        assert total == pytest.approx(1.0)

    def test_active_sets_match_paper(self):
        ctg = figure1_ctg()
        by_product = {str(s.product): s.active for s in enumerate_scenarios(ctg)}
        assert by_product["a1"] == frozenset({"t1", "t2", "t3", "t4", "t8"})
        assert by_product["a2b1"] == frozenset({"t1", "t2", "t3", "t5", "t6", "t8"})
        assert by_product["a2b2"] == frozenset({"t1", "t2", "t3", "t5", "t7", "t8"})

    def test_deactivated_branch_contributes_no_outcome(self):
        # Under a₁ the inner branch t5 never fires, so no scenario
        # carries an outcome of t5 together with a₁.
        for scenario in enumerate_scenarios(figure1_ctg()):
            if scenario.product.label_for("t3") == "a1":
                assert scenario.product.label_for("t5") is None


class TestGamma:
    def test_figure1_gamma_matches_example1(self):
        g = gamma(figure1_ctg())
        assert g["t1"] == (TRUE,)
        assert g["t2"] == (TRUE,)
        assert g["t3"] == (TRUE,)
        assert g["t4"] == (product(("t3", "a1")),)
        assert g["t5"] == (product(("t3", "a2")),)
        assert g["t6"] == (product(("t3", "a2"), ("t5", "b1")),)
        assert g["t7"] == (product(("t3", "a2"), ("t5", "b2")),)
        # Or-node keeps both activation contexts — no absorption.
        assert set(g["t8"]) == {TRUE, product(("t3", "a1"))}

    def test_gamma_of_unconditional_graph_all_true(self):
        g = gamma(diamond_ctg())
        assert all(terms == (TRUE,) for terms in g.values())

    def test_and_node_conjunction_across_inputs(self):
        # and-join fed by both arms of a branch is unsatisfiable.
        ctg = ConditionalTaskGraph()
        for n in ("f", "x", "y"):
            ctg.add_task(n)
        ctg.add_task("join", NodeKind.AND)
        ctg.add_conditional_edge("f", "x", "a1")
        ctg.add_conditional_edge("f", "y", "a2")
        ctg.add_edge("x", "join")
        ctg.add_edge("y", "join")
        with pytest.raises(Exception):
            gamma(ctg)


class TestActivationProbability:
    def test_figure1_probabilities(self):
        ctg = figure1_ctg()
        probs = activation_probability(ctg, ctg.default_probabilities)
        assert probs["t1"] == pytest.approx(1.0)
        assert probs["t4"] == pytest.approx(0.4)
        assert probs["t5"] == pytest.approx(0.6)
        assert probs["t6"] == pytest.approx(0.3)
        assert probs["t8"] == pytest.approx(1.0)

    def test_respects_supplied_distribution(self):
        ctg = figure1_ctg()
        probs = activation_probability(
            ctg, {"t3": {"a1": 1.0, "a2": 0.0}, "t5": {"b1": 0.5, "b2": 0.5}}
        )
        assert probs["t4"] == pytest.approx(1.0)
        assert probs["t5"] == pytest.approx(0.0)

    def test_activation_sets_consistency(self):
        ctg = figure1_ctg()
        sets = activation_sets(ctg)
        assert len(sets["t1"]) == 3  # active in every scenario
        assert len(sets["t4"]) == 1
        assert len(sets["t8"]) == 3


class TestMutualExclusion:
    def test_sibling_arms_exclusive(self):
        ctg = figure1_ctg()
        assert mutually_exclusive(ctg, "t4", "t5")
        assert mutually_exclusive(ctg, "t6", "t7")
        assert mutually_exclusive(ctg, "t4", "t6")

    def test_unconditional_tasks_not_exclusive(self):
        ctg = figure1_ctg()
        assert not mutually_exclusive(ctg, "t1", "t2")
        assert not mutually_exclusive(ctg, "t2", "t4")

    def test_task_not_exclusive_with_itself(self):
        assert not mutually_exclusive(figure1_ctg(), "t4", "t4")

    def test_exclusion_table_symmetric(self):
        ctg = figure1_ctg()
        table = exclusion_table(ctg)
        for task, others in table.items():
            for other in others:
                assert task in table[other]

    def test_exclusion_table_figure1(self):
        table = exclusion_table(figure1_ctg())
        assert table["t4"] == frozenset({"t5", "t6", "t7"})
        assert table["t6"] == frozenset({"t4", "t7"})
        assert table["t1"] == frozenset()

    def test_two_sided_branch(self):
        ctg = two_sided_branch_ctg()
        assert mutually_exclusive(ctg, "heavy", "light")
        assert not mutually_exclusive(ctg, "heavy", "join")
