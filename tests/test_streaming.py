"""Property tests for the streaming declaration-order reduction.

The engine's reorder buffer must deliver results in submission order
with peak residency bounded by the window, *whatever* order the pool
completes cells in.  A scripted pool lets hypothesis drive adversarial
completion orders directly; a ``run_spec``-level check then confirms
the property holds end to end (canonical artifact bytes identical at
any jobs count and window size)."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import (
    Cell,
    ExperimentSpec,
    WorkerPool,
    canonical_artifact_payload,
    run_spec,
    stream_reorder,
)


class ScriptedPool(WorkerPool):
    """In-process pool whose completion order is chosen by a script.

    ``script`` is any sequence of integers; each ``ready()`` call pops
    the next one and returns the ``script[i] % len(outstanding)``-th
    outstanding cell — so hypothesis integers map onto every possible
    completion order, including pathological all-reversed ones.
    """

    def __init__(self, script):
        self._script = list(script)
        self._outstanding = {}
        self.max_outstanding = 0

    def submit(self, tag, params):
        self._outstanding[tag] = {
            "values": {"y": params["x"] * 10},
            "profile": {},
            "timing": {},
            "seconds": 0.0,
        }
        self.max_outstanding = max(self.max_outstanding, len(self._outstanding))

    def ready(self):
        choice = self._script.pop(0) if self._script else 0
        tags = sorted(self._outstanding)
        tag = tags[choice % len(tags)]
        return tag, self._outstanding.pop(tag)


class TestStreamReorderProperty:
    @given(
        n=st.integers(min_value=0, max_value=12),
        window=st.integers(min_value=1, max_value=6),
        script=st.lists(st.integers(min_value=0, max_value=63), max_size=24),
    )
    @settings(max_examples=200, deadline=None)
    def test_any_completion_order_flushes_in_submission_order(
        self, n, window, script
    ):
        pool = ScriptedPool(script)
        work = [(i, {"x": i}) for i in range(n)]
        stats = {"flushed": 0, "peak_resident": 0}
        flushed = list(stream_reorder(pool, work, window, stats))
        # declaration order restored, payloads intact
        assert [tag for tag, _ in flushed] == list(range(n))
        assert all(p["values"] == {"y": tag * 10} for tag, p in flushed)
        # peak resident payloads and in-flight submissions both bounded
        assert stats["peak_resident"] <= window
        assert pool.max_outstanding <= window
        assert stats["flushed"] == n

    @given(window=st.integers(min_value=1, max_value=8))
    @settings(max_examples=20, deadline=None)
    def test_reverse_order_saturates_exactly_the_window(self, window):
        """All-reversed completion is the worst case: the buffer must
        fill to exactly ``min(window, n)`` before the first flush."""
        n = 10
        work = [(i, {"x": i}) for i in range(n)]
        stats = {"flushed": 0, "peak_resident": 0}

        class NewestFirst(ScriptedPool):
            def ready(self):
                tags = sorted(self._outstanding)
                return tags[-1], self._outstanding.pop(tags[-1])

        pool = NewestFirst([])
        flushed = list(stream_reorder(pool, work, window, stats))
        assert [tag for tag, _ in flushed] == list(range(n))
        assert stats["peak_resident"] == min(window, n)


def stream_cell(params):
    """Module-level cell for the end-to-end streaming property."""
    return {"values": {"y": params["x"] * 10}}


def _collect(cells):
    return [(c.key, c.values["y"]) for c in cells]


def _spec(n=6):
    return ExperimentSpec(
        name="stream",
        cells=tuple(Cell(key=f"x{i}", params={"x": i}) for i in range(n)),
        cell_function=stream_cell,
        reducer=_collect,
    )


class TestEndToEndStreaming:
    def test_any_window_matches_serial_bit_for_bit(self):
        serial = run_spec(_spec(), jobs=1)
        reference = json.dumps(canonical_artifact_payload(serial), sort_keys=True)
        for jobs, window in ((2, 1), (2, 3), (3, 2), (4, 8)):
            streamed = run_spec(_spec(), jobs=jobs, reorder_window=window)
            payload = json.dumps(
                canonical_artifact_payload(streamed), sort_keys=True
            )
            assert payload == reference, (jobs, window)
            assert streamed.stats.window == window
            peak = streamed.engine_profile.counters["engine.stream.peak_resident"]
            assert peak <= window

    def test_default_window_scales_with_jobs(self):
        assert run_spec(_spec(2), jobs=1).stats.window == 1
        assert run_spec(_spec(2), jobs=2).stats.window == 8

    def test_stream_counters_account_for_every_miss(self, tmp_path):
        cold = run_spec(_spec(), jobs=2, cache=str(tmp_path), reorder_window=4)
        assert cold.engine_profile.counters["engine.stream.flushed"] == 6
        assert cold.engine_profile.counters["cache.backend.put"] == 6
        warm = run_spec(_spec(), jobs=2, cache=str(tmp_path), reorder_window=4)
        assert warm.engine_profile.counters["engine.stream.flushed"] == 0
        assert warm.engine_profile.counters["cache.backend.hit"] == 6

    def test_resume_skips_the_completed_prefix(self, tmp_path):
        """An interrupted sweep = a partially-populated cache; resume
        computes only what is missing."""
        cache = str(tmp_path)
        run_spec(_spec(3), jobs=1, cache=cache)  # "interrupted" after 3 cells
        resumed = run_spec(_spec(6), jobs=1, cache=cache, resume=True)
        assert resumed.stats.hits == 3
        assert resumed.stats.misses == 3
        assert resumed.stats.resumed == 3
        assert resumed.result == run_spec(_spec(6), jobs=1).result
