"""Typed metric registry: declaration, validation, instruments, and
the derived per-run metrics."""

import pytest

from repro.adaptive.controller import AdaptiveConfig
from repro.ctg.examples import two_sided_branch_ctg
from repro.obs import Tracer, derive_run_metrics
from repro.obs.metrics import (
    Histogram,
    MetricError,
    MetricKind,
    MetricSpec,
    MetricsRegistry,
    declared_names,
    default_registry,
    vocabulary_table,
)
from repro.sim.runner import run_adaptive
from repro.workloads.traces import drifting_trace

from .test_stretching_edge_cases import uniform_platform


class TestDeclaration:
    def test_default_registry_knows_the_vocabulary(self):
        reg = default_registry()
        assert set(reg.names) == declared_names()
        assert reg.spec("online").kind is MetricKind.TIMER
        assert reg.spec("reschedule.calls").kind is MetricKind.COUNTER
        assert reg.spec("no.such.metric") is None

    def test_redeclaring_same_kind_is_idempotent(self):
        reg = default_registry()
        spec = MetricSpec("reschedule.calls", MetricKind.COUNTER, "again")
        reg.declare(spec)
        assert reg.spec("reschedule.calls").description == "again"

    def test_redeclaring_different_kind_raises(self):
        reg = default_registry()
        with pytest.raises(MetricError, match="re-declared"):
            reg.declare(MetricSpec("reschedule.calls", MetricKind.GAUGE, "bad"))


class TestValidation:
    def test_known_names_pass_silently(self):
        reg = default_registry(check=True)
        assert reg.validate(["online", "dls", "reschedule.calls"]) == []

    def test_unknown_names_raise_under_check(self):
        reg = default_registry(check=True)
        with pytest.raises(MetricError, match="path_cache.hti"):
            reg.validate(["path_cache.hti"], source="test")

    def test_unknown_names_warn_without_check(self):
        reg = default_registry(check=False)
        with pytest.warns(UserWarning, match="undeclared"):
            unknown = reg.validate(["path_cache.hti", "online"])
        assert unknown == ["path_cache.hti"]


class TestInstruments:
    def test_counter_accumulates(self):
        reg = default_registry()
        counter = reg.counter("reschedule.calls")
        counter.inc()
        counter.inc(3)
        assert reg.snapshot()["reschedule.calls"] == 4

    def test_instrument_is_cached_per_name(self):
        reg = default_registry()
        assert reg.counter("reschedule.calls") is reg.counter("reschedule.calls")

    def test_kind_mismatch_raises(self):
        reg = default_registry()
        with pytest.raises(MetricError, match="declared as a counter"):
            reg.gauge("reschedule.calls")
        with pytest.raises(MetricError, match="declared as a gauge"):
            reg.histogram("run.total_energy")

    def test_undeclared_instrument_raises_under_check(self):
        reg = default_registry(check=True)
        with pytest.raises(MetricError, match="undeclared"):
            reg.counter("made.up")

    def test_undeclared_instrument_is_auto_declared_without_check(self):
        reg = default_registry(check=False)
        with pytest.warns(UserWarning):
            counter = reg.counter("made.up")
        counter.inc()
        assert reg.snapshot()["made.up"] == 1

    def test_gauge_is_last_write_wins(self):
        reg = default_registry()
        gauge = reg.gauge("run.total_energy")
        gauge.set(1.0)
        gauge.set(2.5)
        assert reg.snapshot()["run.total_energy"] == 2.5

    def test_labelled_series_key_by_sorted_labels(self):
        reg = default_registry()
        counter = reg.counter("reschedule.calls")
        counter.inc(2, policy="default", workload="mpeg")
        counter.inc(1, workload="mpeg", policy="default")  # same series
        counter.inc(5, workload="cruise", policy="default")
        snap = reg.snapshot()["reschedule.calls"]
        assert snap["policy=default|workload=mpeg"] == 3
        assert snap["policy=default|workload=cruise"] == 5

    def test_histogram_summary_is_deterministic(self):
        summary = Histogram.summarise([3.0, 1.0, 2.0, 4.0])
        assert summary == {"count": 4, "p50": 3.0, "p95": 4.0, "max": 4.0, "sum": 10.0}
        assert Histogram.summarise([]) == {
            "count": 0, "p50": 0.0, "p95": 0.0, "max": 0.0, "sum": 0.0,
        }

    def test_wall_clock_names_are_the_seconds_metrics(self):
        names = default_registry().wall_clock_names()
        assert "online" in names
        assert "run.reschedule_latency" in names
        assert "run.total_energy" not in names
        assert "reschedule.calls" not in names


class TestVocabularyTable:
    def test_every_declared_name_appears(self):
        table = vocabulary_table()
        for name in declared_names():
            assert f"``{name}``" in table

    def test_table_is_rst_grid_shaped(self):
        lines = vocabulary_table().splitlines()
        assert lines[0] == lines[-1]
        assert set(lines[0]) == {"=", " "}


class TestDerivedRunMetrics:
    @pytest.fixture(scope="class")
    def run(self):
        ctg = two_sided_branch_ctg()
        ctg.deadline = 60.0
        platform = uniform_platform(ctg, pes=1)
        trace = drifting_trace(ctg, 12, seed=3)
        tracer = Tracer()
        result = run_adaptive(
            ctg, platform, trace, ctg.default_probabilities,
            config=AdaptiveConfig(window_size=4, threshold=0.05),
            tracer=tracer,
        )
        return result, tracer

    def test_gauges_mirror_the_result(self, run):
        result, tracer = run
        snap = derive_run_metrics(result, tracer=tracer).snapshot()
        assert snap["run.total_energy"] == pytest.approx(result.total_energy)
        assert snap["run.instances"] == len(result.energies)
        assert snap["run.reschedule_calls"] == result.reschedule_calls
        assert snap["run.deadline_misses"] == result.deadline_misses

    def test_energy_histogram_covers_every_instance(self, run):
        result, tracer = run
        snap = derive_run_metrics(result, tracer=tracer).snapshot()
        hist = snap["run.energy_per_instance"]
        assert hist["count"] == len(result.energies)
        assert hist["sum"] == pytest.approx(result.total_energy)

    def test_latency_histogram_needs_an_enabled_tracer(self, run):
        result, tracer = run
        with_tracer = derive_run_metrics(result, tracer=tracer).snapshot()
        without = derive_run_metrics(result).snapshot()
        assert with_tracer["run.reschedule_latency"]["count"] == (
            result.profile.calls["online"]
        )
        assert "run.reschedule_latency" not in without

    def test_recovery_rate_only_on_faulted_results(self, run):
        result, _ = run
        snap = derive_run_metrics(result).snapshot()
        assert "run.recovery_rate" not in snap
