"""Import hygiene: every subpackage must import cleanly on its own.

Circular imports only bite when a particular module is imported
*first*, so each candidate is imported in a fresh interpreter.
"""

import subprocess
import sys

import pytest

SUBPACKAGES = [
    "repro",
    "repro.ctg",
    "repro.platform",
    "repro.scheduling",
    "repro.adaptive",
    "repro.sim",
    "repro.workloads",
    "repro.analysis",
    "repro.experiments",
    "repro.io",
    "repro.viz",
    "repro.__main__",
]


@pytest.mark.parametrize("module", SUBPACKAGES)
def test_subpackage_imports_standalone(module):
    result = subprocess.run(
        [sys.executable, "-c", f"import {module}"],
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, f"import {module} failed:\n{result.stderr}"
