"""Tests for the repository AST lint (AST101–AST104)."""

import textwrap
from pathlib import Path

import pytest

from repro.check.astlint import lint_paths, lint_source, main

SRC = Path(__file__).resolve().parent.parent / "src"
TESTS = Path(__file__).resolve().parent


def codes(source, **kwargs):
    return [d.code for d in lint_source(textwrap.dedent(source), **kwargs)]


class TestMutableDefaults:
    def test_list_literal_default(self):
        assert codes("def f(x=[]):\n    pass\n") == ["AST101"]

    def test_dict_set_and_comprehension_defaults(self):
        source = """
        def f(a={}, b=set(), c=[i for i in range(3)]):
            pass
        """
        assert codes(source) == ["AST101", "AST101", "AST101"]

    def test_keyword_only_default(self):
        assert codes("def f(*, x=list()):\n    pass\n") == ["AST101"]

    def test_constructor_call_default(self):
        source = """
        def f(config=AnnealingConfig()):
            pass
        """
        assert codes(source) == ["AST101"]

    def test_immutable_defaults_pass(self):
        source = """
        _SENTINEL = object()
        def f(a=None, b=1, c=(), d=frozenset(), e="x", g=_SENTINEL):
            pass
        """
        assert codes(source) == []

    def test_lambda_default(self):
        assert codes("f = lambda x=[]: x\n") == ["AST101"]

    def test_dataclass_field_call_default(self):
        source = """
        @dataclass
        class C:
            items: list = field(default=[])
        """
        assert codes(source) == ["AST101"]

    def test_dataclass_instance_default(self):
        source = """
        @dataclasses.dataclass
        class C:
            config: AdaptiveConfig = AdaptiveConfig()
        """
        assert codes(source) == ["AST101"]

    def test_dataclass_default_factory_passes(self):
        source = """
        @dataclass
        class C:
            items: list = field(default_factory=list)
            n: int = 3
        """
        assert codes(source) == []

    def test_plain_class_attributes_not_flagged(self):
        # shared class-level registries are an accepted idiom outside
        # dataclasses — the rule targets per-instance default state
        source = """
        class C:
            registry: dict = {}
        """
        assert codes(source) == []


class TestBlindExcept:
    def test_bare_except(self):
        source = """
        try:
            risky()
        except:
            handle()
        """
        assert codes(source) == ["AST102"]

    def test_except_exception_pass(self):
        source = """
        try:
            risky()
        except Exception:
            pass
        """
        assert codes(source) == ["AST102"]

    def test_except_tuple_with_exception_ellipsis(self):
        source = """
        try:
            risky()
        except (ValueError, Exception):
            ...
        """
        assert codes(source) == ["AST102"]

    def test_handled_exception_passes(self):
        source = """
        try:
            risky()
        except Exception as exc:
            log(exc)
        """
        assert codes(source) == []

    def test_narrow_silent_handler_passes(self):
        source = """
        try:
            risky()
        except KeyError:
            pass
        """
        assert codes(source) == []


class TestFloatEquality:
    def test_eq_against_float_literal(self):
        assert codes("ok = t == 1.5\n") == ["AST103"]

    def test_ne_against_float_literal(self):
        assert codes("ok = 0.0 != energy\n") == ["AST103"]

    def test_int_equality_passes(self):
        assert codes("ok = n == 3\n") == []

    def test_float_inequality_passes(self):
        assert codes("ok = t <= 1.5\n") == []

    def test_exempt_files_skip_the_rule(self):
        assert codes("assert t == 1.5\n", float_eq_exempt=True) == []


class TestToleranceConstants:
    def test_module_level_tol_constant(self):
        assert codes("_CERTAIN_TOL = 1e-12\n") == ["AST104"]

    def test_module_level_eps_constant(self):
        assert codes("MY_EPS = 1e-9\n") == ["AST104"]

    def test_bare_and_annotated_forms(self):
        assert codes("EPS: float = 1e-9\n") == ["AST104"]
        assert codes("TOL = 0.001\n") == ["AST104"]

    def test_tuple_target(self):
        assert codes("A_TOL, B_EPS = 1e-6, 1e-9\n") == ["AST104", "AST104"]

    def test_tolerances_module_itself_is_exempt(self):
        assert codes("TIME_EPS = 1e-6\n", tolerance_home=True) == []

    def test_function_local_names_pass(self):
        assert codes("def f():\n    MY_EPS = 1e-9\n    return MY_EPS\n") == []

    def test_class_attributes_pass(self):
        assert codes("class C:\n    MY_TOL = 1e-6\n") == []

    def test_lookalike_names_pass(self):
        # STEPS ends in EPS without an underscore boundary; lowercase
        # names and imports are not constants being re-declared.
        assert codes("STEPS = 5\n") == []
        assert codes("my_eps = 1e-9\n") == []
        assert codes("from repro.check.tolerances import TIME_EPS\n") == []

    def test_suppression_applies(self):
        assert codes("LEGACY_EPS = 1e-3  # lint: ignore[AST104]\n") == []


class TestSuppression:
    def test_targeted_suppression(self):
        source = "def f(x=[]):  # lint: ignore[AST101]\n    pass\n"
        assert codes(source) == []

    def test_blanket_suppression(self):
        source = "def f(x=[]):  # lint: ignore\n    pass\n"
        assert codes(source) == []

    def test_wrong_code_does_not_suppress(self):
        source = "def f(x=[]):  # lint: ignore[AST103]\n    pass\n"
        assert codes(source) == ["AST101"]

    def test_multi_code_suppression(self):
        source = (
            "def f(x=[], y=0.1):\n"
            "    return y == 0.25  # lint: ignore[AST101,AST103]\n"
        )
        # AST101 sits on line 1; only AST103 is waived by the comment
        assert codes(source) == ["AST101"]
        both = "def f(x=[], z={}):  # lint: ignore[AST101,AST103]\n    pass\n"
        assert codes(both) == []

    def test_finding_carries_file_line_and_column(self):
        findings = lint_source("def f(x=[]):\n    pass\n", filename="m.py")
        assert findings[0].subject == "m.py:1:9"

    def test_columns_disambiguate_same_line_findings(self):
        findings = lint_source(
            "def f(x=[], y={}):\n    pass\n", filename="m.py"
        )
        subjects = [f.subject for f in findings]
        assert subjects == ["m.py:1:9", "m.py:1:15"]


class TestTreeAndCli:
    def test_repo_tree_is_clean(self):
        report = lint_paths([SRC, TESTS])
        assert report.ok, report.render_text()

    def test_main_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(x=[]):\n    pass\n")
        assert main([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "AST101" in out and "check FAILED" in out
        good = tmp_path / "good.py"
        good.write_text("def f(x=None):\n    pass\n")
        assert main([str(good)]) == 0

    def test_main_missing_path(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope")]) == 2

    def test_main_json_output(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("try:\n    f()\nexcept:\n    pass\n")
        assert main([str(bad), "--json"]) == 1
        assert '"AST102"' in capsys.readouterr().out
