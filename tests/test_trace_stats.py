"""Tests for trace fluctuation measurement (repro.analysis.trace_stats)."""

import pytest

from repro.analysis import branch_fluctuations, mean_fluctuation
from repro.ctg.examples import two_sided_branch_ctg
from repro.workloads import fluctuating_trace, movie_trace, mpeg_ctg


class TestBranchFluctuations:
    def test_constant_trace_zero_fluctuation(self):
        ctg = two_sided_branch_ctg()
        trace = [{"fork": "h"}] * 200
        stats = branch_fluctuations(ctg, trace, window=50)
        assert stats["fork"].fluctuation == pytest.approx(0.0)
        assert stats["fork"].mean == pytest.approx(1.0)

    def test_square_wave_full_fluctuation(self):
        ctg = two_sided_branch_ctg()
        trace = [{"fork": "h"}] * 100 + [{"fork": "l"}] * 100
        stats = branch_fluctuations(ctg, trace, window=50)
        assert stats["fork"].minimum == pytest.approx(0.0)
        assert stats["fork"].maximum == pytest.approx(1.0)
        assert stats["fork"].fluctuation == pytest.approx(1.0)

    def test_short_trace_reports_no_samples(self):
        ctg = two_sided_branch_ctg()
        stats = branch_fluctuations(ctg, [{"fork": "h"}] * 10, window=50)
        assert stats["fork"].samples == 0

    def test_observed_only_skips_unexecuted_branches(self):
        ctg = mpeg_ctg()
        # every macroblock skipped: the type branch never executes
        trace = [
            {"parse": "a2", "classify": "b1", "dct_type": "d1",
             **{f"chk{k}": "c1" for k in range(1, 7)}}
        ] * 100
        stats = branch_fluctuations(ctg, trace, window=50)
        assert stats["classify"].samples == 0
        assert stats["parse"].samples > 0


class TestPaperCalibration:
    def test_fluctuating_trace_matches_configured_width(self):
        """The Tables-4/5 vector sets are generated with fluctuation
        0.45; the measured windowed width must land nearby (sampling
        noise widens it slightly)."""
        ctg = mpeg_ctg()
        trace = fluctuating_trace(ctg, 3000, seed=3, fluctuation=0.45)
        measured = mean_fluctuation(ctg, trace)
        assert 0.35 <= measured <= 0.7

    def test_movie_traces_fluctuate_like_real_clips(self):
        """The paper measures 0.4–0.5 average per-branch fluctuation on
        real MPEG streams; the synthetic clips must be in that regime
        (ours run slightly hotter because of the I-frame pinning)."""
        ctg = mpeg_ctg()
        for movie in ("Airwolf", "Train"):
            trace = movie_trace(ctg, movie, 2000)
            measured = mean_fluctuation(ctg, trace)
            assert 0.35 <= measured <= 0.9, f"{movie}: {measured:.2f}"

    def test_mean_fluctuation_empty_graph_safe(self):
        from repro.ctg.examples import diamond_ctg

        assert mean_fluctuation(diamond_ctg(), [dict()] * 10) == 0.0
