"""Tests for re-scheduling overhead accounting on RunResult."""

import pytest

from repro.sim import RunResult


class TestOverheadAccounting:
    def test_total_with_overhead(self):
        result = RunResult(energies=[10.0, 10.0], reschedule_calls=4)
        assert result.total_with_overhead(0.5) == pytest.approx(22.0)

    def test_zero_overhead_is_plain_total(self):
        result = RunResult(energies=[5.0], reschedule_calls=3)
        assert result.total_with_overhead(0.0) == result.total_energy

    def test_break_even_overhead(self):
        baseline = RunResult(energies=[100.0])
        adaptive = RunResult(energies=[80.0], reschedule_calls=10)
        # saving of 20 over 10 calls → 2.0 per call break-even
        assert adaptive.break_even_overhead(baseline) == pytest.approx(2.0)

    def test_break_even_infinite_without_calls(self):
        baseline = RunResult(energies=[100.0])
        adaptive = RunResult(energies=[90.0], reschedule_calls=0)
        assert adaptive.break_even_overhead(baseline) == float("inf")

    def test_break_even_negative_when_adaptive_worse(self):
        baseline = RunResult(energies=[80.0])
        adaptive = RunResult(energies=[100.0], reschedule_calls=5)
        assert adaptive.break_even_overhead(baseline) < 0
