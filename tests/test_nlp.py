"""Unit tests for the NLP stretching baseline."""

import pytest

from repro.ctg import ConditionalTaskGraph, GeneratorConfig, figure1_ctg, generate_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import (
    SchedulingError,
    dls_schedule,
    nlp_stretch_schedule,
    set_deadline_from_makespan,
    stretch_schedule,
)


def chain_ctg(n=4):
    ctg = ConditionalTaskGraph(name="chain")
    prev = None
    for i in range(n):
        ctg.add_task(f"c{i}")
        if prev is not None:
            ctg.add_edge(prev, f"c{i}")
        prev = f"c{i}"
    ctg.validate()
    return ctg


def uniform_platform(ctg, wcet=10.0, energy=10.0, min_speed=0.1):
    platform = Platform([ProcessingElement("pe0", min_speed=min_speed)])
    for task in ctg.tasks():
        platform.set_task_profile(task, "pe0", wcet=wcet, energy=energy)
    return platform


class TestChainOptimum:
    def test_uniform_chain_equal_speeds(self):
        """Convex optimum on a uniform chain: equal speeds filling the
        deadline exactly (the classical DVFS result)."""
        ctg = chain_ctg(5)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 100.0
        report = nlp_stretch_schedule(sched, {})
        assert report.converged
        for task in ctg.tasks():
            assert sched.placement(task).speed == pytest.approx(0.5, rel=1e-4)

    def test_respects_min_speed(self):
        ctg = chain_ctg(2)
        platform = uniform_platform(ctg, min_speed=0.8)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 1000.0
        nlp_stretch_schedule(sched, {})
        for task in ctg.tasks():
            assert sched.placement(task).speed >= 0.8 - 1e-9

    def test_infeasible_deadline_raises(self):
        ctg = chain_ctg(3)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 25.0
        with pytest.raises(SchedulingError):
            nlp_stretch_schedule(sched, {})

    def test_deadline_met_after_solve(self):
        ctg = chain_ctg(4)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 60.0
        nlp_stretch_schedule(sched, {})
        assert sched.meets_deadline()


class TestOptimality:
    @pytest.mark.parametrize("seed", [1, 5, 9])
    def test_nlp_lower_bounds_heuristic(self, seed):
        """Given the same mapping/ordering, the NLP is the continuous
        optimum for expected energy: it must never lose to the Figure-2
        heuristic (this is the mechanism behind Table 1's ref-2 ≤ 100)."""
        ctg = generate_ctg(GeneratorConfig(nodes=18, branch_nodes=2, seed=seed))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=seed))
        set_deadline_from_makespan(ctg, platform, 1.4)
        probs = ctg.default_probabilities

        heuristic = dls_schedule(ctg, platform, probs)
        stretch_schedule(heuristic, probs)
        optimal = dls_schedule(ctg, platform, probs)
        nlp_stretch_schedule(optimal, probs)

        assert optimal.expected_energy(probs) <= heuristic.expected_energy(probs) * 1.001

    def test_expected_weighting_beats_worst_case_on_skewed_branch(self):
        """Expected-energy weights shift slack toward likely tasks; the
        worst-case objective must not win under the true distribution."""
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=2))
        set_deadline_from_makespan(ctg, platform, 1.4)
        probs = {"t3": {"a1": 0.95, "a2": 0.05}, "t5": {"b1": 0.5, "b2": 0.5}}

        expected = dls_schedule(ctg, platform, probs)
        nlp_stretch_schedule(expected, probs, expected_energy=True)
        worst = dls_schedule(ctg, platform, probs)
        nlp_stretch_schedule(worst, probs, expected_energy=False)

        assert expected.expected_energy(probs) <= worst.expected_energy(probs) + 1e-6


class TestFeasibility:
    @pytest.mark.parametrize("seed", [3, 7, 13])
    def test_all_scenarios_meet_deadline(self, seed):
        ctg = generate_ctg(GeneratorConfig(nodes=20, branch_nodes=3, seed=seed))
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=3, seed=seed))
        set_deadline_from_makespan(ctg, platform, 1.5)
        sched = dls_schedule(ctg, platform)
        nlp_stretch_schedule(sched)
        assert sched.meets_deadline(tol=1e-4)

    def test_report_fields(self):
        ctg = chain_ctg(3)
        platform = uniform_platform(ctg)
        sched = dls_schedule(ctg, platform)
        sched.ctg.deadline = 45.0
        report = nlp_stretch_schedule(sched, {})
        assert report.iterations > 0
        assert report.expected_energy_objective > 0
