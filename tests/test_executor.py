"""Unit tests for the per-instance executor and decision vectors."""

import pytest

from repro.ctg import figure1_ctg
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import dls_schedule, schedule_online, set_deadline_from_makespan
from repro.sim import (
    InstanceExecutor,
    empirical_distribution,
    execute_instance,
    executed_decisions,
    scenario_from_decisions,
    validate_trace,
)


@pytest.fixture
def fig1_schedule():
    ctg = figure1_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=6))
    set_deadline_from_makespan(ctg, platform, 1.4)
    return schedule_online(ctg, platform).schedule


class TestScenarioFromDecisions:
    def test_a1_scenario(self):
        ctg = figure1_ctg()
        scenario = scenario_from_decisions(ctg, {"t3": "a1", "t5": "b1"})
        assert scenario.active == frozenset({"t1", "t2", "t3", "t4", "t8"})
        # t5 never executed, so its decision is not part of the product
        assert scenario.product.label_for("t5") is None

    def test_nested_scenario(self):
        ctg = figure1_ctg()
        scenario = scenario_from_decisions(ctg, {"t3": "a2", "t5": "b2"})
        assert "t7" in scenario.active
        assert str(scenario.product) == "a2b2"

    def test_missing_decision_raises(self):
        ctg = figure1_ctg()
        with pytest.raises(ValueError):
            scenario_from_decisions(ctg, {"t3": "a2"})  # t5 now needed

    def test_executed_decisions_filters_inactive(self):
        ctg = figure1_ctg()
        executed = executed_decisions(ctg, {"t3": "a1", "t5": "b1"})
        assert executed == {"t3": "a1"}


class TestValidateTrace:
    def test_good_trace_passes(self):
        ctg = figure1_ctg()
        validate_trace(ctg, [{"t3": "a1", "t5": "b1"}, {"t3": "a2", "t5": "b2"}])

    def test_missing_branch_rejected(self):
        ctg = figure1_ctg()
        with pytest.raises(ValueError):
            validate_trace(ctg, [{"t3": "a1"}])

    def test_unknown_label_rejected(self):
        ctg = figure1_ctg()
        with pytest.raises(ValueError):
            validate_trace(ctg, [{"t3": "a9", "t5": "b1"}])


class TestEmpiricalDistribution:
    def test_counts_executed_only(self):
        ctg = figure1_ctg()
        trace = [
            {"t3": "a1", "t5": "b1"},  # t5 not executed
            {"t3": "a2", "t5": "b1"},
            {"t3": "a2", "t5": "b2"},
        ]
        dist = empirical_distribution(ctg, trace)
        assert dist["t3"]["a1"] == pytest.approx(1 / 3)
        # t5 executed twice: b1 once, b2 once
        assert dist["t5"]["b1"] == pytest.approx(0.5)

    def test_never_executed_branch_falls_back_to_vectors(self):
        ctg = figure1_ctg()
        trace = [{"t3": "a1", "t5": "b1"}, {"t3": "a1", "t5": "b2"}]
        dist = empirical_distribution(ctg, trace)
        assert dist["t5"]["b1"] == pytest.approx(0.5)


class TestInstanceExecutor:
    def test_energy_counts_only_active_tasks(self, fig1_schedule):
        result = execute_instance(fig1_schedule, {"t3": "a1", "t5": "b1"})
        assert result.scenario.active == frozenset({"t1", "t2", "t3", "t4", "t8"})
        assert result.energy == pytest.approx(
            fig1_schedule.scenario_energy(result.scenario)
        )

    def test_inactive_tasks_have_no_times(self, fig1_schedule):
        result = execute_instance(fig1_schedule, {"t3": "a1", "t5": "b1"})
        assert "t6" not in result.finish_times
        assert "t5" not in result.finish_times

    def test_every_scenario_meets_deadline(self, fig1_schedule):
        for decisions in (
            {"t3": "a1", "t5": "b1"},
            {"t3": "a2", "t5": "b1"},
            {"t3": "a2", "t5": "b2"},
        ):
            result = execute_instance(fig1_schedule, decisions)
            assert result.deadline_met
            assert result.finish_time <= fig1_schedule.ctg.deadline + 1e-6

    def test_actual_finish_at_most_worst_case(self, fig1_schedule):
        worst = fig1_schedule.makespan()
        for decisions in (
            {"t3": "a1", "t5": "b1"},
            {"t3": "a2", "t5": "b2"},
        ):
            result = execute_instance(fig1_schedule, decisions)
            assert result.finish_time <= worst + 1e-6

    def test_precedence_respected_per_instance(self, fig1_schedule):
        result = execute_instance(fig1_schedule, {"t3": "a2", "t5": "b1"})
        ctg = fig1_schedule.ctg
        for src, dst, data in ctg.edges(include_pseudo=False):
            if src in result.finish_times and dst in result.start_times:
                if data.condition is None or data.condition.label == {"t3": "a2", "t5": "b1"}.get(data.condition.branch):
                    assert result.start_times[dst] >= result.finish_times[src] - 1e-9

    def test_or_node_waits_for_deciding_fork(self):
        """Example 1: τ₈ cannot start before the branch fork τ₃ finishes
        even when a₁ is false (τ₄ deselected)."""
        ctg = figure1_ctg()
        platform = Platform([ProcessingElement("pe0"), ProcessingElement("pe1")])
        platform.connect_all(bandwidth=10.0, energy_per_kbyte=0.01)
        # make t2 very fast and t3 slow: without the implied dependency
        # t8 could start right after t2.
        wcets = {"t1": 1.0, "t2": 1.0, "t3": 50.0, "t4": 1.0, "t5": 1.0,
                 "t6": 1.0, "t7": 1.0, "t8": 1.0}
        for task, wcet in wcets.items():
            for pe in platform.pe_names:
                platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
        sched = dls_schedule(ctg, platform)
        result = InstanceExecutor(sched).run({"t3": "a2", "t5": "b1"})
        assert result.start_times["t8"] >= result.finish_times["t3"] - 1e-9

    def test_reusable_executor_matches_one_shot(self, fig1_schedule):
        executor = InstanceExecutor(fig1_schedule)
        decisions = {"t3": "a2", "t5": "b2"}
        assert executor.run(decisions).energy == pytest.approx(
            execute_instance(fig1_schedule, decisions).energy
        )

    def test_cheaper_scenario_uses_less_energy(self):
        ctg = two_sided_branch_ctg()
        platform = Platform([ProcessingElement("pe0")])
        weights = {"entry": 5, "fork": 5, "heavy": 50, "light": 5, "join": 5}
        for task, wcet in weights.items():
            platform.set_task_profile(task, "pe0", wcet=wcet, energy=float(wcet))
        sched = dls_schedule(ctg, platform)
        heavy = execute_instance(sched, {"fork": "h"})
        light = execute_instance(sched, {"fork": "l"})
        assert heavy.energy > light.energy
