"""The merged fleet view: ``merge_fleet`` over mixed shard files,
``validate_fleet_report``, ``diff_payloads``/``render_diff``, and the
CLI surfaces that expose them (multi-input ``repro report``,
``repro report --diff``, ``repro tail``, ``repro cache stats --json``)."""

import json

import pytest

from repro.__main__ import main
from repro.experiments import run_spec, write_artifact
from repro.experiments.spec import Cell, ExperimentSpec
from repro.obs import (
    FLEET_SCHEMA,
    ReportError,
    classify_file,
    diff_payloads,
    expand_inputs,
    merge_fleet,
    read_ledger,
    render_diff,
    render_fleet_report,
    summarise_artifact,
    validate_fleet_report,
)


def shard_cell(params):
    """Module-level cell function for shard runs."""
    return {
        "values": {"y": params["x"] * 2},
        "profile": {
            "counters": {"shard.cells": 1},
            "timings": {"shard.work": 0.001},
            "calls": {"shard.work": 1},
        },
    }


def _spec(name, xs):
    return ExperimentSpec(
        name=name,
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in xs),
        cell_function=shard_cell,
        reducer=lambda cells: sum(c.values["y"] for c in cells),
    )


@pytest.fixture(scope="module")
def shards(tmp_path_factory):
    """Two shard directories, each holding an artifact + its ledger."""
    root = tmp_path_factory.mktemp("fleet")
    dirs = []
    for name, xs in (("alpha", (1, 2, 3)), ("beta", (4, 5))):
        shard_dir = root / name
        shard_dir.mkdir()
        report = run_spec(
            _spec(name, xs),
            jobs=1,
            cache=str(root / f"{name}-cache"),
            events=shard_dir / f"{name}.events.jsonl",
        )
        write_artifact(shard_dir, report)
        dirs.append(shard_dir)
    return dirs


class TestExpandAndClassify:
    def test_directories_expand_sorted_and_deduped(self, shards):
        files = expand_inputs([shards[0], shards[0], shards[0] / "alpha.json"])
        assert [p.name for p in files] == ["alpha.events.jsonl", "alpha.json"]

    def test_classify_artifact_and_ledger(self, shards):
        kind, payload = classify_file(shards[0] / "alpha.json")
        assert kind == "artifact" and payload["experiment"] == "alpha"
        kind, records = classify_file(shards[0] / "alpha.events.jsonl")
        assert kind == "events"
        assert records[0]["event"] == "ledger.opened"

    def test_classify_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not json\n")
        with pytest.raises(ReportError, match="neither"):
            classify_file(bad)


class TestMergeFleet:
    def test_totals_are_the_sum_of_the_shards(self, shards):
        merged = merge_fleet(shards)
        alpha = summarise_artifact(
            json.loads((shards[0] / "alpha.json").read_text())
        )
        beta = summarise_artifact(
            json.loads((shards[1] / "beta.json").read_text())
        )
        assert merged["schema"] == FLEET_SCHEMA
        assert merged["cells"]["total"] == alpha["cells"] + beta["cells"] == 5
        assert merged["counters"]["shard.cells"] == 5
        assert merged["experiments"] == ["alpha", "beta"]
        assert merged["cells"]["cached"] + merged["cells"]["computed"] == 5

    def test_ledger_events_are_counted(self, shards):
        merged = merge_fleet(shards)
        assert merged["events"]["sweep.started"] == 2
        assert merged["events"]["cell.completed"] == 5

    def test_engine_counters_summed_separately(self, shards):
        merged = merge_fleet(shards)
        assert merged["engine"]["counters"]["cache.backend.put"] == 5
        assert "cache.backend.put" not in merged["counters"]

    def test_metrics_snapshot_inputs_fold_in(self, shards, tmp_path):
        snapshot = tmp_path / "extra.metrics.json"
        snapshot.write_text(
            json.dumps(
                {
                    "schema": "repro.metrics/1",
                    "canonical": True,
                    "counters": {"shard.cells": 10},
                    "stage_seconds": {"shard.work": 0.5},
                    "stage_calls": {"shard.work": 3},
                }
            )
        )
        merged = merge_fleet([*shards, snapshot])
        assert merged["counters"]["shard.cells"] == 15

    def test_empty_input_rejected(self, tmp_path):
        empty = tmp_path / "void"
        empty.mkdir()
        with pytest.raises(ReportError, match="no shard files"):
            merge_fleet([empty])

    def test_validate_accepts_merged_payload(self, shards):
        assert validate_fleet_report(merge_fleet(shards)) == []

    def test_validate_flags_problems(self):
        assert validate_fleet_report([]) == ["fleet report must be a JSON object"]
        problems = validate_fleet_report(
            {"schema": FLEET_SCHEMA, "cells": {"total": 3, "cached": 1, "computed": 1}}
        )
        assert "cells.cached + cells.computed != cells.total" in problems
        assert any("missing key" in p for p in problems)

    def test_render_mentions_shards_and_events(self, shards):
        text = render_fleet_report(merge_fleet(shards))
        assert "fleet report" in text
        assert "alpha.json" in text and "beta.json" in text
        assert "ledger events:" in text
        assert "cells: 5" in text


class TestDiff:
    def test_artifact_diff_reports_moved_counters(self, shards):
        kind_a, a = classify_file(shards[0] / "alpha.json")
        kind_b, b = classify_file(shards[1] / "beta.json")
        diff = diff_payloads(kind_a, a, kind_b, b)
        assert diff["schema"] == "repro.fleet-diff/1"
        assert diff["cells"] == {"a": 3, "b": 2}
        assert diff["counters"]["shard.cells"]["delta"] == -1
        text = render_diff(diff)
        assert "alpha → beta" in text
        assert "shard.cells" in text

    def test_identical_artifacts_diff_is_quiet(self, shards):
        kind, payload = classify_file(shards[0] / "alpha.json")
        diff = diff_payloads(kind, payload, kind, payload)
        assert diff["counters"] == {}
        assert diff["cache_hit_rate"]["delta"] == 0.0

    def test_mixed_kinds_rejected(self, shards):
        kind_a, a = classify_file(shards[0] / "alpha.json")
        kind_b, b = classify_file(shards[0] / "alpha.events.jsonl")
        with pytest.raises(ReportError, match="same kind"):
            diff_payloads(kind_a, a, kind_b, b)

    def test_metrics_diff(self):
        a = {"counters": {"c": 1}, "stage_seconds": {}}
        b = {"counters": {"c": 4}, "stage_seconds": {}}
        diff = diff_payloads("metrics", a, "metrics", b)
        assert diff["counters"]["c"]["delta"] == 3


class TestArtifactEngineSection:
    """Satellite: ``repro report`` on a ``repro.experiment/3`` artifact
    surfaces the engine accounting in both renderings."""

    def test_summary_carries_engine_window_and_counters(self, shards):
        payload = json.loads((shards[0] / "alpha.json").read_text())
        summary = summarise_artifact(payload)
        assert summary["engine"]["window"] >= 1
        assert summary["engine"]["counters"]["engine.stream.flushed"] == 3

    def test_older_artifacts_render_an_empty_section(self):
        summary = summarise_artifact(
            {"schema": "repro.experiment/2", "experiment": "old", "cells": []}
        )
        assert summary["engine"] == {"window": 0, "counters": {}}

    def test_cli_text_report_shows_engine_block(self, shards, capsys):
        assert main(["report", str(shards[0] / "alpha.json")]) == 0
        out = capsys.readouterr().out
        assert "engine (window" in out
        assert "engine.stream.flushed" in out

    def test_cli_json_report_shows_engine_block(self, shards, capsys):
        assert main(["report", str(shards[0] / "alpha.json"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"]["counters"]["engine.stream.flushed"] == 3
        assert payload["cache"]["misses"] == 3


class TestReportVerbFleet:
    def test_multi_input_merges(self, shards, capsys):
        assert main(["report", str(shards[0]), str(shards[1])]) == 0
        out = capsys.readouterr().out
        assert "fleet report" in out
        assert "cells: 5" in out

    def test_multi_input_json_validates(self, shards, capsys):
        assert main(["report", str(shards[0]), str(shards[1]), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert validate_fleet_report(payload) == []
        assert payload["cells"]["total"] == 5

    def test_single_ledger_routes_through_fleet_view(self, shards, capsys):
        assert main(["report", str(shards[0] / "alpha.events.jsonl")]) == 0
        assert "fleet report" in capsys.readouterr().out

    def test_diff_verb(self, shards, capsys):
        code = main(
            [
                "report",
                "--diff",
                str(shards[0] / "alpha.json"),
                str(shards[1] / "beta.json"),
            ]
        )
        assert code == 0
        assert "report diff (A → B)" in capsys.readouterr().out

    def test_diff_needs_exactly_two(self, shards, capsys):
        code = main(["report", "--diff", str(shards[0] / "alpha.json")])
        assert code == 2
        assert "exactly two" in capsys.readouterr().err

    def test_missing_file_exits_2(self, capsys):
        assert main(["report", "definitely/not/here.json"]) == 2
        assert capsys.readouterr().err


class TestTailVerb:
    def test_replays_ledger(self, shards, capsys):
        ledger = shards[0] / "alpha.events.jsonl"
        assert main(["tail", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "sweep.started" in out
        assert "cell.completed" in out

    def test_canonical_mode_is_byte_stable_json(self, shards, capsys):
        ledger = shards[0] / "alpha.events.jsonl"
        assert main(["tail", str(ledger), "--canonical"]) == 0
        first = capsys.readouterr().out
        assert main(["tail", str(ledger), "--canonical"]) == 0
        assert capsys.readouterr().out == first
        events = [json.loads(line)["event"] for line in first.splitlines()]
        assert "cell.submitted" not in events
        assert "cell.completed" in events

    def test_missing_file_exits_2(self, capsys):
        assert main(["tail", "no/such/events.jsonl"]) == 2
        assert capsys.readouterr().err


class TestCacheStatsJson:
    def test_stats_json(self, tmp_path, capsys):
        run_spec(_spec("gamma", (7,)), jobs=1, cache=str(tmp_path / "c"))
        assert main(["cache", "stats", str(tmp_path / "c"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["entries"] == 1
        assert payload["backend"].startswith("dir:")
        assert payload["size_bytes"] > 0

    def test_verify_json(self, tmp_path, capsys):
        run_spec(_spec("delta", (8,)), jobs=1, cache=str(tmp_path / "c"))
        assert main(["cache", "verify", str(tmp_path / "c"), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload == {"checked": 1, "corrupt": []}
