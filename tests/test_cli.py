"""Tests for the command-line interface (python -m repro)."""

import json

import pytest

from repro.__main__ import EXPERIMENTS, main
from repro.experiments import ARTIFACT_SCHEMA, load_artifact, validate_artifact
from repro.ctg import figure1_ctg
from repro.io import save_instance
from repro.platform import PlatformConfig, generate_platform


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_demo(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "deadline" in out
        assert "makespan" in out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nonsense"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert "Reference Alg 1" in out

    def test_schedule_instance(self, tmp_path, capsys):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform)
        assert main(["schedule", str(path), "--deadline-factor", "1.5"]) == 0
        out = capsys.readouterr().out
        assert "expected energy" in out
        assert "t8" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])


class TestRunEngineFlags:
    def test_table3_parallel_json_round_trips_schema(self, capsys):
        assert main(["run", "table3", "--jobs", "2", "--smoke", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        validate_artifact(payload)
        assert payload["schema"] == ARTIFACT_SCHEMA
        assert payload["experiment"] == "table3"
        assert payload["jobs"] == 2
        assert payload["cells"]
        for cell in payload["cells"]:
            assert cell["fingerprint"]
            assert cell["values"]

    def test_run_all_smoke_exits_zero(self, capsys):
        assert main(["run", "all", "--smoke", "--jobs", "1"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert f"=== {name} ===" in out
        assert "[engine:" in out

    def test_cache_dir_hits_on_second_run(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        args = ["run", "figure4", "--smoke", "--cache-dir", str(cache), "--format", "json"]
        assert main(args) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["cache"]["hits"] == 0
        assert main(args) == 0
        warm = json.loads(capsys.readouterr().out)
        assert warm["cache"]["hits"] == warm["cache"]["misses"] + warm["cache"]["hits"]
        assert warm["cache"]["hit_rate"] == 1.0
        assert warm["result"] == cold["result"]

    def test_artifacts_dir_writes_one_file_per_experiment(self, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        assert (
            main(
                ["run", "figure4", "table3", "--smoke", "--artifacts-dir", str(out_dir)]
            )
            == 0
        )
        capsys.readouterr()
        for name in ("figure4", "table3"):
            payload = load_artifact(out_dir / f"{name}.json")
            assert payload["experiment"] == name

    def test_jobs_do_not_change_stdout(self, capsys):
        assert main(["run", "table3", "--smoke", "--jobs", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["run", "table3", "--smoke", "--jobs", "2"]) == 0
        parallel = capsys.readouterr().out
        # engine line differs only in the jobs/time fields
        strip = lambda text: [
            line for line in text.splitlines() if not line.startswith("[engine:")
        ]
        assert strip(parallel) == strip(serial)


class TestCheckVerb:
    def test_check_workload_by_name(self, capsys):
        assert main(["check", "cruise", "--deadline-factor", "2.0"]) == 0
        out = capsys.readouterr().out
        assert "cruise" in out
        assert "check passed" in out

    def test_check_saved_instance(self, tmp_path, capsys):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform)
        assert main(["check", str(path), "--deadline-factor", "1.5"]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_check_no_schedule_skips_building_one(self, capsys):
        assert main(["check", "cruise", "--no-schedule"]) == 0
        assert "check passed" in capsys.readouterr().out

    def test_check_json_output(self, capsys):
        assert main(["check", "cruise", "--json"]) == 0
        out = capsys.readouterr().out
        assert '"ok": true' in out
        assert '"checks_run"' in out

    def test_check_unloadable_target_reports_and_continues(self, tmp_path, capsys):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform)
        bad = tmp_path / "missing.json"
        assert main(["check", str(bad), str(path), "--deadline-factor", "1.5"]) == 1
        captured = capsys.readouterr()
        assert "cannot load target" in captured.err
        assert "check passed" in captured.out  # the good target still ran

    def test_schedule_with_check_flag(self, tmp_path, capsys):
        ctg = figure1_ctg()
        platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=5))
        path = tmp_path / "instance.json"
        save_instance(path, ctg, platform)
        assert main(["schedule", str(path), "--check"]) == 0
        assert "expected energy" in capsys.readouterr().out
