"""Tests for the declarative experiment engine (spec + run_spec)."""

import pickle
import random

import pytest

from repro.experiments import (
    Cell,
    CellResult,
    EngineError,
    EngineStats,
    ExperimentSpec,
    SpecError,
    derive_cell_seeds,
    robustness_spec,
    run_seed_robustness,
    run_spec,
)
from repro.adaptive import AdaptiveConfig
from repro.analysis import percent_savings
from repro.scheduling import set_deadline_from_makespan
from repro.sim import empirical_distribution, run_adaptive, run_non_adaptive
from repro.workloads import channel_trace, wlan_ctg, wlan_platform


def square_cell(params):
    """Module-level toy cell: workers import it by name."""
    return {
        "values": {"square": params["x"] ** 2},
        "profile": {"counters": {"cells": 1}},
    }


def _collect(cells):
    return [(c.key, c.values["square"]) for c in cells]


def _square_spec(xs=(1, 2, 3, 4)):
    return ExperimentSpec(
        name="squares",
        cells=tuple(Cell(key=f"x{x}", params={"x": x}) for x in xs),
        cell_function=square_cell,
        reducer=_collect,
    )


class TestSpecValidation:
    def test_rejects_empty_name(self):
        with pytest.raises(SpecError, match="name"):
            ExperimentSpec(
                name="",
                cells=(Cell(key="a"),),
                cell_function=square_cell,
                reducer=_collect,
            )

    def test_rejects_no_cells(self):
        with pytest.raises(SpecError, match="no cells"):
            ExperimentSpec(
                name="x", cells=(), cell_function=square_cell, reducer=_collect
            )

    def test_rejects_duplicate_keys(self):
        with pytest.raises(SpecError, match="duplicate"):
            ExperimentSpec(
                name="x",
                cells=(Cell(key="a", params={"x": 1}), Cell(key="a", params={"x": 2})),
                cell_function=square_cell,
                reducer=_collect,
            )

    def test_fingerprint_distinguishes_params_context_and_name(self):
        spec = _square_spec()
        other_params = ExperimentSpec(
            name="squares",
            cells=(Cell(key="x1", params={"x": 99}),) + spec.cells[1:],
            cell_function=square_cell,
            reducer=_collect,
        )
        other_context = ExperimentSpec(
            name="squares",
            cells=spec.cells,
            cell_function=square_cell,
            reducer=_collect,
            context={"instance": "abc"},
        )
        other_name = ExperimentSpec(
            name="cubes",
            cells=spec.cells,
            cell_function=square_cell,
            reducer=_collect,
        )
        base = spec.fingerprint_of(spec.cells[0])
        assert base != other_params.fingerprint_of(other_params.cells[0])
        assert base != other_context.fingerprint_of(other_context.cells[0])
        assert base != other_name.fingerprint_of(other_name.cells[0])
        # and it is stable across calls
        assert base == spec.fingerprint_of(spec.cells[0])


class TestRunSpec:
    def test_serial_execution_reduces_in_declaration_order(self):
        report = run_spec(_square_spec(), jobs=1)
        assert report.result == [("x1", 1), ("x2", 4), ("x3", 9), ("x4", 16)]
        assert report.stats.cells == 4
        assert report.stats.misses == 4
        assert not report.stats.cache_enabled

    def test_parallel_matches_serial_bit_for_bit(self):
        serial = run_spec(_square_spec(), jobs=1)
        parallel = run_spec(_square_spec(), jobs=2)
        assert parallel.result == serial.result
        assert [c.values for c in parallel.cells] == [c.values for c in serial.cells]
        # satellite: the aggregate profiler is identical too
        assert parallel.profile.counters == serial.profile.counters
        assert parallel.profile.calls == serial.profile.calls

    def test_aggregate_profile_merges_every_cell(self):
        report = run_spec(_square_spec(), jobs=1)
        assert report.profile.counters["cells"] == 4

    def test_rejects_bad_jobs(self):
        with pytest.raises(EngineError, match="jobs"):
            run_spec(_square_spec(), jobs=0)

    def test_parallel_rejects_unimportable_cell_function(self):
        spec = ExperimentSpec(
            name="lambdas",
            cells=(Cell(key="a", params={"x": 1}), Cell(key="b", params={"x": 2})),
            cell_function=lambda params: {"values": {"square": params["x"] ** 2}},
            reducer=_collect,
        )
        with pytest.raises(EngineError, match="module-level"):
            run_spec(spec, jobs=2)

    def test_cell_function_must_return_values_payload(self):
        spec = ExperimentSpec(
            name="bad",
            cells=(Cell(key="a", params={"x": 1}),),
            cell_function=_bad_cell,
            reducer=_collect,
        )
        with pytest.raises(EngineError, match="values"):
            run_spec(spec, jobs=1)

    def test_engine_line_reports_cells_and_jobs(self):
        report = run_spec(_square_spec(), jobs=1)
        line = report.engine_line()
        assert "4 cells" in line
        assert "cache off" in line
        assert "jobs=1" in line

    def test_report_format_appends_engine_line(self):
        report = run_spec(_square_spec(), jobs=1)
        spec = report.spec
        spec.render = lambda result: f"{len(result)} squares"
        assert report.format().startswith("4 squares\n[engine:")

    def test_stats_hit_rate(self):
        stats = EngineStats(cells=4, hits=3)
        assert stats.hit_rate == 0.75
        assert EngineStats().hit_rate == 0.0


def _bad_cell(params):
    return ["not", "a", "dict"]


class TestDerivedSeeds:
    def test_deterministic_and_independent_of_global_rng(self):
        random.seed(0)
        first = derive_cell_seeds(7, 5)
        random.seed(12345)
        second = derive_cell_seeds(7, 5)
        assert first == second
        assert len(first) == 5
        assert len(set(first)) == 5

    def test_count_validation(self):
        assert derive_cell_seeds(7, 0) == ()
        with pytest.raises(ValueError):
            derive_cell_seeds(7, -1)

    def test_pinned_streams(self):
        """The derivation is part of the cache contract: these values
        may only change together with a deliberate stream-change note
        in ``derive_cell_seeds``'s docstring (seeds are cell params, so
        fingerprints self-invalidate when they move)."""
        assert derive_cell_seeds(7, 5) == (
            2029167941,
            1342382292,
            1469265226,
            1926751966,
            1241873585,
        )

    def test_full_31_bit_range(self):
        """The high bound is inclusive of 2**31 - 1 (the documented
        range) and never exceeded."""
        seeds = derive_cell_seeds(0, 10_000)
        assert all(0 <= s <= 2**31 - 1 for s in seeds)
        # with a 10k draw the top 2**20 band is hit with probability
        # ~99.3%; the old exclusive-bound bug could never reach it at
        # any draw count
        assert max(seeds) > 2**31 - 2**20

    def test_robustness_spec_accepts_base_seed(self):
        spec = robustness_spec(base_seed=7, n_seeds=3, length=100)
        assert len(spec.cells) == 3
        seeds = [cell.params["seed"] for cell in spec.cells]
        assert seeds == list(derive_cell_seeds(7, 3))


class TestBitIdentityWithLegacyLoop:
    """The engine path must reproduce the pre-engine serial loop exactly."""

    def test_seed_robustness_matches_inline_loop(self):
        seeds, threshold, length, factor = (20, 21), 0.1, 200, 1.5
        # the pre-engine implementation: one shared instance, one loop
        ctg = wlan_ctg()
        platform = wlan_platform()
        set_deadline_from_makespan(ctg, platform, factor)
        expected = []
        for seed in seeds:
            trace = channel_trace(ctg, length, seed=seed)
            train, test = trace[: length // 2], trace[length // 2 :]
            profile = empirical_distribution(ctg, train)
            online = run_non_adaptive(ctg, platform, test, profile)
            adaptive = run_adaptive(
                ctg, platform, test, profile,
                AdaptiveConfig(window_size=20, threshold=threshold),
            )
            expected.append(
                (
                    percent_savings(online.total_energy, adaptive.total_energy),
                    adaptive.reschedule_calls,
                )
            )

        result = run_seed_robustness(
            seeds=seeds, threshold=threshold, length=length, deadline_factor=factor
        )
        assert list(zip(result.savings_percent, result.calls)) == expected

    def test_jobs_do_not_change_numbers(self):
        serial = run_seed_robustness(seeds=(20, 21), length=200)
        parallel = run_seed_robustness(seeds=(20, 21), length=200, jobs=2)
        assert parallel.savings_percent == serial.savings_percent
        assert parallel.calls == serial.calls


class TestPicklability:
    """Cells and results must cross process boundaries (satellite)."""

    def test_cell_result_round_trips(self):
        result = CellResult(
            key="a",
            params={"x": 1},
            values={"square": 1},
            profile={"counters": {"cells": 1}},
            seconds=0.5,
            fingerprint="ab",
            cached=True,
        )
        clone = pickle.loads(pickle.dumps(result))
        assert clone == result

    def test_experiment_results_round_trip(self):
        from repro.experiments import run_figure4

        result = run_figure4(length=120)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.selections == result.selections
        assert clone.filtered == result.filtered
