"""Tests for the sample statistics helpers (repro.analysis.stats)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import summarize_samples


class TestSummarizeSamples:
    def test_known_values(self):
        summary = summarize_samples([2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0])
        assert summary.mean == pytest.approx(5.0)
        assert summary.std == pytest.approx(2.138, abs=1e-3)
        assert summary.ci_low < 5.0 < summary.ci_high

    def test_constant_samples_zero_width(self):
        summary = summarize_samples([3.0, 3.0, 3.0])
        assert summary.std == 0.0
        assert summary.ci_low == summary.ci_high == pytest.approx(3.0)

    def test_interval_ordering(self):
        summary = summarize_samples([1.0, 2.0, 10.0])
        assert summary.ci_low <= summary.mean <= summary.ci_high

    def test_higher_confidence_wider(self):
        samples = [1.0, 2.0, 3.0, 4.0, 5.0]
        narrow = summarize_samples(samples, confidence=0.8)
        wide = summarize_samples(samples, confidence=0.99)
        assert wide.ci_high - wide.ci_low > narrow.ci_high - narrow.ci_low

    def test_rejects_tiny_samples(self):
        with pytest.raises(ValueError):
            summarize_samples([1.0])

    def test_rejects_bad_confidence(self):
        with pytest.raises(ValueError):
            summarize_samples([1.0, 2.0], confidence=1.0)

    def test_format_mentions_ci(self):
        text = summarize_samples([1.0, 2.0, 3.0]).format(unit="%")
        assert "CI" in text
        assert "%" in text

    @settings(max_examples=30, deadline=None)
    @given(
        samples=st.lists(st.floats(-100, 100), min_size=2, max_size=30),
        confidence=st.floats(0.5, 0.999),
    )
    def test_mean_always_inside_interval(self, samples, confidence):
        summary = summarize_samples(samples, confidence)
        assert summary.ci_low <= summary.mean + 1e-9
        assert summary.mean <= summary.ci_high + 1e-9
