"""Cross-module property-based tests (the system-level invariants).

These tie the whole stack together on randomly generated instances:
feasibility in *every* scenario, consistency between the analytical
expected-energy model and the per-instance simulator (the paper's
future-work "mathematical model" check), monotonicity in the deadline,
and serialisation round-trips.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctg import GeneratorConfig, enumerate_scenarios, generate_ctg
from repro.io import ctg_from_dict, ctg_to_dict
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import schedule_online, set_deadline_from_makespan
from repro.sim import InstanceExecutor


def build_instance(nodes, branches, category, pes, seed, factor):
    cfg = GeneratorConfig(nodes=nodes, branch_nodes=branches, category=category, seed=seed)
    ctg = generate_ctg(cfg)
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, factor)
    return ctg, platform


def decisions_of(scenario, ctg):
    """A full decision vector realising ``scenario`` (inactive branches
    get an arbitrary outcome — they are never consulted)."""
    vector = {}
    for branch in ctg.branch_nodes():
        chosen = scenario.product.label_for(branch)
        vector[branch] = chosen if chosen is not None else ctg.outcomes_of(branch)[0]
    return vector


@settings(max_examples=12, deadline=None)
@given(
    nodes=st.integers(12, 26),
    branches=st.integers(1, 3),
    category=st.sampled_from([1, 2]),
    pes=st.integers(2, 4),
    seed=st.integers(0, 400),
    factor=st.floats(1.05, 2.0),
)
def test_every_scenario_meets_deadline_end_to_end(
    nodes, branches, category, pes, seed, factor
):
    """Hard real-time: replaying EVERY scenario of an online schedule
    through the instance executor meets the deadline."""
    try:
        ctg, platform = build_instance(nodes, branches, category, pes, seed, factor)
    except ValueError:
        return
    result = schedule_online(ctg, platform)
    executor = InstanceExecutor(result.schedule)
    for scenario in enumerate_scenarios(ctg):
        outcome = executor.run(decisions_of(scenario, ctg))
        assert outcome.deadline_met
        assert outcome.finish_time <= ctg.deadline + 1e-6


@settings(max_examples=10, deadline=None)
@given(
    nodes=st.integers(12, 24),
    branches=st.integers(1, 3),
    pes=st.integers(2, 3),
    seed=st.integers(0, 300),
)
def test_expected_energy_matches_scenario_mixture(nodes, branches, pes, seed):
    """The analytical expected energy equals the probability-weighted
    sum of per-scenario executor energies — i.e. the closed-form model
    and the simulator agree exactly (paper's future-work validation)."""
    try:
        ctg, platform = build_instance(nodes, branches, 1, pes, seed, 1.4)
    except ValueError:
        return
    probabilities = ctg.default_probabilities
    result = schedule_online(ctg, platform)
    executor = InstanceExecutor(result.schedule)
    mixture = 0.0
    for scenario in enumerate_scenarios(ctg):
        outcome = executor.run(decisions_of(scenario, ctg))
        mixture += scenario.probability(probabilities) * outcome.energy
    analytical = result.schedule.expected_energy(probabilities)
    assert analytical == pytest.approx(mixture, rel=1e-9)


@settings(max_examples=8, deadline=None)
@given(
    nodes=st.integers(12, 22),
    branches=st.integers(1, 2),
    pes=st.integers(2, 3),
    seed=st.integers(0, 200),
)
def test_looser_deadline_never_costs_energy(nodes, branches, pes, seed):
    """Monotonicity: more slack can only reduce expected energy."""
    try:
        cfg = GeneratorConfig(nodes=nodes, branch_nodes=branches, category=1, seed=seed)
    except ValueError:
        return
    ctg = generate_ctg(cfg)
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    base = set_deadline_from_makespan(ctg, platform, 1.2)
    probabilities = ctg.default_probabilities
    tight = schedule_online(ctg, platform).schedule.expected_energy(probabilities)
    loose = schedule_online(ctg, platform, deadline=base * 1.5).schedule.expected_energy(
        probabilities
    )
    assert loose <= tight + 1e-9


@settings(max_examples=15, deadline=None)
@given(
    nodes=st.integers(10, 30),
    branches=st.integers(0, 3),
    category=st.sampled_from([1, 2]),
    seed=st.integers(0, 1000),
)
def test_serialisation_round_trip_random_graphs(nodes, branches, category, seed):
    """ctg → dict → ctg preserves structure, scenarios and probabilities."""
    try:
        cfg = GeneratorConfig(nodes=nodes, branch_nodes=branches, category=category, seed=seed)
    except ValueError:
        return
    original = generate_ctg(cfg)
    clone = ctg_from_dict(ctg_to_dict(original))
    assert clone.tasks() == original.tasks()
    assert sorted(
        (s, d, e.comm_kbytes) for s, d, e in clone.edges()
    ) == sorted((s, d, e.comm_kbytes) for s, d, e in original.edges())
    assert {str(s.product) for s in enumerate_scenarios(clone)} == {
        str(s.product) for s in enumerate_scenarios(original)
    }
    assert clone.default_probabilities == original.default_probabilities


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 150), pes=st.integers(2, 4))
def test_speeds_bounded_and_deadline_saturated_or_nominal(seed, pes):
    """Every speed lies in the PE envelope, and either the schedule uses
    its slack (makespan close to deadline) or everything runs nominal."""
    ctg = generate_ctg(GeneratorConfig(nodes=18, branch_nodes=2, category=1, seed=seed))
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=seed))
    set_deadline_from_makespan(ctg, platform, 1.5)
    schedule = schedule_online(ctg, platform).schedule
    for task in ctg.tasks():
        placement = schedule.placement(task)
        pe = platform.pe(placement.pe)
        assert pe.min_speed - 1e-9 <= placement.speed <= 1.0 + 1e-9
    assert schedule.makespan() <= ctg.deadline + 1e-6
