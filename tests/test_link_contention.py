"""Tests for point-to-point link booking in the DLS scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctg import ConditionalTaskGraph, GeneratorConfig, generate_ctg
from repro.platform import Platform, PlatformConfig, ProcessingElement, generate_platform
from repro.scheduling import dls_schedule


def fan_out_graph(width=4, volume=8.0):
    """One producer feeding ``width`` consumers with bulky transfers."""
    ctg = ConditionalTaskGraph(name="fanout")
    ctg.add_task("src")
    for i in range(width):
        ctg.add_task(f"c{i}")
        ctg.add_edge("src", f"c{i}", comm_kbytes=volume)
    ctg.validate()
    return ctg


def two_pe_platform(ctg, bandwidth=1.0):
    platform = Platform([ProcessingElement("pe0"), ProcessingElement("pe1")])
    platform.connect_all(bandwidth=bandwidth, energy_per_kbyte=0.1)
    for task in ctg.tasks():
        for pe in platform.pe_names:
            platform.set_task_profile(task, pe, wcet=10.0, energy=10.0)
    return platform


class TestLinkSerialisation:
    def test_transfers_on_one_link_never_overlap(self):
        ctg = fan_out_graph()
        platform = two_pe_platform(ctg, bandwidth=0.5)  # 16-unit transfers
        schedule = dls_schedule(ctg, platform)
        bookings = [
            b for b in schedule.comm_bookings
            if {b.src_pe, b.dst_pe} == {"pe0", "pe1"}
        ]
        for i, a in enumerate(bookings):
            for b in bookings[i + 1 :]:
                if schedule.are_exclusive(a.src_task, b.src_task):
                    continue
                assert a.finish <= b.start + 1e-9 or b.finish <= a.start + 1e-9, (
                    f"transfers {a.src_task}->{a.dst_task} and "
                    f"{b.src_task}->{b.dst_task} overlap on the link"
                )

    def test_transfer_starts_after_source_finishes(self):
        ctg = fan_out_graph()
        platform = two_pe_platform(ctg)
        schedule = dls_schedule(ctg, platform)
        times = schedule.worst_case_times()
        for booking in schedule.comm_bookings:
            assert booking.start >= times[booking.src_task][1] - 1e-9

    def test_consumer_starts_after_transfer_arrives(self):
        ctg = fan_out_graph()
        platform = two_pe_platform(ctg, bandwidth=0.5)
        schedule = dls_schedule(ctg, platform)
        times = schedule.worst_case_times()
        for booking in schedule.comm_bookings:
            # the data-ready bound used at placement time; the final
            # worst-case start may only be later (other constraints)
            assert times[booking.dst_task][0] >= booking.start - 1e-9

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 300), bandwidth=st.floats(0.3, 3.0))
    def test_property_no_link_overlap_on_random_graphs(self, seed, bandwidth):
        ctg = generate_ctg(GeneratorConfig(nodes=16, branch_nodes=2, seed=seed))
        platform = generate_platform(
            ctg.tasks(), PlatformConfig(pes=3, seed=seed, bandwidth=bandwidth)
        )
        schedule = dls_schedule(ctg, platform)
        by_link = {}
        for booking in schedule.comm_bookings:
            by_link.setdefault(frozenset((booking.src_pe, booking.dst_pe)), []).append(booking)
        for bookings in by_link.values():
            for i, a in enumerate(bookings):
                for b in bookings[i + 1 :]:
                    if schedule.are_exclusive(a.src_task, b.src_task):
                        continue
                    assert a.finish <= b.start + 1e-9 or b.finish <= a.start + 1e-9


class TestMutexTransfersMayOverlap:
    def test_exclusive_sources_share_link_time(self):
        from repro.ctg import NodeKind

        ctg = ConditionalTaskGraph(name="mutex_comm")
        for name in ("fork", "a", "b"):
            ctg.add_task(name)
        ctg.add_task("sink", NodeKind.OR)
        ctg.add_conditional_edge("fork", "a", "x1", comm_kbytes=1.0)
        ctg.add_conditional_edge("fork", "b", "x2", comm_kbytes=1.0)
        ctg.add_edge("a", "sink", comm_kbytes=20.0)
        ctg.add_edge("b", "sink", comm_kbytes=20.0)
        ctg.default_probabilities = {"fork": {"x1": 0.5, "x2": 0.5}}
        ctg.validate()
        platform = two_pe_platform(ctg, bandwidth=0.5)
        schedule = dls_schedule(ctg, platform)
        cross = [
            b for b in schedule.comm_bookings
            if b.dst_task == "sink" and b.src_pe != b.dst_pe
        ]
        if len(cross) == 2:  # both arms off-PE from the sink
            a, b = cross
            overlap = min(a.finish, b.finish) - max(a.start, b.start)
            assert overlap > 0  # they may (and here do) share the link
