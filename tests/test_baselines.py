"""Integration tests for the online algorithm and both baselines.

These pin down the qualitative Table-1 shape on generated instances:
Reference Algorithm 2 (NLP) ≤ Online < Reference Algorithm 1.
"""

import pytest

from repro.ctg import generate_ctg, paper_table1_configs
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import (
    reference_algorithm_1,
    reference_algorithm_2,
    schedule_online,
    set_deadline_from_makespan,
)


def build(index):
    cfg = paper_table1_configs()[index]
    pes = [3, 3, 4, 4, 4][index]
    ctg = generate_ctg(cfg)
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=pes, seed=cfg.seed))
    set_deadline_from_makespan(ctg, platform, 1.3)
    return ctg, platform


class TestOnline:
    def test_online_schedules_and_meets_deadline(self):
        ctg, platform = build(0)
        result = schedule_online(ctg, platform)
        result.schedule.validate()
        assert result.schedule.meets_deadline()

    def test_online_saves_energy_vs_nominal(self):
        ctg, platform = build(0)
        result = schedule_online(ctg, platform)
        probs = ctg.default_probabilities
        nominal = sum(
            result.schedule.placement(t).nominal_energy for t in ctg.tasks()
        )
        assert result.schedule.expected_energy(probs) < nominal

    def test_deadline_override(self):
        ctg, platform = build(1)
        wide = schedule_online(ctg, platform, deadline=ctg.deadline * 2)
        tight = schedule_online(ctg, platform)
        probs = ctg.default_probabilities
        assert wide.schedule.expected_energy(probs) <= tight.schedule.expected_energy(probs)


class TestReferenceAlgorithms:
    @pytest.mark.parametrize("index", range(5))
    def test_nlp_reference_never_loses_to_online(self, index):
        ctg, platform = build(index)
        probs = ctg.default_probabilities
        online = schedule_online(ctg, platform)
        ref2 = reference_algorithm_2(ctg, platform)
        ref2.schedule.validate()
        assert ref2.schedule.expected_energy(probs) <= (
            online.schedule.expected_energy(probs) * 1.001
        )

    @pytest.mark.parametrize("index", range(5))
    def test_shin_kim_reference_loses_to_online(self, index):
        ctg, platform = build(index)
        probs = ctg.default_probabilities
        online = schedule_online(ctg, platform)
        ref1 = reference_algorithm_1(ctg, platform)
        assert ref1.schedule.expected_energy(probs) > (
            online.schedule.expected_energy(probs)
        )

    def test_ref1_mapping_is_fixed_load_balanced(self):
        from repro.scheduling.baselines import load_balanced_mapping

        ctg, platform = build(2)
        ref1 = reference_algorithm_1(ctg, platform)
        mapping = load_balanced_mapping(ctg, platform)
        assert {t: ref1.schedule.pe_of(t) for t in ctg.tasks()} == mapping

    def test_ref2_reports_convergence(self):
        ctg, platform = build(3)
        ref2 = reference_algorithm_2(ctg, platform)
        assert ref2.nlp.converged
