"""Platform checker tests: discrete-frequency-table diagnostics.

``DiscreteDvfs`` is constructed leniently (defective tables must not
crash platform loading), so the ``PLAT005``–``PLAT007`` findings are
the *only* place defects surface — these tests pin each defect class
to its code.
"""

import pytest

from repro.check import check_frequency_tables, check_platform
from repro.ctg.minterms import CtgAnalysis
from repro.platform import DiscreteDvfs, Platform, ProcessingElement
from repro.workloads import cruise_ctg, cruise_platform


def platform_with(frequency, min_speed=0.25):
    pe = ProcessingElement("pe0", min_speed=min_speed, frequency=frequency)
    return Platform([pe, ProcessingElement("pe1")])


class TestCheckFrequencyTables:
    def test_continuous_pes_are_silent(self):
        platform = Platform([ProcessingElement("pe0"), ProcessingElement("pe1")])
        assert check_frequency_tables(platform) == []

    def test_well_formed_table_is_silent(self):
        platform = platform_with(DiscreteDvfs((0.25, 0.5, 0.75, 1.0)))
        assert check_frequency_tables(platform) == []

    def test_speed_levels_path_is_silent(self):
        # the strict constructor path cannot produce a defective table
        pe = ProcessingElement("pe0", speed_levels=(0.25, 0.5, 1.0))
        assert check_frequency_tables(Platform([pe])) == []

    def test_empty_table_plat005(self):
        findings = check_frequency_tables(platform_with(DiscreteDvfs(())))
        assert [d.code for d in findings] == ["PLAT005"]
        assert findings[0].subject == "pe0"

    def test_unsorted_table_plat006(self):
        findings = check_frequency_tables(
            platform_with(DiscreteDvfs((0.5, 0.25, 1.0)))
        )
        assert "PLAT006" in [d.code for d in findings]

    def test_duplicate_level_plat006(self):
        findings = check_frequency_tables(
            platform_with(DiscreteDvfs((0.25, 0.5, 0.5, 1.0)))
        )
        codes = [d.code for d in findings]
        assert codes == ["PLAT006"]

    def test_level_below_min_speed_plat007(self):
        findings = check_frequency_tables(
            platform_with(DiscreteDvfs((0.25, 1.0)), min_speed=0.5)
        )
        assert [d.code for d in findings] == ["PLAT007"]

    def test_level_above_nominal_plat007(self):
        findings = check_frequency_tables(
            platform_with(DiscreteDvfs((0.5, 1.0, 1.25)))
        )
        assert [d.code for d in findings] == ["PLAT007"]
        assert "1.25" in findings[0].message

    def test_combined_defects_report_each_code(self):
        findings = check_frequency_tables(
            platform_with(DiscreteDvfs((1.5, 0.5, 1.0)))
        )
        codes = sorted(d.code for d in findings)
        assert codes == ["PLAT006", "PLAT007"]

    def test_capped_top_level_is_legal(self):
        # a top level below 1.0 models escalation quantisation loss —
        # deliberately NOT a defect
        findings = check_frequency_tables(
            platform_with(DiscreteDvfs((0.25, 0.5, 0.75)))
        )
        assert findings == []


class TestCheckPlatformIntegration:
    def test_defective_table_surfaces_through_check_platform(self):
        ctg, platform = cruise_ctg(), cruise_platform()
        names = platform.pe_names
        bad = ProcessingElement(
            names[0],
            min_speed=platform.pe(names[0]).min_speed,
            frequency=DiscreteDvfs(()),
        )
        rebuilt = Platform(
            [bad] + [platform.pe(n) for n in names[1:]], dvfs=platform.dvfs
        )
        findings = check_platform(rebuilt, ctg)
        assert any(d.code == "PLAT005" for d in findings)

    def test_clean_platform_stays_clean(self):
        ctg, platform = cruise_ctg(), cruise_platform()
        CtgAnalysis.of(ctg)  # smoke: analysis does not disturb the checker
        findings = check_platform(platform, ctg)
        assert [d for d in findings if d.code.startswith("PLAT00")] == []


def test_validate_mirrors_diagnostics():
    """DiscreteDvfs.validate and the checker agree on defect presence."""
    tables = [
        (),
        (0.25, 0.5, 1.0),
        (0.5, 0.25, 1.0),
        (0.25, 0.25, 1.0),
        (0.1, 1.0),
        (0.5, 1.2),
    ]
    for levels in tables:
        model = DiscreteDvfs(levels)
        via_validate = bool(model.validate(0.25))
        via_checker = bool(check_frequency_tables(platform_with(model)))
        assert via_validate == via_checker, levels
