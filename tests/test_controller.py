"""Unit tests for the adaptive threshold controller."""

import pytest

from repro.adaptive import AdaptiveConfig, AdaptiveController
from repro.ctg.examples import two_sided_branch_ctg
from repro.platform import PlatformConfig, generate_platform
from repro.scheduling import set_deadline_from_makespan


def make_controller(threshold=0.25, window=4):
    ctg = two_sided_branch_ctg()
    platform = generate_platform(ctg.tasks(), PlatformConfig(pes=2, seed=8))
    set_deadline_from_makespan(ctg, platform, 1.5)
    initial = {"fork": {"h": 0.5, "l": 0.5}}
    controller = AdaptiveController(
        ctg, platform, initial, AdaptiveConfig(window_size=window, threshold=threshold)
    )
    return controller


class TestAdaptiveConfig:
    def test_defaults(self):
        cfg = AdaptiveConfig()
        assert cfg.window_size == 20
        assert cfg.threshold == 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveConfig(window_size=0)
        with pytest.raises(ValueError):
            AdaptiveConfig(threshold=0.0)
        with pytest.raises(ValueError):
            AdaptiveConfig(threshold=1.5)


class TestAdaptiveController:
    def test_initial_schedule_built(self):
        controller = make_controller()
        assert controller.schedule.meets_deadline()
        assert controller.calls == 0

    def test_no_trigger_below_threshold(self):
        controller = make_controller(threshold=0.6, window=4)
        # one observation shifts the window by 0.25 — below 0.6
        assert controller.observe({"fork": "h"}) is False
        assert controller.calls == 0

    def test_trigger_after_persistent_shift(self):
        controller = make_controller(threshold=0.25, window=4)
        triggered = [controller.observe({"fork": "h"}) for _ in range(4)]
        assert any(triggered)
        assert controller.calls >= 1
        # in-use distribution snapped to the windowed estimate
        assert controller.in_use["fork"]["h"] > 0.5

    def test_call_log_records_instance_indices(self):
        controller = make_controller(threshold=0.25, window=4)
        for _ in range(4):
            controller.observe({"fork": "h"})
        assert controller.call_log
        assert all(1 <= i <= 4 for i in controller.call_log)

    def test_schedule_changes_after_trigger(self):
        controller = make_controller(threshold=0.25, window=4)
        before = dict(controller.schedule.execution_times())
        for _ in range(4):
            controller.observe({"fork": "h"})
        after = dict(controller.schedule.execution_times())
        assert before != after

    def test_rescheduled_schedule_still_feasible(self):
        controller = make_controller(threshold=0.25, window=4)
        for label in ("h", "h", "h", "h", "l", "l"):
            controller.observe({"fork": label})
        controller.schedule.validate()
        assert controller.schedule.meets_deadline()

    def test_observation_of_inactive_branch_is_skipped(self):
        controller = make_controller()
        # empty observation (branch did not execute) changes nothing
        assert controller.observe({}) is False
