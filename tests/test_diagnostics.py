"""Tests for the diagnostics core: registry, records, reports, docs."""

import json
import re
from pathlib import Path

import pytest

from repro.check import (
    CODE_REGISTRY,
    CODE_TABLE,
    CheckReport,
    Diagnostic,
    Severity,
    code_info,
)

DOCS = Path(__file__).resolve().parent.parent / "docs" / "diagnostics.md"

_PREFIXES = ("CTG", "PLAT", "SCHED", "LINK", "CACHE", "AST", "FAULT", "DET", "NUM", "ENG")


class TestRegistry:
    def test_codes_are_well_formed(self):
        for info in CODE_TABLE:
            assert re.fullmatch(r"[A-Z]+\d{3}", info.code), info.code
            assert info.code.rstrip("0123456789") in _PREFIXES
            assert info.title
            assert isinstance(info.severity, Severity)

    def test_registry_matches_table(self):
        assert len(CODE_REGISTRY) == len(CODE_TABLE)
        for info in CODE_TABLE:
            assert CODE_REGISTRY[info.code] is info

    def test_code_info_lookup(self):
        assert code_info("CTG012").severity is Severity.ERROR
        with pytest.raises(KeyError):
            code_info("NOPE999")

    def test_severity_ordering_and_labels(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR
        assert Severity.ERROR.label == "error"


class TestDiagnostic:
    def test_severity_defaults_from_registry(self):
        d = Diagnostic("LINK003", "slow transfer")
        assert d.severity is Severity.WARNING

    def test_explicit_severity_wins(self):
        d = Diagnostic("LINK003", "slow transfer", severity=Severity.ERROR)
        assert d.severity is Severity.ERROR

    def test_unregistered_code_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            Diagnostic("CTG999", "made up")

    def test_str_and_dict_forms(self):
        d = Diagnostic("SCHED001", "task 'a' is not placed", subject="a")
        assert str(d) == "error SCHED001 [a]: task 'a' is not placed"
        assert d.to_dict() == {
            "code": "SCHED001",
            "severity": "error",
            "subject": "a",
            "symbol": "",
            "message": "task 'a' is not placed",
        }

    def test_symbol_round_trips(self):
        d = Diagnostic(
            "DET201", "set iteration", subject="m.py:3:5", symbol="m:f"
        )
        assert d.to_dict()["symbol"] == "m:f"


class TestCheckReport:
    def report(self):
        r = CheckReport(checks_run=["ctg"])
        r.add(Diagnostic("CTG015", "no distribution", subject="b1"))
        r.extend(
            [
                Diagnostic("SCHED030", "too slow"),
                Diagnostic("SCHED030", "also too slow", subject="s2"),
            ]
        )
        return r

    def test_queries(self):
        r = self.report()
        assert not r.ok
        assert len(r) == 3
        assert len(r.errors) == 2 and len(r.warnings) == 1
        assert r.codes() == ["CTG015", "SCHED030"]
        assert r.has("SCHED030") and not r.has("CTG001")
        assert len(r.by_code("SCHED030")) == 2

    def test_empty_report_is_ok(self):
        assert CheckReport().ok

    def test_render_text_sorts_worst_first(self):
        lines = self.report().render_text(header="unit").splitlines()
        assert lines[0] == "unit"
        assert lines[1].startswith("error") and lines[3].startswith("warning")
        assert lines[-1] == "check FAILED: 2 errors, 1 warning"

    def test_summary_singular(self):
        r = CheckReport(diagnostics=[Diagnostic("CTG001", "cycle")])
        assert r.summary() == "check FAILED: 1 error"

    def test_json_schema(self):
        payload = json.loads(self.report().to_json())
        assert payload["ok"] is False
        assert payload["errors"] == 2 and payload["warnings"] == 1
        assert payload["checks_run"] == ["ctg"]
        assert {d["code"] for d in payload["diagnostics"]} == {"CTG015", "SCHED030"}


class TestDocsCoverage:
    """docs/diagnostics.md and CODE_TABLE must never drift apart."""

    def documented_codes(self):
        text = DOCS.read_text(encoding="utf-8")
        return re.findall(r"^### (\w+)", text, flags=re.MULTILINE)

    def test_every_code_documented(self):
        documented = set(self.documented_codes())
        missing = [info.code for info in CODE_TABLE if info.code not in documented]
        assert not missing, f"codes missing from docs/diagnostics.md: {missing}"

    def test_no_phantom_docs_entries(self):
        phantom = [c for c in self.documented_codes() if c not in CODE_REGISTRY]
        assert not phantom, f"documented but unregistered codes: {phantom}"

    def test_docs_state_each_severity(self):
        text = DOCS.read_text(encoding="utf-8")
        for info in CODE_TABLE:
            section = text.split(f"### {info.code}", 1)[1].split("###", 1)[0]
            assert info.severity.label in section.lower(), (
                f"{info.code}: severity {info.severity.label!r} not stated"
            )
