"""Condition algebra for conditional task graphs.

A *branch fork node* resolves to exactly one of a small set of mutually
exclusive, collectively exhaustive **outcomes** (the paper's condition
symbols ``a1``, ``a2``, ``b1`` ...).  Every conditional edge of a CTG is
guarded by one outcome of one branch node.

The building block of the paper's "minterm" machinery is the **condition
product**: a conjunction of outcomes of *distinct* branch nodes, e.g.
``a2 AND b1`` (written ``a2b1`` in the paper).  The empty product is the
always-true condition ``1``.

This module implements that algebra:

* :class:`Outcome` — one outcome symbol of one branch node;
* :class:`ConditionProduct` — an immutable conjunction of outcomes;
* conjunction, consistency, implication and restriction operations.

Everything is hashable so products can key dictionaries and populate sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Mapping, Optional, Tuple


@dataclass(frozen=True, order=True)
class Outcome:
    """One outcome symbol of one branch fork node.

    Parameters
    ----------
    branch:
        Identifier of the branch fork node (a task name, e.g. ``"t3"``).
    label:
        The outcome symbol, e.g. ``"a1"``.  Labels are unique within a
        branch but need not be globally unique.
    """

    branch: str
    label: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.label

    def conflicts_with(self, other: "Outcome") -> bool:
        """Two outcomes conflict when they pick different labels of the
        same branch node."""
        return self.branch == other.branch and self.label != other.label


class ConditionProduct:
    """An immutable conjunction of :class:`Outcome` symbols.

    A product assigns at most one outcome per branch node; attempting to
    build one with conflicting outcomes raises :class:`ValueError` (use
    :meth:`conjoin` when contradiction should yield ``None`` instead).

    The empty product is the paper's condition ``1`` (always true) and is
    available as :data:`TRUE`.
    """

    __slots__ = ("_assignment", "_hash")

    def __init__(self, outcomes: Iterable[Outcome] = ()) -> None:
        assignment: Dict[str, str] = {}
        for outcome in outcomes:
            existing = assignment.get(outcome.branch)
            if existing is not None and existing != outcome.label:
                raise ValueError(
                    f"contradictory outcomes for branch {outcome.branch!r}: "
                    f"{existing!r} vs {outcome.label!r}"
                )
            assignment[outcome.branch] = outcome.label
        self._assignment: Tuple[Tuple[str, str], ...] = tuple(
            sorted(assignment.items())
        )
        self._hash = hash(self._assignment)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def assignment(self) -> Mapping[str, str]:
        """Branch-node → outcome-label mapping of this product."""
        return dict(self._assignment)

    @property
    def branches(self) -> Tuple[str, ...]:
        """The branch nodes this product constrains, sorted."""
        return tuple(branch for branch, _ in self._assignment)

    def outcomes(self) -> Iterator[Outcome]:
        """Iterate the outcomes of this product in branch order."""
        for branch, label in self._assignment:
            yield Outcome(branch, label)

    def is_true(self) -> bool:
        """Whether this is the empty product (the paper's ``1``)."""
        return not self._assignment

    def label_for(self, branch: str) -> Optional[str]:
        """The outcome label this product assigns to ``branch``, if any."""
        for b, label in self._assignment:
            if b == branch:
                return label
        return None

    def __len__(self) -> int:
        return len(self._assignment)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConditionProduct):
            return NotImplemented
        return self._assignment == other._assignment

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_true():
            return "ConditionProduct(1)"
        body = "".join(label for _, label in self._assignment)
        return f"ConditionProduct({body})"

    def __str__(self) -> str:
        if self.is_true():
            return "1"
        return "".join(label for _, label in self._assignment)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def conjoin(self, other: "ConditionProduct") -> Optional["ConditionProduct"]:
        """Conjunction of two products.

        Returns ``None`` when the two products are contradictory (they
        assign different outcomes to some branch node).
        """
        merged = dict(self._assignment)
        for branch, label in other._assignment:
            existing = merged.get(branch)
            if existing is not None and existing != label:
                return None
            merged[branch] = label
        return ConditionProduct(Outcome(b, label) for b, label in merged.items())

    def conjoin_outcome(self, outcome: Outcome) -> Optional["ConditionProduct"]:
        """Conjoin with a single outcome (``None`` on contradiction)."""
        return self.conjoin(ConditionProduct((outcome,)))

    def is_consistent_with(self, other: "ConditionProduct") -> bool:
        """Whether the conjunction of the two products is satisfiable."""
        return self.conjoin(other) is not None

    def implies(self, other: "ConditionProduct") -> bool:
        """Logical implication: ``self ⇒ other``.

        A product implies another iff every outcome of ``other`` also
        appears in ``self`` (a more specific product implies a more
        general one; everything implies ``1``).
        """
        mine = dict(self._assignment)
        return all(mine.get(b) == label for b, label in other._assignment)

    def restrict(self, branches: Iterable[str]) -> "ConditionProduct":
        """Project the product onto a subset of branch nodes."""
        keep = set(branches)
        return ConditionProduct(
            Outcome(b, label) for b, label in self._assignment if b in keep
        )


#: The always-true condition, the paper's minterm ``1``.
TRUE = ConditionProduct()


def product_probability(
    product: ConditionProduct,
    branch_probabilities: Mapping[str, Mapping[str, float]],
) -> float:
    """Probability of a condition product under independent branches.

    Parameters
    ----------
    product:
        The condition product whose probability is wanted.
    branch_probabilities:
        ``branch node → {outcome label → probability}``.  Each inner
        distribution must cover the product's outcome labels.

    Returns
    -------
    float
        ``∏ prob(outcome)`` over the product's outcomes; ``1.0`` for the
        always-true product.
    """
    probability = 1.0
    for outcome in product.outcomes():
        try:
            probability *= branch_probabilities[outcome.branch][outcome.label]
        except KeyError as exc:
            raise KeyError(
                f"no probability recorded for outcome {outcome.label!r} of "
                f"branch {outcome.branch!r}"
            ) from exc
    return probability


def minimal_products(products: Iterable[ConditionProduct]) -> Tuple[ConditionProduct, ...]:
    """Deduplicate a DNF term list, keeping the paper's structural form.

    The paper's Γ(τ) keeps structurally distinct activation contexts
    (Example 1 lists Γ(τ₈) = {1, a₁} even though ``1`` absorbs ``a₁``),
    so this performs only *deduplication*, not absorption.  Terms are
    returned sorted by (length, text) for determinism.
    """
    unique = set(products)
    return tuple(sorted(unique, key=lambda p: (len(p), str(p))))
