"""Hand-built example graphs, including the paper's Figure 1 CTG."""

from __future__ import annotations

from .graph import ConditionalTaskGraph, NodeKind


def figure1_ctg() -> ConditionalTaskGraph:
    """The 8-task example CTG of the paper's Figure 1 / Example 1.

    Structure: τ₁ feeds τ₂ and τ₃ unconditionally.  τ₃ is a branch fork
    with outcomes a₁ (activating τ₄) and a₂ (activating τ₅).  τ₅ is a
    branch fork with outcomes b₁ (→ τ₆) and b₂ (→ τ₇).  τ₈ is an
    **or-node** receiving τ₂ unconditionally and τ₄ (whose activation
    context is a₁).  Minterms: M = {1, a₁, a₂b₁, a₂b₂}; Γ(τ₈) = {1, a₁}.

    The paper prints the execution profile beside the figure but the
    scan is unreadable; the communication volumes and default branch
    probabilities used here are representative values documented in
    DESIGN.md (prob(a₁)=0.4, prob(b₁)=0.5, as the running text uses
    prob(b₁)=0.5 in its prob(p,τ) example).
    """
    ctg = ConditionalTaskGraph(name="figure1", deadline=0.0)
    for i in range(1, 8):
        ctg.add_task(f"t{i}", NodeKind.AND)
    ctg.add_task("t8", NodeKind.OR)

    ctg.add_edge("t1", "t2", comm_kbytes=4.0)
    ctg.add_edge("t1", "t3", comm_kbytes=2.0)
    ctg.add_conditional_edge("t3", "t4", "a1", comm_kbytes=3.0)
    ctg.add_conditional_edge("t3", "t5", "a2", comm_kbytes=3.0)
    ctg.add_conditional_edge("t5", "t6", "b1", comm_kbytes=2.0)
    ctg.add_conditional_edge("t5", "t7", "b2", comm_kbytes=2.0)
    ctg.add_edge("t2", "t8", comm_kbytes=1.0)
    ctg.add_edge("t4", "t8", comm_kbytes=1.0)

    ctg.default_probabilities = {
        "t3": {"a1": 0.4, "a2": 0.6},
        "t5": {"b1": 0.5, "b2": 0.5},
    }
    ctg.validate()
    return ctg


def diamond_ctg() -> ConditionalTaskGraph:
    """A minimal unconditional diamond (source → two parallel → join).

    Useful as the smallest scheduling smoke test: no branches, one
    scenario, one minterm (1).
    """
    ctg = ConditionalTaskGraph(name="diamond", deadline=0.0)
    for name in ("src", "left", "right", "join"):
        ctg.add_task(name, NodeKind.AND)
    ctg.add_edge("src", "left", comm_kbytes=1.0)
    ctg.add_edge("src", "right", comm_kbytes=1.0)
    ctg.add_edge("left", "join", comm_kbytes=1.0)
    ctg.add_edge("right", "join", comm_kbytes=1.0)
    ctg.validate()
    return ctg


def two_sided_branch_ctg() -> ConditionalTaskGraph:
    """One branch fork with two arms reconverging in an or-join.

    The smallest graph with two non-trivial minterms — handy for
    exercising mutual exclusion and adaptive behaviour in isolation.
    """
    ctg = ConditionalTaskGraph(name="two_sided", deadline=0.0)
    ctg.add_task("entry", NodeKind.AND)
    ctg.add_task("fork", NodeKind.AND)
    ctg.add_task("heavy", NodeKind.AND)
    ctg.add_task("light", NodeKind.AND)
    ctg.add_task("join", NodeKind.OR)
    ctg.add_edge("entry", "fork", comm_kbytes=1.0)
    ctg.add_conditional_edge("fork", "heavy", "h", comm_kbytes=2.0)
    ctg.add_conditional_edge("fork", "light", "l", comm_kbytes=2.0)
    ctg.add_edge("heavy", "join", comm_kbytes=1.0)
    ctg.add_edge("light", "join", comm_kbytes=1.0)
    ctg.default_probabilities = {"fork": {"h": 0.5, "l": 0.5}}
    ctg.validate()
    return ctg
