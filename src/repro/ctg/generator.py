"""TGFF-like random conditional task graph generation.

The paper evaluates on "random task graphs by TGFF [14]" that the
authors modified to carry conditional branches, in two families:

* **Category 1** — fork–join graphs with *nested* conditional branches
  (the MPEG and cruise-controller CTGs are of this family);
* **Category 2** — graphs without fork–join reconvergence or nested
  branches (conditional side-chains dangle off a trunk).

TGFF itself is an external C tool, so this module is the substitution:
a seeded generator producing both families with controllable node
count, branch-fork count and communication volumes, plus random
default branch probabilities.  See DESIGN.md §2 for the substitution
rationale.

Category 1 graphs are planned as a series–parallel skeleton (sequences
of leaves, unconditional diamonds and conditional fork/or-join blocks,
with conditional blocks allowed to nest inside each other's arms) and
then emitted as a :class:`~repro.ctg.graph.ConditionalTaskGraph`; this
guarantees structural validity and an exact node count by construction.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from .graph import ConditionalTaskGraph, NodeKind


@dataclass
class GeneratorConfig:
    """Knobs of the random CTG generator.

    Attributes
    ----------
    nodes:
        Exact task count of the generated graph.
    branch_nodes:
        Number of branch fork nodes to embed.
    category:
        1 for nested fork–join graphs, 2 for trunk-with-side-chains.
    comm_range:
        (low, high) KBytes drawn uniformly per edge.
    seed:
        Seed of the private RNG; equal configs generate equal graphs.
    outcomes_per_branch:
        Outcome fan-out of every branch fork (the paper uses 2).
    """

    nodes: int = 20
    branch_nodes: int = 2
    category: int = 1
    comm_range: Tuple[float, float] = (1.0, 8.0)
    seed: int = 0
    outcomes_per_branch: int = 2

    def __post_init__(self) -> None:
        if self.category not in (1, 2):
            raise ValueError("category must be 1 or 2")
        if self.outcomes_per_branch < 2:
            raise ValueError("branches need at least 2 outcomes")
        minimum = self.minimum_nodes()
        if self.nodes < minimum:
            raise ValueError(
                f"{self.nodes} nodes cannot host {self.branch_nodes} branch "
                f"forks of category {self.category}; need at least {minimum}"
            )

    def minimum_nodes(self) -> int:
        """Smallest node count that can host the requested branch forks."""
        k = self.outcomes_per_branch
        if self.category == 1:
            # entry + exit leaves, plus per fork: fork, or-join, k arm leaves
            return 2 + self.branch_nodes * (k + 2)
        # trunk entry/exit plus per fork: fork on trunk + k arm leaves
        return 2 + self.branch_nodes * (k + 1)


def generate_ctg(config: GeneratorConfig) -> ConditionalTaskGraph:
    """Generate a random CTG per ``config`` (seeded, reproducible)."""
    rng = random.Random(config.seed)
    if config.category == 1:
        ctg = _generate_category1(config, rng)
    else:
        ctg = _generate_category2(config, rng)
    _assign_probabilities(ctg, rng)
    ctg.validate()
    if len(ctg) != config.nodes:
        raise AssertionError(
            f"generator produced {len(ctg)} nodes, wanted {config.nodes}"
        )
    return ctg


# ----------------------------------------------------------------------
# Category 1: series-parallel skeleton with nested conditional blocks
# ----------------------------------------------------------------------
@dataclass
class _Leaf:
    """A single task in the skeleton."""


@dataclass
class _Diamond:
    """Unconditional 2-arm fork-join: fork + 2 leaves + and-join (4 nodes)."""


@dataclass
class _CondBlock:
    """Conditional fork with ``k`` guarded arms reconverging in an or-join."""

    symbol: str
    arms: List["_Container"] = field(default_factory=list)


@dataclass
class _Container:
    """An ordered sequence of skeleton items (the root chain or one arm)."""

    items: List[Union[_Leaf, _Diamond, _CondBlock]] = field(default_factory=list)

    def has_cond(self) -> bool:
        return any(isinstance(item, _CondBlock) for item in self.items)


def _plan_category1(config: GeneratorConfig, rng: random.Random) -> _Container:
    """Plan the series-parallel skeleton with an exact node budget."""
    k = config.outcomes_per_branch
    root = _Container()
    containers: List[_Container] = [root]

    # Place the conditional blocks, nesting into arms of earlier blocks
    # about half the time once any exist.
    blocks: List[_CondBlock] = []
    for index in range(config.branch_nodes):
        block = _CondBlock(symbol=chr(ord("a") + index % 26))
        block.arms = [_Container() for _ in range(k)]
        arm_hosts = [c for c in containers if c is not root]
        if arm_hosts and rng.random() < 0.5:
            host = rng.choice(arm_hosts)
        else:
            host = root
        host.items.append(block)
        containers.extend(block.arms)
        blocks.append(block)

    # Mandatory leaves: entry/exit of the root, one leaf per arm that
    # did not receive a nested block.
    root.items.insert(0, _Leaf())
    root.items.append(_Leaf())
    for block in blocks:
        for arm in block.arms:
            if not arm.has_cond():
                arm.items.append(_Leaf())

    used = _plan_cost(root)
    extra = config.nodes - used
    if extra < 0:  # cannot happen: config enforces the minimum
        raise AssertionError("planner exceeded node budget")

    # Spend the surplus on leaves and occasional diamonds.  Conditional
    # arms are weighted heavily: in the paper's fork-join CTGs (MPEG,
    # cruise controller and the TGFF derivatives) the bulk of the work
    # hangs off the conditional branches — that is what makes branch
    # selection drive the workload in the first place.
    arm_containers = [c for c in containers if c is not root]
    while extra > 0:
        if arm_containers and rng.random() < 0.8:
            host = rng.choice(arm_containers)
        else:
            host = root
        if extra >= 4 and rng.random() < 0.25:
            host.items.insert(rng.randrange(len(host.items) + 1), _Diamond())
            extra -= 4
        else:
            host.items.insert(rng.randrange(len(host.items) + 1), _Leaf())
            extra -= 1
    return root


def _plan_cost(container: _Container) -> int:
    """Node count a planned container will emit."""
    total = 0
    for item in container.items:
        if isinstance(item, _Leaf):
            total += 1
        elif isinstance(item, _Diamond):
            total += 4
        else:
            total += 2 + sum(_plan_cost(arm) for arm in item.arms)
    return total


class _Emitter:
    """Walks a planned skeleton and emits graph nodes/edges."""

    def __init__(
        self, ctg: ConditionalTaskGraph, rng: random.Random, comm_range: Tuple[float, float]
    ) -> None:
        self._ctg = ctg
        self._rng = rng
        self._comm_range = comm_range
        self._counter = 0

    def _name(self) -> str:
        name = f"t{self._counter}"
        self._counter += 1
        return name

    def _comm(self) -> float:
        return self._rng.uniform(*self._comm_range)

    def emit_container(self, container: _Container) -> Tuple[str, str]:
        """Emit a container; returns its (first, last) task names."""
        first: Optional[str] = None
        last: Optional[str] = None
        for item in container.items:
            head, tail = self._emit_item(item)
            if first is None:
                first = head
            if last is not None:
                self._ctg.add_edge(last, head, comm_kbytes=self._comm())
            last = tail
        if first is None or last is None:
            raise AssertionError("planner produced an empty container")
        return first, last

    def _emit_item(self, item: Union[_Leaf, _Diamond, _CondBlock]) -> Tuple[str, str]:
        if isinstance(item, _Leaf):
            task = self._ctg.add_task(self._name())
            return task, task
        if isinstance(item, _Diamond):
            fork = self._ctg.add_task(self._name())
            left = self._ctg.add_task(self._name())
            right = self._ctg.add_task(self._name())
            join = self._ctg.add_task(self._name())
            self._ctg.add_edge(fork, left, comm_kbytes=self._comm())
            self._ctg.add_edge(fork, right, comm_kbytes=self._comm())
            self._ctg.add_edge(left, join, comm_kbytes=self._comm())
            self._ctg.add_edge(right, join, comm_kbytes=self._comm())
            return fork, join
        fork = self._ctg.add_task(self._name())
        join = self._ctg.add_task(self._name(), NodeKind.OR)
        for index, arm in enumerate(item.arms):
            head, tail = self.emit_container(arm)
            label = f"{item.symbol}{index + 1}"
            self._ctg.add_conditional_edge(fork, head, label, comm_kbytes=self._comm())
            self._ctg.add_edge(tail, join, comm_kbytes=self._comm())
        return fork, join


def _generate_category1(config: GeneratorConfig, rng: random.Random) -> ConditionalTaskGraph:
    ctg = ConditionalTaskGraph(name=f"cat1-n{config.nodes}-b{config.branch_nodes}-s{config.seed}")
    plan = _plan_category1(config, rng)
    _Emitter(ctg, rng, config.comm_range).emit_container(plan)
    return ctg


# ----------------------------------------------------------------------
# Category 2: trunk with dangling conditional side chains
# ----------------------------------------------------------------------
def _generate_category2(config: GeneratorConfig, rng: random.Random) -> ConditionalTaskGraph:
    """Trunk chain with branch forks whose guarded side chains dangle.

    No or-joins and no reconvergence of conditional arms: the graph has
    several sinks and no nested branches, matching the paper's
    description of its Category 2 test graphs.
    """
    ctg = ConditionalTaskGraph(name=f"cat2-n{config.nodes}-b{config.branch_nodes}-s{config.seed}")
    comm = lambda: rng.uniform(*config.comm_range)  # noqa: E731
    k = config.outcomes_per_branch
    counter = 0

    def take() -> str:
        nonlocal counter
        name = f"t{counter}"
        counter += 1
        return name

    side_budget = config.nodes - 2 - config.branch_nodes * (k + 1)
    # Conditional side chains absorb most of the surplus so branch
    # decisions dominate the workload (see the Category-1 rationale).
    extra_side = (3 * side_budget) // 4 if config.branch_nodes else 0
    trunk_extra = side_budget - extra_side

    trunk: List[str] = [ctg.add_task(take())]
    for _ in range(trunk_extra + config.branch_nodes + 1):
        task = ctg.add_task(take())
        ctg.add_edge(trunk[-1], task, comm_kbytes=comm())
        trunk.append(task)

    fork_positions = sorted(rng.sample(range(1, len(trunk) - 1), config.branch_nodes))
    arm_tasks: List[str] = []
    for branch_index, pos in enumerate(fork_positions):
        fork = trunk[pos]
        symbol = chr(ord("a") + branch_index % 26)
        for i in range(k):
            task = ctg.add_task(take())
            ctg.add_conditional_edge(fork, task, f"{symbol}{i + 1}", comm_kbytes=comm())
            arm_tasks.append(task)

    for _ in range(extra_side):
        # With no branch forks there are no side chains; grow the trunk.
        parent = rng.choice(arm_tasks) if arm_tasks else trunk[-1]
        task = ctg.add_task(take())
        ctg.add_edge(parent, task, comm_kbytes=comm())
        if arm_tasks:
            arm_tasks.append(task)
        else:
            trunk.append(task)
    return ctg


# ----------------------------------------------------------------------
# Probabilities and paper experiment shapes
# ----------------------------------------------------------------------
def _assign_probabilities(ctg: ConditionalTaskGraph, rng: random.Random) -> None:
    """Attach random default probabilities to every branch fork.

    The paper randomly generates branching probabilities for the
    Table 1 experiment; distributions here are uniform draws clipped
    away from 0/1 so no outcome is degenerate, normalised to sum to 1.
    """
    for branch in ctg.branch_nodes():
        labels = ctg.outcomes_of(branch)
        weights = [rng.uniform(0.15, 0.85) for _ in labels]
        total = sum(weights)
        ctg.default_probabilities[branch] = {
            label: weight / total for label, weight in zip(labels, weights)
        }


def paper_table1_configs() -> List[GeneratorConfig]:
    """CTG shapes of the paper's Table 1 — triplets (a/b/c) =
    25/3/3, 16/3/1, 15/4/2, 15/4/2, 25/4/3; the PE count (b) lives with
    the platform generator, this returns the graph side (a, c)."""
    triplets = [(25, 3, 101), (16, 1, 102), (15, 2, 103), (15, 2, 111), (25, 3, 105)]
    return [
        GeneratorConfig(nodes=n, branch_nodes=b, category=1, seed=seed)
        for n, b, seed in triplets
    ]


def paper_table4_configs() -> List[GeneratorConfig]:
    """The ten graphs of Tables 4/5: five Category 1 (graphs 1–5) then
    five Category 2 (graphs 6–10) with triplets 25/3/3, 16/3/1, 15/4/2,
    15/4/1, 25/4/3."""
    shapes = [(25, 3), (16, 1), (15, 2), (15, 1), (25, 3)]
    configs: List[GeneratorConfig] = []
    for category in (1, 2):
        for index, (nodes, branches) in enumerate(shapes):
            configs.append(
                GeneratorConfig(
                    nodes=nodes,
                    branch_nodes=branches,
                    category=category,
                    seed=400 + 10 * category + index,
                )
            )
    return configs
