"""Scenario (minterm) analysis for conditional task graphs.

The paper's *minterm* set M is the set of consistent combinations of
branch outcomes, where a branch contributes an outcome only when the
branch fork node is itself activated under the partial combination
(Example 1: M = {1, a₁, a₂b₁, a₂b₂} — branch *b* never fires under a₁).
We call one complete, executable combination a :class:`Scenario`; the
paper's condition ``1`` labels the unconditional context rather than a
separate execution.

This module provides:

* :func:`enumerate_scenarios` — all scenarios with their activated task
  sets, by recursive resolution of activated branch forks;
* :func:`activation_sets` / :func:`activation_probability`;
* :func:`gamma` — the paper's Γ(τ), the structural DNF of the
  activation condition X(τ) (Example 1: Γ(τ₈) = {1, a₁});
* :func:`mutually_exclusive` / :func:`exclusion_table`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from .conditions import ConditionProduct, Outcome, TRUE, minimal_products, product_probability
from .graph import CTGError, ConditionalTaskGraph, NodeKind

BranchProbabilities = Mapping[str, Mapping[str, float]]


@dataclass(frozen=True)
class Scenario:
    """One executable resolution of a CTG's branch decisions.

    Attributes
    ----------
    product:
        Condition product assigning an outcome to every branch fork
        node that is activated in this scenario.
    active:
        The set of tasks activated when the branches resolve this way.
    """

    product: ConditionProduct
    active: FrozenSet[str]

    def probability(self, probabilities: BranchProbabilities) -> float:
        """Scenario probability under independent branch distributions."""
        return product_probability(self.product, probabilities)

    def activates(self, task: str) -> bool:
        """Whether ``task`` runs in this scenario."""
        return task in self.active


def resolve_activation(
    ctg: ConditionalTaskGraph, assignment: Mapping[str, str]
) -> Tuple[FrozenSet[str], Optional[str]]:
    """Compute the activated task set under a (partial) branch assignment.

    Walks the graph in topological order applying the paper's and/or
    activation semantics over *real* edges only.  Returns ``(active,
    unresolved)`` where ``unresolved`` is the first activated branch fork
    node without an assigned outcome (``None`` when the assignment fully
    resolves execution).
    """
    active: set = set()
    for node in ctg.topological_order():
        in_edges = list(ctg.in_edges(node, include_pseudo=False))
        if not in_edges:
            active.add(node)
            continue
        # Three-valued evaluation of each incoming edge: True (taken),
        # False (source inactive or branch chose another outcome), or
        # the deciding branch name when the outcome is still unassigned.
        values: List[object] = []
        for src, _dst, data in in_edges:
            if src not in active:
                values.append(False)
            elif data.condition is None:
                values.append(True)
            else:
                chosen = assignment.get(data.condition.branch)
                if chosen is None:
                    values.append(data.condition.branch)
                else:
                    values.append(chosen == data.condition.label)
        unknowns = [v for v in values if isinstance(v, str)]
        if ctg.kind(node) is NodeKind.AND:
            if any(v is False for v in values):
                continue  # definitely inactive, pending edges irrelevant
            if unknowns:
                return frozenset(active), unknowns[0]
            active.add(node)
        else:
            if any(v is True for v in values):
                active.add(node)
                continue
            if unknowns:
                return frozenset(active), unknowns[0]
    return frozenset(active), None


def enumerate_scenarios(ctg: ConditionalTaskGraph) -> Tuple[Scenario, ...]:
    """Enumerate every executable scenario of ``ctg``.

    Branch forks are resolved lazily: a branch only contributes outcomes
    when it is activated under the outcomes chosen so far, which yields
    exactly the paper's minterm set (Example 1 produces assignments
    {a₁}, {a₂,b₁}, {a₂,b₂} — i.e. minterms a₁, a₂b₁, a₂b₂).
    """
    scenarios: List[Scenario] = []

    def explore(assignment: Dict[str, str]) -> None:
        active, unresolved = resolve_activation(ctg, assignment)
        if unresolved is None:
            product = ConditionProduct(
                Outcome(branch, label) for branch, label in assignment.items()
            )
            scenarios.append(Scenario(product=product, active=active))
            return
        for label in ctg.outcomes_of(unresolved):
            child = dict(assignment)
            child[unresolved] = label
            explore(child)

    explore({})
    if not scenarios:
        raise CTGError("graph produced no scenarios")
    return tuple(scenarios)


def activation_sets(ctg: ConditionalTaskGraph) -> Dict[str, Tuple[Scenario, ...]]:
    """Map each task to the scenarios that activate it."""
    scenarios = enumerate_scenarios(ctg)
    table: Dict[str, List[Scenario]] = {task: [] for task in ctg.tasks()}
    for scenario in scenarios:
        for task in scenario.active:
            table[task].append(scenario)
    return {task: tuple(items) for task, items in table.items()}


def activation_probability(
    ctg: Optional[ConditionalTaskGraph],
    probabilities: BranchProbabilities,
    scenarios: Optional[Sequence[Scenario]] = None,
) -> Dict[str, float]:
    """prob(τ) for every task: total probability of scenarios running it.

    ``ctg`` may be ``None`` when ``scenarios`` is supplied (the task
    universe is then taken from the scenarios' active sets; a task no
    scenario activates would have probability 0 anyway).
    """
    if scenarios is None:
        if ctg is None:
            raise ValueError("need a graph or a scenario list")
        scenarios = enumerate_scenarios(ctg)
    probs: Dict[str, float] = (
        {task: 0.0 for task in ctg.tasks()} if ctg is not None else {}
    )
    for scenario in scenarios:
        p = scenario.probability(probabilities)
        # sorted so the returned dict's insertion order (and hence any
        # non-key-sorting serialisation) is hash-seed-independent
        for task in sorted(scenario.active):
            probs[task] = probs.get(task, 0.0) + p
    return probs


def gamma(ctg: ConditionalTaskGraph) -> Dict[str, Tuple[ConditionProduct, ...]]:
    """The paper's Γ(τ): structural DNF of each task's activation condition.

    Computed bottom-up over real edges: a source has Γ = {1}; an or-node
    unions the incoming context sets; an and-node takes the pairwise
    consistent conjunction across incoming context sets.  No absorption
    is applied (Example 1 keeps Γ(τ₈) = {1, a₁} although 1 absorbs a₁):
    each entry is one distinct activation context, which is exactly what
    the stretching heuristic iterates over.
    """
    result: Dict[str, Tuple[ConditionProduct, ...]] = {}
    for node in ctg.topological_order():
        in_edges = list(ctg.in_edges(node, include_pseudo=False))
        if not in_edges:
            result[node] = (TRUE,)
            continue
        per_edge: List[List[ConditionProduct]] = []
        for src, _dst, data in in_edges:
            contexts: List[ConditionProduct] = []
            for term in result[src]:
                if data.condition is None:
                    contexts.append(term)
                else:
                    conjoined = term.conjoin_outcome(data.condition)
                    if conjoined is not None:
                        contexts.append(conjoined)
            per_edge.append(contexts)
        if ctg.kind(node) is NodeKind.OR:
            merged: List[ConditionProduct] = [t for terms in per_edge for t in terms]
        else:
            merged = [TRUE]
            for terms in per_edge:
                combined: List[ConditionProduct] = []
                for acc in merged:
                    for term in terms:
                        conjoined = acc.conjoin(term)
                        if conjoined is not None:
                            combined.append(conjoined)
                merged = combined
                if not merged:
                    break
        if not merged:
            raise CTGError(f"task {node!r} has an unsatisfiable activation condition")
        result[node] = minimal_products(merged)
    return result


@dataclass(frozen=True)
class CtgAnalysis:
    """Cached structural analysis of a CTG.

    Scenario enumeration, the mutual-exclusion table and Γ(τ) depend
    only on the graph structure — not on branch probabilities — so the
    adaptive controller computes them once and reuses them across every
    re-scheduling (the per-call cost the paper's 0.6 ms figure counts
    is the list scheduling and slack distribution, not re-deriving the
    graph's minterm structure).

    ``path_cache`` additionally holds the *scheduled-graph* path
    analytics of the stretching stage, keyed by the schedule's
    pseudo-edge/mapping fingerprint (see
    :mod:`repro.scheduling.pathcache`, which owns the contents — this
    class only provides the per-graph home so repeated
    ``schedule_online`` calls that produce the same mapping reuse the
    enumerated path set instead of re-deriving it).
    """

    scenarios: Tuple[Scenario, ...]
    exclusions: Dict[str, FrozenSet[str]]
    gammas: Dict[str, Tuple[ConditionProduct, ...]]
    path_cache: Dict[object, object] = field(
        default_factory=dict, compare=False, repr=False
    )

    @classmethod
    def of(cls, ctg: ConditionalTaskGraph) -> "CtgAnalysis":
        """Analyse a graph (pseudo edges, if any, are ignored)."""
        real = ctg.without_pseudo_edges()
        scenarios = enumerate_scenarios(real)
        return cls(
            scenarios=scenarios,
            exclusions=exclusion_table(real, scenarios),
            gammas=gamma(real),
        )


def mutually_exclusive(
    ctg: ConditionalTaskGraph,
    first: str,
    second: str,
    scenarios: Optional[Sequence[Scenario]] = None,
) -> bool:
    """Whether two tasks can never be activated in the same scenario."""
    if first == second:
        return False
    if scenarios is None:
        scenarios = enumerate_scenarios(ctg)
    return not any(s.activates(first) and s.activates(second) for s in scenarios)


def exclusion_table(
    ctg: ConditionalTaskGraph, scenarios: Optional[Sequence[Scenario]] = None
) -> Dict[str, FrozenSet[str]]:
    """For every task, the set of tasks it is mutually exclusive with."""
    if scenarios is None:
        scenarios = enumerate_scenarios(ctg)
    tasks = ctg.tasks()
    co_active: Dict[str, set] = {task: set() for task in tasks}
    for scenario in scenarios:
        for task in sorted(scenario.active):
            co_active[task].update(scenario.active)
    return {
        task: frozenset(t for t in tasks if t != task and t not in co_active[task])
        for task in tasks
    }
