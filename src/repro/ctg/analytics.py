"""Structural and statistical analytics for conditional task graphs.

Characterising a CTG is the first step of every scheduling study: how
much of the workload is conditional, how wide the graph is, how much
the scenarios differ, how unpredictable the branches are.  This module
computes those quantities (they also back the generator's category
tests and the experiment reports):

* :func:`workload_statistics` — per-scenario workload distribution
  (min/max/expected, conditional share);
* :func:`branch_entropy` — Shannon entropy of each branch and of the
  scenario distribution (how much there is to predict);
* :func:`parallelism_profile` — width of the graph over its
  topological levels;
* :func:`criticality` — per-task probability-weighted criticality
  (share of scenario-critical paths through each task);
* :func:`summarize` — a one-call text report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..platform.mpsoc import Platform
from .graph import ConditionalTaskGraph
from .minterms import BranchProbabilities, Scenario, enumerate_scenarios


@dataclass(frozen=True)
class WorkloadStatistics:
    """Scenario workload spread of a CTG on a platform.

    Workload = total average WCET of the activated tasks.
    """

    expected: float
    minimum: float
    maximum: float
    total: float
    conditional_share: float

    @property
    def spread(self) -> float:
        """max/min workload ratio — how non-deterministic the CTG is."""
        return self.maximum / self.minimum if self.minimum > 0 else float("inf")


def workload_statistics(
    ctg: ConditionalTaskGraph,
    platform: Platform,
    probabilities: Optional[BranchProbabilities] = None,
    scenarios: Optional[Sequence[Scenario]] = None,
) -> WorkloadStatistics:
    """Per-scenario workload distribution (see class docstring)."""
    if probabilities is None:
        probabilities = ctg.default_probabilities
    if scenarios is None:
        scenarios = enumerate_scenarios(ctg)
    loads = []
    expected = 0.0
    for scenario in scenarios:
        load = sum(platform.average_wcet(task) for task in scenario.active)
        loads.append(load)
        expected += scenario.probability(probabilities) * load
    total = sum(platform.average_wcet(task) for task in ctg.tasks())
    always_active = set(scenarios[0].active)
    for scenario in scenarios[1:]:
        always_active &= scenario.active
    unconditional = sum(platform.average_wcet(task) for task in always_active)
    return WorkloadStatistics(
        expected=expected,
        minimum=min(loads),
        maximum=max(loads),
        total=total,
        conditional_share=1.0 - unconditional / total if total > 0 else 0.0,
    )


def branch_entropy(
    ctg: ConditionalTaskGraph,
    probabilities: Optional[BranchProbabilities] = None,
) -> Dict[str, float]:
    """Shannon entropy (bits) of each branch plus the joint scenario
    entropy under key ``"*scenarios*"``."""
    if probabilities is None:
        probabilities = ctg.default_probabilities
    entropies: Dict[str, float] = {}
    for branch in ctg.branch_nodes():
        distribution = probabilities.get(branch, {})
        entropies[branch] = _entropy(distribution.values())
    scenarios = enumerate_scenarios(ctg)
    entropies["*scenarios*"] = _entropy(
        scenario.probability(probabilities) for scenario in scenarios
    )
    return entropies


def _entropy(values) -> float:
    total = 0.0
    for p in values:
        if p > 0:
            total -= p * math.log2(p)
    return total


def parallelism_profile(ctg: ConditionalTaskGraph) -> List[int]:
    """Number of tasks per topological level (the graph's width curve).

    A task's level is the longest real-edge hop count from a source.
    """
    level: Dict[str, int] = {}
    for task in ctg.topological_order():
        preds = ctg.predecessors(task, include_pseudo=False)
        level[task] = 1 + max((level[p] for p in preds), default=-1)
    width = [0] * (max(level.values()) + 1)
    for l in level.values():
        width[l] += 1
    return width


def criticality(
    ctg: ConditionalTaskGraph,
    platform: Platform,
    probabilities: Optional[BranchProbabilities] = None,
) -> Dict[str, float]:
    """Probability that a task lies on its scenario's critical path.

    For each scenario, the critical (longest average-WCET) chain of the
    activated subgraph is computed; a task's criticality is the total
    probability of the scenarios whose critical chain contains it.
    High-criticality tasks are the ones DVFS cannot stretch for free.
    """
    if probabilities is None:
        probabilities = ctg.default_probabilities
    result: Dict[str, float] = {task: 0.0 for task in ctg.tasks()}
    for scenario in enumerate_scenarios(ctg):
        p = scenario.probability(probabilities)
        if p <= 0:
            continue
        # longest path over the activated subgraph (real edges only)
        best: Dict[str, Tuple[float, Optional[str]]] = {}
        for task in ctg.topological_order():
            if task not in scenario.active:
                continue
            incoming = [
                src
                for src, _dst, data in ctg.in_edges(task, include_pseudo=False)
                if src in scenario.active
                and (
                    data.condition is None
                    or scenario.product.label_for(data.condition.branch)
                    == data.condition.label
                )
            ]
            length = platform.average_wcet(task)
            predecessor = None
            if incoming:
                predecessor = max(incoming, key=lambda s: best[s][0])
                length += best[predecessor][0]
            best[task] = (length, predecessor)
        tail = max(best, key=lambda t: best[t][0])
        while tail is not None:
            result[tail] += p
            tail = best[tail][1]
    return result


def summarize(
    ctg: ConditionalTaskGraph,
    platform: Platform,
    probabilities: Optional[BranchProbabilities] = None,
) -> str:
    """One-call text characterisation of a CTG/platform pair."""
    if probabilities is None:
        probabilities = ctg.default_probabilities
    stats = workload_statistics(ctg, platform, probabilities)
    entropies = branch_entropy(ctg, probabilities)
    widths = parallelism_profile(ctg)
    scenarios = enumerate_scenarios(ctg)
    lines = [
        f"CTG {ctg.name!r}: {len(ctg)} tasks, {len(ctg.branch_nodes())} branch "
        f"forks, {len(scenarios)} scenarios, deadline {ctg.deadline:g}",
        f"workload: expected {stats.expected:.1f}, range "
        f"[{stats.minimum:.1f}, {stats.maximum:.1f}] (spread {stats.spread:.2f}x), "
        f"conditional share {100 * stats.conditional_share:.0f}%",
        f"parallelism: depth {len(widths)}, max width {max(widths)}, "
        f"profile {widths}",
        "branch entropy (bits): "
        + ", ".join(
            f"{branch}={entropies[branch]:.2f}"
            for branch in ctg.branch_nodes()
        )
        + f"; scenarios={entropies['*scenarios*']:.2f}",
    ]
    return "\n".join(lines)
