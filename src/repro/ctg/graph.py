"""Conditional task graph (CTG) data structure.

A CTG is an acyclic directed graph whose vertices are tasks and whose
edges are precedence/data-dependency constraints.  An edge may carry a
*condition* — one outcome of its source node — in which case the source
is a **branch fork node** and the edge is only "taken" at runtime when
the branch resolves to that outcome.  Each node is either an *and-node*
(activated when all satisfied incoming edges have completed) or an
*or-node* (activated when at least one has).

Edges also carry the communication volume (KBytes) shipped from source
to destination, used by the platform model to derive transfer delay and
energy.  The whole graph is periodic and shares a single deadline.

This module is purely structural; execution-time/energy tables live in
:mod:`repro.platform` and probability distributions are supplied to the
algorithms explicitly (they change at runtime — that is the point of
the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import networkx as nx

from ..check.tolerances import PROB_EPS
from .conditions import ConditionProduct, Outcome, TRUE


class NodeKind(Enum):
    """Activation semantics of a CTG node (paper §II)."""

    AND = "and"
    OR = "or"


@dataclass(frozen=True)
class EdgeData:
    """Payload of one CTG edge.

    Attributes
    ----------
    condition:
        Guarding outcome, or ``None`` for an unconditional edge.  A
        conditional edge's outcome always belongs to the edge's source
        node (the branch fork node).
    comm_kbytes:
        Data volume shipped over the edge, in KBytes.
    pseudo:
        ``True`` for serialisation edges injected by the scheduler to
        record same-PE execution order.  Pseudo edges never carry data
        or conditions and are ignored by activation semantics.
    """

    condition: Optional[Outcome] = None
    comm_kbytes: float = 0.0
    pseudo: bool = False


class CTGError(ValueError):
    """Raised for structurally invalid conditional task graphs."""


class ConditionalTaskGraph:
    """A conditional task graph.

    Parameters
    ----------
    name:
        Human-readable identifier used in reports.
    deadline:
        Common deadline of one period of the graph (time units).  May be
        set/overwritten later via :attr:`deadline`.
    """

    def __init__(self, name: str = "ctg", deadline: float = 0.0) -> None:
        self.name = name
        self.deadline = float(deadline)
        self._graph = nx.DiGraph()
        #: extra outcome labels declared for a branch beyond those that
        #: appear on edges (e.g. a "do nothing" branch side).
        self._declared_outcomes: Dict[str, List[str]] = {}
        #: optional profiled probabilities shipped with the graph; the
        #: algorithms always receive probabilities explicitly, this is a
        #: convenience default for examples and generators.
        self.default_probabilities: Dict[str, Dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_task(self, name: str, kind: NodeKind = NodeKind.AND) -> str:
        """Add a task node; returns its name for chaining."""
        if name in self._graph:
            raise CTGError(f"duplicate task {name!r}")
        self._graph.add_node(name, kind=kind)
        return name

    def add_edge(
        self,
        src: str,
        dst: str,
        condition: Optional[Outcome] = None,
        comm_kbytes: float = 0.0,
    ) -> None:
        """Add a (possibly conditional) dependency edge ``src → dst``."""
        self._require_task(src)
        self._require_task(dst)
        if condition is not None and condition.branch != src:
            raise CTGError(
                f"edge {src!r}→{dst!r} guarded by outcome of {condition.branch!r}; "
                "conditional edges must be guarded by an outcome of their source"
            )
        if self._graph.has_edge(src, dst):
            raise CTGError(f"duplicate edge {src!r}→{dst!r}")
        self._graph.add_edge(
            src, dst, data=EdgeData(condition=condition, comm_kbytes=float(comm_kbytes))
        )

    def add_conditional_edge(
        self, src: str, dst: str, label: str, comm_kbytes: float = 0.0
    ) -> None:
        """Shorthand: add an edge guarded by outcome ``label`` of ``src``."""
        self.add_edge(src, dst, condition=Outcome(src, label), comm_kbytes=comm_kbytes)

    def add_pseudo_edge(self, src: str, dst: str) -> None:
        """Inject a scheduler serialisation edge (no data, no condition)."""
        self._require_task(src)
        self._require_task(dst)
        if self._graph.has_edge(src, dst):
            return  # a real dependency already serialises the pair
        # src→dst closes a cycle exactly when dst already reaches src; a
        # targeted reachability probe is far cheaper than re-verifying
        # acyclicity of the whole graph (this runs once per pseudo edge
        # on the scheduler's hot path).
        if nx.has_path(self._graph, dst, src):
            raise CTGError(f"pseudo edge {src!r}→{dst!r} would create a cycle")
        self._graph.add_edge(src, dst, data=EdgeData(pseudo=True))

    def declare_outcomes(self, branch: str, labels: Sequence[str]) -> None:
        """Declare the full outcome set of a branch node.

        Only needed when some outcome guards no edge (a branch side that
        simply skips work).  Labels found on edges are merged in.
        """
        self._require_task(branch)
        self._declared_outcomes[branch] = list(labels)

    def _require_task(self, name: str) -> None:
        if name not in self._graph:
            raise CTGError(f"unknown task {name!r}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        """The underlying networkx digraph (treat as read-only)."""
        return self._graph

    def tasks(self) -> List[str]:
        """All task names, in insertion order."""
        return list(self._graph.nodes)

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def kind(self, name: str) -> NodeKind:
        """Activation semantics of a node."""
        self._require_task(name)
        return self._graph.nodes[name]["kind"]

    def edge_data(self, src: str, dst: str) -> EdgeData:
        """Payload of edge ``src → dst``."""
        try:
            return self._graph.edges[src, dst]["data"]
        except KeyError as exc:
            raise CTGError(f"no edge {src!r}→{dst!r}") from exc

    def edges(self, include_pseudo: bool = True) -> Iterator[Tuple[str, str, EdgeData]]:
        """Iterate ``(src, dst, data)`` triples."""
        for src, dst, attrs in self._graph.edges(data=True):
            data: EdgeData = attrs["data"]
            if data.pseudo and not include_pseudo:
                continue
            yield src, dst, data

    def predecessors(self, name: str, include_pseudo: bool = True) -> List[str]:
        """Predecessor tasks of ``name``."""
        return [
            p
            for p in self._graph.predecessors(name)
            if include_pseudo or not self.edge_data(p, name).pseudo
        ]

    def successors(self, name: str, include_pseudo: bool = True) -> List[str]:
        """Successor tasks of ``name``."""
        return [
            s
            for s in self._graph.successors(name)
            if include_pseudo or not self.edge_data(name, s).pseudo
        ]

    def sources(self) -> List[str]:
        """Nodes without real (non-pseudo) predecessors."""
        return [n for n in self._graph.nodes if not self.predecessors(n, include_pseudo=False)]

    def sinks(self) -> List[str]:
        """Nodes without real (non-pseudo) successors."""
        return [n for n in self._graph.nodes if not self.successors(n, include_pseudo=False)]

    def topological_order(self) -> List[str]:
        """A topological ordering over all (real + pseudo) edges."""
        return list(nx.topological_sort(self._graph))

    # ------------------------------------------------------------------
    # Branch structure
    # ------------------------------------------------------------------
    def branch_nodes(self) -> List[str]:
        """Branch fork nodes: nodes with at least one conditional out-edge
        or with declared outcomes."""
        found = set(self._declared_outcomes)
        for src, _dst, data in self.edges(include_pseudo=False):
            if data.condition is not None:
                found.add(src)
        return sorted(found)

    def outcomes_of(self, branch: str) -> List[str]:
        """All outcome labels of a branch node (edge labels ∪ declared)."""
        labels = list(self._declared_outcomes.get(branch, []))
        for _src, _dst, data in self.out_edges(branch, include_pseudo=False):
            if data.condition is not None and data.condition.label not in labels:
                labels.append(data.condition.label)
        if not labels:
            raise CTGError(f"{branch!r} is not a branch fork node")
        return labels

    def out_edges(
        self, src: str, include_pseudo: bool = True
    ) -> Iterator[Tuple[str, str, EdgeData]]:
        """Iterate out-edges of ``src`` as ``(src, dst, data)``."""
        for _, dst, attrs in self._graph.out_edges(src, data=True):
            data: EdgeData = attrs["data"]
            if data.pseudo and not include_pseudo:
                continue
            yield src, dst, data

    def in_edges(
        self, dst: str, include_pseudo: bool = True
    ) -> Iterator[Tuple[str, str, EdgeData]]:
        """Iterate in-edges of ``dst`` as ``(src, dst, data)``."""
        for src, _, attrs in self._graph.in_edges(dst, data=True):
            data: EdgeData = attrs["data"]
            if data.pseudo and not include_pseudo:
                continue
            yield src, dst, data

    def is_branch_node(self, name: str) -> bool:
        """Whether ``name`` is a branch fork node."""
        return name in set(self.branch_nodes())

    def deciding_branches(self, name: str) -> List[str]:
        """Branch nodes whose decision can affect the activation of ``name``.

        Example 1 of the paper: or-node τ₈ has a conditional activation
        context through τ₄, which is decided by branch fork τ₃ — at
        runtime τ₈ cannot start before τ₃ finishes even when the branch
        deselects τ₄, because until then it is unknown whether τ₄'s data
        must be awaited.  We return the (conservative) set of all branch
        fork nodes guarding a conditional edge anywhere upstream of
        ``name``; the executor makes an or-node wait for these.
        """
        seen = set()
        result: List[str] = []
        stack = [name]
        visited = {name}
        while stack:
            node = stack.pop()
            for src, _dst, data in self.in_edges(node, include_pseudo=False):
                if data.condition is not None and data.condition.branch not in seen:
                    seen.add(data.condition.branch)
                    result.append(data.condition.branch)
                if src not in visited:
                    visited.add(src)
                    stack.append(src)
        return sorted(result)

    # ------------------------------------------------------------------
    # Validation & copying
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check structural invariants; raise :class:`CTGError` if violated.

        Invariants: the graph is a DAG; every conditional edge is guarded
        by an outcome of its source; every branch node has ≥ 2 outcomes;
        the deadline is positive when set; every profiled distribution in
        :attr:`default_probabilities` names a branch node, covers only
        declared outcomes, and sums to 1 within ``PROB_EPS``.
        """
        if not nx.is_directed_acyclic_graph(self._graph):
            raise CTGError("conditional task graph must be acyclic")
        for src, dst, data in self.edges(include_pseudo=False):
            if data.condition is not None and data.condition.branch != src:
                raise CTGError(
                    f"edge {src!r}→{dst!r} guarded by foreign branch "
                    f"{data.condition.branch!r}"
                )
            if data.comm_kbytes < 0:
                raise CTGError(f"negative communication volume on {src!r}→{dst!r}")
        branch_set = set()
        for branch in self.branch_nodes():
            branch_set.add(branch)
            if len(self.outcomes_of(branch)) < 2:
                raise CTGError(f"branch node {branch!r} has fewer than 2 outcomes")
        if self.deadline < 0:
            raise CTGError("deadline must be non-negative")
        for branch, distribution in self.default_probabilities.items():
            if branch not in branch_set:
                raise CTGError(
                    f"default probabilities given for {branch!r}, which is "
                    "not a branch fork node"
                )
            outcomes = set(self.outcomes_of(branch))
            for label, probability in distribution.items():
                if label not in outcomes:
                    raise CTGError(
                        f"probability for undeclared outcome {label!r} of "
                        f"branch {branch!r} (declared: {sorted(outcomes)})"
                    )
                if not -PROB_EPS <= probability <= 1.0 + PROB_EPS:
                    raise CTGError(
                        f"probability {probability!r} of outcome {label!r} "
                        f"on branch {branch!r} is outside [0, 1]"
                    )
            total = sum(distribution.values())
            if abs(total - 1.0) > PROB_EPS:
                raise CTGError(
                    f"probabilities of branch {branch!r} sum to {total!r}, "
                    "not 1"
                )

    def copy(self) -> "ConditionalTaskGraph":
        """Deep-enough copy (structure and payloads are immutable)."""
        clone = ConditionalTaskGraph(self.name, self.deadline)
        clone._graph = self._graph.copy()
        clone._declared_outcomes = {b: list(v) for b, v in self._declared_outcomes.items()}
        clone.default_probabilities = {
            b: dict(dist) for b, dist in self.default_probabilities.items()
        }
        return clone

    def without_pseudo_edges(self) -> "ConditionalTaskGraph":
        """A copy with all scheduler serialisation edges removed."""
        clone = self.copy()
        pseudo = [
            (src, dst)
            for src, dst, data in clone.edges(include_pseudo=True)
            if data.pseudo
        ]
        clone._graph.remove_edges_from(pseudo)
        return clone

    def path_condition(self, nodes: Sequence[str]) -> Optional[ConditionProduct]:
        """Condition product of a node path (``None`` if contradictory)."""
        product = TRUE
        for src, dst in zip(nodes, nodes[1:]):
            data = self.edge_data(src, dst)
            if data.condition is not None:
                conjoined = product.conjoin_outcome(data.condition)
                if conjoined is None:
                    return None
                product = conjoined
        return product
