"""Conditional task graph substrate.

Public surface: condition algebra, the CTG structure, scenario/minterm
analysis, path enumeration and the TGFF-like random generator.
"""

from .analytics import (
    WorkloadStatistics,
    branch_entropy,
    criticality,
    parallelism_profile,
    summarize,
    workload_statistics,
)
from .conditions import (
    TRUE,
    ConditionProduct,
    Outcome,
    minimal_products,
    product_probability,
)
from .examples import diamond_ctg, figure1_ctg, two_sided_branch_ctg
from .generator import (
    GeneratorConfig,
    generate_ctg,
    paper_table1_configs,
    paper_table4_configs,
)
from .graph import CTGError, ConditionalTaskGraph, EdgeData, NodeKind
from .minterms import (
    CtgAnalysis,
    Scenario,
    activation_probability,
    activation_sets,
    enumerate_scenarios,
    exclusion_table,
    gamma,
    mutually_exclusive,
    resolve_activation,
)
from .paths import (
    CTGPath,
    enumerate_paths,
    path_delay,
    paths_of_minterm,
    paths_through,
)

__all__ = [
    "WorkloadStatistics",
    "branch_entropy",
    "criticality",
    "parallelism_profile",
    "summarize",
    "workload_statistics",
    "TRUE",
    "ConditionProduct",
    "Outcome",
    "minimal_products",
    "product_probability",
    "diamond_ctg",
    "figure1_ctg",
    "two_sided_branch_ctg",
    "GeneratorConfig",
    "generate_ctg",
    "paper_table1_configs",
    "paper_table4_configs",
    "CTGError",
    "ConditionalTaskGraph",
    "EdgeData",
    "NodeKind",
    "CtgAnalysis",
    "Scenario",
    "activation_probability",
    "activation_sets",
    "enumerate_scenarios",
    "exclusion_table",
    "gamma",
    "mutually_exclusive",
    "resolve_activation",
    "CTGPath",
    "enumerate_paths",
    "path_delay",
    "paths_of_minterm",
    "paths_through",
]
