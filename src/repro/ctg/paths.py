"""Path enumeration and path probabilities for scheduled CTGs.

The stretching heuristic (paper Figure 2) works on *paths*: complete
source→sink chains of the CTG after scheduling (i.e. including the
pseudo edges that serialise same-PE execution).  For each path ``p``
and task ``τ`` on it, the paper defines ``prob(p, τ)`` — the joint
probability of all conditional branches lying on the path *after* node
``τ`` — and tracks ``delay(p)`` / ``slk(p)`` as tasks are stretched.

:class:`CTGPath` is a lightweight immutable record of the node chain
and its condition structure; the mutable delay/slack bookkeeping lives
in the stretching module, which owns the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .conditions import ConditionProduct, Outcome, TRUE
from .graph import ConditionalTaskGraph

BranchProbabilities = Mapping[str, Mapping[str, float]]


@dataclass(frozen=True)
class CTGPath:
    """One source→sink path of a (scheduled) conditional task graph.

    Attributes
    ----------
    nodes:
        The task chain, source first.
    condition:
        Conjunction of the conditions of the path's edges (infeasible,
        contradictory paths are dropped during enumeration so this is
        always a consistent product).
    edge_conditions:
        For every hop ``i`` (edge ``nodes[i] → nodes[i+1]``), the
        guarding outcome or ``None``.
    """

    nodes: Tuple[str, ...]
    condition: ConditionProduct
    edge_conditions: Tuple[Optional[Outcome], ...]

    def __len__(self) -> int:
        return len(self.nodes)

    def __contains__(self, task: str) -> bool:
        return task in self.nodes

    def index(self, task: str) -> int:
        """Position of ``task`` on the path (raises ValueError if absent)."""
        return self.nodes.index(task)

    def conditions_after(self, task: str) -> Tuple[Outcome, ...]:
        """Conditional-edge outcomes on hops at or after ``task``.

        Paper semantics (Example after Figure 1): for the path
        τ₁-τ₃-τ₅-τ₆ and task τ₅, only the branch on edge (τ₅, τ₆)
        counts — hops whose *source* lies before ``task`` are excluded.
        """
        start = self.index(task)
        return tuple(
            outcome
            for hop, outcome in enumerate(self.edge_conditions)
            if hop >= start and outcome is not None
        )

    def prob_after(self, task: str, probabilities: BranchProbabilities) -> float:
        """The paper's ``prob(p, τ)`` — joint probability of the branches
        after ``task`` on this path (1.0 when none remain)."""
        probability = 1.0
        for outcome in self.conditions_after(task):
            probability *= probabilities[outcome.branch][outcome.label]
        return probability

    def is_certain_after(self, task: str) -> bool:
        """Whether no conditional branch lies after ``task`` on the path."""
        return not self.conditions_after(task)


def enumerate_paths(
    ctg: ConditionalTaskGraph,
    include_pseudo: bool = True,
    max_paths: int = 2_000_000,
) -> Tuple[CTGPath, ...]:
    """All feasible source→sink paths of ``ctg`` (BFS/DFS over the DAG).

    Contradictory paths — chains whose edge conditions pick two
    different outcomes of the same branch, which can arise through
    or-node joins — are infeasible at runtime and are dropped.

    Parameters
    ----------
    include_pseudo:
        Include scheduler serialisation edges, so paths capture
        processor contention (this is what the stretching stage needs).
    max_paths:
        Safety valve against pathological graphs.
    """
    paths: List[CTGPath] = []
    # One adjacency pass up front: the DFS below visits every partial
    # path, and going through the graph view per visit dominates the
    # enumeration cost on dense scheduled graphs.
    adjacency: Dict[str, List[Tuple[str, Optional[Outcome]]]] = {}
    for node in ctg.tasks():
        adjacency[node] = [
            (dst, data.condition)
            for _src, dst, data in ctg.out_edges(node, include_pseudo=include_pseudo)
        ]
    stack: List[Tuple[Tuple[str, ...], ConditionProduct, Tuple[Optional[Outcome], ...]]] = []
    for source in ctg.tasks():
        if not ctg.predecessors(source, include_pseudo=include_pseudo):
            stack.append(((source,), TRUE, ()))
    while stack:
        nodes, condition, hops = stack.pop()
        successors = adjacency[nodes[-1]]
        if not successors:
            paths.append(CTGPath(nodes=nodes, condition=condition, edge_conditions=hops))
            if len(paths) > max_paths:
                raise RuntimeError(f"path explosion: more than {max_paths} paths")
            continue
        for dst, edge_condition in successors:
            if edge_condition is None:
                stack.append((nodes + (dst,), condition, hops + (None,)))
            else:
                conjoined = condition.conjoin_outcome(edge_condition)
                if conjoined is not None:
                    stack.append((nodes + (dst,), conjoined, hops + (edge_condition,)))
    return tuple(paths)


def paths_through(paths: Iterable[CTGPath], task: str) -> Tuple[CTGPath, ...]:
    """Filter ``paths`` to those spanning ``task``."""
    return tuple(p for p in paths if task in p)


def paths_of_minterm(
    paths: Iterable[CTGPath], minterm: ConditionProduct
) -> Tuple[CTGPath, ...]:
    """Paths compatible with an activation context (condition product).

    A path belongs to minterm ``m`` when its own condition does not
    contradict ``m`` — e.g. every path belongs to the always-true
    minterm, while a path guarded by a₂ does not belong to minterm a₁.
    """
    return tuple(p for p in paths if p.condition.is_consistent_with(minterm))


def path_delay(
    path: CTGPath,
    execution_time: Mapping[str, float],
    edge_delay: Optional[Mapping[Tuple[str, str], float]] = None,
) -> float:
    """Delay of a path: execution times of its nodes plus hop delays.

    ``edge_delay`` maps (src, dst) to the communication delay of that
    hop under the current mapping (0 for same-PE and pseudo edges).
    """
    total = sum(execution_time[node] for node in path.nodes)
    if edge_delay is not None:
        for src, dst in zip(path.nodes, path.nodes[1:]):
            total += edge_delay.get((src, dst), 0.0)
    return total
