"""repro — reproduction of "Adaptive Scheduling and Voltage Scaling for
Multiprocessor Real-time Applications with Non-deterministic Workload"
(Malani, Mukre, Qiu, Wu — DATE 2008).

Subpackages
-----------
``repro.ctg``
    Conditional task graph substrate: condition algebra, graph
    structure, minterm/scenario analysis, path enumeration, TGFF-like
    random graph generation.
``repro.platform``
    MPSoC model: heterogeneous PEs, WCET/energy tables, point-to-point
    links, the continuous DVFS energy model.
``repro.scheduling``
    The paper's core: modified Dynamic Level Scheduling, the online
    slack-distribution stretching heuristic, the NLP stretching
    baseline and the two reference algorithms.
``repro.adaptive``
    Sliding-window branch-probability profiling and the threshold
    re-scheduling controller.
``repro.sim``
    Per-instance CTG execution (energy/timing under a concrete branch
    decision vector) and trace-driven policy runners.
``repro.workloads``
    MPEG macroblock decoder and vehicle cruise controller CTGs plus
    branch-decision trace generators.
``repro.analysis``
    Reporting helpers (normalisation, savings, table formatting).
"""

__version__ = "1.0.0"
