"""Rendering for ``repro report`` — one verb, three file kinds.

The verb accepts any JSON file this package writes and renders a
human-readable (or ``--json`` structured) summary:

* a **Chrome trace** (``repro trace … --out run.trace.json``) — top
  stages by accumulated wall-clock, the re-schedule timeline, the
  fault/recovery table and per-track span counts;
* an **experiment artifact** (``repro run … --artifacts-dir``, any
  ``repro.experiment/*`` schema revision) — cell/cache accounting plus
  the same top-stage table from the aggregated profile;
* a **metrics snapshot** (``… --metrics-out``, schema
  ``repro.metrics/1``) — counters, stage calls and derived metrics.

Everything here consumes the *serialised* formats, not live objects, so
a report can be produced on a different machine (or months later) from
nothing but the artifact file.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from .export import METRICS_SCHEMA

#: sim-time categories as exported (matches trace.SIM_CATEGORIES)
_SIM_CATS = ("sim.task", "sim.link", "sim.event")


class ReportError(ValueError):
    """The file is not something ``repro report`` understands."""


def detect_kind(payload: Any) -> str:
    """``"trace"``, ``"artifact"`` or ``"metrics"`` — raises otherwise."""
    if isinstance(payload, dict):
        if isinstance(payload.get("traceEvents"), list):
            return "trace"
        schema = payload.get("schema")
        # any revision: the report only reads fields every revision has
        if isinstance(schema, str) and schema.startswith("repro.experiment/"):
            return "artifact"
        if schema == METRICS_SCHEMA:
            return "metrics"
    raise ReportError(
        "unrecognised file: expected a Chrome trace (traceEvents), an "
        "experiment artifact (repro.experiment/*) or a metrics snapshot "
        f"({METRICS_SCHEMA})"
    )


def load_report_payload(path: Union[str, Path]) -> Tuple[str, Dict[str, Any]]:
    """Read a JSON file and classify it; returns ``(kind, payload)``."""
    try:
        payload = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ReportError(f"not JSON: {exc}") from exc
    return detect_kind(payload), payload


def _format_rows(rows: List[List[str]], header: List[str]) -> str:
    widths = [
        max(len(str(row[i])) for row in [header] + rows) for i in range(len(header))
    ]
    render = lambda row: "  ".join(f"{str(v):<{w}}" for v, w in zip(row, widths))
    lines = [render(header), render(["-" * w for w in widths])]
    lines.extend(render(row) for row in rows)
    return "\n".join(lines)


def _top_stages(
    timings: Mapping[str, float], calls: Mapping[str, int], limit: int = 12
) -> str:
    rows = sorted(timings.items(), key=lambda item: -item[1])[:limit]
    if not rows:
        return "(no stage timings recorded)"
    table = _format_rows(
        [
            [name, f"{seconds * 1e3:.3f}", str(calls.get(name, 0))]
            for name, seconds in rows
        ],
        ["stage", "total ms", "calls"],
    )
    return table


# ----------------------------------------------------------------------
# Chrome trace reports
# ----------------------------------------------------------------------
def summarise_trace(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Structured summary of an exported Chrome trace."""
    process_names: Dict[int, str] = {}
    stage_totals: Dict[str, float] = {}
    stage_calls: Dict[str, int] = {}
    track_spans: Dict[int, int] = {}
    reschedules: List[Dict[str, Any]] = []
    faults: Dict[str, int] = {}
    recoveries: Dict[str, int] = {}
    task_spans = 0
    online_latencies: List[float] = []
    for record in payload["traceEvents"]:
        ph = record.get("ph")
        if ph == "M":
            if record.get("name") == "process_name":
                process_names[record["pid"]] = record.get("args", {}).get("name", "?")
            continue
        cat = record.get("cat", "")
        name = record.get("name", "")
        if ph == "X":
            track_spans[record["pid"]] = track_spans.get(record["pid"], 0) + 1
            if cat == "stage":
                stage_totals[name] = stage_totals.get(name, 0.0) + record["dur"] / 1e3
                stage_calls[name] = stage_calls.get(name, 0) + 1
                if name == "online":
                    online_latencies.append(record["dur"] / 1e3)
            elif cat == "sim.task":
                task_spans += 1
        elif ph == "i":
            if name == "sim.reschedule":
                reschedules.append(
                    {"ts": record["ts"] / 1e3, **record.get("args", {})}
                )
            elif name == "sim.fault":
                kind = record.get("args", {}).get("kind", "?")
                faults[kind] = faults.get(kind, 0) + 1
            elif name in ("sim.recovered", "sim.unrecovered", "sim.escalation"):
                recoveries[name] = recoveries.get(name, 0) + 1
    return {
        "tracks": {
            process_names.get(pid, str(pid)): count
            for pid, count in sorted(track_spans.items())
        },
        "stage_ms": {k: round(v, 3) for k, v in sorted(stage_totals.items())},
        "stage_calls": dict(sorted(stage_calls.items())),
        "task_spans": task_spans,
        "reschedules": reschedules,
        "faults_by_kind": dict(sorted(faults.items())),
        "recovery_events": dict(sorted(recoveries.items())),
        "online_latency_ms": {
            "count": len(online_latencies),
            "max": round(max(online_latencies), 3) if online_latencies else 0.0,
        },
    }


def render_trace_report(payload: Mapping[str, Any]) -> str:
    """Text report of an exported Chrome trace."""
    summary = summarise_trace(payload)
    lines: List[str] = ["trace report", "============", ""]
    lines.append("top stages (wall clock):")
    stage_seconds = {k: v / 1e3 for k, v in summary["stage_ms"].items()}
    lines.append(_top_stages(stage_seconds, summary["stage_calls"]))
    lines.append("")
    lines.append(
        f"task execution spans: {summary['task_spans']}   "
        f"online invocations: {summary['stage_calls'].get('online', 0)}   "
        f"max online latency: {summary['online_latency_ms']['max']} ms"
    )
    lines.append("")
    lines.append("tracks:")
    for track, count in summary["tracks"].items():
        lines.append(f"  {track:<16} {count} spans")
    if summary["reschedules"]:
        lines.append("")
        lines.append("re-schedule timeline (sim time units):")
        for item in summary["reschedules"]:
            extra = ", ".join(
                f"{k}={v}" for k, v in sorted(item.items()) if k != "ts"
            )
            lines.append(f"  t={item['ts']:10.2f}  {extra}")
    if summary["faults_by_kind"]:
        lines.append("")
        lines.append("injected faults:")
        lines.append(
            _format_rows(
                [[k, str(v)] for k, v in summary["faults_by_kind"].items()],
                ["kind", "count"],
            )
        )
    if summary["recovery_events"]:
        lines.append("")
        lines.append("recovery events:")
        for name, count in summary["recovery_events"].items():
            lines.append(f"  {name:<18} {count}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Experiment-artifact reports
# ----------------------------------------------------------------------
def summarise_artifact(payload: Mapping[str, Any]) -> Dict[str, Any]:
    """Structured summary of a ``repro.experiment/*`` artifact."""
    profile = payload.get("profile") or {}
    cells = payload.get("cells") or []
    cache = payload.get("cache") or {}
    engine = payload.get("engine") or {}
    summary: Dict[str, Any] = {
        "experiment": payload.get("experiment", "?"),
        "cells": len(cells),
        "cached": cache.get("hits", 0),
        "jobs": cache.get("jobs", 1),
        "cache": {
            "backend": cache.get("backend", ""),
            "hits": cache.get("hits", 0),
            "misses": cache.get("misses", 0),
            "hit_rate": cache.get("hit_rate", 0.0),
        },
        # schema /3 artifacts carry the engine's own accounting
        # (reorder window, stream and cache.backend.* counters);
        # older revisions simply render an empty section
        "engine": {
            "window": engine.get("window", 0),
            "counters": dict(sorted((engine.get("counters") or {}).items())),
        },
        "stage_seconds": dict(sorted((profile.get("timings") or {}).items())),
        "stage_calls": dict(sorted((profile.get("calls") or {}).items())),
        "counters": dict(sorted((profile.get("counters") or {}).items())),
        "slowest_cells": sorted(
            (
                {"key": c.get("key", "?"), "seconds": round(c.get("seconds", 0.0), 3)}
                for c in cells
            ),
            key=lambda item: -item["seconds"],
        )[:5],
    }
    result = payload.get("result")
    if isinstance(result, Mapping) and "rows" in result:
        rows = result["rows"]
        if rows and isinstance(rows[0], Mapping) and "recovery_rate" in rows[0]:
            summary["chaos_rows"] = rows
    return summary


def render_artifact_report(payload: Mapping[str, Any]) -> str:
    """Text report of an experiment artifact."""
    summary = summarise_artifact(payload)
    lines = [
        f"artifact report — {summary['experiment']}",
        "=" * (19 + len(str(summary["experiment"]))),
        "",
        f"cells: {summary['cells']}   cached: {summary['cached']}   "
        f"jobs: {summary['jobs']}",
        "",
        "top stages (aggregated over cells):",
        _top_stages(summary["stage_seconds"], summary["stage_calls"]),
    ]
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        width = max(len(n) for n in summary["counters"])
        for name, value in summary["counters"].items():
            lines.append(f"  {name:<{width}}  {value}")
    engine = summary.get("engine") or {}
    if engine.get("counters"):
        lines.append("")
        lines.append(
            f"engine (window {engine.get('window', 0)}, "
            f"backend {summary['cache'].get('backend') or 'off'}):"
        )
        width = max(len(n) for n in engine["counters"])
        for name, value in engine["counters"].items():
            lines.append(f"  {name:<{width}}  {value}")
    if summary["slowest_cells"]:
        lines.append("")
        lines.append("slowest cells:")
        for cell in summary["slowest_cells"]:
            lines.append(f"  {cell['key']:<24} {cell['seconds']:.3f}s")
    chaos_rows = summary.get("chaos_rows")
    if chaos_rows:
        lines.append("")
        lines.append("fault recovery:")
        lines.append(
            _format_rows(
                [
                    [
                        str(r.get("workload", "?")),
                        str(r.get("plan", "?")),
                        str(r.get("policy", "?")),
                        str(r.get("threatened", 0)),
                        str(r.get("recovered", 0)),
                        str(r.get("unrecovered", 0)),
                        f"{100 * float(r.get('recovery_rate', 0.0)):.0f}%",
                    ]
                    for r in chaos_rows
                ],
                ["workload", "plan", "policy", "threat", "recov", "unrec", "rate"],
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Metrics-snapshot reports
# ----------------------------------------------------------------------
def render_metrics_report(payload: Mapping[str, Any]) -> str:
    """Text report of a metrics snapshot."""
    lines = ["metrics report", "==============", ""]
    if payload.get("canonical"):
        lines.insert(2, "(canonical snapshot: wall-clock values omitted)")
        lines.insert(3, "")
    for section in ("counters", "stage_calls", "stage_seconds", "events", "spans"):
        values = payload.get(section)
        if not values:
            continue
        lines.append(f"{section}:")
        width = max(len(str(n)) for n in values)
        for name, value in sorted(values.items()):
            shown = f"{value:.6f}" if isinstance(value, float) else value
            lines.append(f"  {str(name):<{width}}  {shown}")
        lines.append("")
    derived = payload.get("derived")
    if derived:
        lines.append("derived:")
        for name, value in sorted(derived.items()):
            lines.append(f"  {name}: {json.dumps(value, sort_keys=True)}")
    return "\n".join(lines).rstrip()


def render_report(
    kind: str, payload: Mapping[str, Any], as_json: bool = False
) -> str:
    """Dispatch to the right renderer; ``as_json`` returns the summary
    as indented JSON instead of text."""
    if kind == "trace":
        if as_json:
            return json.dumps(summarise_trace(payload), indent=2, sort_keys=True)
        return render_trace_report(payload)
    if kind == "artifact":
        if as_json:
            return json.dumps(summarise_artifact(payload), indent=2, sort_keys=True)
        return render_artifact_report(payload)
    if kind == "metrics":
        if as_json:
            return json.dumps(dict(payload), indent=2, sort_keys=True)
        return render_metrics_report(payload)
    raise ReportError(f"unknown report kind {kind!r}")
