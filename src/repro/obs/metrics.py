"""Typed metric registry and the declared stage/counter vocabulary.

Until this layer existed, the stage and counter names threaded through
the package lived only in a docstring table in :mod:`repro.profiling` —
nothing stopped a call site from emitting ``path_cache.hti`` and
silently reporting zeros forever.  This module makes the vocabulary a
*declared registry*:

* :data:`VOCABULARY` — one :class:`MetricSpec` per stage timer, event
  counter, point event and derived per-run metric the package emits;
* :class:`MetricsRegistry` — typed counter/gauge/histogram instruments
  with label sets, validating every name against the declaration
  (unknown names raise under ``check=True``, warn otherwise);
* :func:`vocabulary_table` — the rendered name table; the table in
  ``repro/profiling.py``'s docstring and in ``docs/observability.md``
  is generated from it and drift-tested (the docstring can no longer
  diverge from the code);
* :func:`emitted_names` — an AST sweep over a source tree collecting
  every name literal passed to ``.stage(...)`` / ``.count(...)`` /
  ``.event(...)`` / instrument constructors, so the drift test can
  assert *emitted ⊆ declared* without running anything;
* :func:`derive_run_metrics` — the per-run derived metrics (re-schedule
  latency percentiles, energy per instance, recovery rate) computed
  from a :class:`~repro.sim.runner.RunResult` and its tracer.

Dynamic names — simulated task spans (named after tasks), link tracks,
``cell:<key>`` engine spans — are intentionally *outside* the
vocabulary: it governs the stage/counter/event namespace, where a typo
means silent data loss.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple
from warnings import warn


class MetricKind(str, Enum):
    """What a declared name measures."""

    TIMER = "timer"  #: a stage span; seconds accumulate per entry
    COUNTER = "counter"  #: a monotonically accumulated integer
    EVENT = "event"  #: a point on the trace timeline
    GAUGE = "gauge"  #: a last-write-wins scalar
    HISTOGRAM = "histogram"  #: a value distribution with percentiles


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric name."""

    name: str
    kind: MetricKind
    description: str
    unit: str = ""


def _spec(name: str, kind: MetricKind, description: str, unit: str = "") -> MetricSpec:
    return MetricSpec(name=name, kind=kind, description=description, unit=unit)


_T, _C, _E, _G, _H = (
    MetricKind.TIMER,
    MetricKind.COUNTER,
    MetricKind.EVENT,
    MetricKind.GAUGE,
    MetricKind.HISTOGRAM,
)

#: The declared vocabulary — every stage/counter/event/derived name the
#: package emits.  Ordering is the rendering order of
#: :func:`vocabulary_table` (grouped by kind, pipeline order within).
VOCABULARY: Tuple[MetricSpec, ...] = (
    # -- stage timers (wall-clock spans) --------------------------------
    _spec("online", _T, "one full ``schedule_online`` invocation", "s"),
    _spec("online.fallback", _T, "full-speed DLS fallback scheduling stage", "s"),
    _spec("dls", _T, "mapping/ordering stage", "s"),
    _spec("dls.levels", _T, "static-level computation inside DLS", "s"),
    _spec("stretch", _T, "slack-distribution stage (total)", "s"),
    _spec("stretch.structure", _T, "path enumeration + scenario-mask construction", "s"),
    _spec("stretch.refresh", _T, "probability-dependent table refresh", "s"),
    _spec("stretch.sweep", _T, "the per-task CalculateSlack sweep", "s"),
    _spec("executor.replay", _T, "per-instance schedule replay in the simulator", "s"),
    _spec("executor.replay_faulted", _T, "dual-arm replay of a fault-injected instance", "s"),
    _spec("batch.sweep", _T, "batched Monte-Carlo sampling + evaluation kernel", "s"),
    _spec("check", _T, "static verification inside ``schedule_online(check=True)``", "s"),
    # -- counters -------------------------------------------------------
    _spec("dls.tasks_placed", _C, "tasks placed by the DLS mapping stage"),
    _spec("paths.enumerated", _C, "paths enumerated on structural cache misses"),
    _spec("path_cache.hit", _C, "structural path-analytics cache hits"),
    _spec("path_cache.miss", _C, "structural path-analytics cache misses"),
    _spec("prob_cache.hit", _C, "probability-tier (prob_after) cache hits"),
    _spec("prob_cache.miss", _C, "probability-tier (prob_after) cache misses"),
    _spec("stretch.prune_fallback", _C, "all-paths-pruned fallbacks to unpruned stretching"),
    _spec("executor.instances", _C, "CTG instances replayed by the executor"),
    _spec("executor.faulted_instances", _C, "instances replayed with faults applied"),
    _spec("reschedule.calls", _C, "adaptive re-invocations of the online algorithm"),
    _spec("reschedule.emergency", _C, "out-of-band invocations after an unrecovered miss"),
    _spec("reschedule.dropped", _C, "invocations lost to an injected drop fault"),
    _spec("reschedule.delayed", _C, "invocations deferred by an injected delay fault"),
    _spec("reschedule.fallback", _C, "full-speed fallback schedules installed on failure"),
    _spec("reschedule.prestretched", _C, "re-schedules served from the batched pre-stretch cache"),
    _spec("batch.instances", _C, "instances evaluated by the batched Monte-Carlo kernel"),
    _spec("fault.injected", _C, "faults resolved from the plan and applied"),
    _spec("fault.threatened", _C, "instances whose no-policy arm missed the deadline"),
    _spec("fault.escalations", _C, "overrun detections that escalated remaining tasks"),
    _spec("fault.corrupted_observations", _C, "branch labels rotated before the estimator"),
    _spec("fault.quantization_loss", _C, "misses attributable to a capped frequency table alone"),
    _spec("policy.quantized", _C, "task speeds rounded up onto a discrete level"),
    _spec("policy.refined", _C, "discrete levels lowered by the slack-refinement pass"),
    _spec("policy.eaps_configs", _C, "(frequency, core-count) configurations enumerated by EAPS"),
    _spec("executor.reclaimed", _C, "tasks whose completion slack was reclaimed at a preemption point"),
    _spec("check.passes", _C, "clean ``schedule_online(check=True)`` verifications"),
    _spec("modal.pseudo_edge_skips", _C, "implied-edge injections skipped as cycle-closing"),
    _spec("cache.backend.hit", _C, "cell-cache entries served by the storage backend"),
    _spec("cache.backend.miss", _C, "cell-cache lookups the backend could not serve"),
    _spec("cache.backend.corrupt", _C, "backend entries rejected as corrupt (recomputed)"),
    _spec("cache.backend.put", _C, "cell results persisted to the storage backend"),
    _spec("engine.stream.flushed", _C, "cell results streamed through the reorder buffer"),
    _spec("engine.stream.peak_resident", _C, "reorder-buffer high-water mark (bounded by the window)"),
    _spec("engine.stream.resumed", _C, "cells skipped via warm entries under ``--resume``"),
    _spec("engine.worker.spawned", _C, "fleet worker subprocesses started for the run"),
    _spec("engine.worker.heartbeats", _C, "heartbeat frames received from fleet workers"),
    _spec("engine.worker.stalled", _C, "fleet workers killed after missing their heartbeat budget"),
    _spec("engine.worker.frame_errors", _C, "fleet frame/pipe failures surfaced to the parent"),
    # -- point events ---------------------------------------------------
    _spec("drift.detected", _E, "windowed branch drift crossed the threshold"),
    _spec("reschedule.invoked", _E, "the controller (re)invoked the online algorithm"),
    _spec("sim.fault", _E, "one injected fault, on its instance's sim timeline"),
    _spec("sim.reschedule", _E, "a new schedule took effect (sim timeline)"),
    _spec("sim.escalation", _E, "the watchdog escalated remaining tasks (sim timeline)"),
    _spec("sim.recovered", _E, "policy arm recovered a threatened instance"),
    _spec("sim.unrecovered", _E, "policy arm missed the deadline despite recovery"),
    # -- derived per-run metrics ----------------------------------------
    _spec("run.reschedule_latency", _H, "per-call ``schedule_online`` wall-clock latency", "s"),
    _spec("run.energy_per_instance", _H, "per-instance energy distribution", "energy"),
    _spec("run.total_energy", _G, "summed instance energy of the run", "energy"),
    _spec("run.instances", _G, "replayed CTG instances"),
    _spec("run.reschedule_calls", _G, "re-scheduling call count of the run"),
    _spec("run.deadline_misses", _G, "instances finishing past the deadline"),
    _spec("run.recovery_rate", _G, "recovered / threatened instances (faulted runs)"),
)


class MetricError(ValueError):
    """An undeclared or wrongly-typed metric name was used."""


def _percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (deterministic, no interpolation)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1, int(round(q * (len(ordered) - 1)))))
    return ordered[rank]


def _label_key(labels: Mapping[str, Any]) -> Tuple[Tuple[str, str], ...]:
    """Canonical hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labelled(values: Mapping[Tuple[Tuple[str, str], ...], Any]) -> Any:
    """JSON-ready view: unlabelled single series collapses to its value."""
    if set(values) == {()}:
        return values[()]
    return {
        "|".join(f"{k}={v}" for k, v in key): value
        for key, value in sorted(values.items())
    }


@dataclass
class Counter:
    """Accumulating integer instrument with label sets."""

    spec: MetricSpec
    values: Dict[Tuple[Tuple[str, str], ...], int] = field(default_factory=dict)

    def inc(self, amount: int = 1, **labels: Any) -> None:
        """Add ``amount`` to the series selected by ``labels``."""
        key = _label_key(labels)
        self.values[key] = self.values.get(key, 0) + int(amount)

    def snapshot(self) -> Any:
        """JSON-ready value(s)."""
        return _labelled(self.values)


@dataclass
class Gauge:
    """Last-write-wins scalar instrument with label sets."""

    spec: MetricSpec
    values: Dict[Tuple[Tuple[str, str], ...], float] = field(default_factory=dict)

    def set(self, value: float, **labels: Any) -> None:
        """Overwrite the series selected by ``labels``."""
        self.values[_label_key(labels)] = float(value)

    def snapshot(self) -> Any:
        """JSON-ready value(s)."""
        return _labelled(self.values)


@dataclass
class Histogram:
    """Value-distribution instrument summarised as count/p50/p95/max."""

    spec: MetricSpec
    values: Dict[Tuple[Tuple[str, str], ...], List[float]] = field(default_factory=dict)

    def observe(self, value: float, **labels: Any) -> None:
        """Record one observation into the series selected by ``labels``."""
        self.values.setdefault(_label_key(labels), []).append(float(value))

    def observe_many(self, values: Iterable[float], **labels: Any) -> None:
        """Record many observations at once."""
        self.values.setdefault(_label_key(labels), []).extend(
            float(v) for v in values
        )

    @staticmethod
    def summarise(values: Sequence[float]) -> Dict[str, float]:
        """The exported summary of one series."""
        if not values:
            return {"count": 0, "p50": 0.0, "p95": 0.0, "max": 0.0, "sum": 0.0}
        return {
            "count": len(values),
            "p50": _percentile(values, 0.50),
            "p95": _percentile(values, 0.95),
            "max": max(values),
            "sum": sum(values),
        }

    def snapshot(self) -> Any:
        """JSON-ready summary per label set."""
        return _labelled({k: self.summarise(v) for k, v in self.values.items()})


class MetricsRegistry:
    """Declared-vocabulary metric store.

    ``check`` selects the failure mode for undeclared names: ``True``
    raises :class:`MetricError` (tests, CI), ``False`` emits a
    :class:`UserWarning` and otherwise accepts the name (production
    runs keep going, but the drift is visible).
    """

    def __init__(
        self, specs: Iterable[MetricSpec] = VOCABULARY, check: bool = False
    ) -> None:
        self.check = check
        self._specs: Dict[str, MetricSpec] = {}
        self._instruments: Dict[str, Any] = {}
        for spec in specs:
            self.declare(spec)

    # -- declaration -----------------------------------------------------
    def declare(self, spec: MetricSpec) -> MetricSpec:
        """Add one declaration (idempotent; conflicting kinds raise)."""
        existing = self._specs.get(spec.name)
        if existing is not None and existing.kind is not spec.kind:
            raise MetricError(
                f"metric {spec.name!r} re-declared as {spec.kind.value}, "
                f"was {existing.kind.value}"
            )
        self._specs[spec.name] = spec
        return spec

    @property
    def names(self) -> Tuple[str, ...]:
        """Declared names, sorted."""
        return tuple(sorted(self._specs))

    def spec(self, name: str) -> Optional[MetricSpec]:
        """The declaration of a name (``None`` when undeclared)."""
        return self._specs.get(name)

    def validate(self, names: Iterable[str], source: str = "") -> List[str]:
        """Check names against the declaration; returns the unknowns.

        Raises under ``check=True``, warns otherwise.
        """
        unknown = sorted(set(names) - set(self._specs))
        if unknown:
            where = f" (from {source})" if source else ""
            message = f"undeclared metric name(s){where}: {', '.join(unknown)}"
            if self.check:
                raise MetricError(message)
            warn(message, stacklevel=2)
        return unknown

    # -- typed instruments ----------------------------------------------
    def _instrument(self, name: str, kind: MetricKind, factory: Any) -> Any:
        spec = self._specs.get(name)
        if spec is None:
            self.validate([name], source=f"{kind.value} instrument")
            spec = self.declare(MetricSpec(name, kind, "(undeclared)"))
        elif spec.kind is not kind:
            raise MetricError(
                f"metric {name!r} is declared as a {spec.kind.value}, "
                f"not a {kind.value}"
            )
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = factory(spec)
            self._instruments[name] = instrument
        return instrument

    def counter(self, name: str) -> Counter:
        """The (lazily created) counter instrument for a declared name."""
        return self._instrument(name, MetricKind.COUNTER, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge instrument for a declared name."""
        return self._instrument(name, MetricKind.GAUGE, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram instrument for a declared name."""
        return self._instrument(name, MetricKind.HISTOGRAM, Histogram)

    # -- export ----------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """JSON-ready ``{name: value}`` of every touched instrument."""
        return {
            name: instrument.snapshot()
            for name, instrument in sorted(self._instruments.items())
        }

    def wall_clock_names(self) -> Set[str]:
        """Names whose values are wall-clock-derived (excluded from the
        canonical snapshot; see :func:`repro.obs.export.metrics_snapshot`)."""
        return {
            spec.name for spec in self._specs.values() if spec.unit == "s"
        }


def default_registry(check: bool = False) -> MetricsRegistry:
    """A fresh registry pre-loaded with :data:`VOCABULARY`."""
    return MetricsRegistry(VOCABULARY, check=check)


def declared_names() -> Set[str]:
    """The set of declared metric names."""
    return {spec.name for spec in VOCABULARY}


# ----------------------------------------------------------------------
# Rendered vocabulary table (the docstring/docs source of truth)
# ----------------------------------------------------------------------
def vocabulary_table() -> str:
    """The stage/counter table, generated from :data:`VOCABULARY`.

    ``repro/profiling.py``'s module docstring and the vocabulary
    section of ``docs/observability.md`` embed exactly this text; the
    drift test re-renders it and fails on any divergence.
    """
    rows = [(f"``{spec.name}``", spec.kind.value, spec.description) for spec in VOCABULARY]
    widths = [max(len(r[i]) for r in rows) for i in range(2)]
    bar = f"{'=' * widths[0]}  {'=' * widths[1]}  {'=' * 48}"
    lines = [bar]
    for name, kind, description in rows:
        lines.append(f"{name:<{widths[0]}}  {kind:<{widths[1]}}  {description}")
    lines.append(bar)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Static emission sweep (the other half of the drift test)
# ----------------------------------------------------------------------
#: Method names whose first string-literal argument is a metric name.
_EMITTING_METHODS = frozenset(
    {"stage", "count", "event", "counter", "gauge", "histogram"}
)


def emitted_names(*roots: Any) -> Set[str]:
    """Every metric-name literal emitted anywhere under ``roots``.

    Walks the Python files, collecting the first positional string
    literal of every ``<obj>.stage("…")`` / ``.count("…")`` /
    ``.event("…")`` / ``.counter("…")`` / ``.gauge("…")`` /
    ``.histogram("…")`` call.  Dynamic names (variables, f-strings)
    are invisible to this sweep by design — the vocabulary governs the
    literal namespace.
    """
    names: Set[str] = set()
    for root in roots:
        root = Path(root)
        files = [root] if root.is_file() else sorted(root.rglob("*.py"))
        for path in files:
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                func = node.func
                if not isinstance(func, ast.Attribute):
                    continue
                if func.attr not in _EMITTING_METHODS:
                    continue
                first = node.args[0]
                if isinstance(first, ast.Constant) and isinstance(first.value, str):
                    names.add(first.value)
    return names


# ----------------------------------------------------------------------
# Derived per-run metrics
# ----------------------------------------------------------------------
def derive_run_metrics(
    result: Any, tracer: Any = None, registry: Optional[MetricsRegistry] = None
) -> MetricsRegistry:
    """Populate the ``run.*`` derived metrics from one trace replay.

    ``result`` is a :class:`~repro.sim.runner.RunResult`; ``tracer``
    (optional) supplies the per-call ``online`` span durations for the
    re-schedule latency histogram.  Wall-clock metrics land in
    instruments whose unit is seconds, which the canonical snapshot
    excludes — everything else is deterministic.
    """
    reg = registry if registry is not None else default_registry()
    reg.histogram("run.energy_per_instance").observe_many(result.energies)
    reg.gauge("run.total_energy").set(result.total_energy)
    reg.gauge("run.instances").set(len(result.energies))
    reg.gauge("run.reschedule_calls").set(result.reschedule_calls)
    reg.gauge("run.deadline_misses").set(result.deadline_misses)
    fault_log = getattr(result, "fault_log", None)
    if fault_log is not None:
        reg.gauge("run.recovery_rate").set(fault_log.recovery_rate())
    if tracer is not None and getattr(tracer, "enabled", False):
        latencies = tracer.durations("online")
        if latencies:
            reg.histogram("run.reschedule_latency").observe_many(latencies)
    return reg
