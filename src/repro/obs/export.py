"""Exporters: Chrome trace-event JSON, canonical metrics snapshots,
plain-text timelines.

Three consumers, three formats:

* **Perfetto / ``chrome://tracing``** — :func:`chrome_trace` renders a
  tracer as the Chrome trace-event format (JSON object form), one
  *pid* per track: the ``runtime`` wall-clock timeline (scheduling
  stages, controller events), one per processing element
  (``pe:<name>`` — task executions at their chosen DVFS speed), one
  per link (``link:<a>-<b>`` — cross-PE transfers) and one for the
  experiment engine (``engine`` — one span per cell).  Load the file
  with *Open trace file* in https://ui.perfetto.dev.  Wall-clock
  timestamps are exported in real microseconds; simulated schedule
  time is exported at 1 time-unit = 1 µs·10³ (i.e. read sim
  milliseconds as trace milliseconds) — the two clock domains share
  the axis but only intra-domain distances are meaningful.
* **CI byte-comparison** — :func:`metrics_snapshot` with
  ``canonical=True`` produces a wall-clock-free snapshot (counters,
  stage call counts, span/event occurrence counts, deterministic
  derived metrics) rendered through :func:`repro.io.canonical_json`,
  so two runs of the same seeded workload — at any ``--jobs`` value —
  write byte-identical files that CI can ``cmp``, exactly like the
  chaos artifacts.
* **Humans** — :func:`render_timeline` prints the nested span tree and
  the event stream as text.

:func:`validate_chrome_trace` is the schema check the obs-smoke CI job
and the property tests share.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from .metrics import MetricsRegistry, default_registry
from .trace import SIM_CATEGORIES, WALL_TRACK, Tracer

#: Schema tag of metrics snapshots.
METRICS_SCHEMA = "repro.metrics/1"

#: Exported microseconds per wall-clock second.
_WALL_SCALE = 1e6
#: Exported microseconds per simulated schedule time unit.
_SIM_SCALE = 1e3


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def _track_pids(tracer: Tracer) -> Dict[str, int]:
    """Stable track → pid assignment: ``runtime`` first, rest sorted."""
    tracks = {s.track for s in tracer.spans} | {e.track for e in tracer.events}
    ordered = [WALL_TRACK] if WALL_TRACK in tracks else []
    ordered += sorted(tracks - {WALL_TRACK})
    return {track: pid for pid, track in enumerate(ordered, start=1)}


def _scale(ts: float, category: str) -> float:
    return ts * (_SIM_SCALE if category in SIM_CATEGORIES else _WALL_SCALE)


def chrome_trace(tracer: Tracer, run_name: str = "repro") -> Dict[str, Any]:
    """Render a tracer as a Chrome trace-event JSON object.

    Every span becomes a complete event (``ph:"X"`` with ``ts``/
    ``dur``), every point event an instant event (``ph:"i"``), plus
    ``process_name``/``process_sort_index`` metadata per track.
    """
    pids = _track_pids(tracer)
    records: List[Dict[str, Any]] = []
    for track, pid in pids.items():
        records.append(
            {
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": track},
            }
        )
        records.append(
            {
                "ph": "M", "name": "process_sort_index", "pid": pid, "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for span in tracer.spans:
        record: Dict[str, Any] = {
            "name": span.name,
            "cat": span.category,
            "ph": "X",
            "ts": _scale(span.start, span.category),
            "dur": _scale(span.duration, span.category),
            "pid": pids[span.track],
            "tid": 1,
        }
        if span.attrs:
            record["args"] = dict(span.attrs)
        records.append(record)
    for event in tracer.events:
        record = {
            "name": event.name,
            "cat": event.category,
            "ph": "i",
            "s": "t",
            "ts": _scale(event.ts, event.category),
            "pid": pids[event.track],
            "tid": 1,
        }
        if event.attrs:
            record["args"] = dict(event.attrs)
        records.append(record)
    return {
        "traceEvents": records,
        "displayTimeUnit": "ms",
        "otherData": {"producer": f"repro.obs ({run_name})"},
    }


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema-check a Chrome trace payload; returns the problems found.

    An empty list means the trace is loadable: a ``traceEvents`` list
    whose records all carry ``name``/``ph``, non-metadata records carry
    a numeric ``ts`` and integer ``pid``/``tid``, and complete
    (``ph:"X"``) records carry a non-negative ``dur``.
    """
    problems: List[str] = []
    if not isinstance(payload, dict) or not isinstance(
        payload.get("traceEvents"), list
    ):
        return ["payload is not a dict with a 'traceEvents' list"]
    for i, record in enumerate(payload["traceEvents"]):
        where = f"traceEvents[{i}]"
        if not isinstance(record, dict):
            problems.append(f"{where}: not an object")
            continue
        if not isinstance(record.get("name"), str) or not record.get("name"):
            problems.append(f"{where}: missing name")
        ph = record.get("ph")
        if not isinstance(ph, str) or not ph:
            problems.append(f"{where}: missing ph")
            continue
        if ph == "M":
            continue
        if not isinstance(record.get("ts"), (int, float)):
            problems.append(f"{where}: missing numeric ts")
        for key in ("pid", "tid"):
            if not isinstance(record.get(key), int):
                problems.append(f"{where}: missing integer {key}")
        if ph == "X":
            dur = record.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: ph 'X' needs non-negative dur")
    return problems


def write_chrome_trace(
    path: Union[str, Path], tracer: Tracer, run_name: str = "repro"
) -> Path:
    """Write :func:`chrome_trace` output to ``path`` (validated)."""
    payload = chrome_trace(tracer, run_name)
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid Chrome trace: " + "; ".join(problems)
        )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Metrics snapshots
# ----------------------------------------------------------------------
def metrics_snapshot(
    profile: Any = None,
    tracer: Optional[Tracer] = None,
    derived: Optional[MetricsRegistry] = None,
    canonical: bool = False,
    registry: Optional[MetricsRegistry] = None,
    source: str = "",
) -> Dict[str, Any]:
    """One JSON-ready snapshot of everything a run measured.

    Parameters
    ----------
    profile:
        A :class:`~repro.profiling.StageProfiler` (or ``None``) —
        contributes ``counters``, ``stage_calls`` and (non-canonical
        only) ``stage_seconds``.
    tracer:
        Contributes span and event *occurrence counts* (deterministic)
        — never timestamps.
    derived:
        A :class:`MetricsRegistry` of ``run.*`` instruments (see
        :func:`repro.obs.metrics.derive_run_metrics`).
    canonical:
        Drop every wall-clock-derived value so the
        :func:`canonical_json` rendering is byte-stable across runs
        and worker counts.
    registry:
        Vocabulary to validate emitted names against (default: the
        package vocabulary; its ``check`` flag picks raise-vs-warn).
    """
    reg = registry if registry is not None else default_registry()
    snapshot: Dict[str, Any] = {
        "schema": METRICS_SCHEMA,
        "canonical": bool(canonical),
    }
    if profile is not None:
        reg.validate(
            list(profile.counters) + list(profile.calls),
            source=source or "profile",
        )
        snapshot["counters"] = dict(sorted(profile.counters.items()))
        snapshot["stage_calls"] = dict(sorted(profile.calls.items()))
        if not canonical:
            snapshot["stage_seconds"] = dict(sorted(profile.timings.items()))
    if tracer is not None:
        snapshot["spans"] = tracer.span_counts()
        snapshot["events"] = tracer.event_counts()
        stage_names = {
            s.name for s in tracer.spans if s.category == "stage"
        }
        event_names = {e.name for e in tracer.events}
        reg.validate(stage_names | event_names, source=source or "tracer")
    if derived is not None:
        values = derived.snapshot()
        if canonical:
            excluded = derived.wall_clock_names()
            values = {k: v for k, v in values.items() if k not in excluded}
        snapshot["derived"] = values
    return snapshot


def write_metrics_snapshot(path: Union[str, Path], snapshot: Mapping[str, Any]) -> Path:
    """Write a snapshot as canonical JSON (byte-stable for ``cmp``)."""
    # deferred: repro.io imports repro.sim, which imports this package
    from ..io import canonical_json

    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(snapshot) + "\n")
    return path


# ----------------------------------------------------------------------
# Plain-text timeline
# ----------------------------------------------------------------------
def _span_depth(tracer: Tracer, index: int) -> int:
    depth = 0
    parent = tracer.spans[index].parent
    while parent >= 0:
        depth += 1
        parent = tracer.spans[parent].parent
    return depth


def render_timeline(tracer: Tracer, limit: int = 200) -> str:
    """Human-readable per-track listing of spans and events.

    Wall-clock timestamps print in milliseconds, simulated timestamps
    in schedule time units; each track section is time-ordered and the
    span tree indents by nesting depth.  ``limit`` bounds the lines per
    track (the executor can emit one span per task per instance).
    """
    by_track: Dict[str, List[str]] = {}
    entries: Dict[str, List[Any]] = {}
    for index, span in enumerate(tracer.spans):
        entries.setdefault(span.track, []).append((span.start, 0, index, span, None))
    for event in tracer.events:
        entries.setdefault(event.track, []).append((event.ts, 1, -1, None, event))
    for track in sorted(entries, key=lambda t: (t != WALL_TRACK, t)):
        lines: List[str] = []
        for start, _kind, index, span, event in sorted(
            entries[track], key=lambda item: (item[0], item[1], item[2])
        ):
            if len(lines) >= limit:
                lines.append(f"  … {len(entries[track]) - limit} more")
                break
            if span is not None:
                sim = span.category in SIM_CATEGORIES
                unit = "tu" if sim else "ms"
                scale = 1.0 if sim else 1e3
                indent = "  " * _span_depth(tracer, index)
                lines.append(
                    f"  [{start * scale:10.3f} {unit}] {indent}{span.name}"
                    f"  ({span.duration * scale:.3f} {unit})"
                )
            else:
                sim = event.category in SIM_CATEGORIES
                unit = "tu" if sim else "ms"
                scale = 1.0 if sim else 1e3
                detail = ""
                if event.attrs:
                    detail = "  " + ", ".join(
                        f"{k}={v}" for k, v in sorted(event.attrs.items())
                    )
                lines.append(
                    f"  [{start * scale:10.3f} {unit}] * {event.name}{detail}"
                )
        by_track[track] = lines
    out: List[str] = []
    for track, lines in by_track.items():
        out.append(f"track {track}:")
        out.extend(lines)
    return "\n".join(out) if out else "(empty trace)"
