"""Merged multi-shard fleet reports and cross-run diffs.

One sweep sharded over machines (or simply re-run over time) leaves a
trail of files: experiment artifacts, ``events.jsonl`` ledgers, Chrome
traces and canonical metrics snapshots.  ``repro report`` hands any
mix of them (files or whole shard directories) to :func:`merge_fleet`,
which folds them into **one** ``repro.fleet/1`` payload:

* cross-shard cell/cache accounting — totals are exact sums of the
  shards, which is what the CI smoke job asserts;
* per-worker utilisation (cells computed per fleet worker, heartbeat
  and stall counts) recovered from the ledgers' ``worker.*`` events;
* merged top stages and counters from artifact profiles, metrics
  snapshots and traces alike;
* the fault-recovery table concatenated across shards.

:func:`diff_payloads` is the two-run comparison behind
``repro report --diff A B``: cell/cache-hit-rate deltas plus every
counter and stage timing that moved, rendered by :func:`render_diff`.

Everything consumes *serialised* files, so a fleet report can be
assembled on a machine that ran none of the shards.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from .events import EVENTS_SCHEMA, EventError, read_ledger
from .report import (
    ReportError,
    _format_rows,
    _top_stages,
    detect_kind,
    summarise_artifact,
    summarise_trace,
)

#: Fleet-report schema identifier; rev on incompatible layout changes.
FLEET_SCHEMA = "repro.fleet/1"

#: File suffixes :func:`expand_inputs` collects from shard directories.
_SHARD_SUFFIXES = (".json", ".jsonl")


def expand_inputs(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Flatten files-or-directories into a sorted, de-duplicated file list.

    A directory contributes every ``*.json`` / ``*.jsonl`` directly
    inside it (sorted by name, so shard order is stable across
    machines); files pass through as given.
    """
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p
                for p in sorted(path.iterdir())
                if p.is_file() and p.suffix in _SHARD_SUFFIXES
            )
        else:
            out.append(path)
    seen: set = set()
    unique: List[Path] = []
    for path in out:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


def classify_file(path: Union[str, Path]) -> Tuple[str, Any]:
    """``(kind, payload)`` for one shard file.

    Kinds are the three ``repro report`` already understands plus
    ``"events"`` for a ``repro.events/1`` JSONL ledger (whose payload
    is the parsed record list).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        try:
            return "events", read_ledger(path)
        except EventError as exc:
            raise ReportError(
                f"{path}: neither a JSON report file nor a "
                f"{EVENTS_SCHEMA} ledger ({exc})"
            ) from exc
    if (
        isinstance(payload, dict)
        and payload.get("event") == "ledger.opened"
        and payload.get("schema") == EVENTS_SCHEMA
    ):
        # a one-record-per-line ledger whose first line parsed alone
        return "events", read_ledger(path)
    return detect_kind(payload), payload


def _add_into(totals: Dict[str, float], values: Mapping[str, Any]) -> None:
    for name, value in values.items():
        if isinstance(value, (int, float)):
            totals[name] = totals.get(name, 0) + value


def merge_fleet(paths: Sequence[Union[str, Path]]) -> Dict[str, Any]:
    """Fold shard files into one ``repro.fleet/1`` payload."""
    files = expand_inputs(paths)
    if not files:
        raise ReportError("no shard files to merge")
    shards: List[Dict[str, Any]] = []
    cells_total = 0
    cells_cached = 0
    cache_hits = 0
    cache_misses = 0
    backends: List[str] = []
    experiments: List[str] = []
    counters: Dict[str, float] = {}
    engine_counters: Dict[str, float] = {}
    stage_seconds: Dict[str, float] = {}
    stage_calls: Dict[str, float] = {}
    event_counts: Dict[str, float] = {}
    workers: Dict[str, int] = {"spawned": 0, "heartbeats": 0, "stalled": 0, "errors": 0}
    per_worker: List[Dict[str, Any]] = []
    recovery: List[Dict[str, Any]] = []
    for path in files:
        kind, payload = classify_file(path)
        shard: Dict[str, Any] = {"path": str(path), "kind": kind}
        if kind == "artifact":
            summary = summarise_artifact(payload)
            shard["experiment"] = summary["experiment"]
            shard["cells"] = summary["cells"]
            if summary["experiment"] not in experiments:
                experiments.append(summary["experiment"])
            cells_total += summary["cells"]
            cells_cached += summary["cached"]
            cache_hits += summary["cache"]["hits"]
            cache_misses += summary["cache"]["misses"]
            backend = summary["cache"]["backend"]
            if backend and backend not in backends:
                backends.append(backend)
            _add_into(counters, summary["counters"])
            _add_into(engine_counters, summary["engine"]["counters"])
            _add_into(stage_seconds, summary["stage_seconds"])
            _add_into(stage_calls, summary["stage_calls"])
            recovery.extend(summary.get("chaos_rows") or [])
        elif kind == "events":
            exited: Dict[int, int] = {}
            for record in payload:
                event = record.get("event", "?")
                event_counts[event] = event_counts.get(event, 0) + 1
                if event == "sweep.started":
                    name = str(record.get("experiment", "?"))
                    if name not in experiments:
                        experiments.append(name)
                elif event == "worker.spawned":
                    workers["spawned"] += 1
                elif event == "worker.heartbeat":
                    workers["heartbeats"] += 1
                elif event == "worker.stalled":
                    workers["stalled"] += 1
                elif event == "worker.error":
                    workers["errors"] += 1
                elif event == "worker.exited":
                    pid = int(record.get("pid", -1))
                    exited[pid] = max(exited.get(pid, 0), int(record.get("cells", 0)))
            shard["events"] = len(payload)
            per_worker.extend(
                {"shard": str(path), "pid": pid, "cells": cells}
                for pid, cells in sorted(exited.items())
            )
        elif kind == "trace":
            summary = summarise_trace(payload)
            shard["spans"] = sum(summary["tracks"].values())
            _add_into(
                stage_seconds,
                {k: v / 1e3 for k, v in summary["stage_ms"].items()},
            )
            _add_into(stage_calls, summary["stage_calls"])
        elif kind == "metrics":
            _add_into(counters, payload.get("counters") or {})
            _add_into(stage_seconds, payload.get("stage_seconds") or {})
            _add_into(stage_calls, payload.get("stage_calls") or {})
        shards.append(shard)
    computed = sum(
        cells
        for cells in (w["cells"] for w in per_worker)
        if cells >= 0
    )
    return {
        "schema": FLEET_SCHEMA,
        "shards": shards,
        "experiments": experiments,
        "cells": {
            "total": cells_total,
            "cached": cells_cached,
            "computed": cells_total - cells_cached,
        },
        "cache": {
            "hits": cache_hits,
            "misses": cache_misses,
            "hit_rate": (
                cache_hits / (cache_hits + cache_misses)
                if cache_hits + cache_misses
                else 0.0
            ),
            "backends": backends,
        },
        "counters": {k: counters[k] for k in sorted(counters)},
        "engine": {"counters": {k: engine_counters[k] for k in sorted(engine_counters)}},
        "stage_seconds": {k: round(stage_seconds[k], 9) for k in sorted(stage_seconds)},
        "stage_calls": {k: stage_calls[k] for k in sorted(stage_calls)},
        "events": {k: int(event_counts[k]) for k in sorted(event_counts)},
        "workers": {**workers, "cells_reported": computed, "per_worker": per_worker},
        "recovery": recovery,
    }


#: Keys every ``repro.fleet/1`` payload must carry.
_REQUIRED_FLEET_KEYS = (
    "schema",
    "shards",
    "experiments",
    "cells",
    "cache",
    "counters",
    "engine",
    "stage_seconds",
    "stage_calls",
    "events",
    "workers",
    "recovery",
)


def validate_fleet_report(payload: Any) -> List[str]:
    """Schema problems of a merged fleet payload (empty when valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["fleet report must be a JSON object"]
    if payload.get("schema") != FLEET_SCHEMA:
        problems.append(
            f"schema is {payload.get('schema')!r}, expected {FLEET_SCHEMA!r}"
        )
    for key in _REQUIRED_FLEET_KEYS:
        if key not in payload:
            problems.append(f"missing key {key!r}")
    cells = payload.get("cells")
    if isinstance(cells, dict):
        for key in ("total", "cached", "computed"):
            if key not in cells:
                problems.append(f"missing cells key {key!r}")
        if (
            all(k in cells for k in ("total", "cached", "computed"))
            and cells["cached"] + cells["computed"] != cells["total"]
        ):
            problems.append("cells.cached + cells.computed != cells.total")
    elif "cells" in payload:
        problems.append("'cells' must be an object")
    return problems


def render_fleet_report(payload: Mapping[str, Any]) -> str:
    """Text rendering of a merged fleet payload."""
    lines: List[str] = ["fleet report", "============", ""]
    lines.append(
        f"shards: {len(payload['shards'])}   "
        f"experiments: {', '.join(payload['experiments']) or '?'}"
    )
    cells = payload["cells"]
    cache = payload["cache"]
    lines.append(
        f"cells: {cells['total']}   cached: {cells['cached']}   "
        f"computed: {cells['computed']}   "
        f"hit rate: {100 * cache['hit_rate']:.0f}%"
    )
    if cache["backends"]:
        lines.append(f"backends: {', '.join(cache['backends'])}")
    lines.append("")
    lines.append("shards:")
    rows = [
        [
            shard["path"],
            shard["kind"],
            str(shard.get("experiment", shard.get("events", shard.get("spans", "")))),
        ]
        for shard in payload["shards"]
    ]
    lines.append(_format_rows(rows, ["path", "kind", "detail"]))
    workers = payload.get("workers") or {}
    if workers.get("spawned"):
        lines.append("")
        lines.append(
            f"workers: {workers['spawned']} spawned   "
            f"{workers['heartbeats']} heartbeats   "
            f"{workers['stalled']} stalled   {workers['errors']} errors"
        )
        reported = [w for w in workers.get("per_worker", []) if w["cells"] >= 0]
        if reported:
            total = sum(w["cells"] for w in reported) or 1
            lines.append(
                _format_rows(
                    [
                        [
                            str(w["pid"]),
                            Path(w["shard"]).name,
                            str(w["cells"]),
                            f"{100 * w['cells'] / total:.0f}%",
                        ]
                        for w in reported
                    ],
                    ["pid", "shard", "cells", "share"],
                )
            )
    if payload["stage_seconds"]:
        lines.append("")
        lines.append("top stages (summed across shards):")
        lines.append(_top_stages(payload["stage_seconds"], payload["stage_calls"]))
    if payload["counters"]:
        lines.append("")
        lines.append("counters (summed):")
        width = max(len(n) for n in payload["counters"])
        for name, value in payload["counters"].items():
            shown = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<{width}}  {shown}")
    if payload["events"]:
        lines.append("")
        lines.append("ledger events:")
        width = max(len(n) for n in payload["events"])
        for name, value in payload["events"].items():
            lines.append(f"  {name:<{width}}  {value}")
    if payload["recovery"]:
        lines.append("")
        lines.append("fault recovery (all shards):")
        lines.append(
            _format_rows(
                [
                    [
                        str(r.get("workload", "?")),
                        str(r.get("plan", "?")),
                        str(r.get("policy", "?")),
                        str(r.get("threatened", 0)),
                        str(r.get("recovered", 0)),
                        f"{100 * float(r.get('recovery_rate', 0.0)):.0f}%",
                    ]
                    for r in payload["recovery"]
                ],
                ["workload", "plan", "policy", "threat", "recov", "rate"],
            )
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Cross-run diff (``repro report --diff A B``)
# ----------------------------------------------------------------------
def _diff_numbers(
    a: Mapping[str, Any], b: Mapping[str, Any]
) -> Dict[str, Dict[str, float]]:
    """``{name: {a, b, delta}}`` for every numeric key that moved."""
    out: Dict[str, Dict[str, float]] = {}
    for name in sorted(set(a) | set(b)):
        va, vb = float(a.get(name, 0) or 0), float(b.get(name, 0) or 0)
        if va != vb:
            out[name] = {"a": va, "b": vb, "delta": vb - va}
    return out


def diff_payloads(
    kind_a: str, a: Mapping[str, Any], kind_b: str, b: Mapping[str, Any]
) -> Dict[str, Any]:
    """Structured comparison of two report files (same-kind pairs).

    Artifacts compare cell/cache accounting, counters (cell aggregate
    and engine alike) and stage timings; metrics snapshots compare
    their counters/timings directly.
    """
    if kind_a != kind_b:
        raise ReportError(
            f"--diff needs two files of the same kind, got {kind_a!r} and {kind_b!r}"
        )
    if kind_a == "artifact":
        sa, sb = summarise_artifact(a), summarise_artifact(b)
        return {
            "schema": "repro.fleet-diff/1",
            "kind": "artifact",
            "experiments": [sa["experiment"], sb["experiment"]],
            "cells": {"a": sa["cells"], "b": sb["cells"]},
            "cache_hit_rate": {
                "a": sa["cache"]["hit_rate"],
                "b": sb["cache"]["hit_rate"],
                "delta": sb["cache"]["hit_rate"] - sa["cache"]["hit_rate"],
            },
            "counters": _diff_numbers(sa["counters"], sb["counters"]),
            "engine_counters": _diff_numbers(
                sa["engine"]["counters"], sb["engine"]["counters"]
            ),
            "stage_seconds": _diff_numbers(sa["stage_seconds"], sb["stage_seconds"]),
        }
    if kind_a == "metrics":
        return {
            "schema": "repro.fleet-diff/1",
            "kind": "metrics",
            "counters": _diff_numbers(
                a.get("counters") or {}, b.get("counters") or {}
            ),
            "stage_seconds": _diff_numbers(
                a.get("stage_seconds") or {}, b.get("stage_seconds") or {}
            ),
        }
    raise ReportError(f"--diff does not support kind {kind_a!r}")


def render_diff(payload: Mapping[str, Any]) -> str:
    """Text rendering of a :func:`diff_payloads` result."""
    lines: List[str] = ["report diff (A → B)", "===================", ""]
    if payload.get("kind") == "artifact":
        exp = payload["experiments"]
        cells = payload["cells"]
        hit = payload["cache_hit_rate"]
        lines.append(f"experiments: {exp[0]} → {exp[1]}")
        lines.append(f"cells: {cells['a']} → {cells['b']}")
        lines.append(
            f"cache hit rate: {100 * hit['a']:.0f}% → {100 * hit['b']:.0f}% "
            f"({100 * hit['delta']:+.0f} pp)"
        )
    sections = [
        ("counters", "counters", "{:+.0f}"),
        ("engine_counters", "engine counters", "{:+.0f}"),
        ("stage_seconds", "stage seconds", "{:+.6f}"),
    ]
    for key, title, fmt in sections:
        moved = payload.get(key)
        if not moved:
            continue
        lines.append("")
        lines.append(f"{title}:")
        lines.append(
            _format_rows(
                [
                    [name, str(d["a"]), str(d["b"]), fmt.format(d["delta"])]
                    for name, d in moved.items()
                ],
                ["name", "a", "b", "delta"],
            )
        )
    if len(lines) == 3:
        lines.append("(no differences)")
    return "\n".join(lines)


__all__ = [
    "FLEET_SCHEMA",
    "classify_file",
    "diff_payloads",
    "expand_inputs",
    "merge_fleet",
    "render_diff",
    "render_fleet_report",
    "validate_fleet_report",
]
