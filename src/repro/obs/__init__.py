"""Unified observability layer: tracing, typed metrics, exporters.

Three modules, one contract:

* :mod:`repro.obs.trace` — :class:`Tracer` (nested spans + point
  events), :data:`NULL_TRACER`, and :class:`TracingProfiler`, the
  drop-in :class:`~repro.profiling.StageProfiler` that feeds a tracer
  while keeping the aggregate ``profile`` dicts bit-for-bit identical;
* :mod:`repro.obs.metrics` — the declared metric vocabulary
  (:data:`VOCABULARY`), :class:`MetricsRegistry` with typed
  counter/gauge/histogram instruments, and the drift-test helpers
  (:func:`vocabulary_table`, :func:`emitted_names`);
* :mod:`repro.obs.export` / :mod:`repro.obs.report` — Chrome
  trace-event JSON for Perfetto, byte-stable canonical metrics
  snapshots for CI ``cmp``, and the ``repro report`` renderers;
* :mod:`repro.obs.events` — the run-event ledger (``repro.events/1``):
  a declared, drift-tested event vocabulary, the thread-safe
  :class:`EventLedger` writer, canonicalisation for CI byte-compares,
  and the :class:`LiveProgress` TTY view;
* :mod:`repro.obs.fleet` — merged multi-shard fleet reports
  (``repro.fleet/1``) and the ``repro report --diff`` comparison.

See ``docs/observability.md`` for the span model and export formats.
"""

from .export import (
    METRICS_SCHEMA,
    chrome_trace,
    metrics_snapshot,
    render_timeline,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from .events import (
    EVENTS,
    EVENTS_SCHEMA,
    EventError,
    EventLedger,
    EventSpec,
    LiveProgress,
    as_ledger,
    canonical_event_names,
    canonical_ledger,
    canonical_records,
    event_names,
    events_table,
    read_ledger,
    render_event,
)
from .fleet import (
    FLEET_SCHEMA,
    classify_file,
    diff_payloads,
    expand_inputs,
    merge_fleet,
    render_diff,
    render_fleet_report,
    validate_fleet_report,
)
from .metrics import (
    VOCABULARY,
    MetricError,
    MetricKind,
    MetricSpec,
    MetricsRegistry,
    declared_names,
    default_registry,
    derive_run_metrics,
    emitted_names,
    vocabulary_table,
)
from .report import (
    ReportError,
    detect_kind,
    load_report_payload,
    render_report,
    summarise_artifact,
    summarise_trace,
)
from .trace import (
    EVENT_COUNTERS,
    NULL_TRACER,
    SIM_CATEGORIES,
    WALL_TRACK,
    Span,
    TraceEvent,
    Tracer,
    TracingProfiler,
    as_tracer,
)

__all__ = [
    "EVENTS",
    "EVENTS_SCHEMA",
    "EventError",
    "EventLedger",
    "EventSpec",
    "LiveProgress",
    "as_ledger",
    "canonical_event_names",
    "canonical_ledger",
    "canonical_records",
    "event_names",
    "events_table",
    "read_ledger",
    "render_event",
    "FLEET_SCHEMA",
    "classify_file",
    "diff_payloads",
    "expand_inputs",
    "merge_fleet",
    "render_diff",
    "render_fleet_report",
    "validate_fleet_report",
    "METRICS_SCHEMA",
    "chrome_trace",
    "metrics_snapshot",
    "render_timeline",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
    "VOCABULARY",
    "MetricError",
    "MetricKind",
    "MetricSpec",
    "MetricsRegistry",
    "declared_names",
    "default_registry",
    "derive_run_metrics",
    "emitted_names",
    "vocabulary_table",
    "ReportError",
    "detect_kind",
    "load_report_payload",
    "render_report",
    "summarise_artifact",
    "summarise_trace",
    "EVENT_COUNTERS",
    "NULL_TRACER",
    "SIM_CATEGORIES",
    "WALL_TRACK",
    "Span",
    "TraceEvent",
    "Tracer",
    "TracingProfiler",
    "as_tracer",
]
