"""Span/event tracing core of the observability layer.

A :class:`Tracer` records what the aggregate :class:`~repro.profiling.
StageProfiler` throws away: *when* things happened and how they nest.
Two record types cover the whole runtime:

* **spans** — named intervals with a category, a track (timeline), a
  parent (for nesting) and free-form attributes.  Scheduling stages
  record wall-clock spans through :class:`TracingProfiler`; the
  instance executor records *simulated-time* spans (one per executed
  task at its chosen DVFS speed, one per cross-PE transfer) so a run's
  Perfetto timeline shows the schedule the MPSoC actually followed;
* **events** — named points in time (branch drift detected, re-schedule
  installed, fault injected, watchdog escalation, cache hit/miss).

Call sites that receive no tracer use the shared :data:`NULL_TRACER`,
whose methods are no-ops and whose ``enabled`` flag lets hot loops skip
attribute preparation entirely — the same null-object pattern as
:data:`repro.profiling.NULL_PROFILER`.

Clocks and tracks
-----------------
Wall-clock spans/events are timestamped on a per-tracer monotonic
origin (:meth:`Tracer.now`); simulated-time records carry explicit
timestamps in schedule time units, shifted by :attr:`Tracer.sim_offset`
(the trace runners set it to ``instance_index × period`` so successive
CTG instances line up end to end).  The *track* string names the
timeline a record belongs to: ``"runtime"`` (wall clock, the default),
``"pe:<name>"`` (one per processing element), ``"link:<a>-<b>"``
(cross-PE transfers), ``"engine"`` (one span per experiment cell).
Exporters map tracks to Chrome trace-event pids (see
:mod:`repro.obs.export`).

Merging
-------
:meth:`Tracer.merge` folds another tracer's records into this one the
way :meth:`StageProfiler.merge` folds timings: concatenation with
parent-index remapping.  Merging is associative, and the canonical
metrics snapshot built from a merged tracer is order-insensitive
(property-tested), so the experiment engine can merge per-cell tracers
in declaration order and report identically at any ``--jobs`` value.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional

from ..profiling import StageProfiler

#: Default track for wall-clock records (scheduling stages, controller
#: events); simulated-time records name their own PE/link tracks.
WALL_TRACK = "runtime"

#: Categories whose timestamps are simulated schedule time, not wall
#: clock.  Exporters scale the two differently.
SIM_CATEGORIES = ("sim.task", "sim.link", "sim.event")


@dataclass(frozen=True)
class Span:
    """One closed interval on a track.

    ``parent`` is the index (into the owning tracer's ``spans`` list)
    of the enclosing span on the same track, or ``-1`` at top level —
    indices stay valid across :meth:`Tracer.merge` (they are remapped).
    """

    name: str
    category: str
    start: float
    end: float
    track: str = WALL_TRACK
    parent: int = -1
    attrs: Mapping[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Span length in its clock's units (never negative)."""
        return max(0.0, self.end - self.start)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "track": self.track,
            "parent": self.parent,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Span":
        """Rebuild a span from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            category=str(payload.get("category", "stage")),
            start=float(payload["start"]),
            end=float(payload["end"]),
            track=str(payload.get("track", WALL_TRACK)),
            parent=int(payload.get("parent", -1)),
            attrs=dict(payload.get("attrs") or {}),
        )


@dataclass(frozen=True)
class TraceEvent:
    """One named instant on a track."""

    name: str
    ts: float
    category: str = "event"
    track: str = WALL_TRACK
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "name": self.name,
            "ts": self.ts,
            "category": self.category,
            "track": self.track,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TraceEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            name=str(payload["name"]),
            ts=float(payload["ts"]),
            category=str(payload.get("category", "event")),
            track=str(payload.get("track", WALL_TRACK)),
            attrs=dict(payload.get("attrs") or {}),
        )


class Tracer:
    """Low-overhead recorder of spans and events.

    Attributes
    ----------
    spans / events:
        The records, in close/emit order.
    enabled:
        ``True`` for real tracers; hot loops use it to skip attribute
        preparation for records that would be dropped anyway.
    sim_offset:
        Added to every simulated-time record's timestamps (see module
        docstring); the trace runners advance it per CTG instance.
    """

    enabled: bool = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.events: List[TraceEvent] = []
        self.sim_offset: float = 0.0
        self._origin = time.perf_counter()
        # one open-span stack per track, so nesting is per-timeline
        self._stacks: Dict[str, List[int]] = {}

    # -- clocks ----------------------------------------------------------
    def now(self) -> float:
        """Seconds since this tracer was created (monotonic)."""
        return time.perf_counter() - self._origin

    # -- recording -------------------------------------------------------
    @contextmanager
    def span(
        self, name: str, category: str = "stage", track: str = WALL_TRACK, **attrs: Any
    ) -> Iterator[None]:
        """Record a wall-clock span around a ``with`` block.

        Nesting follows the dynamic ``with`` structure per track.  The
        span's index is reserved when the block *opens* (parents appear
        before their children in ``spans``); a mid-flight snapshot sees
        an open span as zero-length at its start time.
        """
        start = self.now()
        stack = self._stacks.setdefault(track, [])
        parent = stack[-1] if stack else -1
        index = len(self.spans)
        frozen = dict(attrs)
        self.spans.append(Span(name, category, start, start, track, parent, frozen))
        stack.append(index)
        try:
            yield
        finally:
            stack.pop()
            self.spans[index] = Span(
                name, category, start, self.now(), track, parent, frozen
            )

    def add_span(
        self,
        name: str,
        start: float,
        end: float,
        category: str = "sim.task",
        track: str = WALL_TRACK,
        parent: int = -1,
        **attrs: Any,
    ) -> None:
        """Record a span with explicit timestamps (simulated time).

        Timestamps of :data:`SIM_CATEGORIES` records are shifted by
        :attr:`sim_offset`; other categories are taken verbatim.
        """
        if category in SIM_CATEGORIES:
            start += self.sim_offset
            end += self.sim_offset
        self.spans.append(Span(name, category, start, end, track, parent, dict(attrs)))

    def event(
        self,
        name: str,
        ts: Optional[float] = None,
        category: str = "event",
        track: str = WALL_TRACK,
        **attrs: Any,
    ) -> None:
        """Record a point event (wall clock unless ``ts`` is given).

        An explicit ``ts`` with a :data:`SIM_CATEGORIES` category is
        shifted by :attr:`sim_offset` like :meth:`add_span` timestamps.
        """
        if ts is None:
            ts = self.now()
        elif category in SIM_CATEGORIES:
            ts += self.sim_offset
        self.events.append(TraceEvent(name, ts, category, track, dict(attrs)))

    # -- composition -----------------------------------------------------
    def merge(self, other: "Tracer") -> "Tracer":
        """Fold another tracer's records into this one (returns self).

        Parent indices of the merged spans are offset so nesting is
        preserved; timestamps are taken verbatim (each tracer keeps its
        own origin — exporters and snapshots never compare timestamps
        across tracks from different sources).
        """
        offset = len(self.spans)
        for span in other.spans:
            parent = span.parent + offset if span.parent >= 0 else -1
            self.spans.append(
                Span(
                    span.name, span.category, span.start, span.end,
                    span.track, parent, span.attrs,
                )
            )
        self.events.extend(other.events)
        return self

    # -- views -----------------------------------------------------------
    def span_counts(self) -> Dict[str, int]:
        """Span occurrence counts keyed by ``category:name`` (sorted)."""
        counts: Dict[str, int] = {}
        for span in self.spans:
            key = f"{span.category}:{span.name}"
            counts[key] = counts.get(key, 0) + 1
        return dict(sorted(counts.items()))

    def event_counts(self) -> Dict[str, int]:
        """Event occurrence counts keyed by name (sorted)."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.name] = counts.get(event.name, 0) + 1
        return dict(sorted(counts.items()))

    def durations(self, name: str, category: str = "stage") -> List[float]:
        """Per-span durations of every span with this name/category."""
        return [
            s.duration for s in self.spans
            if s.name == name and s.category == category
        ]

    def stage_profile(self) -> StageProfiler:
        """A :class:`StageProfiler` view over the recorded stage spans.

        Every ``category="stage"`` span contributes its duration to the
        stage's timing and one call — the relationship the tentpole
        inverts: the profiler's aggregate *is* a projection of the
        trace.  (Counters are not recoverable from spans; live runs use
        :class:`TracingProfiler`, which keeps both representations.)
        """
        profiler = StageProfiler()
        for span in self.spans:
            if span.category != "stage":
                continue
            profiler.timings[span.name] = (
                profiler.timings.get(span.name, 0.0) + span.duration
            )
            profiler.calls[span.name] = profiler.calls.get(span.name, 0) + 1
        return profiler

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (records only, no clock origin)."""
        return {
            "spans": [s.to_dict() for s in self.spans],
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, payload: Optional[Mapping[str, Any]]) -> "Tracer":
        """Rebuild a tracer from :meth:`to_dict` output (``None`` → empty)."""
        tracer = cls()
        payload = payload or {}
        tracer.spans = [Span.from_dict(s) for s in payload.get("spans", ())]
        tracer.events = [TraceEvent.from_dict(e) for e in payload.get("events", ())]
        return tracer


class _NullTracer(Tracer):
    """Shared no-op sink for call sites given no tracer.

    ``enabled`` is ``False`` so hot loops can skip even argument
    construction; the record lists stay empty forever.
    """

    enabled = False

    @contextmanager
    def span(self, name, category="stage", track=WALL_TRACK, **attrs):  # noqa: ARG002
        yield

    def add_span(self, name, start, end, category="sim.task", track=WALL_TRACK, parent=-1, **attrs):  # noqa: ARG002
        pass

    def event(self, name, ts=None, category="event", track=WALL_TRACK, **attrs):  # noqa: ARG002
        pass

    def merge(self, other):  # noqa: ARG002
        return self


#: Shared do-nothing tracer; see :func:`as_tracer`.
NULL_TRACER = _NullTracer()


def as_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Normalise an optional tracer to a safe-to-call instance."""
    return NULL_TRACER if tracer is None else tracer


#: Counters whose bumps double as point events on the trace timeline
#: (the ISSUE's "cache hit/miss" events); everything else stays a pure
#: aggregate — re-schedule and fault events are emitted explicitly by
#: the controller and runners with richer attributes.
EVENT_COUNTERS = frozenset(
    {"path_cache.hit", "path_cache.miss", "prob_cache.hit", "prob_cache.miss"}
)


class TracingProfiler(StageProfiler):
    """A :class:`StageProfiler` that simultaneously feeds a tracer.

    The aggregate dicts (``timings``/``calls``/``counters``) accumulate
    exactly as in the plain profiler — ``OnlineResult.profile`` and
    ``RunResult.profile`` are bit-for-bit what un-traced runs produce —
    while every stage block additionally records a wall-clock span and
    the :data:`EVENT_COUNTERS` bumps record point events.  Passing one
    of these wherever a ``StageProfiler`` is accepted is the entire
    wiring contract of the observability layer.
    """

    def __init__(self, tracer: Optional[Tracer] = None) -> None:
        super().__init__()
        self.tracer = as_tracer(tracer)

    @contextmanager
    def stage(self, name: str) -> Iterator[None]:
        """Time a block into the aggregate *and* record a span."""
        with self.tracer.span(name, category="stage"):
            start = time.perf_counter()
            try:
                yield
            finally:
                elapsed = time.perf_counter() - start
                self.timings[name] = self.timings.get(name, 0.0) + elapsed
                self.calls[name] = self.calls.get(name, 0) + 1

    def count(self, name: str, amount: int = 1) -> None:
        """Bump the aggregate counter; cache counters also emit events."""
        super().count(name, amount)
        if name in EVENT_COUNTERS:
            self.tracer.event(name, category="counter", amount=amount)

    def event(self, name: str, **attrs: Any) -> None:
        """Forward a point event to the tracer (see ``StageProfiler.event``)."""
        self.tracer.event(name, **attrs)
