"""The run-event ledger: a typed, drift-tested fleet telemetry stream.

The experiment fabric (PR 9) made million-cell sweeps resumable and
dispatchable to subprocess fleets, but the only record of a sweep was
its final artifact.  This module gives every run an **append-only
event ledger** — one JSON object per line in an ``events.jsonl`` file
next to the artifact — that the engine, the worker pools and the CLI
all write through one declared vocabulary:

* :data:`EVENTS` — one :class:`EventSpec` per event the fabric emits
  (sweep lifecycle, per-cell stream progress, worker heartbeats and
  stalls, fault-recovery escalations), schema :data:`EVENTS_SCHEMA`;
* :class:`EventLedger` — the thread-safe writer: validates names and
  fields against the declaration, write-through to the JSONL file,
  fan-out to in-process subscribers (the ``--live`` progress view);
* :func:`read_ledger` / :func:`canonical_records` /
  :func:`canonical_ledger` — the reader and the canonicalisation that
  CI ``cmp``\\ s: wall-clock and completion-order data are confined to
  the per-record ``meta`` object and to events *declared*
  non-canonical, so the canonicalised ledger is byte-identical across
  ``--jobs`` values, cache backends and interrupted-then-resumed runs
  (the same discipline as the artifact ``timing`` split, PR 6);
* :func:`events_table` — the rendered vocabulary table embedded in
  ``docs/observability.md`` and drift-tested like the metric table;
* :class:`LiveProgress` — a subscriber rendering a single-line TTY
  progress view (cells done/total, warm-hit rate, throughput, ETA,
  active workers) from the same stream.

Canonical events carry only deterministic fields (cell keys,
fingerprints, fault counters replayed from cached profiles);
everything scheduling-dependent — submission order, cache temperature,
worker pids, heartbeats — is either a non-canonical event or lives in
``meta`` and is stripped by canonicalisation.
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from threading import Lock
from typing import (
    Any,
    Callable,
    Dict,
    IO,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Ledger schema identifier; rev on incompatible record-layout changes.
EVENTS_SCHEMA = "repro.events/1"


class EventError(ValueError):
    """An undeclared event name or a record violating its declaration."""


@dataclass(frozen=True)
class EventSpec:
    """Declaration of one ledger event.

    ``fields`` are the *canonical* fields: required on every emission,
    deterministic across ``--jobs``/backends/resume, and the only
    payload that survives canonicalisation.  Any extra keyword passed
    to :meth:`EventLedger.emit` lands in the record's non-canonical
    ``meta`` object instead.
    """

    name: str
    canonical: bool
    fields: Tuple[str, ...]
    description: str


def _ev(name: str, canonical: bool, fields: Tuple[str, ...], description: str) -> EventSpec:
    return EventSpec(name=name, canonical=canonical, fields=fields, description=description)


#: The declared event vocabulary — every name an :class:`EventLedger`
#: accepts, in emission-pipeline order (the rendering order of
#: :func:`events_table`).
EVENTS: Tuple[EventSpec, ...] = (
    _ev("ledger.opened", True, ("schema",), "ledger header: the schema of this event stream"),
    _ev("sweep.started", True, ("experiment", "cells"), "one engine run began (cell count declared up front)"),
    _ev("cell.submitted", False, ("key",), "cell dispatched to the worker pool (submission order)"),
    _ev("cell.cached", False, ("key",), "cell served from a warm cache entry"),
    _ev("cell.resumed", False, ("key",), "warm cell skipped under ``--resume``"),
    _ev("cell.flushed", False, ("key",), "computed cell streamed out of the reorder buffer"),
    _ev("cell.completed", True, ("key", "fingerprint"), "cell final in declaration order, however it was produced"),
    _ev("cell.recovery", True, ("key", "injected", "threatened", "escalations"), "fault/recovery escalation counts replayed from a cell's profile"),
    _ev("sweep.finished", True, ("experiment", "cells"), "the engine run reduced and returned"),
    _ev("worker.spawned", False, ("pid",), "fleet worker subprocess started"),
    _ev("worker.heartbeat", False, ("pid",), "heartbeat frame received from a fleet worker"),
    _ev("worker.exited", False, ("pid", "cells"), "fleet worker shut down cleanly (final telemetry merged)"),
    _ev("worker.stalled", False, ("pid", "silent_seconds"), "fleet worker missed its heartbeat budget and was killed"),
    _ev("worker.error", False, ("pid", "message"), "fleet worker frame/pipe failure surfaced to the parent"),
)

#: Name → spec lookup for validation and canonicalisation.
EVENT_SPECS: Dict[str, EventSpec] = {spec.name: spec for spec in EVENTS}


def event_names() -> Tuple[str, ...]:
    """Every declared event name, in declaration order."""
    return tuple(spec.name for spec in EVENTS)


def canonical_event_names() -> Tuple[str, ...]:
    """The subset of names that survive canonicalisation."""
    return tuple(spec.name for spec in EVENTS if spec.canonical)


def events_table() -> str:
    """The event vocabulary table, generated from :data:`EVENTS`.

    ``docs/observability.md`` embeds exactly this text; the drift test
    re-renders it and fails on any divergence — edit the declaration,
    re-render, never the table text.
    """
    rows = [
        (f"``{spec.name}``", "yes" if spec.canonical else "no", spec.description)
        for spec in EVENTS
    ]
    widths = [max(len(r[i]) for r in rows + [("", "canonical", "")]) for i in range(2)]
    bar = f"{'=' * widths[0]}  {'=' * widths[1]}  {'=' * 56}"
    lines = [bar, f"{'event':<{widths[0]}}  {'canonical':<{widths[1]}}  description", bar]
    for name, canonical, description in rows:
        lines.append(f"{name:<{widths[0]}}  {canonical:<{widths[1]}}  {description}")
    lines.append(bar)
    return "\n".join(lines)


class EventLedger:
    """Thread-safe, validated, write-through run-event stream.

    Parameters
    ----------
    path:
        JSONL file to append records to (created/truncated — one run
        owns one ledger, so a resumed run rewrites the partial ledger
        of the interrupted one and canonicalises identically to an
        uninterrupted sweep).  ``None`` keeps the ledger in memory
        only.
    keep:
        Retain records on :attr:`records` — defaults to ``True`` for
        in-memory ledgers and ``False`` for file-backed ones (a
        million-cell sweep must not buffer its own history).

    Every emission validates the event name and its canonical fields
    against :data:`EVENTS`; extra keywords land in the record's
    ``meta`` object next to the wall-clock offset, which is the *only*
    place wall-clock ever appears.
    """

    def __init__(
        self,
        path: Union[None, str, Path] = None,
        keep: Optional[bool] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.keep = keep if keep is not None else self.path is None
        self.records: List[Dict[str, Any]] = []
        self.counts: Dict[str, int] = {}
        self._subscribers: List[Callable[[Dict[str, Any]], None]] = []
        self._lock = Lock()
        self._seq = 0
        self._file: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._file = self.path.open("w", encoding="utf-8")
        self._opened = time.time()
        self.emit("ledger.opened", schema=EVENTS_SCHEMA)

    # -- emission --------------------------------------------------------
    def emit(self, name: str, **fields: Any) -> Dict[str, Any]:
        """Append one validated record; returns it."""
        spec = EVENT_SPECS.get(name)
        if spec is None:
            known = ", ".join(event_names())
            raise EventError(f"undeclared event {name!r} (known: {known})")
        missing = [f for f in spec.fields if f not in fields]
        if missing:
            raise EventError(
                f"event {name!r} missing required field(s): {', '.join(missing)}"
            )
        canonical = {f: fields[f] for f in spec.fields}
        meta = {k: v for k, v in fields.items() if k not in spec.fields}
        with self._lock:
            record: Dict[str, Any] = {
                "event": name,
                "seq": self._seq,
                **canonical,
                "meta": {"wall": round(time.time() - self._opened, 6), **meta},
            }
            self._seq += 1
            self.counts[name] = self.counts.get(name, 0) + 1
            if self._file is not None:
                self._file.write(json.dumps(record, sort_keys=True) + "\n")
                self._file.flush()
            if self.keep:
                self.records.append(record)
            subscribers = list(self._subscribers)
        for subscriber in subscribers:
            subscriber(record)
        return record

    def subscribe(self, callback: Callable[[Dict[str, Any]], None]) -> None:
        """Register a per-record callback (e.g. :class:`LiveProgress`)."""
        with self._lock:
            self._subscribers.append(callback)

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:
        """Flush and close the backing file (idempotent)."""
        with self._lock:
            if self._file is not None:
                self._file.close()
                self._file = None

    def __enter__(self) -> "EventLedger":
        return self

    def __exit__(self, *_exc: Any) -> None:
        self.close()


def as_ledger(
    events: Union[None, str, Path, EventLedger],
) -> Tuple[Optional[EventLedger], bool]:
    """Normalise an ``events=`` argument to ``(ledger, owned)``.

    A path creates (and the caller must close) a fresh file-backed
    ledger; an existing ledger passes through un-owned; ``None`` stays
    ``None``.
    """
    if events is None:
        return None, False
    if isinstance(events, EventLedger):
        return events, False
    return EventLedger(path=events), True


# ----------------------------------------------------------------------
# Reading and canonicalisation
# ----------------------------------------------------------------------
def read_ledger(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Parse an ``events.jsonl`` file, validating the schema header."""
    records: List[Dict[str, Any]] = []
    for lineno, line in enumerate(Path(path).read_text(encoding="utf-8").splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise EventError(f"{path}:{lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "event" not in record:
            raise EventError(f"{path}:{lineno}: not an event record")
        records.append(record)
    if not records:
        raise EventError(f"{path}: empty ledger")
    head = records[0]
    if head["event"] != "ledger.opened" or head.get("schema") != EVENTS_SCHEMA:
        raise EventError(
            f"{path}: expected a {EVENTS_SCHEMA!r} ledger header, "
            f"got {head.get('event')!r} (schema {head.get('schema')!r})"
        )
    return records


def looks_like_ledger(payload: Any) -> bool:
    """``True`` for a parsed record list with the ledger header."""
    return (
        isinstance(payload, list)
        and bool(payload)
        and isinstance(payload[0], dict)
        and payload[0].get("event") == "ledger.opened"
        and payload[0].get("schema") == EVENTS_SCHEMA
    )


def canonical_records(records: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """The deterministic view of a ledger.

    Keeps only events declared canonical, strips every ``meta`` object,
    restricts each record to its declared fields and renumbers ``seq``
    — the result depends only on the spec and the cells' deterministic
    outputs, never on jobs, backend, completion order or wall-clock.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        spec = EVENT_SPECS.get(record.get("event", ""))
        if spec is None or not spec.canonical:
            continue
        out.append(
            {
                "event": spec.name,
                "seq": len(out),
                **{f: record.get(f) for f in spec.fields},
            }
        )
    return out


def canonical_ledger(records: Sequence[Dict[str, Any]]) -> str:
    """Canonical JSONL text of a ledger — the bytes CI ``cmp``\\ s."""
    # imported here, not at module level: repro.io transitively imports
    # repro.obs (sim.executor uses the tracer), so a top-level import
    # would be circular
    from ..io import canonical_json

    lines = [canonical_json(record) for record in canonical_records(records)]
    return "\n".join(lines) + "\n"


def render_event(record: Dict[str, Any]) -> str:
    """One human-readable ``repro tail`` line for a record."""
    meta = record.get("meta") or {}
    wall = meta.get("wall")
    prefix = f"+{wall:9.3f}s" if isinstance(wall, (int, float)) else " " * 10
    spec = EVENT_SPECS.get(record.get("event", ""))
    fields = spec.fields if spec is not None else ()
    parts = [f"{k}={record[k]}" for k in fields if k in record]
    parts += [f"{k}={v}" for k, v in sorted(meta.items()) if k != "wall"]
    return f"{prefix}  {record.get('event', '?'):<16} {' '.join(parts)}".rstrip()


# ----------------------------------------------------------------------
# Live progress
# ----------------------------------------------------------------------
class LiveProgress:
    """Single-line TTY progress view over a ledger subscription.

    Counts warm cells (``cell.cached``/``cell.resumed``) and streamed
    completions (``cell.flushed``) against the total declared by
    ``sweep.started``, tracks active fleet workers, and re-renders at
    most every ``interval`` seconds (plus on every sweep boundary).
    """

    def __init__(self, stream: Optional[IO[str]] = None, interval: float = 0.1) -> None:
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.total = 0
        self.done = 0
        self.warm = 0
        self.workers = 0
        self.stalled = 0
        self.experiment = ""
        self._started = time.monotonic()
        self._last_render = 0.0
        self._dirty = False

    def __call__(self, record: Dict[str, Any]) -> None:
        event = record.get("event")
        if event == "sweep.started":
            self.experiment = str(record.get("experiment", ""))
            self.total += int(record.get("cells", 0))
            self._started = time.monotonic()
        elif event in ("cell.cached", "cell.resumed"):
            self.done += 1
            self.warm += 1
        elif event == "cell.flushed":
            self.done += 1
        elif event == "worker.spawned":
            self.workers += 1
        elif event == "worker.exited":
            self.workers = max(0, self.workers - 1)
        elif event == "worker.stalled":
            self.stalled += 1
            self.workers = max(0, self.workers - 1)
        elif event == "sweep.finished":
            self.render(force=True)
            self.stream.write("\n")
            self.stream.flush()
            return
        else:
            return
        self._dirty = True
        self.render()

    def line(self) -> str:
        """The rendered progress line (no carriage return)."""
        elapsed = max(time.monotonic() - self._started, 1e-9)
        rate = self.done / elapsed
        remaining = max(self.total - self.done, 0)
        eta = f"{remaining / rate:5.1f}s" if rate > 0 and self.total else "    ?"
        pct = 100.0 * self.done / self.total if self.total else 0.0
        warm_pct = 100.0 * self.warm / self.done if self.done else 0.0
        stalled = f"  stalled {self.stalled}" if self.stalled else ""
        return (
            f"[{self.experiment or 'sweep'}] {self.done}/{self.total} cells "
            f"({pct:3.0f}%)  {warm_pct:3.0f}% warm  {rate:6.1f} cells/s  "
            f"eta {eta}  workers {self.workers}{stalled}"
        )

    def render(self, force: bool = False) -> None:
        """Redraw the line, rate-limited to :attr:`interval`."""
        now = time.monotonic()
        if not force and now - self._last_render < self.interval:
            return
        if not self._dirty and not force:
            return
        self._last_render = now
        self._dirty = False
        self.stream.write("\r" + self.line() + "\x1b[K")
        self.stream.flush()


__all__ = [
    "EVENTS",
    "EVENTS_SCHEMA",
    "EVENT_SPECS",
    "EventError",
    "EventLedger",
    "EventSpec",
    "LiveProgress",
    "as_ledger",
    "canonical_event_names",
    "canonical_ledger",
    "canonical_records",
    "event_names",
    "events_table",
    "looks_like_ledger",
    "read_ledger",
    "render_event",
]
