"""Static checks on platform specifications.

The :class:`~repro.platform.mpsoc.Platform` constructor already rejects
locally inconsistent entries (non-positive WCETs, duplicate links); what
it cannot see is the *pairing* with an application graph — whether every
task can run somewhere and every data transfer the mapper might choose
has a link to run on.  These checks verify exactly that pairing.
"""

from __future__ import annotations

from typing import List

from ..ctg.graph import ConditionalTaskGraph
from ..platform.frequency import DiscreteDvfs
from ..platform.mpsoc import Platform
from .diagnostics import Diagnostic
from .tolerances import EXACT_EPS


def check_platform(platform: Platform, ctg: ConditionalTaskGraph) -> List[Diagnostic]:
    """Platform findings for one application graph.

    * ``PLAT001`` — a task of the graph has no WCET/energy profile on
      any PE, so no mapping can exist.
    * ``PLAT002`` — a data-carrying edge admits a cross-PE mapping
      (both endpoints supported on distinct PEs) with no link between
      the two PEs.  The DLS treats a missing link as "cannot transfer",
      so this is an error only when the *actual* mapping uses the pair
      (reported by the schedule checks); at the platform level it flags
      the unlinked pairs that a mapper could need.
    * ``PLAT005``/``PLAT006``/``PLAT007`` — defective discrete
      frequency tables (the ``frequency=`` construction path is
      deliberately lenient; these diagnostics are where defects
      surface): an empty table, levels not strictly ascending
      (unsorted or duplicated), and a level outside the PE's
      ``[min_speed, 1.0]`` envelope.
    """
    findings: List[Diagnostic] = []
    findings.extend(check_frequency_tables(platform))
    for task in ctg.tasks():
        if not any(platform.supports(task, pe) for pe in platform.pe_names):
            findings.append(
                Diagnostic(
                    "PLAT001",
                    f"task {task!r} has no WCET/energy profile on any PE",
                    subject=task,
                )
            )
    reported = set()
    for src, dst, data in ctg.edges(include_pseudo=False):
        if data.comm_kbytes <= 0:
            continue
        for pe_a in platform.pe_names:
            if not platform.supports(src, pe_a):
                continue
            for pe_b in platform.pe_names:
                if pe_a == pe_b or not platform.supports(dst, pe_b):
                    continue
                pair = frozenset((pe_a, pe_b))
                if pair in reported or platform.has_link(pe_a, pe_b):
                    continue
                reported.add(pair)
                findings.append(
                    Diagnostic(
                        "PLAT002",
                        f"no link {pe_a!r}↔{pe_b!r}, but edge {src}→{dst} "
                        f"({data.comm_kbytes} KB) could map across the pair",
                        subject=f"{pe_a}↔{pe_b}",
                    )
                )
    return findings


def check_frequency_tables(platform: Platform) -> List[Diagnostic]:
    """Discrete-frequency-table findings, one group per defective PE.

    ``DiscreteDvfs`` is constructed leniently (see its module
    docstring), so defective tables surface *here*, not as constructor
    exceptions:

    * ``PLAT005`` — the table declares no levels at all;
    * ``PLAT006`` — levels are unsorted or duplicated (only the first
      offending adjacent pair is reported, matching
      :meth:`~repro.platform.frequency.DiscreteDvfs.validate`);
    * ``PLAT007`` — a level lies outside ``[min_speed, 1.0]``.
    """
    findings: List[Diagnostic] = []
    for name in platform.pe_names:
        pe = platform.pe(name)
        model = pe.frequency_model
        if not isinstance(model, DiscreteDvfs):
            continue
        if not model.levels:
            findings.append(
                Diagnostic(
                    "PLAT005",
                    f"PE {name!r} declares a discrete frequency table "
                    f"with no levels",
                    subject=name,
                )
            )
            continue
        for previous, current in zip(model.levels, model.levels[1:]):
            if current <= previous:
                findings.append(
                    Diagnostic(
                        "PLAT006",
                        f"frequency table of PE {name!r} is not strictly "
                        f"ascending at {previous!r} -> {current!r}",
                        subject=name,
                    )
                )
                break
        for level in model.levels:
            if not pe.min_speed - EXACT_EPS <= level <= 1.0 + EXACT_EPS:
                findings.append(
                    Diagnostic(
                        "PLAT007",
                        f"frequency level {level!r} of PE {name!r} outside "
                        f"[{pe.min_speed}, 1.0]",
                        subject=name,
                    )
                )
    return findings
