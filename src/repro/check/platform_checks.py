"""Static checks on platform specifications.

The :class:`~repro.platform.mpsoc.Platform` constructor already rejects
locally inconsistent entries (non-positive WCETs, duplicate links); what
it cannot see is the *pairing* with an application graph — whether every
task can run somewhere and every data transfer the mapper might choose
has a link to run on.  These checks verify exactly that pairing.
"""

from __future__ import annotations

from typing import List

from ..ctg.graph import ConditionalTaskGraph
from ..platform.mpsoc import Platform
from .diagnostics import Diagnostic


def check_platform(platform: Platform, ctg: ConditionalTaskGraph) -> List[Diagnostic]:
    """Platform findings for one application graph.

    * ``PLAT001`` — a task of the graph has no WCET/energy profile on
      any PE, so no mapping can exist.
    * ``PLAT002`` — a data-carrying edge admits a cross-PE mapping
      (both endpoints supported on distinct PEs) with no link between
      the two PEs.  The DLS treats a missing link as "cannot transfer",
      so this is an error only when the *actual* mapping uses the pair
      (reported by the schedule checks); at the platform level it flags
      the unlinked pairs that a mapper could need.
    """
    findings: List[Diagnostic] = []
    for task in ctg.tasks():
        if not any(platform.supports(task, pe) for pe in platform.pe_names):
            findings.append(
                Diagnostic(
                    "PLAT001",
                    f"task {task!r} has no WCET/energy profile on any PE",
                    subject=task,
                )
            )
    reported = set()
    for src, dst, data in ctg.edges(include_pseudo=False):
        if data.comm_kbytes <= 0:
            continue
        for pe_a in platform.pe_names:
            if not platform.supports(src, pe_a):
                continue
            for pe_b in platform.pe_names:
                if pe_a == pe_b or not platform.supports(dst, pe_b):
                    continue
                pair = frozenset((pe_a, pe_b))
                if pair in reported or platform.has_link(pe_a, pe_b):
                    continue
                reported.add(pair)
                findings.append(
                    Diagnostic(
                        "PLAT002",
                        f"no link {pe_a!r}↔{pe_b!r}, but edge {src}→{dst} "
                        f"({data.comm_kbytes} KB) could map across the pair",
                        subject=f"{pe_a}↔{pe_b}",
                    )
                )
    return findings
