"""Static checks on conditional task graphs.

Mirrors (and extends) :meth:`ConditionalTaskGraph.validate`, but
*collects* findings instead of raising on the first one, so a report can
show every problem of a malformed graph at once.  Beyond the structural
invariants it verifies what the scheduler will later rely on:

* condition satisfiability — every task's activation condition Γ(τ) has
  at least one consistent term, and scenario enumeration terminates
  with a non-empty minterm set;
* probability-table sanity — each declared default distribution covers
  only declared outcome labels, stays in ``[0, 1]`` per label and sums
  to 1 within :data:`~repro.check.tolerances.PROB_EPS`.
"""

from __future__ import annotations

from typing import List, Mapping, Optional

import networkx as nx

from ..ctg.graph import CTGError, ConditionalTaskGraph
from ..ctg.minterms import enumerate_scenarios, gamma
from .diagnostics import Diagnostic
from .tolerances import PROB_EPS


def check_ctg(
    ctg: ConditionalTaskGraph,
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None,
    require_deadline: bool = True,
) -> List[Diagnostic]:
    """All graph-level findings for ``ctg``.

    ``probabilities`` defaults to the graph's profiled distributions;
    pass the distribution a schedule was actually built with to check
    that one instead.  ``require_deadline=False`` silences the
    missing-deadline warning (``CTG006``) for callers that derive the
    deadline later.
    """
    findings: List[Diagnostic] = []
    findings.extend(_check_structure(ctg, require_deadline))
    # Satisfiability work is meaningless on a cyclic graph — topological
    # order does not exist — so stop at the structural findings.
    if any(d.code == "CTG001" for d in findings):
        return findings
    findings.extend(_check_satisfiability(ctg))
    table = ctg.default_probabilities if probabilities is None else probabilities
    findings.extend(check_probability_table(ctg, table))
    return findings


def _check_structure(
    ctg: ConditionalTaskGraph, require_deadline: bool
) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    if not nx.is_directed_acyclic_graph(ctg.graph):
        cycle = nx.find_cycle(ctg.graph)
        chain = " → ".join([edge[0] for edge in cycle] + [cycle[0][0]])
        findings.append(
            Diagnostic("CTG001", f"graph contains the cycle {chain}", subject=chain)
        )
    for src, dst, data in ctg.edges(include_pseudo=False):
        edge = f"{src}→{dst}"
        if data.condition is not None and data.condition.branch != src:
            findings.append(
                Diagnostic(
                    "CTG002",
                    f"edge {edge} is guarded by an outcome of "
                    f"{data.condition.branch!r}, not of its source",
                    subject=edge,
                )
            )
        if data.comm_kbytes < 0:
            findings.append(
                Diagnostic(
                    "CTG003",
                    f"edge {edge} carries negative volume {data.comm_kbytes}",
                    subject=edge,
                )
            )
    for branch in ctg.branch_nodes():
        try:
            outcomes = ctg.outcomes_of(branch)
        except CTGError:
            outcomes = []
        if len(outcomes) < 2:
            findings.append(
                Diagnostic(
                    "CTG004",
                    f"branch fork {branch!r} declares "
                    f"{len(outcomes)} outcome(s); needs at least 2",
                    subject=branch,
                )
            )
    if ctg.deadline < 0:
        findings.append(
            Diagnostic("CTG005", f"deadline {ctg.deadline} is negative")
        )
    elif ctg.deadline == 0 and require_deadline:
        findings.append(
            Diagnostic("CTG006", "graph has no deadline; feasibility is unchecked")
        )
    return findings


def _check_satisfiability(ctg: ConditionalTaskGraph) -> List[Diagnostic]:
    """Condition-consistency findings (``CTG010``/``CTG011``)."""
    findings: List[Diagnostic] = []
    real = ctg.without_pseudo_edges()
    try:
        gamma(real)
    except CTGError as exc:
        findings.append(Diagnostic("CTG010", str(exc)))
    try:
        scenarios = enumerate_scenarios(real)
        if not scenarios:  # enumerate_scenarios raises instead, but be safe
            findings.append(Diagnostic("CTG011", "graph produced no scenarios"))
    except (CTGError, RecursionError) as exc:
        findings.append(Diagnostic("CTG011", f"scenario enumeration failed: {exc}"))
    return findings


def check_probability_table(
    ctg: ConditionalTaskGraph,
    probabilities: Mapping[str, Mapping[str, float]],
    tol: float = PROB_EPS,
) -> List[Diagnostic]:
    """Findings on one branch-probability table (``CTG012``–``CTG015``).

    A branch *without* a distribution only warns (``CTG015``): the
    algorithms accept partial tables as long as no conditional edge of
    a scheduled path needs the missing branch.
    """
    findings: List[Diagnostic] = []
    branch_nodes = set(ctg.branch_nodes())
    for branch, distribution in sorted(probabilities.items()):
        if branch not in branch_nodes:
            findings.append(
                Diagnostic(
                    "CTG013",
                    f"distribution given for {branch!r}, which is not a "
                    "branch fork node",
                    subject=branch,
                )
            )
            continue
        outcomes = set(ctg.outcomes_of(branch))
        for label, value in sorted(distribution.items()):
            if label not in outcomes:
                findings.append(
                    Diagnostic(
                        "CTG013",
                        f"branch {branch!r} has no outcome {label!r} "
                        f"(declared: {sorted(outcomes)})",
                        subject=f"{branch}.{label}",
                    )
                )
            if not 0.0 <= value <= 1.0:
                findings.append(
                    Diagnostic(
                        "CTG014",
                        f"prob({branch!r}={label!r}) = {value} is outside [0, 1]",
                        subject=f"{branch}.{label}",
                    )
                )
        total = sum(distribution.values())
        if abs(total - 1.0) > tol:
            findings.append(
                Diagnostic(
                    "CTG012",
                    f"distribution of branch {branch!r} sums to {total:.9f}, "
                    "not 1",
                    subject=branch,
                )
            )
    for branch in sorted(branch_nodes - set(probabilities)):
        findings.append(
            Diagnostic(
                "CTG015",
                f"branch fork {branch!r} has no distribution in the table",
                subject=branch,
            )
        )
    return findings
