"""The repository's single home for numerical comparison tolerances.

The seed code grew ad-hoc epsilons — ``Schedule.meets_deadline`` and
``Schedule.validate`` defaulted to ``1e-6``, the stretching kernels used
``1e-6``/``1e-9``/``1e-12`` literals, the simulator another ``1e-6`` —
all encoding the same three ideas.  Scattered constants drift apart
silently (a checker using a tighter epsilon than the scheduler would
flag schedules the scheduler considers feasible), so every layer now
imports from here:

``TIME_EPS``
    Absolute slack tolerated on *time* comparisons — deadline checks,
    PE/link overlap tests, per-scenario finish times.  Derived timing
    is a sum of O(|V|) float additions, so ``1e-6`` absolute (on the
    paper's time-unit scale) absorbs the accumulated rounding while
    still catching any real constraint violation.
``PROB_EPS``
    Tolerance on probability-mass identities (a branch distribution
    summing to 1, a scenario-probability vector summing to 1).
``SPEED_EPS``
    Relative tolerance on DVFS speed comparisons against a PE's
    envelope — speeds come out of one division, so they are tight.
``EXACT_EPS``
    Near-machine-epsilon guard used where two floats are expected to be
    *identical up to representation* (discrete speed-level lookup,
    interval endpoints produced by the same arithmetic).

This module must stay import-free of the rest of the package: it is
imported by ``repro.ctg``, ``repro.platform``, ``repro.scheduling`` and
``repro.sim`` alike, below everything else in the layering.
"""

from __future__ import annotations

#: Absolute tolerance for time comparisons (deadlines, overlaps).
TIME_EPS = 1e-6

#: Absolute tolerance for probability-mass sums.
PROB_EPS = 1e-6

#: Relative tolerance for DVFS speed envelope comparisons.
SPEED_EPS = 1e-9

#: Near-representation-level guard for floats expected to be identical.
EXACT_EPS = 1e-12

#: Margin below 1.0 under which an accumulated probability product is
#: treated as *certain* — the stretching stage's ``prob(p, τ) = 1`` test
#: that splits spanning paths into certain/uncertain sets, and the
#: batched kernels' replica of it.  ``prob(p, τ)`` is a product of a
#: handful of branch probabilities, so anything within representation
#: noise of 1.0 is a genuinely unconditional path; the value is
#: therefore :data:`EXACT_EPS` (it lived in ``scheduling/stretching.py``
#: as a private ``_CERTAIN_TOL`` until the PR-2 unification caught up
#: with it).
CERTAIN_TOL = EXACT_EPS
