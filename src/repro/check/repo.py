"""Repository-wide static analysis: AST lint + flow rules + baseline.

This is the engine behind ``repro check --repo``: it runs the per-node
AST lint (:mod:`repro.check.astlint`) over the lint paths and the
call-graph-aware flow rules (:mod:`repro.check.flow`) over the package
sources, then filters the combined findings through the committed
waiver baseline (:mod:`repro.check.baseline`).  The result renders as
text, JSON or SARIF (:mod:`repro.check.sarif`) and gates CI: any
unwaived error-severity finding fails the job.

The call graph is the expensive part; pass ``cache_dir`` to serve it
from disk when the sources are unchanged (the key is a fingerprint over
every analysed file, see
:func:`repro.check.callgraph.sources_fingerprint`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from . import astlint
from .baseline import (
    DEFAULT_BASELINE_NAME,
    Waiver,
    apply_baseline,
    load_baseline,
)
from .callgraph import CallGraph, load_or_build_callgraph, parse_modules
from .diagnostics import CheckReport, Diagnostic, Severity
from .flow import analyze_modules

#: Package subtree the flow rules analyse, relative to the repo root.
DEFAULT_FLOW_ROOT = "src/repro"
#: Source root imports resolve against (``src/repro/io.py`` → ``repro.io``).
DEFAULT_SRC_ROOT = "src"
#: Paths the AST lint walks, relative to the repo root.
DEFAULT_LINT_PATHS = ("src", "tests")


@dataclass
class RepoAnalysis:
    """Outcome of one repository analysis run."""

    report: CheckReport
    #: findings waived by the committed baseline (kept for reporting)
    waived: List[Diagnostic] = field(default_factory=list)
    #: baseline entries that matched nothing (stale — should be removed)
    unused_waivers: List[Waiver] = field(default_factory=list)
    graph: Optional[CallGraph] = None
    #: every finding before baseline filtering (for --update-baseline)
    all_diagnostics: List[Diagnostic] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Gate verdict: no unwaived error-severity finding."""
        return self.report.ok


def _flow_files(flow_root: Path) -> List[Path]:
    return sorted(flow_root.rglob("*.py"))


def _relativize(diagnostic: Diagnostic, root: Path) -> Diagnostic:
    """Rewrite a ``path:line:col`` subject relative to the repo root."""
    parts = diagnostic.subject.rsplit(":", 2)
    if len(parts) != 3 or not parts[1].isdigit():
        return diagnostic
    prefix = str(root)
    if not prefix.endswith(os.sep):
        prefix += os.sep
    if not parts[0].startswith(prefix):
        return diagnostic
    relative = parts[0][len(prefix):]
    return replace(
        diagnostic, subject=f"{relative}:{parts[1]}:{parts[2]}"
    )


def analyze_repo(
    root: Path,
    *,
    flow_root: str = DEFAULT_FLOW_ROOT,
    src_root: str = DEFAULT_SRC_ROOT,
    lint_paths: Sequence[str] = DEFAULT_LINT_PATHS,
    baseline_path: Optional[Path] = None,
    cache_dir: Optional[Path] = None,
) -> RepoAnalysis:
    """Run the full static-analysis stack over a repository checkout."""
    root = Path(root)
    diagnostics: List[Diagnostic] = []

    lint_targets = [root / p for p in lint_paths if (root / p).exists()]
    if lint_targets:
        diagnostics.extend(astlint.lint_paths(lint_targets))

    graph: Optional[CallGraph] = None
    flow_dir = root / flow_root
    if flow_dir.exists():
        files = _flow_files(flow_dir)
        graph = load_or_build_callgraph(
            files, root / src_root, cache_dir=cache_dir
        )
        modules = parse_modules(files, root / src_root)
        diagnostics.extend(analyze_modules(modules, graph))

    # subjects become root-relative so baselines, SARIF URIs and CI
    # annotations are portable across checkouts
    diagnostics = [_relativize(d, root) for d in diagnostics]
    diagnostics.sort(
        key=lambda d: (d.subject, d.code, d.message)
    )

    if baseline_path is None:
        baseline_path = root / DEFAULT_BASELINE_NAME
    waivers = load_baseline(baseline_path)
    unwaived, waived, unused = apply_baseline(diagnostics, waivers)

    report = CheckReport(checks_run=["astlint", "flow"])
    report.extend(unwaived)
    return RepoAnalysis(
        report=report,
        waived=waived,
        unused_waivers=unused,
        graph=graph,
        all_diagnostics=diagnostics,
    )
