"""Flow-rule engine: determinism, numeric and purity diagnostics.

Where :mod:`repro.check.astlint` judges one AST node at a time, this
engine reasons about *where values can go*.  It walks every function
scope with a small forward taint analysis (tags: ``set``, ``np``,
``npfloat``, ``clock``) and combines the local result with the
module-resolving call graph of :mod:`repro.check.callgraph`, so rules
can be scoped to functions that are **reachable from a canonical-output
producer** — the only place where iteration order or wall-clock reads
stop being style issues and become reproducibility bugs.

Three rule families, all registered in :mod:`repro.check.diagnostics`:

``DET2xx`` — determinism.
    ``DET201`` order-sensitive iteration over a ``set`` on a canonical
    path (the PR 4 ``scenario_energy`` hash-seed bug); ``DET202`` a
    wall-clock read whose value can reach a return value on a canonical
    path (dict values under a literal ``"timing"`` key are exempt — the
    engine strips them from fingerprints by contract); ``DET203``
    unseeded ``random`` / legacy ``np.random`` calls; ``DET204``
    unsorted filesystem enumeration.

``NUM3xx`` — numeric hazards.
    ``NUM301`` a bit-shift where an operand can be a numpy integer
    (the PR 6 ``1 << 63`` intp overflow); ``NUM302`` ``==``/``!=`` on a
    float array; ``NUM303`` accumulation into an array allocated
    without an explicit ``dtype``.

``ENG4xx`` — experiment-engine purity.
    ``ENG401`` a ``cell_function=``/``reducer=`` registration that is
    not a module-level function (lambdas and closures break pickling
    and cache keys); ``ENG402`` a cell function writing a mutable
    module global; ``ENG403`` a cell function mutating one of its
    arguments (the PR 4 ``ctg.deadline`` in-place bug).

The analysis is deliberately conservative and local: taint does not
cross call boundaries (the call graph handles cross-function *reach*,
the taint handles within-function *flow*).  Suppression uses the same
``# lint: ignore[CODE]`` comments as the AST lint; blanket waivers live
in the committed baseline (:mod:`repro.check.baseline`).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from .astlint import apply_suppressions
from .callgraph import (
    MODULE_SCOPE,
    CallGraph,
    ModuleInfo,
    _is_set_annotation,
    build_callgraph,
    parse_module_source,
)
from .diagnostics import Diagnostic

# -- external-name tables ------------------------------------------------

#: Wall-clock reads: calling one of these taints the value ``clock``.
CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Global-state ``random`` module functions (the seeded
#: ``random.Random(seed)`` instance API is the sanctioned alternative).
RANDOM_NONDET: FrozenSet[str] = frozenset(
    {
        "random.random",
        "random.randint",
        "random.randrange",
        "random.uniform",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.gauss",
        "random.normalvariate",
        "random.expovariate",
        "random.betavariate",
        "random.triangular",
        "random.vonmisesvariate",
        "random.getrandbits",
        "random.seed",
    }
)

#: Legacy global-state numpy random API (``default_rng`` is sanctioned).
NP_LEGACY_RANDOM: FrozenSet[str] = frozenset(
    {
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.ranf",
        "numpy.random.sample",
        "numpy.random.seed",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
        "numpy.random.standard_normal",
        "numpy.random.exponential",
        "numpy.random.poisson",
    }
)

#: Filesystem enumeration returning paths in OS order.
LISTING_CALLS: FrozenSet[str] = frozenset(
    {"os.listdir", "os.scandir", "glob.glob", "glob.iglob"}
)

#: Method names enumerating the filesystem (``Path.iterdir()``, ...).
LISTING_METHODS: FrozenSet[str] = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: Builtins whose result does not depend on argument iteration order;
#: their arguments are evaluated in a "sorted" context.  ``sum`` is
#: deliberately absent — float summation IS order-sensitive.
_ORDER_SAFE_BUILTINS = frozenset(
    {"sorted", "len", "min", "max", "any", "all", "set", "frozenset", "bool"}
)

#: Builtins that materialise their argument's iteration order.
_ORDER_SENSITIVE_BUILTINS = frozenset({"list", "tuple", "sum", "enumerate"})

#: Methods that materialise the iteration order of their argument.
_ORDER_SENSITIVE_METHODS = frozenset({"join", "writelines", "extend"})

#: Set methods whose result is a set again.
_SET_RESULT_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: Methods that mutate their receiver in place.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "remove",
        "discard",
        "clear",
        "pop",
        "popitem",
        "sort",
        "setdefault",
        "__setitem__",
    }
)

#: numpy constructors that allocate a fresh array; without ``dtype=``
#: the element type defaults to ``float64``.
_NP_ALLOC_FLOAT_DEFAULT = frozenset(
    {"zeros", "ones", "empty", "full", "linspace", "logspace", "geomspace"}
)

#: numpy alloc calls NUM303 watches for a missing ``dtype=``.
_NP_ALLOC_DTYPE_REQUIRED = frozenset({"zeros", "ones", "empty", "full"})

#: Annotation tails treated as "this parameter is a numpy array".
_NP_ANNOTATIONS = frozenset({"ndarray", "NDArray"})

_FLOATISH_DTYPES = frozenset(
    {"float", "float16", "float32", "float64", "double", "single", "half"}
)


@dataclass(frozen=True)
class _Finding:
    code: str
    path: str
    lineno: int
    col: int
    message: str
    symbol: str


def _annotation_tail(annotation: Optional[ast.expr]) -> Optional[str]:
    """Trailing identifier of an annotation (``np.ndarray`` → ``ndarray``)."""
    node = annotation
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.split("[", 1)[0].split(".")[-1].strip()
    return None


def _root_name(node: ast.expr) -> Optional[str]:
    """Base ``Name`` of an attribute/subscript chain, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _dtype_keyword(node: ast.Call) -> Optional[ast.expr]:
    for keyword in node.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    return None


def _is_floatish_dtype(node: Optional[ast.expr]) -> bool:
    if node is None:
        return True  # numpy's default dtype is float64
    tail = node.attr if isinstance(node, ast.Attribute) else getattr(node, "id", None)
    if tail is None and isinstance(node, ast.Constant) and isinstance(node.value, str):
        tail = node.value
    return tail in _FLOATISH_DTYPES


class _ScopeAnalyzer:
    """Forward taint pass over one function (or module) scope."""

    def __init__(
        self,
        module: ModuleInfo,
        qualname: str,
        node: ast.AST,
        *,
        det_reachable: bool,
        is_cell: bool,
        set_attrs: FrozenSet[str],
        findings: List[_Finding],
    ) -> None:
        self.module = module
        self.qualname = qualname
        self.node = node
        self.det_reachable = det_reachable
        self.is_cell = is_cell
        self.set_attrs = set_attrs
        self.findings = findings
        self.taint: Dict[str, Set[str]] = {}
        self.live_params: Set[str] = set()
        self.global_decls: Set[str] = set()
        #: bare name → alloc Call node for NUM303 candidates
        self.bare_allocs: Dict[str, ast.Call] = {}

    # -- entry -----------------------------------------------------------
    def run(self) -> None:
        body: Sequence[ast.stmt]
        if isinstance(self.node, ast.Module):
            body = [
                stmt
                for stmt in self.node.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        else:
            self._bind_params(self.node)
            body = self.node.body
        for stmt in body:
            self.visit_stmt(stmt)

    def _bind_params(self, node) -> None:
        args = node.args
        every = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *([args.vararg] if args.vararg else []),
            *([args.kwarg] if args.kwarg else []),
        ]
        for arg in every:
            self.live_params.add(arg.arg)
            tags: Set[str] = set()
            if arg.annotation is not None and _is_set_annotation(arg.annotation):
                tags.add("set")
            if _annotation_tail(arg.annotation) in _NP_ANNOTATIONS:
                tags.add("np")
            if tags:
                self.taint[arg.arg] = tags

    # -- reporting -------------------------------------------------------
    def report(self, code: str, node: ast.AST, message: str) -> None:
        self.findings.append(
            _Finding(
                code=code,
                path=self.module.path,
                lineno=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0) + 1,
                message=message,
                symbol=self.qualname,
            )
        )

    # -- name resolution -------------------------------------------------
    def dotted(self, node: ast.expr) -> Optional[str]:
        """Dotted external name of an attribute chain, through imports."""
        parts: List[str] = []
        cursor = node
        while isinstance(cursor, ast.Attribute):
            parts.append(cursor.attr)
            cursor = cursor.value
        if not isinstance(cursor, ast.Name):
            return None
        base = cursor.id
        root = self.module.import_aliases.get(base)
        if root is not None:
            parts.append(root)
            return ".".join(reversed(parts))
        imported = self.module.from_imports.get(base)
        if imported is not None:
            target, original = imported
            parts.append(original)
            parts.append(target)
            return ".".join(reversed(parts))
        return None

    # -- statements ------------------------------------------------------
    def visit_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analysed on their own
        if isinstance(stmt, ast.Assign):
            self._assign(stmt.targets, stmt.value)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign([stmt.target], stmt.value)
        elif isinstance(stmt, ast.AugAssign):
            self._aug_assign(stmt)
        elif isinstance(stmt, ast.For):
            self._for(stmt)
        elif isinstance(stmt, ast.While):
            self.expr_tags(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self.visit_stmt(sub)
        elif isinstance(stmt, ast.If):
            self.expr_tags(stmt.test)
            for sub in [*stmt.body, *stmt.orelse]:
                self.visit_stmt(sub)
        elif isinstance(stmt, ast.With):
            for item in stmt.items:
                tags = self.expr_tags(item.context_expr)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars, tags)
            for sub in stmt.body:
                self.visit_stmt(sub)
        elif isinstance(stmt, ast.Try):
            for sub in stmt.body:
                self.visit_stmt(sub)
            for handler in stmt.handlers:
                for sub in handler.body:
                    self.visit_stmt(sub)
            for sub in [*stmt.orelse, *stmt.finalbody]:
                self.visit_stmt(sub)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                tags = self.expr_tags(stmt.value)
                if self.det_reachable and "clock" in tags:
                    self.report(
                        "DET202",
                        stmt,
                        f"{self._where()} returns a wall-clock-derived value on a "
                        "canonical path; keep timing under a 'timing' key or out "
                        "of canonical outputs",
                    )
        elif isinstance(stmt, ast.Expr):
            self.expr_tags(stmt.value)
        elif isinstance(stmt, ast.Global):
            self.global_decls.update(stmt.names)
        elif isinstance(stmt, ast.Assert):
            self.expr_tags(stmt.test)
            if stmt.msg is not None:
                self.expr_tags(stmt.msg)
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.expr_tags(stmt.exc)
            if stmt.cause is not None:
                self.expr_tags(stmt.cause)
        # Pass / Break / Continue / Import / Delete / Nonlocal: nothing to do

    def _where(self) -> str:
        name = self.qualname.partition(":")[2]
        return "module body" if name == MODULE_SCOPE else f"{name}()"

    def _assign(self, targets: Sequence[ast.expr], value: ast.expr) -> None:
        tags = self.expr_tags(value)
        alloc = self._num303_candidate(value)
        for target in targets:
            self._check_impure_store(target)
            self._bind_target(target, tags)
            if alloc is not None and isinstance(target, ast.Name):
                self.bare_allocs[target.id] = alloc

    def _num303_candidate(self, value: ast.expr) -> Optional[ast.Call]:
        if not isinstance(value, ast.Call):
            return None
        dotted = self.dotted(value.func)
        if dotted is None or not dotted.startswith("numpy."):
            return None
        tail = dotted.rsplit(".", 1)[1]
        if tail in _NP_ALLOC_DTYPE_REQUIRED and _dtype_keyword(value) is None:
            return value
        return None

    def _bind_target(self, target: ast.expr, tags: Set[str]) -> None:
        if isinstance(target, ast.Name):
            # rebinding a parameter severs it from the caller's object
            self.live_params.discard(target.id)
            self.bare_allocs.pop(target.id, None)
            if tags:
                self.taint[target.id] = set(tags)
            else:
                self.taint.pop(target.id, None)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, tags)
        elif isinstance(target, ast.Starred):
            self._bind_target(target.value, tags)

    def _check_impure_store(self, target: ast.expr) -> None:
        """ENG402/ENG403: attribute/subscript stores inside a cell."""
        if not self.is_cell:
            return
        if isinstance(target, ast.Name):
            if target.id in self.global_decls:
                self.report(
                    "ENG402",
                    target,
                    f"cell function {self._where()} rebinds module global "
                    f"{target.id!r}; cells must be pure (cache keys cannot "
                    "see module state)",
                )
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            root = _root_name(target)
            if root is None:
                return
            if root in self.live_params:
                self.report(
                    "ENG403",
                    target,
                    f"cell function {self._where()} mutates its argument "
                    f"{root!r} in place; copy it first "
                    "(dataclasses.replace / dict(...))",
                )
            elif root in self.module.global_mutables:
                self.report(
                    "ENG402",
                    target,
                    f"cell function {self._where()} writes module global "
                    f"{root!r}; cells must be pure (cache keys cannot see "
                    "module state)",
                )

    def _aug_assign(self, stmt: ast.AugAssign) -> None:
        value_tags = self.expr_tags(stmt.value)
        target_tags = self.expr_tags(stmt.target, store=True)
        if isinstance(stmt.op, (ast.LShift, ast.RShift)):
            if "np" in value_tags or "np" in target_tags:
                self.report(
                    "NUM301",
                    stmt,
                    "augmented bit-shift with a possibly-numpy integer "
                    "operand: numpy fixed-width ints overflow silently at "
                    "64 bits; convert with int(...) first",
                )
        self._check_impure_store(stmt.target)
        if isinstance(stmt.target, ast.Name):
            name = stmt.target.id
            alloc = self.bare_allocs.get(name)
            if alloc is not None:
                self.report(
                    "NUM303",
                    alloc,
                    f"array {name!r} is accumulated into but allocated "
                    "without an explicit dtype; pin it (dtype=float) so the "
                    "reduction width is platform-independent",
                )
                del self.bare_allocs[name]
            merged = self.taint.get(name, set()) | value_tags
            if merged:
                self.taint[name] = merged

    def _for(self, stmt: ast.For) -> None:
        tags = self.expr_tags(stmt.iter)
        if self.det_reachable and "set" in tags:
            self.report(
                "DET201",
                stmt.iter,
                f"iteration over a set in {self._where()} is hash-seed-"
                "dependent and feeds a canonical output; iterate "
                "sorted(...) instead",
            )
        element: Set[str] = {t for t in tags if t in ("np", "npfloat")}
        self._bind_target(stmt.target, element)
        for sub in [*stmt.body, *stmt.orelse]:
            self.visit_stmt(sub)

    # -- expressions -----------------------------------------------------
    def expr_tags(
        self, node: ast.expr, sorted_ctx: bool = False, store: bool = False
    ) -> Set[str]:
        """Taint tags of an expression; emits findings as side effects."""
        if isinstance(node, ast.Name):
            return set(self.taint.get(node.id, ()))
        if isinstance(node, ast.Attribute):
            self.expr_tags(node.value, store=store)
            if node.attr in self.set_attrs:
                return {"set"}
            return set()
        if isinstance(node, ast.Subscript):
            base = self.expr_tags(node.value, store=store)
            self.expr_tags(node.slice)
            return {t for t in base if t in ("np", "npfloat", "clock")}
        if isinstance(node, ast.Call):
            return self._call_tags(node, sorted_ctx)
        if isinstance(node, ast.BinOp):
            return self._binop_tags(node)
        if isinstance(node, ast.BoolOp):
            tags: Set[str] = set()
            for value in node.values:
                tags |= self.expr_tags(value)
            return tags
        if isinstance(node, ast.UnaryOp):
            return self.expr_tags(node.operand)
        if isinstance(node, ast.Compare):
            return self._compare_tags(node)
        if isinstance(node, ast.IfExp):
            self.expr_tags(node.test)
            return self.expr_tags(node.body) | self.expr_tags(node.orelse)
        if isinstance(node, (ast.Set,)):
            for element in node.elts:
                self.expr_tags(element)
            return {"set"}
        if isinstance(node, ast.SetComp):
            self._comprehension(node, sorted_ctx=True)
            return {"set"}
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            self._comprehension(node, sorted_ctx=sorted_ctx)
            return set()
        if isinstance(node, ast.DictComp):
            self._comprehension(node, sorted_ctx=sorted_ctx)
            return set()
        if isinstance(node, ast.Dict):
            clock = False
            for key, value in zip(node.keys, node.values):
                if (
                    isinstance(key, ast.Constant)
                    and key.value == "timing"
                ):
                    # timing sections are stripped from canonical payloads
                    # by contract; clock values may live there
                    continue
                if "clock" in self.expr_tags(value):
                    clock = True
            return {"clock"} if clock else set()
        if isinstance(node, (ast.List, ast.Tuple)):
            tags = set()
            for element in node.elts:
                tags |= self.expr_tags(element, sorted_ctx=sorted_ctx)
            return {t for t in tags if t == "clock"}
        if isinstance(node, ast.Starred):
            return self.expr_tags(node.value, sorted_ctx=sorted_ctx)
        if isinstance(node, ast.NamedExpr):
            tags = self.expr_tags(node.value)
            self._bind_target(node.target, tags)
            return tags
        if isinstance(node, (ast.JoinedStr,)):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.expr_tags(value.value)
            return set()
        if isinstance(node, ast.Await):
            return self.expr_tags(node.value)
        if isinstance(node, ast.Lambda):
            return set()  # separate (unanalysed) scope
        return set()

    def _binop_tags(self, node: ast.BinOp) -> Set[str]:
        left = self.expr_tags(node.left)
        right = self.expr_tags(node.right)
        if isinstance(node.op, (ast.LShift, ast.RShift)):
            if "np" in left or "np" in right:
                self.report(
                    "NUM301",
                    node,
                    "bit-shift with a possibly-numpy integer operand: numpy "
                    "fixed-width ints overflow silently at 64 bits (the "
                    "PR 6 >=63-scenario bug); convert with int(...) first",
                )
        if isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.BitXor)) or (
            isinstance(node.op, ast.Sub) and "set" in left
        ):
            if "set" in left or "set" in right:
                return {"set"}
        merged = left | right
        if isinstance(node.op, ast.Div) and "np" in merged:
            merged.add("npfloat")
        return {t for t in merged if t != "set"}

    def _compare_tags(self, node: ast.Compare) -> Set[str]:
        operands = [node.left, *node.comparators]
        tag_sets = [self.expr_tags(operand) for operand in operands]
        for op, left_tags, right_tags in zip(
            node.ops, tag_sets[:-1], tag_sets[1:]
        ):
            if isinstance(op, (ast.Eq, ast.NotEq)) and (
                "npfloat" in left_tags or "npfloat" in right_tags
            ):
                self.report(
                    "NUM302",
                    node,
                    "'==' / '!=' on a float array compares for bit-exactness; "
                    "use numpy.isclose / numpy.allclose with a tolerance from "
                    "repro.check.tolerances",
                )
                break
        return set()

    def _comprehension(self, node, sorted_ctx: bool) -> None:
        for generator in node.generators:
            tags = self.expr_tags(generator.iter)
            if self.det_reachable and "set" in tags and not sorted_ctx:
                self.report(
                    "DET201",
                    generator.iter,
                    f"comprehension over a set in {self._where()} is "
                    "hash-seed-dependent and feeds a canonical output; "
                    "iterate sorted(...) instead",
                )
            element: Set[str] = {t for t in tags if t in ("np", "npfloat")}
            self._bind_target(generator.target, element)
            for condition in generator.ifs:
                self.expr_tags(condition)
        if isinstance(node, ast.DictComp):
            self.expr_tags(node.key)
            self.expr_tags(node.value)
        else:
            self.expr_tags(node.elt)

    def _call_tags(self, node: ast.Call, sorted_ctx: bool) -> Set[str]:
        func = node.func
        dotted = self.dotted(func) if isinstance(func, ast.Attribute) else None
        if isinstance(func, ast.Name):
            dotted = self.dotted(func)

        # -- rule triggers on the callee itself --------------------------
        if dotted is not None:
            if dotted in RANDOM_NONDET or dotted in NP_LEGACY_RANDOM:
                self.report(
                    "DET203",
                    node,
                    f"{dotted}() draws from unseeded global state; use a "
                    "seeded random.Random(seed) / numpy default_rng(seed) "
                    "instance instead",
                )
            if dotted in LISTING_CALLS and not sorted_ctx:
                self.report(
                    "DET204",
                    node,
                    f"{dotted}() yields paths in OS order; wrap the call in "
                    "sorted(...)",
                )
        if (
            dotted is None
            and isinstance(func, ast.Attribute)
            and func.attr in LISTING_METHODS
            and not sorted_ctx
        ):
            self.report(
                "DET204",
                node,
                f".{func.attr}() yields paths in OS order; wrap the call in "
                "sorted(...)",
            )

        # -- builtins ----------------------------------------------------
        if isinstance(func, ast.Name) and dotted is None:
            name = func.id
            if name in ("set", "frozenset"):
                self._eval_args(node, sorted_ctx=True)
                return {"set"}
            if name in _ORDER_SAFE_BUILTINS:
                self._eval_args(node, sorted_ctx=True)
                return set()
            if name in _ORDER_SENSITIVE_BUILTINS:
                arg_tags = self._eval_args(node, sorted_ctx=sorted_ctx)
                if (
                    self.det_reachable
                    and not sorted_ctx
                    and any("set" in tags for tags in arg_tags)
                ):
                    self.report(
                        "DET201",
                        node,
                        f"{name}(...) materialises set iteration order in "
                        f"{self._where()} on a canonical path; sort the set "
                        "first",
                    )
                return set()
            if name in ("int", "float", "round", "str", "repr"):
                self._eval_args(node, sorted_ctx=sorted_ctx)
                return set()  # conversion strips numpy/clock taint

        # -- numpy calls -------------------------------------------------
        if dotted is not None and dotted.startswith("numpy."):
            self._eval_args(node)
            tail = dotted.rsplit(".", 1)[1]
            tags = {"np"}
            if tail in _NP_ALLOC_FLOAT_DEFAULT and _is_floatish_dtype(
                _dtype_keyword(node)
            ):
                tags.add("npfloat")
            return tags

        # -- clock reads -------------------------------------------------
        if dotted is not None and dotted in CLOCK_CALLS:
            self._eval_args(node)
            return {"clock"}

        # -- method calls ------------------------------------------------
        if isinstance(func, ast.Attribute):
            base_tags = self.expr_tags(func.value)
            arg_tags = self._eval_args(node, sorted_ctx=sorted_ctx)
            if func.attr in _SET_RESULT_METHODS and "set" in base_tags:
                return {"set"}
            if (
                self.det_reachable
                and func.attr in _ORDER_SENSITIVE_METHODS
                and not sorted_ctx
                and any("set" in tags for tags in arg_tags)
            ):
                self.report(
                    "DET201",
                    node,
                    f".{func.attr}(...) materialises set iteration order in "
                    f"{self._where()} on a canonical path; sort the set first",
                )
            if func.attr in _MUTATOR_METHODS and self.is_cell:
                root = _root_name(func.value)
                if root is not None and root in self.live_params:
                    self.report(
                        "ENG403",
                        node,
                        f"cell function {self._where()} calls "
                        f".{func.attr}() on its argument {root!r}; copy "
                        "before mutating",
                    )
                elif root is not None and root in self.module.global_mutables:
                    self.report(
                        "ENG402",
                        node,
                        f"cell function {self._where()} mutates module "
                        f"global {root!r} via .{func.attr}(); cells must be "
                        "pure",
                    )
            if func.attr == "astype":
                out = {"np"}
                if node.args and _is_floatish_dtype(node.args[0]):
                    out.add("npfloat")
                return out
            # unknown method: propagate only numpy-ness of the receiver
            return {t for t in base_tags if t in ("np", "npfloat")}

        # -- plain / unknown calls ---------------------------------------
        self._eval_args(node, sorted_ctx=sorted_ctx)
        return set()

    def _eval_args(self, node: ast.Call, sorted_ctx: bool = False) -> List[Set[str]]:
        tags = [self.expr_tags(arg, sorted_ctx=sorted_ctx) for arg in node.args]
        tags.extend(
            self.expr_tags(keyword.value, sorted_ctx=sorted_ctx)
            for keyword in node.keywords
        )
        return tags


# -- driver --------------------------------------------------------------

def _reachable_scopes(graph: CallGraph) -> FrozenSet[str]:
    """Canonical-path scopes: call-graph reachable + every module body."""
    reachable = set(graph.reachable())
    for qualname, info in graph.functions.items():
        if info.name == MODULE_SCOPE:
            reachable.add(qualname)
    return frozenset(reachable)


def _registration_findings(graph: CallGraph) -> List[_Finding]:
    findings: List[_Finding] = []
    kind_blame = {
        "lambda": "a lambda",
        "nested": "a nested function (closure)",
        "opaque": "not a resolvable module-level function",
    }
    for registration in graph.registrations:
        if registration.kind == "function":
            continue
        blame = kind_blame.get(registration.kind, registration.kind)
        findings.append(
            _Finding(
                code="ENG401",
                path=registration.path,
                lineno=registration.lineno,
                col=registration.col,
                message=(
                    f"{registration.role}= registration is {blame}; cells "
                    "must be module-level functions so they pickle across "
                    "workers and fingerprint stably"
                ),
                symbol="",
            )
        )
    return findings


def analyze_modules(
    modules: Mapping[str, ModuleInfo], graph: CallGraph
) -> List[Diagnostic]:
    """Run every flow rule over parsed modules; returns sorted findings.

    ``# lint: ignore[CODE]`` comments suppress findings on their line,
    exactly as in :mod:`repro.check.astlint`.
    """
    det_scopes = _reachable_scopes(graph)
    cells = set(graph.cell_functions())
    findings: List[_Finding] = list(_registration_findings(graph))
    for name in sorted(modules):
        module = modules[name]
        for info in module.function_infos:
            node = module.nodes[info.qualname]
            _ScopeAnalyzer(
                module,
                info.qualname,
                node,
                det_reachable=info.qualname in det_scopes,
                is_cell=info.qualname in cells,
                set_attrs=graph.set_attrs,
                findings=findings,
            ).run()
    # apply per-line suppressions, per file
    by_path: Dict[str, List[_Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    sources = {module.path: module.source for module in modules.values()}
    survivors: List[_Finding] = []
    for path, batch in by_path.items():
        source = sources.get(path, "")
        keep = apply_suppressions(
            source,
            [(f.code, f.lineno, f.col, f.message) for f in batch],
        )
        kept = {(code, lineno, col) for code, lineno, col, _ in keep}
        survivors.extend(
            f for f in batch if (f.code, f.lineno, f.col) in kept
        )
    survivors.sort(key=lambda f: (f.path, f.lineno, f.col, f.code))
    return [
        Diagnostic(
            f.code,
            f.message,
            subject=f"{f.path}:{f.lineno}:{f.col}",
            symbol=f.symbol,
        )
        for f in survivors
    ]


def analyze_source(
    source: str, filename: str = "<memory>.py", module: str = "m"
) -> List[Diagnostic]:
    """Analyse one in-memory module (test/fixture convenience)."""
    info = parse_module_source(module, filename, source)
    modules = {module: info}
    graph = build_callgraph(modules)
    return analyze_modules(modules, graph)
