"""SARIF 2.1.0 rendering of check reports.

`SARIF <https://docs.oasis-open.org/sarif/sarif/v2.1.0/sarif-v2.1.0.html>`_
is the interchange format GitHub code scanning ingests: uploading a
SARIF file from CI turns every finding into an inline PR annotation at
the exact file/line/column.  :func:`sarif_payload` converts a list of
:class:`~repro.check.diagnostics.Diagnostic` records into one SARIF
``run``; the rule metadata comes straight from the central
:data:`~repro.check.diagnostics.CODE_TABLE`, so the ``rules`` array is
complete and stable even for codes with no findings in this run.

Subjects of source-lint findings are ``path:line:col`` strings (see
:class:`Diagnostic`); non-source subjects (task names, scenario ids)
are carried in the result message and get no physical location.

:func:`validate_sarif` is a self-contained structural validator for the
subset of SARIF this module emits (CI has no network access to fetch
the official JSON schema; the checks mirror its required properties).
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional, Sequence

from .diagnostics import CODE_TABLE, Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

TOOL_NAME = "repro-check"
TOOL_URI = "https://example.invalid/repro"

#: SARIF ``level`` per diagnostic severity.
_LEVELS = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}

_LOCATION_RE = re.compile(
    r"^(?P<path>.+?):(?P<line>\d+)(?::(?P<col>\d+))?$"
)


def _split_subject(subject: str) -> Optional[Dict[str, Any]]:
    """``path:line[:col]`` subject → SARIF physicalLocation, else None."""
    match = _LOCATION_RE.match(subject)
    if match is None:
        return None
    path = match.group("path")
    if not path.endswith(".py"):
        return None  # task/scenario subjects are not source locations
    region: Dict[str, Any] = {"startLine": int(match.group("line"))}
    if match.group("col"):
        region["startColumn"] = int(match.group("col"))
    return {
        "artifactLocation": {"uri": path.replace("\\", "/")},
        "region": region,
    }


def _rules() -> List[Dict[str, Any]]:
    rules = []
    for info in CODE_TABLE:
        rules.append(
            {
                "id": info.code,
                "name": info.code,
                "shortDescription": {"text": info.title},
                "defaultConfiguration": {"level": _LEVELS[info.severity]},
                "helpUri": f"{TOOL_URI}/docs/diagnostics.md#{info.code.lower()}",
            }
        )
    return rules


def sarif_payload(
    diagnostics: Sequence[Diagnostic],
    *,
    tool_version: str = "0",
) -> Dict[str, Any]:
    """One-run SARIF 2.1.0 payload for ``diagnostics``."""
    rule_index = {info.code: i for i, info in enumerate(CODE_TABLE)}
    results: List[Dict[str, Any]] = []
    for diagnostic in diagnostics:
        message = diagnostic.message
        location = _split_subject(diagnostic.subject)
        if location is None and diagnostic.subject:
            message = f"[{diagnostic.subject}] {message}"
        result: Dict[str, Any] = {
            "ruleId": diagnostic.code,
            "ruleIndex": rule_index[diagnostic.code],
            "level": _LEVELS[diagnostic.severity],
            "message": {"text": message},
        }
        if location is not None:
            result["locations"] = [{"physicalLocation": location}]
        if diagnostic.symbol:
            result["properties"] = {"symbol": diagnostic.symbol}
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": TOOL_URI,
                        "rules": _rules(),
                    }
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def render_sarif(
    diagnostics: Sequence[Diagnostic], *, tool_version: str = "0"
) -> str:
    """Byte-stable JSON text of :func:`sarif_payload`."""
    return json.dumps(
        sarif_payload(diagnostics, tool_version=tool_version),
        indent=2,
        sort_keys=True,
    )


# -- structural validation ----------------------------------------------

def validate_sarif(payload: Any) -> List[str]:
    """Problems with a SARIF payload; empty list when structurally valid.

    Covers the required properties of the SARIF 2.1.0 schema for the
    subset :func:`sarif_payload` emits: top-level ``version``/``runs``,
    ``tool.driver.name`` per run, and per-result ``ruleId``, ``level``,
    ``message.text`` plus well-formed physical locations.
    """
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("version") != SARIF_VERSION:
        problems.append(f"version must be {SARIF_VERSION!r}")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        problems.append("runs must be a non-empty array")
        return problems
    for run_index, run in enumerate(runs):
        where = f"runs[{run_index}]"
        if not isinstance(run, dict):
            problems.append(f"{where} is not an object")
            continue
        driver = run.get("tool", {}).get("driver") if isinstance(
            run.get("tool"), dict
        ) else None
        if not isinstance(driver, dict) or not isinstance(
            driver.get("name"), str
        ):
            problems.append(f"{where}.tool.driver.name missing")
        rules = (driver or {}).get("rules", [])
        rule_ids = set()
        if isinstance(rules, list):
            for rule in rules:
                if not isinstance(rule, dict) or "id" not in rule:
                    problems.append(f"{where} has a rule without an id")
                else:
                    rule_ids.add(rule["id"])
        results = run.get("results")
        if not isinstance(results, list):
            problems.append(f"{where}.results must be an array")
            continue
        for result_index, result in enumerate(results):
            rwhere = f"{where}.results[{result_index}]"
            if not isinstance(result, dict):
                problems.append(f"{rwhere} is not an object")
                continue
            if not isinstance(result.get("ruleId"), str):
                problems.append(f"{rwhere}.ruleId missing")
            elif rule_ids and result["ruleId"] not in rule_ids:
                problems.append(
                    f"{rwhere}.ruleId {result['ruleId']!r} not in driver rules"
                )
            if result.get("level") not in ("error", "warning", "note", "none"):
                problems.append(f"{rwhere}.level invalid")
            message = result.get("message")
            if not isinstance(message, dict) or not isinstance(
                message.get("text"), str
            ):
                problems.append(f"{rwhere}.message.text missing")
            index = result.get("ruleIndex")
            if index is not None and (
                not isinstance(index, int)
                or isinstance(rules, list)
                and not 0 <= index < len(rules)
            ):
                problems.append(f"{rwhere}.ruleIndex out of range")
            for loc_index, location in enumerate(result.get("locations", [])):
                lwhere = f"{rwhere}.locations[{loc_index}]"
                physical = (
                    location.get("physicalLocation")
                    if isinstance(location, dict)
                    else None
                )
                if not isinstance(physical, dict):
                    problems.append(f"{lwhere}.physicalLocation missing")
                    continue
                artifact = physical.get("artifactLocation")
                if not isinstance(artifact, dict) or not isinstance(
                    artifact.get("uri"), str
                ):
                    problems.append(f"{lwhere} artifactLocation.uri missing")
                region = physical.get("region")
                if region is not None:
                    line = region.get("startLine")
                    if not isinstance(line, int) or line < 1:
                        problems.append(f"{lwhere} region.startLine invalid")
                    col = region.get("startColumn")
                    if col is not None and (
                        not isinstance(col, int) or col < 1
                    ):
                        problems.append(f"{lwhere} region.startColumn invalid")
    return problems
