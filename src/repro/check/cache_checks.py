"""Cross-consistency of the path-analytics cache with a live schedule.

PR 1 keyed the stretching stage's path analytics by a *fingerprint* of
the scheduled graph (pseudo-edge set + task→PE mapping) and cached them
on ``CtgAnalysis.path_cache``.  The whole construction rests on one
assumption: **a structure retrieved under a schedule's fingerprint
describes that schedule** — same task universe, same real edges, and
every cached path actually walkable in the scheduled graph.  A bug that
mutates a schedule after caching (or a hand-built fingerprint
collision) would silently stretch against stale paths and could produce
an infeasible schedule that ``SCHED03x`` only catches downstream.

This checker verifies the assumption directly for the structure the
live schedule would hit (``CACHE001``) and that the cached scenario
tuple is the analysis's own (``CACHE002``).  A cache miss is not a
finding — an empty cache is simply cold.
"""

from __future__ import annotations

from typing import List, Optional

from ..ctg.minterms import CtgAnalysis
from ..scheduling.pathcache import PathStructure, schedule_fingerprint
from ..scheduling.schedule import Schedule
from .diagnostics import Diagnostic


def check_pathcache(
    schedule: Schedule, analysis: Optional[CtgAnalysis]
) -> List[Diagnostic]:
    """``CACHE001``/``CACHE002`` findings for the live schedule's entry."""
    if analysis is None or not analysis.path_cache:
        return []
    structure = analysis.path_cache.get(schedule_fingerprint(schedule))
    if not isinstance(structure, PathStructure):
        return []  # cold cache (or foreign payload) — nothing to verify
    findings: List[Diagnostic] = []

    ctg = schedule.ctg
    tasks = tuple(ctg.tasks())
    if structure.task_list != tasks:
        findings.append(
            Diagnostic(
                "CACHE001",
                "cached structure indexes "
                f"{len(structure.task_list)} task(s) but the schedule has "
                f"{len(tasks)} (task universe changed after caching)",
                subject="task_list",
            )
        )
    real_edges = tuple(
        (src, dst) for src, dst, _data in ctg.edges(include_pseudo=False)
    )
    if structure.edge_list != real_edges:
        findings.append(
            Diagnostic(
                "CACHE001",
                "cached structure's real-edge list disagrees with the "
                "scheduled graph (edges changed after caching)",
                subject="edge_list",
            )
        )
    graph = ctg.graph
    for index, path in enumerate(structure.paths):
        broken_hop = next(
            (
                (src, dst)
                for src, dst in zip(path.nodes, path.nodes[1:])
                if not graph.has_edge(src, dst)
            ),
            None,
        )
        if broken_hop is not None:
            findings.append(
                Diagnostic(
                    "CACHE001",
                    f"cached path #{index} uses edge "
                    f"{broken_hop[0]}→{broken_hop[1]}, which is not in the "
                    "scheduled graph",
                    subject=f"path[{index}]",
                )
            )
            break  # one broken path proves staleness; don't spam
    if structure.scenarios != analysis.scenarios:
        findings.append(
            Diagnostic(
                "CACHE002",
                "cached structure was built against a different scenario "
                "set than the supplied analysis",
                subject="scenarios",
            )
        )
    return findings
