"""Top-level orchestration of the static verification subsystem.

Two entry points:

* :func:`check_instance` — verify a ``(CTG, platform[, schedule])``
  tuple end to end and return a :class:`CheckReport`;
* :func:`verify_schedule` — the schedule-only subset used by the
  ``--check`` debug hook inside :func:`repro.scheduling.schedule_online`
  and the adaptive controller (the graph/platform were either checked
  up front or are trusted there).

:func:`assert_clean` converts an error-carrying report into a
:class:`CheckError` for callers that want exception semantics.
"""

from __future__ import annotations

from typing import Mapping, Optional

from ..ctg.graph import ConditionalTaskGraph
from ..ctg.minterms import CtgAnalysis
from ..platform.mpsoc import Platform
from ..scheduling.schedule import Schedule
from .cache_checks import check_pathcache
from .ctg_checks import check_ctg
from .diagnostics import CheckReport
from .feasibility import check_scenario_feasibility
from .platform_checks import check_platform
from .schedule_checks import check_schedule


class CheckError(RuntimeError):
    """Raised by :func:`assert_clean` when a report carries errors.

    The offending report is attached as :attr:`report`.
    """

    def __init__(self, message: str, report: CheckReport) -> None:
        super().__init__(message)
        self.report = report


def check_instance(
    ctg: ConditionalTaskGraph,
    platform: Platform,
    schedule: Optional[Schedule] = None,
    probabilities: Optional[Mapping[str, Mapping[str, float]]] = None,
    analysis: Optional[CtgAnalysis] = None,
    require_deadline: bool = True,
) -> CheckReport:
    """Verify a problem instance, and optionally a schedule built on it.

    Stages (each skipped cleanly when its prerequisites already
    failed): graph well-formedness and condition satisfiability →
    platform/application pairing → schedule structure → per-minterm
    deadline feasibility → path-cache cross-consistency.

    ``probabilities`` overrides the graph's profiled distributions for
    the probability-table checks; ``analysis`` supplies cached
    scenarios (and its path cache, which is then cross-checked).
    """
    report = CheckReport()
    report.checks_run.append("ctg")
    report.extend(check_ctg(ctg, probabilities, require_deadline=require_deadline))

    report.checks_run.append("platform")
    report.extend(check_platform(platform, ctg))

    # A cyclic graph has no topological order, so every schedule-level
    # checker (which propagates times along it) is meaningless; a failed
    # scenario enumeration likewise blocks only the per-minterm stages.
    if schedule is not None and not report.has("CTG001"):
        report.checks_run.append("schedule")
        report.extend(check_schedule(schedule))
        if not report.has("CTG011"):
            report.checks_run.append("feasibility")
            scenarios = analysis.scenarios if analysis is not None else None
            report.extend(check_scenario_feasibility(schedule, scenarios))
            report.checks_run.append("pathcache")
            report.extend(check_pathcache(schedule, analysis))
    return report


def verify_schedule(
    schedule: Schedule,
    analysis: Optional[CtgAnalysis] = None,
) -> CheckReport:
    """Schedule-only verification (structure + feasibility + cache).

    This is the ``--check`` hook's workhorse: cheap enough to run after
    every re-scheduling call, it re-proves the invariants the adaptive
    loop relies on without re-validating the immutable graph/platform.
    """
    report = CheckReport(checks_run=["schedule", "feasibility", "pathcache"])
    report.extend(check_schedule(schedule))
    scenarios = analysis.scenarios if analysis is not None else None
    report.extend(check_scenario_feasibility(schedule, scenarios))
    report.extend(check_pathcache(schedule, analysis))
    return report


def assert_clean(report: CheckReport, context: str = "") -> CheckReport:
    """Raise :class:`CheckError` if the report carries any error.

    Returns the report unchanged when clean, so the call composes:
    ``assert_clean(verify_schedule(s), "after re-scheduling")``.
    """
    if report.ok:
        return report
    prefix = f"{context}: " if context else ""
    codes = ", ".join(sorted({d.code for d in report.errors}))
    raise CheckError(
        f"{prefix}static verification failed with {len(report.errors)} "
        f"error(s) ({codes})\n{report.render_text()}",
        report,
    )
