"""Committed waiver baseline for the repository analysis gate.

The CI gate (``repro check --repo``) fails on any finding that is
neither suppressed in-line (``# lint: ignore[CODE]``) nor waived here.
In-line comments are for one-line exceptions; the baseline is for
*structural* waivers — a whole function whose job is to read the clock,
a rule that is conservative by design around one idiom — where peppering
the source with comments would bury the signal.

The file (``lint-baseline.json`` at the repo root) is a JSON object:

.. code-block:: json

    {
        "version": 1,
        "waivers": [
            {
                "code": "DET202",
                "file": "src/repro/obs/trace.py",
                "symbol": "repro.obs.trace:Tracer._now",
                "reason": "trace timestamps are wall-clock by design"
            }
        ]
    }

A waiver matches a finding when the ``code`` is equal and, where given,
``file`` equals the finding's path and ``symbol`` equals the finding's
symbol (the qualified name of the enclosing function).  Matching on
symbols instead of line numbers keeps waivers stable across unrelated
edits.  ``reason`` is mandatory — an unexplained waiver is a finding in
its own right.  Unused waivers are reported so the baseline cannot
accumulate dead entries.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .diagnostics import CODE_REGISTRY, Diagnostic

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed."""


@dataclass(frozen=True)
class Waiver:
    """One baseline entry; empty ``file``/``symbol`` match anything."""

    code: str
    file: str = ""
    symbol: str = ""
    reason: str = ""

    def matches(self, diagnostic: Diagnostic) -> bool:
        if diagnostic.code != self.code:
            return False
        if self.file:
            path = diagnostic.subject.rsplit(":", 2)[0] if diagnostic.subject else ""
            if _normalize(path) != _normalize(self.file):
                return False
        if self.symbol and diagnostic.symbol != self.symbol:
            return False
        return True

    def to_dict(self) -> Dict[str, str]:
        record = {"code": self.code}
        if self.file:
            record["file"] = self.file
        if self.symbol:
            record["symbol"] = self.symbol
        record["reason"] = self.reason
        return record


def _normalize(path: str) -> str:
    return path.replace("\\", "/").lstrip("./")


def load_baseline(path: Path) -> List[Waiver]:
    """Parse a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return []
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise BaselineError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(f"{path}: expected object with version={BASELINE_VERSION}")
    entries = payload.get("waivers")
    if not isinstance(entries, list):
        raise BaselineError(f"{path}: 'waivers' must be an array")
    waivers: List[Waiver] = []
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise BaselineError(f"{path}: waivers[{index}] is not an object")
        code = entry.get("code")
        if not isinstance(code, str) or code not in CODE_REGISTRY:
            raise BaselineError(
                f"{path}: waivers[{index}].code {code!r} is not a registered "
                "diagnostic code"
            )
        reason = entry.get("reason")
        if not isinstance(reason, str) or not reason.strip():
            raise BaselineError(
                f"{path}: waivers[{index}] ({code}) has no reason; every "
                "waiver must say why"
            )
        waivers.append(
            Waiver(
                code=code,
                file=str(entry.get("file", "")),
                symbol=str(entry.get("symbol", "")),
                reason=reason,
            )
        )
    return waivers


def apply_baseline(
    diagnostics: Sequence[Diagnostic], waivers: Sequence[Waiver]
) -> Tuple[List[Diagnostic], List[Diagnostic], List[Waiver]]:
    """Split findings into (unwaived, waived); also return unused waivers."""
    unwaived: List[Diagnostic] = []
    waived: List[Diagnostic] = []
    used = [False] * len(waivers)
    for diagnostic in diagnostics:
        hit = False
        for index, waiver in enumerate(waivers):
            if waiver.matches(diagnostic):
                used[index] = True
                hit = True
                break
        (waived if hit else unwaived).append(diagnostic)
    unused = [w for w, u in zip(waivers, used) if not u]
    return unwaived, waived, unused


def write_baseline(
    path: Path,
    diagnostics: Sequence[Diagnostic],
    reason: str,
    keep: Sequence[Waiver] = (),
) -> List[Waiver]:
    """Write a baseline waiving every finding in ``diagnostics``.

    Intended for ``repro check --repo --update-baseline``: existing
    entries in ``keep`` (typically the still-matching waivers of the
    previous baseline) are carried over with their hand-written
    reasons; findings they already cover get no new entry.  New entries
    are keyed on (code, file, symbol), deduplicated, and share the
    placeholder ``reason`` — refine it by hand afterwards.
    """
    seen = set()
    waivers: List[Waiver] = list(keep)
    for diagnostic in diagnostics:
        if any(waiver.matches(diagnostic) for waiver in keep):
            continue
        file = (
            diagnostic.subject.rsplit(":", 2)[0] if diagnostic.subject else ""
        )
        key = (diagnostic.code, file, diagnostic.symbol)
        if key in seen:
            continue
        seen.add(key)
        waivers.append(
            Waiver(
                code=diagnostic.code,
                file=file,
                symbol=diagnostic.symbol,
                reason=reason,
            )
        )
    waivers.sort(key=lambda w: (w.code, w.file, w.symbol))
    payload = {
        "version": BASELINE_VERSION,
        "waivers": [w.to_dict() for w in waivers],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return waivers
