"""Repository AST lint — rules distilled from this project's own bugs.

PR 1 fixed three latent-bug families that ordinary review had let
through: a shared mutable dataclass default (``AdaptiveConfig()`` leaked
window state between controllers), a silent ``except Exception: pass``
(swallowed real cycle errors in the modal DVFS clone), and exact float
comparisons on derived times.  This linter turns each family into a
machine-checked rule so none of them regresses:

``AST101`` — **mutable default argument / shared dataclass default.**
    A function parameter default that is a mutable literal (list, dict,
    set, comprehension) or a constructor call is evaluated *once* and
    shared across calls.  The same applies to a ``@dataclass`` field
    default that is a constructor call or ``field(default=<mutable>)``
    — use ``field(default_factory=...)``.  Calls to known-immutable
    builtins (``tuple``, ``frozenset``, ``object`` sentinels, ...) are
    allowed.

``AST102`` — **blind exception handler.**
    A bare ``except:`` anywhere, or an ``except Exception:`` /
    ``except BaseException:`` whose body only ``pass``es — both hide
    unrelated failures (the modal-DVFS bug).  Handling ``Exception``
    and *doing something* (log, count, re-raise) is fine; swallowing it
    is not.

``AST103`` — **float equality.**
    ``==`` / ``!=`` against a float literal compares derived times,
    energies or speeds for bit-exactness; use a tolerance from
    :mod:`repro.check.tolerances` or an inequality.  Test files and
    benchmarks are exempt — asserting an exactly-constructed value is
    the point of a unit test.

``AST104`` — **private tolerance constant.**
    A module-level assignment to an uppercase name ending in ``_TOL``
    or ``_EPS`` outside ``repro/check/tolerances.py`` re-grows exactly
    the scattered-epsilon drift the PR-2 unification removed (the
    stretching stage's ``_CERTAIN_TOL`` slipped through it and went
    stale against the shared module).  Import the constant from
    :mod:`repro.check.tolerances` instead — and if no shared constant
    fits, add one there so every layer sees the same value.

Suppression: append ``# lint: ignore[AST103]`` (or a bare
``# lint: ignore``) to the offending line when a finding is a
deliberate exception; the comment documents the waiver in place.

Run as ``python -m repro.check.astlint src tests`` (exit code 1 when
any finding survives suppression); the CI lint job does exactly that.
"""

from __future__ import annotations

import argparse
import ast
import re
import sys
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .diagnostics import CheckReport, Diagnostic

#: Call targets allowed as parameter/field defaults: immutable results
#: (or the conventional ``object()`` identity sentinel).
_IMMUTABLE_CALLS: Set[str] = {
    "tuple",
    "frozenset",
    "int",
    "float",
    "bool",
    "str",
    "bytes",
    "complex",
    "object",
    "Decimal",
    "Fraction",
    "Path",
}

#: Directory names whose files are exempt from the float-equality rule.
_FLOAT_EQ_EXEMPT_DIRS: Set[str] = {"tests", "benchmarks"}


def _is_tolerance_name(name: str) -> bool:
    """Whether a binding name looks like a private tolerance constant."""
    bare = name.lstrip("_")
    if not bare or not bare.isupper():
        return False
    return bare in ("TOL", "EPS") or bare.endswith(("_TOL", "_EPS"))

_SUPPRESS_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?")


def suppression_table(source: str) -> Dict[int, Optional[Set[str]]]:
    """Line → suppressed codes (``None`` = every code) from comments.

    A ``# lint: ignore`` comment suppresses every code on its line; the
    bracketed form names one or more comma-separated codes
    (``# lint: ignore[AST101,DET201]``).  The flow-rule engine
    (:mod:`repro.check.flow`) consumes the same syntax, so one waiver
    comment can silence findings of both analysers on a line.
    """
    table: Dict[int, Optional[Set[str]]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESS_RE.search(line)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            table[lineno] = None
        else:
            table[lineno] = {c.strip() for c in codes.split(",") if c.strip()}
    return table


def apply_suppressions(
    source: str, found: Iterable[Tuple[str, int, int, str]]
) -> List[Tuple[str, int, int, str]]:
    """Drop ``(code, lineno, col, message)`` findings waived in ``source``."""
    suppressed = suppression_table(source)
    survivors = []
    for code, lineno, col, message in found:
        waiver = suppressed.get(lineno, "absent")
        if waiver is None or (waiver != "absent" and code in waiver):
            continue
        survivors.append((code, lineno, col, message))
    return survivors


#: Backwards-compatible alias (pre-column-numbers name).
_suppressions = suppression_table


def _call_name(node: ast.Call) -> Optional[str]:
    """Trailing identifier of a call target (``a.b.C()`` → ``"C"``)."""
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mutable_default(node: ast.expr) -> Optional[str]:
    """Why a default expression is shared-mutable, or ``None`` if safe."""
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return "a mutable literal"
    if isinstance(node, ast.Call):
        name = _call_name(node)
        if name is None or name not in _IMMUTABLE_CALLS:
            rendered = name or "<expression>"
            return f"a call to {rendered}() evaluated once at definition time"
    return None


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _exception_names(handler_type: Optional[ast.expr]) -> List[str]:
    if handler_type is None:
        return []
    nodes: Iterable[ast.expr]
    nodes = handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name):
            names.append(node.id)
        elif isinstance(node, ast.Attribute):
            names.append(node.attr)
    return names


def _body_is_silent(body: Sequence[ast.stmt]) -> bool:
    """Whether a handler body does nothing but swallow."""
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in body
    )


class _Linter(ast.NodeVisitor):
    """Single-file rule visitor; findings accumulate on ``self.found``."""

    def __init__(
        self, filename: str, float_eq_exempt: bool, tolerance_home: bool = False
    ) -> None:
        self.filename = filename
        self.float_eq_exempt = float_eq_exempt
        self.tolerance_home = tolerance_home
        self._scope_depth = 0  # 0 = module level; AST104 only fires there
        self.found: List[Tuple[str, int, int, str]] = []  # (code, line, col, message)

    # -- AST101: function defaults --------------------------------------
    def _check_defaults(self, node) -> None:
        args = node.args
        for default in [*args.defaults, *args.kw_defaults]:
            if default is None:
                continue
            reason = _mutable_default(default)
            if reason is not None:
                self.found.append(
                    (
                        "AST101",
                        default.lineno,
                        default.col_offset + 1,
                        f"default of an argument of {getattr(node, 'name', '<lambda>')!r} "
                        f"is {reason}; use None + in-body construction or "
                        "field(default_factory=...)",
                    )
                )

    def _visit_scope(self, node) -> None:
        self._scope_depth += 1
        try:
            self.generic_visit(node)
        finally:
            self._scope_depth -= 1

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._visit_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self._visit_scope(node)

    # -- AST101: dataclass field defaults --------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if _is_dataclass_decorated(node):
            for stmt in node.body:
                if not isinstance(stmt, ast.AnnAssign) or stmt.value is None:
                    continue
                value = stmt.value
                if isinstance(value, ast.Call) and _call_name(value) == "field":
                    for keyword in value.keywords:
                        if keyword.arg != "default":
                            continue
                        reason = _mutable_default(keyword.value)
                        if reason is not None:
                            self.found.append(
                                (
                                    "AST101",
                                    keyword.value.lineno,
                                    keyword.value.col_offset + 1,
                                    f"field(default=...) in dataclass "
                                    f"{node.name!r} is {reason}; use "
                                    "default_factory",
                                )
                            )
                else:
                    reason = _mutable_default(value)
                    if reason is not None:
                        self.found.append(
                            (
                                "AST101",
                                value.lineno,
                                value.col_offset + 1,
                                f"dataclass {node.name!r} field default is "
                                f"{reason} shared by every instance; use "
                                "field(default_factory=...)",
                            )
                        )
        self._visit_scope(node)

    # -- AST104: private tolerance constants ------------------------------
    def _check_tolerance_binding(self, target: ast.expr) -> None:
        if self._scope_depth > 0 or self.tolerance_home:
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._check_tolerance_binding(element)
            return
        if isinstance(target, ast.Name) and _is_tolerance_name(target.id):
            self.found.append(
                (
                    "AST104",
                    target.lineno,
                    target.col_offset + 1,
                    f"module-level tolerance constant {target.id!r} outside "
                    "repro.check.tolerances; import the shared value (or add "
                    "one there) so comparison epsilons cannot drift apart",
                )
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_tolerance_binding(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_tolerance_binding(node.target)
        self.generic_visit(node)

    # -- AST102: blind except --------------------------------------------
    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self.found.append(
                (
                    "AST102",
                    node.lineno,
                    node.col_offset + 1,
                    "bare 'except:' catches SystemExit/KeyboardInterrupt too; "
                    "name the exceptions this handler is for",
                )
            )
        else:
            names = _exception_names(node.type)
            if (
                any(n in ("Exception", "BaseException") for n in names)
                and _body_is_silent(node.body)
            ):
                self.found.append(
                    (
                        "AST102",
                        node.lineno,
                        node.col_offset + 1,
                        f"'except {'/'.join(names)}: pass' silently swallows "
                        "every failure; narrow the exception type or handle it",
                    )
                )
        self.generic_visit(node)

    # -- AST103: float equality ------------------------------------------
    def visit_Compare(self, node: ast.Compare) -> None:
        if not self.float_eq_exempt and any(
            isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops
        ):
            operands = [node.left, *node.comparators]
            if any(
                isinstance(operand, ast.Constant) and isinstance(operand.value, float)
                for operand in operands
            ):
                self.found.append(
                    (
                        "AST103",
                        node.lineno,
                        node.col_offset + 1,
                        "'==' / '!=' against a float literal; compare with a "
                        "tolerance from repro.check.tolerances instead",
                    )
                )
        self.generic_visit(node)


def _float_eq_exempt(path: Path) -> bool:
    parts = set(path.parts[:-1])
    name = path.name
    return (
        bool(parts & _FLOAT_EQ_EXEMPT_DIRS)
        or name.startswith("test_")
        or name == "conftest.py"
    )


def _is_tolerance_home(path: Path) -> bool:
    """Whether a path is the shared tolerances module itself."""
    return path.name == "tolerances.py" and "check" in path.parts


def lint_source(
    source: str,
    filename: str = "<string>",
    float_eq_exempt: bool = False,
    tolerance_home: bool = False,
) -> List[Diagnostic]:
    """Lint one source string; returns surviving findings."""
    tree = ast.parse(source, filename=filename)
    linter = _Linter(filename, float_eq_exempt, tolerance_home)
    linter.visit(tree)
    survivors = apply_suppressions(
        source, sorted(linter.found, key=lambda f: (f[1], f[2], f[0]))
    )
    return [
        Diagnostic(code, message, subject=f"{filename}:{lineno}:{col}")
        for code, lineno, col, message in survivors
    ]


def lint_paths(paths: Sequence[Path]) -> CheckReport:
    """Lint every ``*.py`` file under the given files/directories."""
    report = CheckReport(checks_run=["astlint"])
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        else:
            files.append(path)
    for file in files:
        source = file.read_text(encoding="utf-8")
        report.extend(
            lint_source(
                source,
                filename=str(file),
                float_eq_exempt=_float_eq_exempt(file),
                tolerance_home=_is_tolerance_home(file),
            )
        )
    return report


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.check.astlint",
        description="repo-specific AST lint (AST101 mutable defaults, "
        "AST102 blind except, AST103 float equality, AST104 private "
        "tolerance constants)",
    )
    parser.add_argument("paths", nargs="+", type=Path, metavar="PATH")
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    args = parser.parse_args(argv)
    missing = [p for p in args.paths if not p.exists()]
    if missing:
        print(f"no such path: {', '.join(map(str, missing))}", file=sys.stderr)
        return 2
    report = lint_paths(args.paths)
    if args.json:
        print(report.to_json())
    else:
        for diagnostic in report:
            print(diagnostic)
        print(report.summary())
    return 0 if report.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
