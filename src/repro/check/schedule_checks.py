"""Structural soundness checks on a built schedule.

Extends :meth:`Schedule.validate` into a report-collecting checker that
verifies everything the simulator and the stretching stage *assume*
about a schedule, without running either:

* placement completeness and PE support (``SCHED001``/``SCHED002``);
* DVFS speeds inside each PE's envelope and, for discrete PEs, on the
  level set (``PLAT003``/``PLAT004``);
* placement order consistent with real precedence (``SCHED010``);
* placement exclusivity — non-mutually-exclusive tasks sharing a PE
  must be serialised by a pseudo/real path (``SCHED021``) and must not
  overlap in the derived worst-case timing (``SCHED020``);
* link bookings: existing links, endpoints matching the mapping,
  durations matching bandwidth, no overlap between transfers whose
  source tasks can co-occur (``LINK001``–``LINK005``, ``PLAT002``);
* the worst-case deadline bound (``SCHED030``).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

import networkx as nx

from ..platform.mpsoc import PlatformError
from ..scheduling.schedule import Schedule
from .diagnostics import Diagnostic
from .tolerances import EXACT_EPS, SPEED_EPS, TIME_EPS


def check_schedule(schedule: Schedule) -> List[Diagnostic]:
    """All structural findings for one schedule."""
    findings: List[Diagnostic] = []
    findings.extend(_check_placements(schedule))
    findings.extend(_check_speeds(schedule))
    findings.extend(_check_order(schedule))
    findings.extend(_check_exclusivity(schedule))
    findings.extend(_check_links(schedule))
    findings.extend(_check_worst_case_deadline(schedule))
    return findings


def _check_placements(schedule: Schedule) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    platform = schedule.platform
    pe_names = set(platform.pe_names)
    for task in schedule.ctg.tasks():
        placement = schedule.placements.get(task)
        if placement is None:
            findings.append(
                Diagnostic("SCHED001", f"task {task!r} is not placed", subject=task)
            )
            continue
        if placement.pe not in pe_names or not platform.supports(task, placement.pe):
            findings.append(
                Diagnostic(
                    "SCHED002",
                    f"task {task!r} is mapped to {placement.pe!r}, which does "
                    "not support it",
                    subject=task,
                )
            )
    return findings


def _check_speeds(schedule: Schedule) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    platform = schedule.platform
    for task, placement in sorted(schedule.placements.items()):
        try:
            pe = platform.pe(placement.pe)
        except PlatformError:
            continue  # SCHED002 already covers the unknown PE
        speed = placement.speed
        low = pe.min_speed * (1.0 - SPEED_EPS)
        high = 1.0 + SPEED_EPS
        if not low <= speed <= high:
            findings.append(
                Diagnostic(
                    "PLAT003",
                    f"task {task!r} runs at speed {speed:.6f}, outside "
                    f"[{pe.min_speed}, 1.0] of PE {pe.name!r}",
                    subject=task,
                )
            )
        elif pe.speed_levels is not None and not any(
            abs(speed - level) <= EXACT_EPS for level in pe.speed_levels
        ):
            findings.append(
                Diagnostic(
                    "PLAT004",
                    f"task {task!r} runs at speed {speed:.6f}, which is not "
                    f"a level of PE {pe.name!r} ({list(pe.speed_levels)})",
                    subject=task,
                )
            )
    return findings


def _check_order(schedule: Schedule) -> List[Diagnostic]:
    """Placement order must be a linear extension of real precedence."""
    findings: List[Diagnostic] = []
    placements = schedule.placements
    for src, dst, _data in schedule.ctg.edges(include_pseudo=False):
        if src not in placements or dst not in placements:
            continue
        if placements[src].order_index >= placements[dst].order_index:
            findings.append(
                Diagnostic(
                    "SCHED010",
                    f"{dst!r} was placed before its predecessor {src!r} "
                    "(stretching sweeps assume precedence order)",
                    subject=f"{src}→{dst}",
                )
            )
    return findings


def _check_exclusivity(schedule: Schedule) -> List[Diagnostic]:
    """Same-PE pairs: serialisation paths and derived-time overlap."""
    findings: List[Diagnostic] = []
    graph = schedule.ctg.graph
    try:
        times = schedule.worst_case_times()
    except PlatformError:
        # broken mapping (SCHED002/PLAT002 report it) — timing is
        # undefined, but the serialisation-path findings still apply
        times = {}
    reachable: Dict[str, set] = {}

    def descendants(task: str) -> set:
        cached = reachable.get(task)
        if cached is None:
            cached = nx.descendants(graph, task)
            reachable[task] = cached
        return cached

    for pe in schedule.platform.pe_names:
        tasks = schedule.tasks_on(pe)
        for i, a in enumerate(tasks):
            for b in tasks[i + 1 :]:
                if schedule.are_exclusive(a, b):
                    continue
                pair = f"{a},{b}@{pe}"
                if b not in descendants(a) and a not in descendants(b):
                    findings.append(
                        Diagnostic(
                            "SCHED021",
                            f"tasks {a!r} and {b!r} share PE {pe!r}, are not "
                            "mutually exclusive, and no pseudo/real path "
                            "serialises them",
                            subject=pair,
                        )
                    )
                if a in times and b in times:
                    sa, fa = times[a]
                    sb, fb = times[b]
                    if sa < fb - TIME_EPS and sb < fa - TIME_EPS:
                        findings.append(
                            Diagnostic(
                                "SCHED020",
                                f"tasks {a!r} and {b!r} overlap on {pe!r}: "
                                f"[{sa:.3f},{fa:.3f}) vs [{sb:.3f},{fb:.3f})",
                                subject=pair,
                            )
                        )
    return findings


def _check_links(schedule: Schedule) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    platform = schedule.platform
    placements = schedule.placements

    # Actual cross-PE data edges must have a link (upgrade of PLAT002).
    for src, dst, data in schedule.ctg.edges(include_pseudo=False):
        if data.comm_kbytes <= 0 or src not in placements or dst not in placements:
            continue
        pe_a, pe_b = placements[src].pe, placements[dst].pe
        if pe_a != pe_b and not platform.has_link(pe_a, pe_b):
            findings.append(
                Diagnostic(
                    "PLAT002",
                    f"edge {src}→{dst} is mapped across {pe_a!r}↔{pe_b!r}, "
                    "which have no link",
                    subject=f"{pe_a}↔{pe_b}",
                )
            )

    per_link: Dict[frozenset, List[Tuple[float, float, str, int]]] = defaultdict(list)
    for index, booking in enumerate(schedule.comm_bookings):
        subject = f"{booking.src_task}→{booking.dst_task}"
        if booking.src_pe == booking.dst_pe or not platform.has_link(
            booking.src_pe, booking.dst_pe
        ):
            findings.append(
                Diagnostic(
                    "LINK001",
                    f"transfer {subject} is booked on {booking.src_pe!r}↔"
                    f"{booking.dst_pe!r}, which is not a link",
                    subject=subject,
                )
            )
            continue
        src_place = placements.get(booking.src_task)
        dst_place = placements.get(booking.dst_task)
        if (
            src_place is None
            or dst_place is None
            or src_place.pe != booking.src_pe
            or dst_place.pe != booking.dst_pe
        ):
            findings.append(
                Diagnostic(
                    "LINK002",
                    f"transfer {subject} is booked {booking.src_pe!r}→"
                    f"{booking.dst_pe!r} but the tasks are mapped elsewhere",
                    subject=subject,
                )
            )
        expected = platform.comm_time(booking.src_pe, booking.dst_pe, booking.kbytes)
        if abs(expected - booking.duration) > TIME_EPS:
            findings.append(
                Diagnostic(
                    "LINK003",
                    f"transfer {subject} is booked for {booking.duration:.6f} "
                    f"but {booking.kbytes} KB over the link takes "
                    f"{expected:.6f}",
                    subject=subject,
                )
            )
        per_link[frozenset((booking.src_pe, booking.dst_pe))].append(
            (booking.start, booking.finish, booking.src_task, index)
        )

    for key, intervals in per_link.items():
        intervals.sort()
        for i, (sa, fa, task_a, _ia) in enumerate(intervals):
            for sb, fb, task_b, _ib in intervals[i + 1 :]:
                if sb >= fa - TIME_EPS:
                    break  # sorted by start: no later interval overlaps either
                if schedule.are_exclusive(task_a, task_b):
                    continue
                if sa < fb - TIME_EPS and sb < fa - TIME_EPS:
                    link_name = "↔".join(sorted(key))
                    findings.append(
                        Diagnostic(
                            "LINK005",
                            f"transfers from {task_a!r} and {task_b!r} overlap "
                            f"on link {link_name}: [{sa:.3f},{fa:.3f}) vs "
                            f"[{sb:.3f},{fb:.3f})",
                            subject=link_name,
                        )
                    )
    return findings


def _check_worst_case_deadline(schedule: Schedule) -> List[Diagnostic]:
    deadline = schedule.ctg.deadline
    if deadline <= 0:
        return []  # CTG005/CTG006 report the missing deadline
    try:
        makespan = schedule.makespan()
    except PlatformError:
        return []  # SCHED002/PLAT002 report the broken mapping
    if makespan > deadline + TIME_EPS:
        return [
            Diagnostic(
                "SCHED030",
                f"worst-case makespan {makespan:.6f} exceeds the deadline "
                f"{deadline:.6f}",
            )
        ]
    return []
