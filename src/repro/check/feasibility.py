"""Scenario-complete deadline feasibility of a stretched schedule.

The paper's Figure-2 guarantee is that the stretching heuristic never
lets *any* scenario of the conditional task graph miss the deadline
(steps 9–10 clamp each grant against every spanning path).  The
simulator exercises that guarantee dynamically, one decision vector at
a time; this checker proves it statically, **exhaustively over the
minterm set**: for every scenario it computes the symbolic longest-path
finish time of the scenario's activated subgraph under the schedule's
current (stretched) speeds and compares it against the deadline.

The per-scenario propagation mirrors the simulator's event semantics
exactly (:class:`repro.sim.executor.InstanceExecutor`):

* only the scenario's activated tasks execute;
* a real edge contributes ``finish(src) + comm delay`` when taken — a
  conditional edge is taken only when the scenario chose its outcome;
* a pseudo edge contributes ``finish(src)`` whenever its source is
  active (same-PE serialisation binds regardless of branch outcomes);
* an or-node additionally waits for every *activated* upstream branch
  fork that decides one of its inputs (paper Example 1 — until the
  fork resolves, the node cannot know whether data must be awaited).

Because the worst-case propagation of :meth:`Schedule.worst_case_times`
maximises over a superset of these arrivals, each scenario's finish is
bounded by the worst-case makespan — so on an intact schedule this
check is implied by ``SCHED030``.  Its value is *diagnostic precision*
on corrupted or hand-edited schedules: it names the exact minterm that
breaks and by how much, instead of one global bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..ctg.minterms import Scenario, enumerate_scenarios
from ..platform.mpsoc import PlatformError
from ..scheduling.schedule import Schedule
from .diagnostics import Diagnostic
from .tolerances import TIME_EPS


def scenario_finish_time(schedule: Schedule, scenario: Scenario) -> float:
    """Finish time of one scenario under the schedule's current speeds.

    Unplaced tasks are skipped (``SCHED001`` reports them); the result
    is then a lower bound, which keeps the feasibility findings sound.
    """
    ctg = schedule.ctg
    real = ctg.without_pseudo_edges()
    decisions = scenario.product.assignment
    active = scenario.active
    delays = schedule.edge_delays()

    finishes: Dict[str, float] = {}
    finish_time = 0.0
    for task in ctg.topological_order():
        if task not in active or task not in schedule.placements:
            continue
        start = 0.0
        for src, _dst, data in ctg.in_edges(task, include_pseudo=True):
            if src not in active or src not in finishes:
                continue
            if data.pseudo:
                start = max(start, finishes[src])
                continue
            if data.condition is not None and (
                decisions.get(data.condition.branch) != data.condition.label
            ):
                continue
            start = max(start, finishes[src] + delays.get((src, task), 0.0))
        if ctg.kind(task).value == "or":
            for branch in real.deciding_branches(task):
                if branch in active and branch in finishes:
                    start = max(start, finishes[branch])
        finishes[task] = start + schedule.placement(task).duration
        finish_time = max(finish_time, finishes[task])
    return finish_time


def check_scenario_feasibility(
    schedule: Schedule,
    scenarios: Optional[Sequence[Scenario]] = None,
    deadline: Optional[float] = None,
) -> List[Diagnostic]:
    """``SCHED031`` findings: one per minterm that misses the deadline.

    ``scenarios`` defaults to enumerating the schedule's own graph
    (pass ``CtgAnalysis.scenarios`` to reuse a cached enumeration);
    ``deadline`` defaults to the graph's.
    """
    limit = schedule.ctg.deadline if deadline is None else deadline
    if limit <= 0:
        return []  # CTG005/CTG006 report the missing deadline
    try:
        schedule.edge_delays()
    except PlatformError:
        return []  # broken mapping; SCHED002/PLAT002 report the cause
    if scenarios is None:
        scenarios = enumerate_scenarios(schedule.ctg.without_pseudo_edges())
    findings: List[Diagnostic] = []
    for scenario in scenarios:
        finish = scenario_finish_time(schedule, scenario)
        if finish > limit + TIME_EPS:
            findings.append(
                Diagnostic(
                    "SCHED031",
                    f"scenario {scenario.product} finishes at {finish:.6f}, "
                    f"{finish - limit:.6f} past the deadline {limit:.6f} "
                    "under the stretched speeds",
                    subject=str(scenario.product),
                )
            )
    return findings
