"""Checker for fault plans (FAULT diagnostic codes).

Semantic validation lives on :meth:`repro.faults.plan.FaultPlan.diagnose`
(the faults package owns its own invariants); this module adapts it to
the ``repro.check`` conventions — accept either a plan object or a raw
JSON payload, wrap the findings in a :class:`CheckReport`, and turn
structural :class:`~repro.faults.plan.FaultPlanError` problems into
FAULT001 findings instead of exceptions so CI gets a report either way.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping, Optional, Union

from .diagnostics import CheckReport, Diagnostic

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from ..faults.plan import FaultPlan


def check_fault_plan(
    plan: Union["FaultPlan", Mapping[str, Any]],
    ctg: Optional[Any] = None,
    platform: Optional[Any] = None,
) -> CheckReport:
    """Verify a fault plan (object or raw ``to_dict`` payload).

    With a ``ctg``/``platform``, injector targets are resolved against
    the instance; without them only instance-independent rules run.
    """
    from ..faults.plan import FaultPlan, FaultPlanError

    report = CheckReport(checks_run=["fault_plan"])
    if not isinstance(plan, FaultPlan):
        try:
            plan = FaultPlan.from_dict(plan)
        except FaultPlanError as exc:
            report.add(
                Diagnostic("FAULT001", f"malformed fault plan payload: {exc}")
            )
            return report
    report.extend(plan.diagnose(ctg=ctg, platform=platform))
    return report
