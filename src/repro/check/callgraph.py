"""Module-resolving call graph over a Python source tree.

The flow-rule engine (:mod:`repro.check.flow`) needs to know which
functions can contribute values to a *canonical output* — a cached cell
result, a byte-stable artifact, a metrics snapshot, a cache key.  Call
chains answer that question conservatively: every function reachable
(in the call direction) from a canonical-output producer may compute a
value that ends up canonical, so order/clock hazards inside it are
correctness bugs, not style issues.

The graph is a deliberate **over-approximation**:

* a call through a plain name resolves through the module's own
  top-level functions and its ``from``-imports;
* ``alias.attr(...)`` resolves through ``import`` aliases when the
  target module is part of the analysed tree;
* any other attribute call (``obj.method(...)``) links to *every*
  known function or method of that name anywhere in the tree — we
  never miss an edge at the price of spurious ones;
* a bare *reference* to a known function (callbacks, registrations)
  counts as a call, so functions dispatched indirectly stay reachable.

Roots are (a) the canonical-output producers themselves (matched by
bare name, see :data:`CANONICAL_PRODUCERS`) and (b) every function
registered as an ``ExperimentSpec`` ``cell_function`` or ``reducer`` —
their return values are fingerprinted, cached and folded into
artifacts, so everything they can call is on a canonical path.

Construction is **byte-stable**: files are processed in sorted order
and every output collection is sorted, so the serialised payload (and
therefore the disk cache, keyed on a fingerprint of the sources) is
identical across runs, platforms and input orderings.
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

#: Bare names of functions whose output is canonical by contract:
#: content hashes, cache keys, byte-stable artifacts and snapshots.
CANONICAL_PRODUCERS: FrozenSet[str] = frozenset(
    {
        "canonical_json",
        "fingerprint",
        "instance_fingerprint",
        "fingerprint_of",
        "artifact_payload",
        "canonical_artifact_payload",
        "write_artifact",
        "metrics_snapshot",
        "write_metrics_snapshot",
    }
)

#: Annotation names treated as "this attribute is a set" when they
#: annotate a class attribute (``active: FrozenSet[str]``).
_SET_ANNOTATIONS = {"set", "frozenset", "Set", "FrozenSet", "AbstractSet", "MutableSet"}

#: Synthetic function name for statements at module level.
MODULE_SCOPE = "<module>"


@dataclass(frozen=True)
class FunctionInfo:
    """One function (or method, or module body) of the analysed tree."""

    qualname: str  #: ``module:Class.method`` / ``module:func`` / ``module:<module>``
    module: str
    name: str  #: trailing bare name
    path: str  #: source file, as given to the parser
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "name": self.name,
            "path": self.path,
            "lineno": self.lineno,
            "col": self.col,
        }


@dataclass(frozen=True)
class CellRegistration:
    """One ``cell_function=``/``reducer=`` argument of an ``ExperimentSpec`` call."""

    role: str  #: ``"cell_function"`` or ``"reducer"``
    qualname: Optional[str]  #: resolved target, ``None`` if not module-level
    kind: str  #: ``"function"`` | ``"lambda"`` | ``"nested"`` | ``"opaque"``
    path: str
    lineno: int
    col: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "role": self.role,
            "qualname": self.qualname,
            "kind": self.kind,
            "path": self.path,
            "lineno": self.lineno,
            "col": self.col,
        }


@dataclass
class ModuleInfo:
    """Parsed view of one module: AST plus resolution tables."""

    name: str
    path: str
    source: str
    tree: ast.Module
    #: top-level function bare name → qualname
    functions: Dict[str, str] = field(default_factory=dict)
    #: ``import x.y as z`` → ``{"z": "x.y"}``; plain ``import x.y`` → ``{"x": "x"}``
    import_aliases: Dict[str, str] = field(default_factory=dict)
    #: ``from m import f as g`` → ``{"g": ("m", "f")}``
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    #: module-level names bound to mutable literals / mutable constructors
    global_mutables: Set[str] = field(default_factory=set)
    #: class-attribute names annotated with a set type in this module
    set_attrs: Set[str] = field(default_factory=set)
    #: every function scope in the module (including ``<module>``)
    function_infos: List[FunctionInfo] = field(default_factory=list)
    #: qualname → AST node (functions only; ``<module>`` maps to the tree)
    nodes: Dict[str, ast.AST] = field(default_factory=dict)

    def resolve_import_root(self, name: str) -> Optional[str]:
        """Dotted module a top-level alias refers to, if imported."""
        return self.import_aliases.get(name)


def module_name_for(path: Path, src_root: Path) -> str:
    """Dotted module name of ``path`` relative to ``src_root``."""
    rel = path.resolve().relative_to(src_root.resolve())
    parts = list(rel.parts)
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts)


def _resolve_relative(module: str, node: ast.ImportFrom, is_package: bool) -> str:
    """Absolute module a ``from . import`` / ``from ..m import`` names."""
    if node.level == 0:
        return node.module or ""
    parts = module.split(".")
    # a package's __init__ counts as one level deeper than its name
    keep = len(parts) - node.level + (1 if is_package else 0)
    base = parts[:max(keep, 0)]
    if node.module:
        base.append(node.module)
    return ".".join(base)


class _ModuleVisitor(ast.NodeVisitor):
    """Collects functions, imports, globals and annotations of one module."""

    def __init__(self, info: ModuleInfo, is_package: bool) -> None:
        self.info = info
        self.is_package = is_package
        self._stack: List[str] = []  # qualname parts inside the module

    # -- imports ---------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.asname:
                self.info.import_aliases[alias.asname] = alias.name
            else:
                root = alias.name.split(".")[0]
                self.info.import_aliases[root] = root

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = _resolve_relative(self.info.name, node, self.is_package)
        for alias in node.names:
            local = alias.asname or alias.name
            self.info.from_imports[local] = (target, alias.name)

    # -- functions and classes ------------------------------------------
    def _qualify(self, name: str) -> str:
        inner = ".".join([*self._stack, name])
        return f"{self.info.name}:{inner}"

    def _visit_function(self, node) -> None:
        qualname = self._qualify(node.name)
        info = FunctionInfo(
            qualname=qualname,
            module=self.info.name,
            name=node.name,
            path=self.info.path,
            lineno=node.lineno,
            col=node.col_offset + 1,
        )
        self.info.function_infos.append(info)
        self.info.nodes[qualname] = node
        if not self._stack:
            self.info.functions[node.name] = qualname
        self._stack.append(node.name)
        # nested scopes get ``outer.<locals>.inner``-free simple dotted
        # names; uniqueness is not required for resolution, only display
        self.generic_visit(node)
        self._stack.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        for stmt in node.body:
            if (
                isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and _is_set_annotation(stmt.annotation)
            ):
                self.info.set_attrs.add(stmt.target.id)
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    # -- module-level mutable globals -----------------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if not self._stack and _is_mutable_binding(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    self.info.global_mutables.add(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if (
            not self._stack
            and node.value is not None
            and _is_mutable_binding(node.value)
            and isinstance(node.target, ast.Name)
        ):
            self.info.global_mutables.add(node.target.id)
        self.generic_visit(node)


def _is_set_annotation(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in _SET_ANNOTATIONS
    if isinstance(node, ast.Name):
        return node.id in _SET_ANNOTATIONS
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.split("[", 1)[0].split(".")[-1]
        return text in _SET_ANNOTATIONS
    return False


_MUTABLE_CONSTRUCTORS = {"dict", "list", "set", "defaultdict", "OrderedDict", "deque", "Counter"}


def _is_mutable_binding(value: ast.expr) -> bool:
    if isinstance(value, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(value, ast.Call):
        func = value.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", None)
        return name in _MUTABLE_CONSTRUCTORS
    return False


def parse_module_source(
    name: str, path: str, source: str, is_package: bool = False
) -> ModuleInfo:
    """Parse one module from in-memory source into a :class:`ModuleInfo`."""
    tree = ast.parse(source, filename=path)
    info = ModuleInfo(name=name, path=path, source=source, tree=tree)
    module_scope = f"{name}:{MODULE_SCOPE}"
    info.function_infos.append(
        FunctionInfo(
            qualname=module_scope,
            module=name,
            name=MODULE_SCOPE,
            path=path,
            lineno=1,
            col=1,
        )
    )
    info.nodes[module_scope] = tree
    _ModuleVisitor(info, is_package=is_package).visit(tree)
    return info


def parse_modules(files: Sequence[Path], src_root: Path) -> Dict[str, ModuleInfo]:
    """Parse every file into a :class:`ModuleInfo`, keyed by module name.

    Files are processed in sorted order so every derived structure is
    independent of the caller's ordering.
    """
    modules: Dict[str, ModuleInfo] = {}
    for path in sorted(files, key=lambda p: p.resolve().as_posix()):
        source = path.read_text(encoding="utf-8")
        name = module_name_for(path, src_root)
        info = parse_module_source(
            name, str(path), source, is_package=path.name == "__init__.py"
        )
        modules[name] = info
    return modules


@dataclass
class CallGraph:
    """The resolved call graph plus the registration/root metadata."""

    functions: Dict[str, FunctionInfo]
    edges: Dict[str, Tuple[str, ...]]
    registrations: Tuple[CellRegistration, ...]
    set_attrs: FrozenSet[str]
    source_fingerprint: str = ""

    # -- queries ---------------------------------------------------------
    def cell_functions(self) -> Tuple[str, ...]:
        """Qualnames registered as cell functions or reducers, sorted."""
        return tuple(
            sorted({r.qualname for r in self.registrations if r.qualname is not None})
        )

    def roots(self) -> Tuple[str, ...]:
        """Canonical-output roots: producers + registered cells/reducers."""
        named = {
            q
            for q, info in self.functions.items()
            if info.name in CANONICAL_PRODUCERS
        }
        named.update(self.cell_functions())
        return tuple(sorted(named))

    def reachable(self, roots: Optional[Sequence[str]] = None) -> FrozenSet[str]:
        """Every function reachable from ``roots`` (default: canonical roots)."""
        frontier = list(self.roots() if roots is None else roots)
        seen: Set[str] = set(frontier)
        while frontier:
            current = frontier.pop()
            for callee in self.edges.get(current, ()):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    # -- serialisation ---------------------------------------------------
    def to_payload(self) -> Dict[str, object]:
        """JSON-ready, byte-stable representation (sorted everywhere)."""
        return {
            "version": 1,
            "source_fingerprint": self.source_fingerprint,
            "functions": [
                self.functions[q].to_dict() for q in sorted(self.functions)
            ],
            "edges": {
                caller: list(callees)
                for caller, callees in sorted(self.edges.items())
            },
            "registrations": [r.to_dict() for r in self.registrations],
            "set_attrs": sorted(self.set_attrs),
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, object]) -> "CallGraph":
        functions = {
            rec["qualname"]: FunctionInfo(**rec) for rec in payload["functions"]
        }
        edges = {
            caller: tuple(callees)
            for caller, callees in payload["edges"].items()
        }
        registrations = tuple(
            CellRegistration(**rec) for rec in payload["registrations"]
        )
        return cls(
            functions=functions,
            edges=edges,
            registrations=registrations,
            set_attrs=frozenset(payload["set_attrs"]),
            source_fingerprint=str(payload.get("source_fingerprint", "")),
        )


class _CallCollector(ast.NodeVisitor):
    """Collects call/reference edges and spec registrations of one scope."""

    def __init__(
        self,
        graph_builder: "_GraphBuilder",
        module: ModuleInfo,
        caller: str,
    ) -> None:
        self.b = graph_builder
        self.module = module
        self.caller = caller
        self.edges: Set[str] = set()
        self.registrations: List[CellRegistration] = []
        self._local_defs: Set[str] = set()

    # nested scopes are collected separately; record their names so a
    # registration of a nested function is recognised as such, then skip
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._local_defs.add(node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._local_defs.add(node.name)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        pass

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        trailing = (
            func.attr
            if isinstance(func, ast.Attribute)
            else getattr(func, "id", None)
        )
        if trailing == "ExperimentSpec":
            self._record_registration(node)
        if isinstance(func, ast.Name):
            self.edges.update(self.b.resolve_name(self.module, func.id))
        elif isinstance(func, ast.Attribute):
            self.edges.update(self._resolve_attribute(func))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        # a bare reference to a known function is a potential call site
        # (callbacks, registrations, partial application)
        if isinstance(node.ctx, ast.Load):
            self.edges.update(self.b.resolve_name(self.module, node.id))

    def _resolve_attribute(self, func: ast.Attribute) -> Set[str]:
        value = func.value
        if isinstance(value, ast.Name):
            target = self.module.resolve_import_root(value.id)
            if target is not None:
                resolved = self.b.resolve_module_attr(target, func.attr)
                if resolved:
                    return resolved
        # method-style call: conservatively link every same-named function
        return self.b.by_bare_name.get(func.attr, set())

    def _record_registration(self, node: ast.Call) -> None:
        for keyword in node.keywords:
            if keyword.arg not in ("cell_function", "reducer"):
                continue
            value = keyword.value
            qualname: Optional[str] = None
            if isinstance(value, ast.Lambda):
                kind = "lambda"
            elif isinstance(value, ast.Name):
                if value.id in self._local_defs:
                    kind = "nested"
                else:
                    resolved = sorted(self.b.resolve_name(self.module, value.id))
                    if resolved:
                        kind = "function"
                        qualname = resolved[0]
                    else:
                        kind = "opaque"
            else:
                kind = "opaque"
            self.registrations.append(
                CellRegistration(
                    role=keyword.arg,
                    qualname=qualname,
                    kind=kind,
                    path=self.module.path,
                    lineno=value.lineno,
                    col=value.col_offset + 1,
                )
            )


class _GraphBuilder:
    """Shared resolution tables across all modules."""

    def __init__(self, modules: Mapping[str, ModuleInfo]) -> None:
        self.modules = modules
        self.by_bare_name: Dict[str, Set[str]] = {}
        for module in modules.values():
            for info in module.function_infos:
                if info.name != MODULE_SCOPE:
                    self.by_bare_name.setdefault(info.name, set()).add(info.qualname)

    def resolve_module_attr(self, module_name: str, attr: str) -> Set[str]:
        """``module_name.attr`` → qualnames (follows one re-export hop)."""
        module = self.modules.get(module_name)
        if module is None:
            return set()
        if attr in module.functions:
            return {module.functions[attr]}
        if attr in module.from_imports:
            target, original = module.from_imports[attr]
            hop = self.modules.get(target)
            if hop is not None and original in hop.functions:
                return {hop.functions[original]}
            return self.by_bare_name.get(original, set())
        return set()

    def resolve_name(self, module: ModuleInfo, name: str) -> Set[str]:
        """A bare name in ``module`` → candidate function qualnames."""
        if name in module.functions:
            return {module.functions[name]}
        if name in module.from_imports:
            target, original = module.from_imports[name]
            hop = self.modules.get(target)
            if hop is not None and original in hop.functions:
                return {hop.functions[original]}
            # unresolved re-export (``from . import run_spec``): link
            # every known function of that name rather than miss one
            return self.by_bare_name.get(original, set())
        return set()


def sources_fingerprint(files: Sequence[Path], src_root: Path) -> str:
    """SHA-256 over (module name, content hash) pairs, order-independent."""
    records = []
    for path in sorted(files, key=lambda p: p.resolve().as_posix()):
        digest = hashlib.sha256(path.read_bytes()).hexdigest()
        records.append(f"{module_name_for(path, src_root)}={digest}")
    return hashlib.sha256("\n".join(records).encode("utf-8")).hexdigest()


def build_callgraph(
    modules: Mapping[str, ModuleInfo], source_fingerprint: str = ""
) -> CallGraph:
    """Extract the call graph from already-parsed modules."""
    builder = _GraphBuilder(modules)
    functions: Dict[str, FunctionInfo] = {}
    edges: Dict[str, Tuple[str, ...]] = {}
    registrations: List[CellRegistration] = []
    set_attrs: Set[str] = set()
    for name in sorted(modules):
        module = modules[name]
        set_attrs.update(module.set_attrs)
        for info in module.function_infos:
            functions[info.qualname] = info
            scope_node = module.nodes[info.qualname]
            collector = _CallCollector(builder, module, info.qualname)
            if isinstance(scope_node, ast.Module):
                for stmt in scope_node.body:
                    if not isinstance(
                        stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                    ):
                        collector.visit(stmt)
            else:
                for stmt in scope_node.body:
                    collector.visit(stmt)
            resolved = {q for q in collector.edges if q != info.qualname}
            if resolved:
                edges[info.qualname] = tuple(sorted(resolved))
            registrations.extend(collector.registrations)
    # an enclosing scope can always invoke its nested functions: link
    # them so reachability flows into local helpers and closures
    nested: Dict[str, Set[str]] = {}
    for qualname in functions:
        module_part, _, inner = qualname.partition(":")
        if "." in inner:
            parent = f"{module_part}:{inner.rsplit('.', 1)[0]}"
            if parent in functions:
                nested.setdefault(parent, set()).add(qualname)
    for parent, children in nested.items():
        merged = set(edges.get(parent, ())) | children
        edges[parent] = tuple(sorted(merged))
    registrations.sort(key=lambda r: (r.path, r.lineno, r.col, r.role))
    return CallGraph(
        functions=functions,
        edges=edges,
        registrations=tuple(registrations),
        set_attrs=frozenset(set_attrs),
        source_fingerprint=source_fingerprint,
    )


def load_or_build_callgraph(
    files: Sequence[Path],
    src_root: Path,
    cache_dir: Optional[Path] = None,
) -> CallGraph:
    """Build the graph, serving it from ``cache_dir`` when the sources
    are unchanged (the cache key is :func:`sources_fingerprint`)."""
    fingerprint = sources_fingerprint(files, src_root)
    cache_path = None
    if cache_dir is not None:
        cache_path = Path(cache_dir) / f"callgraph-{fingerprint[:32]}.json"
        if cache_path.exists():
            try:
                payload = json.loads(cache_path.read_text(encoding="utf-8"))
                if payload.get("source_fingerprint") == fingerprint:
                    return CallGraph.from_payload(payload)
            except (ValueError, KeyError, TypeError):
                pass  # corrupt cache entry: rebuild below and overwrite
    modules = parse_modules(files, src_root)
    graph = build_callgraph(modules, source_fingerprint=fingerprint)
    if cache_path is not None:
        cache_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = cache_path.with_suffix(".tmp")
        tmp.write_text(
            json.dumps(graph.to_payload(), indent=None, sort_keys=True),
            encoding="utf-8",
        )
        tmp.replace(cache_path)
    return graph
