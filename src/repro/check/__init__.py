"""Static verification subsystem: checkers, diagnostics, repo lint.

Layering note: this package sits *both below and above* the rest of
``repro``.  The diagnostics core and the shared tolerance constants
(:mod:`repro.check.tolerances`, :mod:`repro.check.diagnostics`) are
imported by ``repro.ctg``/``repro.scheduling``/``repro.sim`` and must
stay dependency-free; the checkers (:mod:`repro.check.api` and
friends) import those packages back.  To keep the circle open, this
``__init__`` imports only the bottom layer eagerly and resolves the
checker API lazily via module ``__getattr__`` (PEP 562) — so
``from repro.check.tolerances import TIME_EPS`` inside
``repro.scheduling.schedule`` never re-enters the scheduling package.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .diagnostics import (
    CODE_REGISTRY,
    CODE_TABLE,
    CheckReport,
    CodeInfo,
    Diagnostic,
    Severity,
    code_info,
)
from .tolerances import EXACT_EPS, PROB_EPS, SPEED_EPS, TIME_EPS

if TYPE_CHECKING:  # pragma: no cover - static-analysis aid only
    from .api import CheckError, assert_clean, check_instance, verify_schedule
    from .baseline import Waiver, apply_baseline, load_baseline, write_baseline
    from .cache_checks import check_pathcache
    from .callgraph import CallGraph, build_callgraph, load_or_build_callgraph
    from .ctg_checks import check_ctg, check_probability_table
    from .fault_checks import check_fault_plan
    from .feasibility import check_scenario_feasibility, scenario_finish_time
    from .flow import analyze_modules, analyze_source
    from .platform_checks import check_frequency_tables, check_platform
    from .repo import RepoAnalysis, analyze_repo
    from .sarif import render_sarif, sarif_payload, validate_sarif
    from .schedule_checks import check_schedule

#: Lazily resolved names → owning submodule (PEP 562).
_LAZY = {
    "CheckError": "api",
    "assert_clean": "api",
    "check_instance": "api",
    "verify_schedule": "api",
    "check_ctg": "ctg_checks",
    "check_probability_table": "ctg_checks",
    "check_frequency_tables": "platform_checks",
    "check_platform": "platform_checks",
    "check_schedule": "schedule_checks",
    "check_scenario_feasibility": "feasibility",
    "scenario_finish_time": "feasibility",
    "check_pathcache": "cache_checks",
    "check_fault_plan": "fault_checks",
    "CallGraph": "callgraph",
    "build_callgraph": "callgraph",
    "load_or_build_callgraph": "callgraph",
    "analyze_modules": "flow",
    "analyze_source": "flow",
    "RepoAnalysis": "repo",
    "analyze_repo": "repo",
    "render_sarif": "sarif",
    "sarif_payload": "sarif",
    "validate_sarif": "sarif",
    "Waiver": "baseline",
    "apply_baseline": "baseline",
    "load_baseline": "baseline",
    "write_baseline": "baseline",
}

__all__ = [
    "CODE_REGISTRY",
    "CODE_TABLE",
    "CheckReport",
    "CodeInfo",
    "Diagnostic",
    "Severity",
    "code_info",
    "EXACT_EPS",
    "PROB_EPS",
    "SPEED_EPS",
    "TIME_EPS",
    *sorted(_LAZY),
]


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    from importlib import import_module

    module = import_module(f".{module_name}", __name__)
    value = getattr(module, name)
    globals()[name] = value  # cache for subsequent lookups
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY))
