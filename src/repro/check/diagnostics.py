"""Diagnostics core of the static verification subsystem.

Every checker in :mod:`repro.check` reports findings as
:class:`Diagnostic` records carrying a **stable error code** (``CTG012``,
``SCHED031``, ...), a severity and a human-readable message.  Codes are
declared once, centrally, in :data:`CODE_TABLE` below — the reference
documentation (``docs/diagnostics.md``) mirrors this table one entry per
code, and a test asserts the two never drift apart.

Design rules for codes:

* a code never changes meaning once shipped — new findings get new
  codes, retired checks leave their code reserved;
* the prefix names the layer that owns the invariant (``CTG`` graph
  structure, ``PLAT`` platform spec, ``SCHED`` schedule soundness and
  feasibility, ``LINK`` communication bookings, ``CACHE`` path-cache
  consistency, ``AST`` repository source lint, ``DET`` determinism
  flow rules, ``NUM`` numeric hazards, ``ENG`` experiment-engine
  purity, ``FAULT`` fault-plan validity);
* the numeric part groups related checks in decades (e.g. ``SCHED02x``
  are placement-exclusivity checks, ``SCHED03x`` deadline feasibility).

:class:`CheckReport` aggregates diagnostics across checkers and renders
them as text (one line per finding) or JSON (stable schema for CI and
tooling).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple


class Severity(IntEnum):
    """Finding severity; orderable so reports can sort worst-first."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case render used in text output."""
        return self.name.lower()


@dataclass(frozen=True)
class CodeInfo:
    """Registry entry describing one diagnostic code."""

    code: str
    title: str
    severity: Severity


#: Central declaration of every diagnostic code the subsystem can emit.
#: ``docs/diagnostics.md`` documents each entry; keep the two in sync
#: (``tests/test_diagnostics.py`` enforces it).
CODE_TABLE: Tuple[CodeInfo, ...] = (
    # -- conditional task graph ----------------------------------------
    CodeInfo("CTG001", "graph contains a cycle", Severity.ERROR),
    CodeInfo("CTG002", "conditional edge guarded by a foreign branch", Severity.ERROR),
    CodeInfo("CTG003", "negative communication volume", Severity.ERROR),
    CodeInfo("CTG004", "branch fork with fewer than 2 outcomes", Severity.ERROR),
    CodeInfo("CTG005", "invalid deadline", Severity.ERROR),
    CodeInfo("CTG006", "no deadline set", Severity.WARNING),
    CodeInfo("CTG010", "unsatisfiable activation condition", Severity.ERROR),
    CodeInfo("CTG011", "scenario enumeration failed", Severity.ERROR),
    CodeInfo("CTG012", "branch probabilities do not sum to 1", Severity.ERROR),
    CodeInfo("CTG013", "probability label is not a declared outcome", Severity.ERROR),
    CodeInfo("CTG014", "probability outside [0, 1]", Severity.ERROR),
    CodeInfo("CTG015", "branch without a default distribution", Severity.WARNING),
    # -- platform -------------------------------------------------------
    CodeInfo("PLAT001", "task has no profile on any PE", Severity.ERROR),
    CodeInfo("PLAT002", "missing link between communicating PEs", Severity.ERROR),
    CodeInfo("PLAT003", "assigned speed outside the PE envelope", Severity.ERROR),
    CodeInfo("PLAT004", "assigned speed off the discrete level set", Severity.ERROR),
    CodeInfo("PLAT005", "empty discrete frequency table", Severity.ERROR),
    CodeInfo("PLAT006", "frequency table unsorted or with duplicate levels", Severity.ERROR),
    CodeInfo("PLAT007", "frequency level outside the PE envelope", Severity.ERROR),
    # -- schedule structure and feasibility -----------------------------
    CodeInfo("SCHED001", "task not placed", Severity.ERROR),
    CodeInfo("SCHED002", "task placed on an unsupported PE", Severity.ERROR),
    CodeInfo("SCHED010", "placement order violates precedence", Severity.ERROR),
    CodeInfo("SCHED020", "PE time-slot overlap between non-exclusive tasks", Severity.ERROR),
    CodeInfo("SCHED021", "same-PE non-exclusive pair not serialised", Severity.ERROR),
    CodeInfo("SCHED030", "worst-case makespan exceeds the deadline", Severity.ERROR),
    CodeInfo("SCHED031", "scenario misses the deadline", Severity.ERROR),
    # -- communication bookings -----------------------------------------
    CodeInfo("LINK001", "booking on a non-existent link", Severity.ERROR),
    CodeInfo("LINK002", "booking endpoints disagree with the mapping", Severity.ERROR),
    CodeInfo("LINK003", "booked duration disagrees with link bandwidth", Severity.WARNING),
    CodeInfo("LINK005", "overlapping bookings on one link", Severity.ERROR),
    # -- path-analytics cache -------------------------------------------
    CodeInfo("CACHE001", "cached path structure disagrees with the schedule", Severity.ERROR),
    CodeInfo("CACHE002", "cached scenario set disagrees with the analysis", Severity.ERROR),
    # -- repository AST lint --------------------------------------------
    CodeInfo("AST101", "mutable default argument", Severity.ERROR),
    CodeInfo("AST102", "blind exception handler", Severity.ERROR),
    CodeInfo("AST103", "float equality comparison", Severity.ERROR),
    CodeInfo("AST104", "private tolerance constant", Severity.ERROR),
    # -- determinism flow rules -----------------------------------------
    CodeInfo("DET201", "unordered set iteration on a canonical path", Severity.ERROR),
    CodeInfo("DET202", "wall-clock value can reach a canonical output", Severity.ERROR),
    CodeInfo("DET203", "unseeded global random source", Severity.ERROR),
    CodeInfo("DET204", "unsorted filesystem enumeration", Severity.ERROR),
    # -- numeric hazards -------------------------------------------------
    CodeInfo("NUM301", "bit-shift on a possibly-numpy integer", Severity.ERROR),
    CodeInfo("NUM302", "float-array equality comparison", Severity.ERROR),
    CodeInfo("NUM303", "accumulation into a dtype-unspecified array", Severity.ERROR),
    # -- experiment-engine purity ----------------------------------------
    CodeInfo("ENG401", "cell function is not module-level picklable", Severity.ERROR),
    CodeInfo("ENG402", "cell function writes a module global", Severity.ERROR),
    CodeInfo("ENG403", "cell function mutates its argument", Severity.ERROR),
    # -- fault plans -----------------------------------------------------
    CodeInfo("FAULT001", "unknown injector kind", Severity.ERROR),
    CodeInfo("FAULT002", "firing rate outside [0, 1]", Severity.ERROR),
    CodeInfo("FAULT003", "magnitude out of range for the injector kind", Severity.ERROR),
    CodeInfo("FAULT004", "empty or negative activation window", Severity.ERROR),
    CodeInfo("FAULT005", "injector target does not resolve", Severity.ERROR),
    CodeInfo("FAULT006", "fault plan declares no injectors", Severity.WARNING),
)

#: Code → registry entry, derived from :data:`CODE_TABLE`.
CODE_REGISTRY: Dict[str, CodeInfo] = {info.code: info for info in CODE_TABLE}
if len(CODE_REGISTRY) != len(CODE_TABLE):  # pragma: no cover - declaration bug
    raise RuntimeError("duplicate diagnostic code in CODE_TABLE")


def code_info(code: str) -> CodeInfo:
    """Registry entry of a code; raises ``KeyError`` for unknown codes."""
    return CODE_REGISTRY[code]


@dataclass(frozen=True)
class Diagnostic:
    """One finding of one checker.

    Attributes
    ----------
    code:
        Stable error code from :data:`CODE_REGISTRY`.
    message:
        Human-readable description with the concrete names/numbers.
    subject:
        The entity the finding is about (task, PE, scenario, or a
        ``file:line:col`` source location) — machine-consumable, used
        for grouping in reports.
    severity:
        Defaults to the code's registered severity.
    symbol:
        Optional stable symbol the finding anchors to (for source-lint
        findings: the qualified name of the enclosing function, e.g.
        ``repro.io:canonical_json``).  Line numbers drift with edits;
        the waiver baseline (:mod:`repro.check.baseline`) matches on
        this instead.
    """

    code: str
    message: str
    subject: str = ""
    severity: Optional[Severity] = None
    symbol: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODE_REGISTRY:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")
        if self.severity is None:
            object.__setattr__(self, "severity", CODE_REGISTRY[self.code].severity)

    def __str__(self) -> str:
        where = f" [{self.subject}]" if self.subject else ""
        return f"{self.severity.label} {self.code}{where}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable keys)."""
        return {
            "code": self.code,
            "severity": self.severity.label,
            "subject": self.subject,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class CheckReport:
    """Aggregated findings of one verification run."""

    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: optional labels of the checkers that ran (for the report header)
    checks_run: List[str] = field(default_factory=list)

    def add(self, diagnostic: Diagnostic) -> None:
        """Append one finding."""
        self.diagnostics.append(diagnostic)

    def extend(self, diagnostics: Iterable[Diagnostic]) -> None:
        """Append findings from one checker."""
        self.diagnostics.extend(diagnostics)

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    # -- queries ---------------------------------------------------------
    @property
    def errors(self) -> List[Diagnostic]:
        """Error-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        """Warning-severity findings."""
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def ok(self) -> bool:
        """Whether no error-severity finding was recorded."""
        return not self.errors

    def codes(self) -> List[str]:
        """Distinct codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def has(self, code: str) -> bool:
        """Whether any finding carries ``code``."""
        return any(d.code == code for d in self.diagnostics)

    def by_code(self, code: str) -> List[Diagnostic]:
        """All findings carrying ``code``."""
        return [d for d in self.diagnostics if d.code == code]

    # -- rendering -------------------------------------------------------
    def render_text(self, header: str = "") -> str:
        """One line per finding, worst severity first, plus a summary."""
        lines: List[str] = []
        if header:
            lines.append(header)
        ordered = sorted(
            self.diagnostics, key=lambda d: (-int(d.severity), d.code, d.subject)
        )
        lines.extend(str(d) for d in ordered)
        lines.append(self.summary())
        return "\n".join(lines)

    def summary(self) -> str:
        """One-line verdict, e.g. ``check failed: 2 errors, 1 warning``."""
        n_err, n_warn = len(self.errors), len(self.warnings)
        verdict = "check passed" if self.ok else "check FAILED"
        parts = [f"{n_err} error{'s' if n_err != 1 else ''}"]
        if n_warn:
            parts.append(f"{n_warn} warning{'s' if n_warn != 1 else ''}")
        return f"{verdict}: {', '.join(parts)}"

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Stable JSON rendering for CI and tooling."""
        payload = {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "checks_run": list(self.checks_run),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
        return json.dumps(payload, indent=indent, sort_keys=True)
