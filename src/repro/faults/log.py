"""Structured record of injected faults and recovery actions.

Every fault the runtime injects and every action a
:class:`~repro.faults.policy.DegradationPolicy` takes in response is
appended to a :class:`FaultLog` as a :class:`FaultEvent` /
:class:`RecoveryAction` pair of streams.  The log is plain data —
sortable, JSON-serialisable, and mergeable — so two replays of the same
seeded plan can be compared for equality byte-by-byte, and the chaos
artifacts can expose per-policy miss/recovery/energy summaries without
re-running anything.

Ordering contract: events are kept sorted by ``(instance, injector,
kind, target)`` and actions by ``(instance, action, detail)``, so the
serialised form is independent of append order (parallel cells may
interleave differently yet must fingerprint identically).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One injected fault at one graph instance.

    ``injector`` is the index of the originating
    :class:`~repro.faults.plan.InjectorSpec` inside its plan;
    ``severity`` is the resolved magnitude (after any per-firing draw);
    ``target`` is the concrete task/PE/edge/branch hit, or ``""`` for
    kinds without targets.
    """

    instance: int
    injector: int
    kind: str
    target: str = ""
    severity: float = 1.0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "instance": self.instance,
            "injector": self.injector,
            "kind": self.kind,
            "target": self.target,
            "severity": self.severity,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultEvent":
        """Rebuild an event from :meth:`to_dict` output."""
        return cls(
            instance=int(payload["instance"]),
            injector=int(payload["injector"]),
            kind=str(payload["kind"]),
            target=str(payload.get("target", "")),
            severity=float(payload.get("severity", 1.0)),
        )


@dataclass(frozen=True, order=True)
class RecoveryAction:
    """One degradation-policy reaction at one graph instance.

    ``action`` is a small closed vocabulary:

    ``escalate``
        Remaining tasks of the instance were forced to max speed.
    ``emergency_reschedule``
        The policy invoked an out-of-band re-schedule.
    ``reschedule_retry``
        A dropped/failed invocation was retried after backoff.
    ``fallback_schedule``
        Re-scheduling failed; the full-speed fallback schedule was
        installed.
    ``recovered`` / ``unrecovered``
        Verdict for one deadline-threatening fault: the policy did /
        did not bring the instance back under the deadline.
    ``quantization_loss``
        The miss is attributable to the discrete frequency table, not
        the policy: escalating the same decisions at a 1.0 speed
        ceiling would have met the deadline, but the table tops out
        below 1.0.
    """

    instance: int
    action: str
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "instance": self.instance,
            "action": self.action,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RecoveryAction":
        """Rebuild an action from :meth:`to_dict` output."""
        return cls(
            instance=int(payload["instance"]),
            action=str(payload["action"]),
            detail=str(payload.get("detail", "")),
        )


@dataclass
class FaultLog:
    """Append-mostly log of faults and recoveries for one run.

    The energy fields accumulate the *baseline* (no-policy) and
    *policy* energies of faulted instances, so
    :meth:`energy_cost_of_recovery` is the extra energy the policy
    spent to recover — the quantity the chaos artifacts report.
    """

    events: List[FaultEvent] = field(default_factory=list)
    actions: List[RecoveryAction] = field(default_factory=list)
    #: instances whose *baseline* (policy-off) arm missed the deadline
    threatened: int = 0
    #: threatened instances the policy brought back under the deadline
    recovered: int = 0
    #: instances that missed the deadline even with the policy active
    unrecovered: int = 0
    #: misses attributable to a sub-1.0 discrete frequency ceiling (a
    #: 1.0-ceiling escalation of the same decisions would have met the
    #: deadline) — kept out of ``unrecovered`` and out of the
    #: recovery-rate denominator
    quantization_losses: int = 0
    #: summed policy-arm energy of faulted instances
    policy_energy: float = 0.0
    #: summed baseline-arm energy of the same instances
    baseline_energy: float = 0.0

    # -- recording -------------------------------------------------------
    def record(self, event: FaultEvent) -> None:
        """Append one injected fault."""
        self.events.append(event)

    def act(self, action: RecoveryAction) -> None:
        """Append one recovery action."""
        self.actions.append(action)

    def merge(self, other: "FaultLog") -> "FaultLog":
        """Fold another log into this one (returns ``self``)."""
        self.events.extend(other.events)
        self.actions.extend(other.actions)
        self.threatened += other.threatened
        self.recovered += other.recovered
        self.unrecovered += other.unrecovered
        self.quantization_losses += other.quantization_losses
        self.policy_energy += other.policy_energy
        self.baseline_energy += other.baseline_energy
        return self

    # -- summaries -------------------------------------------------------
    @property
    def fault_count(self) -> int:
        """Total injected faults."""
        return len(self.events)

    def recovery_rate(self) -> float:
        """Recovered over recoverable-threatened.

        Quantization losses are excluded from the denominator — a miss
        the frequency table makes unavoidable says nothing about the
        recovery policy (1.0 when nothing recoverable was threatened).
        """
        denominator = self.threatened - self.quantization_losses
        if denominator <= 0:
            return 1.0
        return self.recovered / denominator

    def energy_cost_of_recovery(self) -> float:
        """Extra energy the policy spent on faulted instances."""
        return self.policy_energy - self.baseline_energy

    def events_by_kind(self) -> Dict[str, int]:
        """Injected-fault histogram keyed by injector kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return dict(sorted(counts.items()))

    def actions_by_kind(self) -> Dict[str, int]:
        """Recovery-action histogram keyed by action name."""
        counts: Dict[str, int] = {}
        for action in self.actions:
            counts[action.action] = counts.get(action.action, 0) + 1
        return dict(sorted(counts.items()))

    # -- serialisation ---------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Canonical JSON-ready form (sorted, append-order independent).

        The ``quantization_losses`` key appears only when nonzero so
        continuous-policy artifacts stay byte-identical to runs that
        predate discrete frequency tables.
        """
        payload = {
            "events": [e.to_dict() for e in sorted(self.events)],
            "actions": [a.to_dict() for a in sorted(self.actions)],
            "threatened": self.threatened,
            "recovered": self.recovered,
            "unrecovered": self.unrecovered,
            "policy_energy": self.policy_energy,
            "baseline_energy": self.baseline_energy,
            "summary": self.summary(),
        }
        if self.quantization_losses:
            payload["quantization_losses"] = self.quantization_losses
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultLog":
        """Rebuild a log from :meth:`to_dict` output."""
        log = cls(
            events=[FaultEvent.from_dict(e) for e in payload.get("events", ())],
            actions=[RecoveryAction.from_dict(a) for a in payload.get("actions", ())],
            threatened=int(payload.get("threatened", 0)),
            recovered=int(payload.get("recovered", 0)),
            unrecovered=int(payload.get("unrecovered", 0)),
            quantization_losses=int(payload.get("quantization_losses", 0)),
            policy_energy=float(payload.get("policy_energy", 0.0)),
            baseline_energy=float(payload.get("baseline_energy", 0.0)),
        )
        return log

    def summary(self) -> Dict[str, Any]:
        """The headline numbers the artifacts expose.

        ``quantization_losses`` appears only when nonzero (see
        :meth:`to_dict`).
        """
        payload = {
            "faults": self.fault_count,
            "by_kind": self.events_by_kind(),
            "threatened": self.threatened,
            "recovered": self.recovered,
            "unrecovered": self.unrecovered,
            "recovery_rate": self.recovery_rate(),
            "energy_cost_of_recovery": self.energy_cost_of_recovery(),
        }
        if self.quantization_losses:
            payload["quantization_losses"] = self.quantization_losses
        return payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultLog):
            return NotImplemented
        return self.canonical() == other.canonical()

    def canonical(self) -> Tuple[Any, ...]:
        """Order-independent comparison key (sorted event/action streams)."""
        return (
            tuple(sorted(self.events)),
            tuple(sorted(self.actions)),
            self.threatened,
            self.recovered,
            self.unrecovered,
            self.quantization_losses,
            self.policy_energy,
            self.baseline_energy,
        )


def merge_logs(logs: Iterable[Optional[FaultLog]]) -> FaultLog:
    """Fold many (possibly ``None``) logs into one fresh log."""
    merged = FaultLog()
    for log in logs:
        if log is not None:
            merged.merge(log)
    return merged
