"""Declarative fault plans.

A :class:`FaultPlan` is to the chaos harness what
:class:`~repro.experiments.spec.ExperimentSpec` is to the experiment
engine: a fully JSON-serialisable description of *what to break*, from
which everything downstream is a deterministic function.  The plan's
:meth:`~FaultPlan.fingerprint` covers the seed and every injector
field, so chaos cells are content-addressed exactly like experiment
cells.

An :class:`InjectorSpec` names one fault process.  Its fields mean:

``kind``
    One of :data:`INJECTOR_KINDS` (semantics below).
``rate``
    Per-instance firing probability in ``[0, 1]``.
``magnitude``
    Severity of one firing; the unit depends on the kind:

    =====================  ============================================
    ``task_overrun``       multiplicative: effective WCET = WCET × m
                           (m > 1); additive: effective WCET = WCET + m
                           time units (m > 0) — the ``mode`` field picks
    ``pe_slowdown``        every task on the PE runs m× slower for the
                           instance (m > 1, a frequency drop)
    ``pe_freeze``          the PE starts no task before m × deadline
                           time units into the instance (0 < m ≤ 1)
    ``link_jitter``        cross-PE transfer delays on the targeted
                           edges scale by a factor drawn uniformly in
                           [1, m] (m > 1)
    ``reschedule_drop``    unused (any re-schedule invocation issued at
                           a firing instance is silently lost)
    ``reschedule_delay``   the invocation is deferred by ⌈m⌉ instances
                           (m ≥ 1)
    ``branch_corruption``  unused (the observed label of the targeted
                           branch is rotated to the next declared
                           outcome before it reaches the profiler)
    =====================  ============================================
``targets``
    Entities the firing affects — task names for ``task_overrun``, PE
    names for ``pe_slowdown``/``pe_freeze``, ``"src->dst"`` edge names
    for ``link_jitter``, branch fork names for ``branch_corruption``.
    Empty means: draw **one** eligible entity uniformly per firing.
``start`` / ``stop``
    Half-open activation window in instance indices (``stop=None`` =
    until the end of the trace).

Determinism contract: whether an injector fires at instance *i*, and
what it picks, depends only on ``(plan.seed, injector index, i)`` —
never on the schedule, the policy, or what other injectors did.  The
same plan therefore replays bit-identically under any policy, at any
``--jobs`` value, and when instances are re-executed out of order.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..check.diagnostics import Diagnostic

#: Every injector kind the runtime implements.
INJECTOR_KINDS: Tuple[str, ...] = (
    "task_overrun",
    "pe_slowdown",
    "pe_freeze",
    "link_jitter",
    "reschedule_drop",
    "reschedule_delay",
    "branch_corruption",
)

#: Kinds whose ``targets`` name tasks / PEs / edges / branches.
_TARGET_DOMAIN: Dict[str, str] = {
    "task_overrun": "task",
    "pe_slowdown": "pe",
    "pe_freeze": "pe",
    "link_jitter": "edge",
    "reschedule_drop": "none",
    "reschedule_delay": "none",
    "branch_corruption": "branch",
}

#: ``task_overrun`` modes.
OVERRUN_MODES: Tuple[str, ...] = ("multiplicative", "additive")


class FaultPlanError(ValueError):
    """A fault plan payload is structurally malformed."""


@dataclass(frozen=True)
class InjectorSpec:
    """One declarative fault process (see the module docstring)."""

    kind: str
    rate: float
    magnitude: float = 1.0
    mode: str = "multiplicative"
    targets: Tuple[str, ...] = ()
    start: int = 0
    stop: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (stable key order)."""
        return {
            "kind": self.kind,
            "rate": self.rate,
            "magnitude": self.magnitude,
            "mode": self.mode,
            "targets": list(self.targets),
            "start": self.start,
            "stop": self.stop,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "InjectorSpec":
        """Rebuild a spec from :meth:`to_dict` output.

        Structural problems (missing ``kind``, non-numeric fields) raise
        :class:`FaultPlanError`; *semantic* problems (unknown kind,
        out-of-range rate) are left for :meth:`FaultPlan.diagnose`, so
        the checker can report them with stable codes instead.
        """
        if not isinstance(payload, Mapping):
            raise FaultPlanError(f"injector must be an object, got {type(payload).__name__}")
        if "kind" not in payload:
            raise FaultPlanError("injector is missing the 'kind' field")
        known = {"kind", "rate", "magnitude", "mode", "targets", "start", "stop"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(f"injector has unknown field(s): {', '.join(unknown)}")
        try:
            stop = payload.get("stop")
            return cls(
                kind=str(payload["kind"]),
                rate=float(payload.get("rate", 0.0)),
                magnitude=float(payload.get("magnitude", 1.0)),
                mode=str(payload.get("mode", "multiplicative")),
                targets=tuple(str(t) for t in payload.get("targets", ())),
                start=int(payload.get("start", 0)),
                stop=None if stop is None else int(stop),
            )
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"injector field has the wrong type: {exc}") from exc

    def active_at(self, instance: int) -> bool:
        """Whether the activation window contains ``instance``."""
        if instance < self.start:
            return False
        return self.stop is None or instance < self.stop


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded composition of injectors."""

    name: str
    seed: int
    injectors: Tuple[InjectorSpec, ...] = ()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (round-trips via :meth:`from_dict`)."""
        return {
            "name": self.name,
            "seed": self.seed,
            "injectors": [spec.to_dict() for spec in self.injectors],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Rebuild a plan from :meth:`to_dict` output.

        Raises :class:`FaultPlanError` on structural problems; use
        :meth:`diagnose` (or :func:`repro.check.check_fault_plan`) for
        semantic validation with stable diagnostic codes.
        """
        if not isinstance(payload, Mapping):
            raise FaultPlanError(f"fault plan must be an object, got {type(payload).__name__}")
        known = {"name", "seed", "injectors"}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise FaultPlanError(f"fault plan has unknown field(s): {', '.join(unknown)}")
        injectors = payload.get("injectors", ())
        if not isinstance(injectors, (list, tuple)):
            raise FaultPlanError("'injectors' must be a list")
        try:
            seed = int(payload.get("seed", 0))
        except (TypeError, ValueError) as exc:
            raise FaultPlanError(f"'seed' must be an integer: {exc}") from exc
        return cls(
            name=str(payload.get("name", "plan")),
            seed=seed,
            injectors=tuple(InjectorSpec.from_dict(spec) for spec in injectors),
        )

    def fingerprint(self) -> str:
        """Content address of the plan (canonical JSON, SHA-256)."""
        from ..io import fingerprint

        return fingerprint({"fault_plan": self.to_dict()})

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same plan under a different seed."""
        return replace(self, seed=seed)

    # ------------------------------------------------------------------
    # Semantic validation (FAULT diagnostic codes)
    # ------------------------------------------------------------------
    def diagnose(self, ctg=None, platform=None) -> List[Diagnostic]:
        """Semantic findings as FAULT-coded diagnostics.

        With a ``ctg``/``platform``, injector targets are additionally
        resolved against the instance (FAULT005); without them only the
        instance-independent rules run.
        """
        findings: List[Diagnostic] = []
        if not self.injectors:
            findings.append(
                Diagnostic(
                    "FAULT006",
                    f"fault plan {self.name!r} declares no injectors — "
                    "a chaos run under it is a plain run",
                    subject=self.name,
                )
            )
        for index, spec in enumerate(self.injectors):
            subject = f"{self.name}[{index}]"
            findings.extend(_diagnose_injector(spec, subject, ctg, platform))
        return findings


def _eligible_targets(kind: str, ctg, platform) -> Optional[List[str]]:
    """Valid target names for a kind (``None`` when unresolvable)."""
    domain = _TARGET_DOMAIN.get(kind)
    if domain == "task" and ctg is not None:
        return list(ctg.tasks())
    if domain == "pe" and platform is not None:
        return list(platform.pe_names)
    if domain == "branch" and ctg is not None:
        return list(ctg.branch_nodes())
    if domain == "edge" and ctg is not None:
        return [
            f"{src}->{dst}" for src, dst, _ in ctg.edges(include_pseudo=False)
        ]
    return None


def _diagnose_injector(spec: InjectorSpec, subject: str, ctg, platform) -> List[Diagnostic]:
    findings: List[Diagnostic] = []
    if spec.kind not in INJECTOR_KINDS:
        findings.append(
            Diagnostic(
                "FAULT001",
                f"unknown injector kind {spec.kind!r} "
                f"(known: {', '.join(INJECTOR_KINDS)})",
                subject=subject,
            )
        )
        return findings  # the remaining rules are kind-specific
    if not 0.0 <= spec.rate <= 1.0:
        findings.append(
            Diagnostic(
                "FAULT002",
                f"injector rate {spec.rate!r} is outside [0, 1]",
                subject=subject,
            )
        )
    findings.extend(_diagnose_magnitude(spec, subject))
    if spec.start < 0 or (spec.stop is not None and spec.stop <= spec.start):
        findings.append(
            Diagnostic(
                "FAULT004",
                f"activation window [{spec.start}, {spec.stop}) is empty "
                "or starts before instance 0",
                subject=subject,
            )
        )
    if spec.kind == "task_overrun" and spec.mode not in OVERRUN_MODES:
        findings.append(
            Diagnostic(
                "FAULT003",
                f"unknown overrun mode {spec.mode!r} "
                f"(known: {', '.join(OVERRUN_MODES)})",
                subject=subject,
            )
        )
    if _TARGET_DOMAIN[spec.kind] == "none" and spec.targets:
        findings.append(
            Diagnostic(
                "FAULT005",
                f"{spec.kind} injectors take no targets, got "
                f"{list(spec.targets)}",
                subject=subject,
            )
        )
    else:
        eligible = _eligible_targets(spec.kind, ctg, platform)
        if eligible is not None:
            domain = _TARGET_DOMAIN[spec.kind]
            unknown = sorted(set(spec.targets) - set(eligible))
            if unknown:
                findings.append(
                    Diagnostic(
                        "FAULT005",
                        f"targets name unknown {domain}(s): {', '.join(unknown)}",
                        subject=subject,
                    )
                )
    return findings


def _diagnose_magnitude(spec: InjectorSpec, subject: str) -> List[Diagnostic]:
    """Kind-specific magnitude range rules (FAULT003)."""
    kind, m = spec.kind, spec.magnitude
    problem: Optional[str] = None
    if kind == "task_overrun":
        if spec.mode == "multiplicative" and m <= 1.0:
            problem = "a multiplicative overrun needs magnitude > 1"
        elif spec.mode == "additive" and m <= 0.0:
            problem = "an additive overrun needs magnitude > 0 time units"
    elif kind in ("pe_slowdown", "link_jitter"):
        if m <= 1.0:
            problem = f"a {kind} needs a factor magnitude > 1"
    elif kind == "pe_freeze":
        if not 0.0 < m <= 1.0:
            problem = "a freeze needs magnitude in (0, 1] (fraction of the deadline)"
    elif kind == "reschedule_delay":
        if m < 1.0:
            problem = "a delay needs magnitude >= 1 instance"
    if problem is None:
        return []
    return [
        Diagnostic(
            "FAULT003",
            f"magnitude {m!r} out of range: {problem}",
            subject=subject,
        )
    ]
