"""Runtime that resolves a :class:`FaultPlan` into per-instance faults.

:class:`FaultInjector` is a pure function of ``(plan, ctg, platform)``:
:meth:`~FaultInjector.faults_at` maps a graph-instance index to the
:class:`InstanceFaults` the executor and runner consume.  Two
determinism properties make the chaos harness reproducible:

* **random access** — the RNG for injector *k* at instance *i* is
  seeded from the string ``"{seed}:{k}:{i}"`` (CPython hashes string
  seeds with SHA-512, independent of ``PYTHONHASHSEED``), so a draw
  depends only on the plan, never on which instances ran before, in
  what order, or in which worker process;
* **fixed draw protocol** — every injector consumes exactly three
  draws per instance (firing roll, target pick, severity), whether or
  not it fires, so adding consumers can never shift later draws.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .log import FaultEvent
from .plan import FaultPlan, FaultPlanError, InjectorSpec

#: Draws consumed per injector per instance (see the module docstring).
_DRAWS = 3


@dataclass(frozen=True)
class InstanceFaults:
    """Resolved faults for one graph instance (executor/runner view).

    All mappings are already *combined* across injectors: WCET factors
    multiply, additions sum, PE/edge factors multiply, freezes take the
    max, re-schedule drops OR together, delays take the max, and branch
    rotations add.
    """

    instance: int
    #: task → multiplicative WCET factor (≥ 1)
    wcet_factors: Dict[str, float] = field(default_factory=dict)
    #: task → additive WCET surplus in time units (≥ 0)
    wcet_additions: Dict[str, float] = field(default_factory=dict)
    #: PE → duration factor for every task on it (≥ 1)
    pe_factors: Dict[str, float] = field(default_factory=dict)
    #: PE → no task starts before this fraction of the deadline
    pe_freezes: Dict[str, float] = field(default_factory=dict)
    #: (src, dst) → cross-PE transfer-delay factor (≥ 1)
    edge_factors: Dict[Tuple[str, str], float] = field(default_factory=dict)
    #: any re-schedule invocation issued at this instance is lost
    drop_reschedule: bool = False
    #: re-schedule invocations are deferred by this many instances
    delay_reschedule: int = 0
    #: branch → outcome-rotation applied to the *observed* label
    branch_rotations: Dict[str, int] = field(default_factory=dict)
    #: the injected faults, for the log
    events: Tuple[FaultEvent, ...] = ()

    @property
    def empty(self) -> bool:
        """Whether nothing fired at this instance."""
        return not self.events

    @property
    def perturbs_timing(self) -> bool:
        """Whether any fault changes task/transfer timing."""
        return bool(
            self.wcet_factors
            or self.wcet_additions
            or self.pe_factors
            or self.pe_freezes
            or self.edge_factors
        )


#: The no-fault instance, shared (InstanceFaults is immutable).
def no_faults(instance: int) -> InstanceFaults:
    """An empty :class:`InstanceFaults` for ``instance``."""
    return InstanceFaults(instance=instance)


def _parse_edge(name: str) -> Tuple[str, str]:
    """Split an ``"src->dst"`` edge name."""
    src, sep, dst = name.partition("->")
    if not sep or not src or not dst:
        raise FaultPlanError(f"edge target {name!r} is not of the form 'src->dst'")
    return src, dst


class FaultInjector:
    """Deterministic plan → per-instance fault resolver."""

    def __init__(self, plan: FaultPlan, ctg=None, platform=None) -> None:
        from .plan import _eligible_targets

        self.plan = plan
        #: per-injector eligible targets, frozen at construction so the
        #: uniform pick is independent of runtime state
        self._eligible: List[Sequence[str]] = []
        for spec in plan.injectors:
            if spec.targets:
                self._eligible.append(tuple(spec.targets))
            else:
                eligible = _eligible_targets(spec.kind, ctg, platform)
                self._eligible.append(tuple(eligible) if eligible else ())

    # -- the deterministic core -----------------------------------------
    def _draws(self, index: int, instance: int) -> Tuple[float, float, float]:
        rng = random.Random(f"{self.plan.seed}:{index}:{instance}")
        return tuple(rng.random() for _ in range(_DRAWS))

    def fires_at(self, index: int, instance: int) -> bool:
        """Whether injector ``index`` fires at ``instance``."""
        spec = self.plan.injectors[index]
        if not spec.active_at(instance):
            return False
        roll, _, _ = self._draws(index, instance)
        return roll < spec.rate

    def faults_at(self, instance: int) -> InstanceFaults:
        """Resolve and combine every firing injector at ``instance``."""
        wcet_factors: Dict[str, float] = {}
        wcet_additions: Dict[str, float] = {}
        pe_factors: Dict[str, float] = {}
        pe_freezes: Dict[str, float] = {}
        edge_factors: Dict[Tuple[str, str], float] = {}
        branch_rotations: Dict[str, int] = {}
        drop = False
        delay = 0
        events: List[FaultEvent] = []

        for index, spec in enumerate(self.plan.injectors):
            if not spec.active_at(instance):
                continue
            roll, pick, sev_draw = self._draws(index, instance)
            if roll >= spec.rate:
                continue
            targets = self._chosen_targets(index, spec, pick)
            severity = self._severity(spec, sev_draw)
            if spec.kind == "task_overrun":
                for task in targets:
                    if spec.mode == "additive":
                        wcet_additions[task] = wcet_additions.get(task, 0.0) + severity
                    else:
                        wcet_factors[task] = wcet_factors.get(task, 1.0) * severity
            elif spec.kind == "pe_slowdown":
                for pe in targets:
                    pe_factors[pe] = pe_factors.get(pe, 1.0) * severity
            elif spec.kind == "pe_freeze":
                for pe in targets:
                    pe_freezes[pe] = max(pe_freezes.get(pe, 0.0), severity)
            elif spec.kind == "link_jitter":
                for name in targets:
                    edge = _parse_edge(name)
                    edge_factors[edge] = edge_factors.get(edge, 1.0) * severity
            elif spec.kind == "reschedule_drop":
                drop = True
            elif spec.kind == "reschedule_delay":
                delay = max(delay, int(severity))
            elif spec.kind == "branch_corruption":
                for branch in targets:
                    branch_rotations[branch] = branch_rotations.get(branch, 0) + 1
            else:
                raise FaultPlanError(f"unknown injector kind {spec.kind!r}")
            if spec.kind in ("reschedule_drop", "reschedule_delay"):
                events.append(
                    FaultEvent(instance, index, spec.kind, "", severity)
                )
            else:
                events.extend(
                    FaultEvent(instance, index, spec.kind, target, severity)
                    for target in targets
                )

        return InstanceFaults(
            instance=instance,
            wcet_factors=wcet_factors,
            wcet_additions=wcet_additions,
            pe_factors=pe_factors,
            pe_freezes=pe_freezes,
            edge_factors=edge_factors,
            drop_reschedule=drop,
            delay_reschedule=delay,
            branch_rotations=branch_rotations,
            events=tuple(sorted(events)),
        )

    def timeline(self, length: int) -> List[InstanceFaults]:
        """Resolved faults for instances ``0..length-1``."""
        return [self.faults_at(i) for i in range(length)]

    # -- helpers ---------------------------------------------------------
    def _chosen_targets(
        self, index: int, spec: InjectorSpec, pick: float
    ) -> Tuple[str, ...]:
        from .plan import _TARGET_DOMAIN

        if _TARGET_DOMAIN.get(spec.kind) == "none":
            return ()
        if spec.targets:
            return spec.targets
        eligible = self._eligible[index]
        if not eligible:
            return ()
        return (eligible[int(pick * len(eligible)) % len(eligible)],)

    @staticmethod
    def _severity(spec: InjectorSpec, sev_draw: float) -> float:
        if spec.kind == "link_jitter":
            return 1.0 + (spec.magnitude - 1.0) * sev_draw
        if spec.kind == "reschedule_delay":
            return float(math.ceil(spec.magnitude))
        return spec.magnitude


def rotate_label(outcomes: Sequence[str], label: str, rotation: int) -> str:
    """The declared outcome ``rotation`` steps after ``label``.

    Corruption must stay inside the declared label set —
    :class:`~repro.adaptive.window.BranchWindow` rejects undeclared
    labels, which is exactly why corrupted observations are modelled as
    a rotation rather than arbitrary strings.
    """
    if not outcomes or label not in outcomes:
        return label
    position = list(outcomes).index(label)
    return list(outcomes)[(position + rotation) % len(outcomes)]
