"""Degradation policies: what the adaptive loop does about faults.

A :class:`DegradationPolicy` configures the graceful-degradation
behaviour of the faulted simulation path (``run_faulted`` in
:mod:`repro.sim.runner` and ``InstanceExecutor.run_faulted`` in
:mod:`repro.sim.executor`):

* **escalation** — a per-task watchdog fires when a task is still
  executing ``overrun_margin`` (relative) past its scheduled duration,
  and a backup detector fires when a task starts more than
  ``overrun_margin`` × deadline behind its worst-case start (freezes
  and link jitter delay starts without extending durations); either
  way, the task's remainder and every task that has not started yet
  escalate to max speed (speed 1.0).
  This is the paper-consistent fallback: the DVFS slow-down is exactly
  the slack the stretching heuristic inserted, so undoing it buys back
  that slack at the nominal-energy price.
* **emergency re-scheduling** — when an instance misses its deadline
  despite escalation, the policy may trigger an out-of-band
  re-schedule of the adaptive controller (ignoring drift thresholds
  and cooldowns).  Dropped or failed invocations are retried after
  ``retry_backoff`` instances, doubling each retry, at most
  ``max_retries`` times per incident.
* **fallback schedule** — if the emergency re-schedule itself raises a
  scheduling error, a plain full-speed DLS schedule (no voltage
  scaling) is installed so the loop keeps running instead of crashing.

``DegradationPolicy.none()`` disables everything — faults are injected
and logged, but nothing reacts; this is the baseline arm the
recovery-rate and energy-cost metrics are measured against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping


@dataclass(frozen=True)
class DegradationPolicy:
    """Declarative degradation behaviour (JSON-serialisable)."""

    #: escalate not-yet-started tasks to max speed on detected overrun
    escalate_on_overrun: bool = True
    #: detection slack: the watchdog fires this fraction past a task's
    #: scheduled duration (and the lateness backup this fraction of the
    #: deadline past its worst-case start)
    overrun_margin: float = 0.05
    #: trigger an out-of-band re-schedule after an unrecovered miss
    emergency_reschedule: bool = True
    #: instances to wait before retrying a dropped/failed invocation
    retry_backoff: int = 1
    #: maximum retries per dropped/failed invocation incident
    max_retries: int = 3

    @classmethod
    def default(cls) -> "DegradationPolicy":
        """The policy CI's chaos smoke matrix holds the line on."""
        return cls()

    @classmethod
    def none(cls) -> "DegradationPolicy":
        """Observe-only policy: log faults, react to nothing."""
        return cls(escalate_on_overrun=False, emergency_reschedule=False)

    @classmethod
    def escalate_only(cls) -> "DegradationPolicy":
        """Max-speed escalation without emergency re-scheduling."""
        return cls(escalate_on_overrun=True, emergency_reschedule=False)

    @property
    def is_none(self) -> bool:
        """Whether the policy reacts to nothing."""
        return not (self.escalate_on_overrun or self.emergency_reschedule)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation."""
        return {
            "escalate_on_overrun": self.escalate_on_overrun,
            "overrun_margin": self.overrun_margin,
            "emergency_reschedule": self.emergency_reschedule,
            "retry_backoff": self.retry_backoff,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DegradationPolicy":
        """Rebuild a policy from :meth:`to_dict` output."""
        return cls(
            escalate_on_overrun=bool(payload.get("escalate_on_overrun", True)),
            overrun_margin=float(payload.get("overrun_margin", 0.05)),
            emergency_reschedule=bool(payload.get("emergency_reschedule", True)),
            retry_backoff=int(payload.get("retry_backoff", 1)),
            max_retries=int(payload.get("max_retries", 3)),
        )


#: Named policies selectable from the CLI (``repro chaos --policy``).
POLICIES: Dict[str, DegradationPolicy] = {
    "default": DegradationPolicy.default(),
    "none": DegradationPolicy.none(),
    "escalate-only": DegradationPolicy.escalate_only(),
}
