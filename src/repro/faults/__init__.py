"""Deterministic fault injection and graceful degradation.

The paper's premise is a *non-deterministic workload*, yet the rest of
the simulator perturbs only branch outcomes — execution times, PE
behaviour, link latencies and the re-scheduling path itself are assumed
perfect.  This package makes every one of those assumptions breakable,
deterministically:

* :mod:`repro.faults.plan` — the declarative :class:`FaultPlan`: a
  seeded, canonical-JSON-fingerprintable composition of
  :class:`InjectorSpec` records (execution-time overruns, PE slowdown
  and transient freezes, link-latency jitter, dropped/delayed
  re-schedule invocations, corrupted branch observations);
* :mod:`repro.faults.injectors` — the runtime that resolves a plan
  into per-instance :class:`InstanceFaults` (random-access seeded, so
  the same plan replays bit-identically regardless of policy, process
  count or iteration order);
* :mod:`repro.faults.policy` — :class:`DegradationPolicy`: what the
  adaptive loop does *about* faults (max-speed escalation of the
  remaining tasks, emergency re-scheduling with retry/backoff, the
  full-speed fallback schedule);
* :mod:`repro.faults.log` — the structured :class:`FaultLog` of every
  injected fault and every recovery action, with the miss-rate /
  recovery-rate / energy-cost-of-recovery summary the artifacts expose.

Everything here sits *below* :mod:`repro.sim`: the executor and runner
import these types, never the other way around.
"""

from .injectors import FaultInjector, InstanceFaults
from .log import FaultEvent, FaultLog, RecoveryAction
from .plan import (
    INJECTOR_KINDS,
    FaultPlanError,
    FaultPlan,
    InjectorSpec,
)
from .policy import DegradationPolicy

__all__ = [
    "INJECTOR_KINDS",
    "FaultPlan",
    "FaultPlanError",
    "InjectorSpec",
    "FaultInjector",
    "InstanceFaults",
    "FaultEvent",
    "FaultLog",
    "RecoveryAction",
    "DegradationPolicy",
]
