"""Frequency-model hierarchy: continuous vs. discrete DVFS.

The paper (§IV) assumes *continuous* voltage/frequency scaling — any
relative speed in ``[min_speed, 1.0]`` is realisable.  Real silicon
exposes a finite frequency table instead, and the discrete-selection
literature (Berten, Chang & Kuo, *Discrete Frequency Selection of
Frame-Based Stochastic Real-Time Tasks*) builds its whole analysis on
that table.  This module lifts the distinction into an explicit
hierarchy so every layer that touches speeds — ``clamp_speed`` on a PE,
``speed_for_time`` on the energy model, the batched stretch kernels —
routes through one object instead of re-implementing the rounding rule:

* :class:`ContinuousDvfs` — the paper's model, bit-identical to the
  historical inline clamp;
* :class:`DiscreteDvfs` — a per-PE frequency table.  Assigned speeds
  are rounded *up* to the next level (never down, so deadlines stay
  safe).  The constructor is deliberately **lenient**: it stores the
  table exactly as given so that :func:`repro.check.platform_checks
  .check_platform` can diagnose defective tables (``PLAT005``–
  ``PLAT007``) instead of dying in a constructor, and so a top level
  below ``1.0`` is representable (that is what makes escalation
  quantisation loss a measurable quantity rather than a crash).

:data:`CONTINUOUS` is the shared continuous singleton.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..check.tolerances import EXACT_EPS


class FrequencyModel:
    """How a PE realises requested relative speeds.

    ``clamp`` is the full envelope rule (floor, ceiling, level
    rounding); ``quantize`` is the level rounding alone, for callers
    that manage the envelope themselves (e.g.
    :meth:`repro.platform.energy.DvfsModel.speed_for_time`).
    """

    #: discrete level set, ascending, or ``None`` for continuous scaling
    levels: Optional[Tuple[float, ...]] = None

    @property
    def is_discrete(self) -> bool:
        """Whether this model restricts speeds to a finite table."""
        return self.levels is not None

    @property
    def max_level(self) -> float:
        """The highest realisable relative speed (1.0 when continuous)."""
        return 1.0

    def clamp(self, speed: float, min_speed: float) -> float:
        """Clamp a requested speed into the ``[min_speed, 1.0]`` envelope."""
        raise NotImplementedError

    def quantize(self, speed: float) -> float:
        """Round a speed onto the realisable set (identity when continuous)."""
        raise NotImplementedError

    def cache_key(self) -> object:
        """Hashable identity for memoisation (prestretch cache etc.)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ContinuousDvfs(FrequencyModel):
    """The paper's continuous scaling: any speed in the envelope."""

    def clamp(self, speed: float, min_speed: float) -> float:
        """Historical inline clamp, kept bit-identical."""
        return min(1.0, max(min_speed, speed))

    def quantize(self, speed: float) -> float:
        """Continuous scaling realises every speed exactly."""
        return speed

    def cache_key(self) -> object:
        return "continuous"


@dataclass(frozen=True)
class DiscreteDvfs(FrequencyModel):
    """A finite per-PE frequency table.

    ``levels`` should be ascending, duplicate-free and inside the PE's
    ``[min_speed, 1.0]`` envelope — but the constructor does **not**
    enforce that (see the module docstring); call :meth:`validate` or
    run ``repro check`` to diagnose a defective table.
    """

    levels: Tuple[float, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(float(s) for s in self.levels))

    @property
    def max_level(self) -> float:
        """Top table entry — escalation's ceiling (1.0 for an empty table)."""
        return max(self.levels, default=1.0)

    def clamp(self, speed: float, min_speed: float) -> float:
        """Envelope clamp plus round-up to the next table level."""
        clamped = min(1.0, max(min_speed, speed))
        if not self.levels:
            return clamped
        for level in self.levels:
            if level >= clamped - EXACT_EPS:
                return level
        return self.levels[-1]

    def quantize(self, speed: float) -> float:
        """Round *up* to the next level (top level when already above all)."""
        if not self.levels:
            return speed
        for level in self.levels:
            if level >= speed - EXACT_EPS:
                return level
        return self.levels[-1]

    def cache_key(self) -> object:
        return ("discrete", self.levels)

    def validate(self, min_speed: float, max_speed: float = 1.0) -> List[str]:
        """Defects of this table, as human-readable strings.

        Mirrors the ``PLAT005``–``PLAT007`` diagnostics: empty table,
        unsorted/duplicate levels, level outside ``[min_speed,
        max_speed]``.  An empty list means the table is well-formed.
        """
        problems: List[str] = []
        if not self.levels:
            problems.append("frequency table is empty")
            return problems
        for previous, current in zip(self.levels, self.levels[1:]):
            if current <= previous:
                problems.append(
                    f"levels not strictly ascending at {previous!r} -> {current!r}"
                )
                break
        for level in self.levels:
            if not min_speed - EXACT_EPS <= level <= max_speed + EXACT_EPS:
                problems.append(
                    f"level {level!r} outside [{min_speed}, {max_speed}]"
                )
        return problems


#: Shared continuous singleton (the historical behaviour).
CONTINUOUS = ContinuousDvfs()
