"""Per-task execution-time distributions.

The paper models nondeterminism only through conditional branches: a
task either runs for its full WCET or not at all.  The stochastic
scheduling literature (Berten et al.; Leung & Tsui) additionally lets
each task's *actual* execution time vary below its WCET — that is the
workload variation preemptive slack reclamation exploits.

:class:`ExecutionTimeDistribution` is a small discrete distribution of
execution time expressed as a **ratio of WCET** in ``(0, 1]``.  Ratios
rather than absolute times keep one distribution valid across the
heterogeneous per-PE WCETs of one task.  Platforms carry at most one
distribution per task (:meth:`repro.platform.mpsoc.Platform
.set_execution_profile`); samplers draw ratios and multiply into the
placement WCET.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from ..check.tolerances import EXACT_EPS


@dataclass(frozen=True)
class ExecutionTimeDistribution:
    """Discrete execution-time distribution as ratios of WCET.

    Attributes
    ----------
    ratios:
        Support points in ``(0, 1]`` — actual time = ratio · WCET.
    weights:
        Unnormalised non-negative weights, one per ratio; at least one
        must be positive.
    """

    ratios: Tuple[float, ...]
    weights: Tuple[float, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "ratios", tuple(float(r) for r in self.ratios))
        object.__setattr__(self, "weights", tuple(float(w) for w in self.weights))
        if not self.ratios:
            raise ValueError("execution-time distribution needs at least one ratio")
        if len(self.ratios) != len(self.weights):
            raise ValueError("ratios and weights must have the same length")
        for ratio in self.ratios:
            if not 0.0 < ratio <= 1.0 + EXACT_EPS:
                raise ValueError(f"execution-time ratio must be in (0, 1], got {ratio}")
        if any(w < 0.0 for w in self.weights):
            raise ValueError("weights must be non-negative")
        if sum(self.weights) <= 0.0:
            raise ValueError("at least one weight must be positive")

    @property
    def total_weight(self) -> float:
        """Sum of the raw weights (the normalisation constant)."""
        return sum(self.weights)

    def probabilities(self) -> Tuple[float, ...]:
        """Normalised weights."""
        total = self.total_weight
        return tuple(w / total for w in self.weights)

    def mean_ratio(self) -> float:
        """Expected execution time as a fraction of WCET."""
        total = self.total_weight
        return sum(r * w for r, w in zip(self.ratios, self.weights)) / total

    def sample(self, rng) -> float:
        """Draw one ratio with a ``random.Random``-like generator."""
        pick = rng.random() * self.total_weight
        acc = 0.0
        for ratio, weight in zip(self.ratios, self.weights):
            acc += weight
            if pick <= acc:
                return ratio
        return self.ratios[-1]


def uniform_ratio_levels(points: int, low: float = 0.25) -> ExecutionTimeDistribution:
    """Equally weighted, equally spaced ratio levels from ``low`` to 1.0.

    A convenient default profile for examples and tests: ``points``
    support points, the last one exactly 1.0 so the WCET stays in the
    support (the distribution must dominate nothing above WCET).
    """
    if points < 1:
        raise ValueError("need at least one support point")
    if points == 1:
        return ExecutionTimeDistribution((1.0,), (1.0,))
    step = (1.0 - low) / (points - 1)
    ratios = tuple(low + i * step for i in range(points - 1)) + (1.0,)
    return ExecutionTimeDistribution(ratios, tuple(1.0 for _ in ratios))
