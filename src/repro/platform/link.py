"""Point-to-point communication links of the MPSoC.

The paper models a dedicated point-to-point link per PE pair with a
bandwidth ``B(pᵢ, pⱼ)`` (KBytes per time unit) and a transmission
energy ``E_tr(pᵢ, pⱼ)`` per KByte; voltage scaling is *not* applied to
communication (§II).  Transfers between tasks mapped to the same PE are
free and instantaneous.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Link:
    """A bidirectional point-to-point link between two PEs.

    Attributes
    ----------
    a, b:
        Names of the connected PEs (order is not significant).
    bandwidth:
        KBytes per time unit.
    energy_per_kbyte:
        Transmission energy per KByte.
    """

    a: str
    b: str
    bandwidth: float
    energy_per_kbyte: float

    def __post_init__(self) -> None:
        if self.a == self.b:
            raise ValueError("a link must connect two distinct PEs")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.energy_per_kbyte < 0:
            raise ValueError("transmission energy must be non-negative")

    @property
    def key(self) -> frozenset:
        """Canonical unordered endpoint pair."""
        return frozenset((self.a, self.b))

    def transfer_time(self, kbytes: float) -> float:
        """Time to ship ``kbytes`` over this link."""
        return kbytes / self.bandwidth

    def transfer_energy(self, kbytes: float) -> float:
        """Energy to ship ``kbytes`` over this link."""
        return kbytes * self.energy_per_kbyte
