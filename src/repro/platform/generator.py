"""Random platform generation matched to a CTG.

The paper's random experiments pair TGFF-derived CTGs with MPSoCs of
3–5 PEs, randomly generated execution profiles and a full point-to-
point interconnect.  This module generates such platforms: each task
gets a base workload, each (task, PE) pair a heterogeneity factor, and
each PE a power weight, giving correlated but heterogeneous
WCET/energy tables as TGFF's companion tables would.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from .distributions import ExecutionTimeDistribution
from .energy import DvfsModel, PAPER_MODEL
from .mpsoc import Platform
from .pe import ProcessingElement


@dataclass
class PlatformConfig:
    """Knobs of the random platform generator.

    Attributes
    ----------
    pes:
        Number of processing elements.
    seed:
        RNG seed (independent of the CTG's seed).
    base_wcet_range:
        Uniform range of each task's base workload (time units at
        nominal speed on a "typical" PE).
    heterogeneity:
        (low, high) multiplicative spread of per-(task, PE) WCETs
        around the base workload.
    power_range:
        (low, high) power weight per PE: nominal task energy is
        ``wcet(τ, p) · power(p)``.  The default (1, 1) is the paper's
        Table-1 assumption of unit load capacitance — energy is
        proportional to execution cycles, identical power everywhere;
        widen the range to model PEs with genuinely different
        energy/performance trade-offs.
    bandwidth:
        KBytes per time unit of every link.
    comm_energy_per_kbyte:
        Transmission energy per KByte of every link.
    min_speed:
        DVFS floor of every PE.
    speed_levels:
        Optional discrete frequency table shared by every generated PE
        (``None`` keeps the paper's continuous scaling).
    et_levels:
        When positive, attach a random per-task execution-time
        distribution (:class:`~repro.platform.distributions
        .ExecutionTimeDistribution`) with this many support points.
        ``0`` (the default) generates no distributions and leaves the
        generator's random stream untouched.
    et_ratio_range:
        Range the random support ratios are drawn from (the top point
        is always exactly 1.0 so WCET stays in the support).
    """

    pes: int = 3
    seed: int = 0
    base_wcet_range: Tuple[float, float] = (5.0, 40.0)
    heterogeneity: Tuple[float, float] = (0.7, 1.4)
    power_range: Tuple[float, float] = (1.0, 1.0)
    bandwidth: float = 1.0
    comm_energy_per_kbyte: float = 0.05
    min_speed: float = 0.25
    speed_levels: Optional[Tuple[float, ...]] = None
    et_levels: int = 0
    et_ratio_range: Tuple[float, float] = (0.3, 0.95)

    def __post_init__(self) -> None:
        if self.pes < 1:
            raise ValueError("need at least one PE")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if self.et_levels < 0:
            raise ValueError("et_levels must be non-negative")


def generate_platform(
    tasks: Iterable[str],
    config: PlatformConfig,
    dvfs: DvfsModel = PAPER_MODEL,
) -> Platform:
    """Generate a random platform profiling every task in ``tasks``.

    Deterministic for a given (task list, config) pair.
    """
    task_list = list(tasks)
    rng = random.Random(config.seed)
    pes = [
        ProcessingElement(
            name=f"pe{i}",
            min_speed=config.min_speed,
            speed_levels=config.speed_levels,
        )
        for i in range(config.pes)
    ]
    platform = Platform(pes, dvfs=dvfs)
    platform.connect_all(config.bandwidth, config.comm_energy_per_kbyte)

    powers = {pe.name: rng.uniform(*config.power_range) for pe in pes}
    for task in task_list:
        base = rng.uniform(*config.base_wcet_range)
        for pe in pes:
            wcet = base * rng.uniform(*config.heterogeneity)
            energy = wcet * powers[pe.name]
            platform.set_task_profile(task, pe.name, wcet=wcet, energy=energy)

    if config.et_levels > 0:
        # A separate, deterministically derived stream: attaching
        # distributions must not perturb the WCET/energy draws above.
        et_rng = random.Random(config.seed * 1_000_003 + 17)
        lo, hi = config.et_ratio_range
        for task in task_list:
            ratios = sorted(
                et_rng.uniform(lo, hi) for _ in range(config.et_levels - 1)
            ) + [1.0]
            weights = [et_rng.uniform(0.5, 1.5) for _ in ratios]
            platform.set_execution_profile(
                task, ExecutionTimeDistribution(tuple(ratios), tuple(weights))
            )
    return platform
