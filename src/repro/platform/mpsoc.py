"""The MPSoC platform container.

Bundles the PE set, the per-(task, PE) worst-case execution time and
nominal energy tables, the point-to-point link fabric and the DVFS
model — everything of §II's architecture description that the
scheduling and simulation layers consume.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .distributions import ExecutionTimeDistribution
from .energy import DvfsModel, PAPER_MODEL
from .link import Link
from .pe import ProcessingElement


class PlatformError(ValueError):
    """Raised for inconsistent platform descriptions."""


class Platform:
    """A heterogeneous multiprocessor platform.

    Parameters
    ----------
    pes:
        The processing elements.
    dvfs:
        Energy/delay scaling model shared by all PEs (the paper's
        unit-capacitance quadratic model by default).

    WCET/energy entries are registered with :meth:`set_task_profile`;
    links with :meth:`add_link` (a missing link means the two PEs
    cannot exchange data; :meth:`connect_all` builds the paper's full
    point-to-point fabric).
    """

    def __init__(
        self, pes: Iterable[ProcessingElement], dvfs: DvfsModel = PAPER_MODEL
    ) -> None:
        self._pes: Dict[str, ProcessingElement] = {}
        for pe in pes:
            if pe.name in self._pes:
                raise PlatformError(f"duplicate PE {pe.name!r}")
            self._pes[pe.name] = pe
        if not self._pes:
            raise PlatformError("a platform needs at least one PE")
        self.dvfs = dvfs
        self._wcet: Dict[Tuple[str, str], float] = {}
        self._energy: Dict[Tuple[str, str], float] = {}
        self._links: Dict[frozenset, Link] = {}
        self._et_profiles: Dict[str, ExecutionTimeDistribution] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def set_task_profile(
        self, task: str, pe: str, wcet: float, energy: float
    ) -> None:
        """Register WCET(τ, p) and E(τ, p) at nominal voltage."""
        self._require_pe(pe)
        if wcet <= 0:
            raise PlatformError(f"WCET({task!r}, {pe!r}) must be positive")
        if energy < 0:
            raise PlatformError(f"E({task!r}, {pe!r}) must be non-negative")
        self._wcet[(task, pe)] = float(wcet)
        self._energy[(task, pe)] = float(energy)

    def set_execution_profile(
        self, task: str, distribution: ExecutionTimeDistribution
    ) -> None:
        """Attach an execution-time distribution (ratio of WCET) to a task.

        Orthogonal to the per-PE WCET table: the distribution scales the
        task's WCET on whatever PE it lands on.
        """
        self._et_profiles[task] = distribution

    def add_link(self, link: Link) -> None:
        """Register a point-to-point link (rejects duplicates)."""
        self._require_pe(link.a)
        self._require_pe(link.b)
        if link.key in self._links:
            raise PlatformError(f"duplicate link {link.a!r}↔{link.b!r}")
        self._links[link.key] = link

    def connect_all(self, bandwidth: float, energy_per_kbyte: float) -> None:
        """Build a full point-to-point fabric with uniform parameters."""
        names = list(self._pes)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                self.add_link(Link(a, b, bandwidth, energy_per_kbyte))

    def _require_pe(self, name: str) -> None:
        if name not in self._pes:
            raise PlatformError(f"unknown PE {name!r}")

    # ------------------------------------------------------------------
    # PE queries
    # ------------------------------------------------------------------
    @property
    def pe_names(self) -> List[str]:
        """All PE names in registration order."""
        return list(self._pes)

    def pe(self, name: str) -> ProcessingElement:
        """Look up a PE by name."""
        self._require_pe(name)
        return self._pes[name]

    def __len__(self) -> int:
        return len(self._pes)

    # ------------------------------------------------------------------
    # Task profile queries
    # ------------------------------------------------------------------
    def wcet(self, task: str, pe: str) -> float:
        """WCET(τ, p) at nominal speed."""
        try:
            return self._wcet[(task, pe)]
        except KeyError as exc:
            raise PlatformError(f"no WCET for task {task!r} on PE {pe!r}") from exc

    def energy(self, task: str, pe: str) -> float:
        """E(τ, p) at nominal voltage."""
        try:
            return self._energy[(task, pe)]
        except KeyError as exc:
            raise PlatformError(f"no energy for task {task!r} on PE {pe!r}") from exc

    def supports(self, task: str, pe: str) -> bool:
        """Whether the task has a profile on the PE (i.e. may map there)."""
        return (task, pe) in self._wcet

    def average_wcet(self, task: str) -> float:
        """Average WCET of a task across the PEs that support it.

        This is the paper's ``*WCET`` used by the static levels and the
        δ preference term of the modified DLS.
        """
        values = [self._wcet[(task, pe)] for pe in self._pes if (task, pe) in self._wcet]
        if not values:
            raise PlatformError(f"task {task!r} has no profile on any PE")
        return sum(values) / len(values)

    def profiles(self) -> List[Tuple[str, str, float, float]]:
        """All registered profiles as ``(task, pe, wcet, energy)``, sorted."""
        return [
            (task, pe, wcet, self._energy[(task, pe)])
            for (task, pe), wcet in sorted(self._wcet.items())
        ]

    def execution_profile(self, task: str) -> Optional[ExecutionTimeDistribution]:
        """The task's execution-time distribution, or ``None`` (= always WCET)."""
        return self._et_profiles.get(task)

    def execution_profiles(self) -> List[Tuple[str, ExecutionTimeDistribution]]:
        """All registered distributions as ``(task, distribution)``, sorted."""
        return sorted(self._et_profiles.items())

    @property
    def has_execution_profiles(self) -> bool:
        """Whether any task carries an execution-time distribution."""
        return bool(self._et_profiles)

    # ------------------------------------------------------------------
    # Derived platforms
    # ------------------------------------------------------------------
    def restricted(self, pe_names: Sequence[str]) -> "Platform":
        """A copy of this platform restricted to a subset of its PEs.

        Keeps the DVFS model, the task profiles on the surviving PEs,
        the links between them and the execution-time distributions.
        Used by configuration-enumerating policies (EAPS) that search
        over how many cores to power.
        """
        keep = list(pe_names)
        if not keep:
            raise PlatformError("restricted platform needs at least one PE")
        sub = Platform((self.pe(name) for name in keep), dvfs=self.dvfs)
        kept = set(keep)
        for (task, pe), wcet in sorted(self._wcet.items()):
            if pe in kept:
                sub.set_task_profile(task, pe, wcet=wcet, energy=self._energy[(task, pe)])
        for key in sorted(self._links, key=sorted):
            link = self._links[key]
            if link.a in kept and link.b in kept:
                sub.add_link(link)
        for task, dist in sorted(self._et_profiles.items()):
            sub.set_execution_profile(task, dist)
        return sub

    # ------------------------------------------------------------------
    # Communication queries
    # ------------------------------------------------------------------
    def link(self, a: str, b: str) -> Link:
        """The link between two distinct PEs."""
        try:
            return self._links[frozenset((a, b))]
        except KeyError as exc:
            raise PlatformError(f"no link between {a!r} and {b!r}") from exc

    def has_link(self, a: str, b: str) -> bool:
        """Whether two PEs can exchange data."""
        return a == b or frozenset((a, b)) in self._links

    def comm_time(self, src_pe: str, dst_pe: str, kbytes: float) -> float:
        """Transfer delay for ``kbytes`` between two PEs (0 if same PE)."""
        if src_pe == dst_pe or kbytes == 0:
            return 0.0
        return self.link(src_pe, dst_pe).transfer_time(kbytes)

    def comm_energy(self, src_pe: str, dst_pe: str, kbytes: float) -> float:
        """Transfer energy for ``kbytes`` between two PEs (0 if same PE)."""
        if src_pe == dst_pe or kbytes == 0:
            return 0.0
        return self.link(src_pe, dst_pe).transfer_energy(kbytes)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate_for(self, tasks: Iterable[str]) -> None:
        """Check every task can run on at least one PE and all PE pairs
        that might need to communicate are linked (full fabric)."""
        for task in tasks:
            if not any(self.supports(task, pe) for pe in self._pes):
                raise PlatformError(f"task {task!r} has no profile on any PE")
        names = list(self._pes)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if not self.has_link(a, b):
                    raise PlatformError(f"missing link {a!r}↔{b!r}")
