"""MPSoC platform substrate: PEs, links, WCET/energy tables, DVFS model."""

from .distributions import ExecutionTimeDistribution, uniform_ratio_levels
from .energy import PAPER_MODEL, DvfsModel
from .frequency import CONTINUOUS, ContinuousDvfs, DiscreteDvfs, FrequencyModel
from .generator import PlatformConfig, generate_platform
from .link import Link
from .mpsoc import Platform, PlatformError
from .pe import ProcessingElement

__all__ = [
    "CONTINUOUS",
    "ContinuousDvfs",
    "DiscreteDvfs",
    "ExecutionTimeDistribution",
    "FrequencyModel",
    "PAPER_MODEL",
    "DvfsModel",
    "PlatformConfig",
    "generate_platform",
    "Link",
    "Platform",
    "PlatformError",
    "ProcessingElement",
    "uniform_ratio_levels",
]
