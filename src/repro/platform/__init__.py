"""MPSoC platform substrate: PEs, links, WCET/energy tables, DVFS model."""

from .energy import PAPER_MODEL, DvfsModel
from .generator import PlatformConfig, generate_platform
from .link import Link
from .mpsoc import Platform, PlatformError
from .pe import ProcessingElement

__all__ = [
    "PAPER_MODEL",
    "DvfsModel",
    "PlatformConfig",
    "generate_platform",
    "Link",
    "Platform",
    "PlatformError",
    "ProcessingElement",
]
