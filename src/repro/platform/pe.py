"""Processing elements of the MPSoC model.

The paper's architecture (§II) is a set of heterogeneous PEs; each task
has a per-PE worst-case execution time and energy at the nominal supply
voltage, and each PE can scale its speed/frequency continuously (unit
load capacitance, voltage tracking frequency).  A PE here is therefore
mostly an identity plus its DVFS envelope: the range of relative speeds
it supports, and optionally a discrete level set (an extension beyond
the paper's continuous model, used by the quantisation ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..check.tolerances import EXACT_EPS
from .frequency import CONTINUOUS, DiscreteDvfs, FrequencyModel


@dataclass(frozen=True)
class ProcessingElement:
    """One processing element.

    Attributes
    ----------
    name:
        Unique identifier, e.g. ``"pe0"``.
    min_speed:
        Lowest relative speed (fraction of nominal frequency) DVFS may
        select.  ``1.0`` disables scaling on this PE entirely.
    speed_levels:
        Optional discrete relative speed levels, sorted ascending, all
        within ``[min_speed, 1.0]``.  ``None`` models the paper's
        continuous scaling; when present, assigned speeds are rounded
        *up* to the next level so deadlines stay safe.  This is the
        strictly validated shorthand for attaching a
        :class:`~repro.platform.frequency.DiscreteDvfs`.
    frequency:
        Optional explicit :class:`~repro.platform.frequency
        .FrequencyModel`, overriding the one derived from
        ``speed_levels``.  Unlike ``speed_levels`` this path is *not*
        validated at construction — ``repro check`` diagnoses
        defective tables (``PLAT005``–``PLAT007``) instead.
    """

    name: str
    min_speed: float = 0.25
    speed_levels: Optional[Tuple[float, ...]] = None
    frequency: Optional[FrequencyModel] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.min_speed <= 1.0:
            raise ValueError(f"min_speed must be in (0, 1], got {self.min_speed}")
        if self.speed_levels is not None:
            levels = tuple(self.speed_levels)
            if not levels:
                raise ValueError("speed_levels must be non-empty when given")
            if any(not self.min_speed <= s <= 1.0 for s in levels):
                raise ValueError("speed levels must lie in [min_speed, 1.0]")
            if list(levels) != sorted(levels):
                raise ValueError("speed levels must be sorted ascending")
            if abs(levels[-1] - 1.0) > EXACT_EPS:
                raise ValueError("the nominal speed 1.0 must be a level")
        if self.frequency is not None:
            model = self.frequency
        elif self.speed_levels is not None:
            model = DiscreteDvfs(tuple(self.speed_levels))
        else:
            model = CONTINUOUS
        object.__setattr__(self, "_frequency_model", model)

    @property
    def frequency_model(self) -> FrequencyModel:
        """The effective frequency model (explicit, derived, or continuous)."""
        return self._frequency_model  # type: ignore[attr-defined]

    def max_speed(self) -> float:
        """Highest realisable speed — the top discrete level, else 1.0."""
        return self.frequency_model.max_level

    def clamp_speed(self, speed: float) -> float:
        """Clamp a requested relative speed into this PE's envelope.

        Continuous PEs clamp into ``[min_speed, 1.0]``; discrete PEs
        additionally round *up* to the next available level (never down,
        so a task can only finish earlier than planned).  Routed through
        the PE's :class:`~repro.platform.frequency.FrequencyModel`.
        """
        return self.frequency_model.clamp(speed, self.min_speed)
