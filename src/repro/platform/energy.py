"""Continuous DVFS energy/delay model.

The paper assumes unit load capacitance with speed/frequency as the
only variable and no DVFS switching overhead (§IV).  With dynamic
energy ``E = C·V²·N`` and voltage tracking frequency (``V ∝ f``),
running a task at relative speed ``ρ ∈ (0, 1]`` takes

* time  ``WCET / ρ``  (cycles are fixed), and
* energy ``E_nominal · ρ²``  (the classic quadratic DVFS saving).

:class:`DvfsModel` generalises the exponent (``energy ∝ ρ^α``, α = 2 by
default) so the ablation benches can probe sensitivity; every algorithm
takes the model as a parameter and never hard-codes the exponent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..check.tolerances import EXACT_EPS
from .frequency import FrequencyModel


@dataclass(frozen=True)
class DvfsModel:
    """Energy/delay scaling laws for continuous voltage scaling.

    Attributes
    ----------
    exponent:
        α in ``energy = nominal_energy · ρ^α``.  α = 2 reproduces the
        paper's unit-capacitance model (V ∝ f ⇒ E ∝ V² ∝ f²).
    """

    exponent: float = 2.0

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ValueError("energy exponent must be positive")

    def energy_at_speed(self, nominal_energy: float, speed: float) -> float:
        """Task energy when run at relative speed ``ρ = speed``."""
        if not 0.0 < speed <= 1.0 + EXACT_EPS:
            raise ValueError(f"relative speed must be in (0, 1], got {speed}")
        return nominal_energy * speed ** self.exponent

    def time_at_speed(self, wcet: float, speed: float) -> float:
        """Task execution time when run at relative speed ``speed``."""
        if not 0.0 < speed <= 1.0 + EXACT_EPS:
            raise ValueError(f"relative speed must be in (0, 1], got {speed}")
        return wcet / speed

    def speed_for_time(
        self,
        wcet: float,
        target_time: float,
        frequency: Optional[FrequencyModel] = None,
    ) -> float:
        """Relative speed that makes the task take ``target_time``.

        ``target_time`` below WCET is clamped to nominal speed (we never
        overclock); callers clamp the low end against the PE envelope.
        With a ``frequency`` model the result is additionally rounded
        onto its realisable set (up, so the task still meets
        ``target_time``); omitted, the continuous value is returned
        unchanged — the historical behaviour, bit-identical.
        """
        if target_time <= 0:
            raise ValueError("target time must be positive")
        speed = min(1.0, wcet / target_time)
        if frequency is None:
            return speed
        return frequency.quantize(speed)

    def energy_for_time(
        self,
        nominal_energy: float,
        wcet: float,
        target_time: float,
        frequency: Optional[FrequencyModel] = None,
    ) -> float:
        """Energy of a task stretched from ``wcet`` to ``target_time``."""
        return self.energy_at_speed(
            nominal_energy, self.speed_for_time(wcet, target_time, frequency)
        )


#: The paper's model: E ∝ ρ².
PAPER_MODEL = DvfsModel(exponent=2.0)
