"""An 802.11b physical-layer receiver CTG.

The paper's introduction names this workload class explicitly:
"branches that select different modulation schemes for preamble and
payload based on 802.11b physical layer standard".  In 802.11b the
PLCP preamble/header are always transmitted at 1 Mbit/s DBPSK, while
the PSDU (payload) is demodulated at one of four rates — 1 Mbit/s
DBPSK, 2 Mbit/s DQPSK, or 5.5/11 Mbit/s CCK — announced in the PLCP
header's SIGNAL field.  A receiver pipeline therefore contains a
four-way task-level branch whose selection statistics follow the link
conditions (rate adaptation), plus a short/long-preamble branch.

The model below is a 24-task CTG with those two branch forks:

* ``plcp_sync`` (branch **p**): p1 = long preamble (144 µs sync
  train), p2 = short preamble (72 µs) — short preambles appear once
  the link negotiates them;
* ``rate_select`` (branch **r**): r1/r2 = DBPSK/DQPSK demodulation
  chains (cheap), r55/r11 = CCK correlator chains (expensive — the
  11 Mbit/s chunk decoder dominates the pipeline).

Rate adaptation makes the branch statistics non-stationary in exactly
the paper's sense: good channels sit at 11 Mbit/s, fades push traffic
down to DBPSK, and the adaptive scheduler should follow.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from ..ctg.graph import ConditionalTaskGraph, NodeKind
from ..platform.energy import PAPER_MODEL, DvfsModel
from ..platform.mpsoc import Platform
from ..platform.pe import ProcessingElement
from ..sim.vectors import Trace

_TASK_WCET: Dict[str, float] = {
    # front end
    "agc": 3.0,
    "dc_offset": 2.0,
    "plcp_sync": 4.0,            # branch fork p (long/short preamble)
    "sync_long": 12.0,
    "sync_short": 6.0,
    "sfd_detect": 3.0,           # or-join of the two sync paths
    "header_demod": 6.0,
    "header_crc": 2.0,
    "rate_select": 2.0,          # branch fork r (payload modulation)
    # 1 Mbit/s DBPSK chain
    "dbpsk_demod": 8.0,
    "dbpsk_descramble": 4.0,
    # 2 Mbit/s DQPSK chain
    "dqpsk_demod": 10.0,
    "dqpsk_descramble": 5.0,
    # 5.5 Mbit/s CCK chain
    "cck55_correlate": 16.0,
    "cck55_decode": 8.0,
    # 11 Mbit/s CCK chain
    "cck11_correlate": 24.0,
    "cck11_chunk": 12.0,
    "cck11_decode": 9.0,
    # common back end
    "payload_merge": 3.0,        # or-join of the four payload chains
    "descramble": 4.0,
    "fcs_check": 4.0,
    "mac_filter": 3.0,
    "dispatch": 2.0,
    "stats_update": 2.0,
}

#: The payload-rate outcomes and the head task of each chain.
RATE_ARMS: Tuple[Tuple[str, str], ...] = (
    ("r1", "dbpsk_demod"),
    ("r2", "dqpsk_demod"),
    ("r55", "cck55_correlate"),
    ("r11", "cck11_correlate"),
)


def wlan_ctg() -> ConditionalTaskGraph:
    """Build the 24-task, 2-fork 802.11b receiver CTG."""
    ctg = ConditionalTaskGraph(name="wlan_80211b")
    for name in _TASK_WCET:
        kind = NodeKind.OR if name in ("sfd_detect", "payload_merge") else NodeKind.AND
        ctg.add_task(name, kind)

    ctg.add_edge("agc", "dc_offset", comm_kbytes=1.0)
    ctg.add_edge("dc_offset", "plcp_sync", comm_kbytes=1.0)
    ctg.add_conditional_edge("plcp_sync", "sync_long", "p1", comm_kbytes=2.0)
    ctg.add_conditional_edge("plcp_sync", "sync_short", "p2", comm_kbytes=1.0)
    ctg.add_edge("sync_long", "sfd_detect", comm_kbytes=1.0)
    ctg.add_edge("sync_short", "sfd_detect", comm_kbytes=1.0)
    ctg.add_edge("sfd_detect", "header_demod", comm_kbytes=1.0)
    ctg.add_edge("header_demod", "header_crc", comm_kbytes=1.0)
    ctg.add_edge("header_crc", "rate_select", comm_kbytes=0.5)

    ctg.add_conditional_edge("rate_select", "dbpsk_demod", "r1", comm_kbytes=4.0)
    ctg.add_edge("dbpsk_demod", "dbpsk_descramble", comm_kbytes=2.0)
    ctg.add_edge("dbpsk_descramble", "payload_merge", comm_kbytes=2.0)

    ctg.add_conditional_edge("rate_select", "dqpsk_demod", "r2", comm_kbytes=4.0)
    ctg.add_edge("dqpsk_demod", "dqpsk_descramble", comm_kbytes=2.0)
    ctg.add_edge("dqpsk_descramble", "payload_merge", comm_kbytes=2.0)

    ctg.add_conditional_edge("rate_select", "cck55_correlate", "r55", comm_kbytes=4.0)
    ctg.add_edge("cck55_correlate", "cck55_decode", comm_kbytes=2.0)
    ctg.add_edge("cck55_decode", "payload_merge", comm_kbytes=2.0)

    ctg.add_conditional_edge("rate_select", "cck11_correlate", "r11", comm_kbytes=4.0)
    ctg.add_edge("cck11_correlate", "cck11_chunk", comm_kbytes=2.0)
    ctg.add_edge("cck11_chunk", "cck11_decode", comm_kbytes=2.0)
    ctg.add_edge("cck11_decode", "payload_merge", comm_kbytes=2.0)

    ctg.add_edge("payload_merge", "descramble", comm_kbytes=2.0)
    ctg.add_edge("descramble", "fcs_check", comm_kbytes=2.0)
    ctg.add_edge("fcs_check", "mac_filter", comm_kbytes=1.0)
    ctg.add_edge("mac_filter", "dispatch", comm_kbytes=1.0)
    ctg.add_edge("mac_filter", "stats_update", comm_kbytes=0.5)

    ctg.default_probabilities = {
        "plcp_sync": {"p1": 0.3, "p2": 0.7},
        "rate_select": {"r1": 0.1, "r2": 0.15, "r55": 0.25, "r11": 0.5},
    }
    ctg.validate()
    if len(ctg) != 24 or len(ctg.branch_nodes()) != 2:
        raise AssertionError("WLAN CTG must have 24 tasks and 2 branch forks")
    return ctg


def wlan_platform(
    pes: int = 2, dvfs: DvfsModel = PAPER_MODEL, min_speed: float = 0.25
) -> Platform:
    """A 2-PE baseband platform (DSP + accelerator flavour)."""
    platform = Platform(
        [ProcessingElement(f"pe{i}", min_speed=min_speed) for i in range(pes)],
        dvfs=dvfs,
    )
    if pes > 1:
        platform.connect_all(bandwidth=4.0, energy_per_kbyte=0.03)
    factors = [1.0 + 0.2 * ((i % 2) - 0.5) for i in range(pes)]
    for task, base in _TASK_WCET.items():
        for i, pe in enumerate(platform.pe_names):
            wcet = base * factors[i]
            platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
    return platform


#: Channel states of the rate-adaptation Markov model, with their
#: payload-rate distributions (good links use 11 Mbit/s, deep fades
#: fall back to DBPSK) and short-preamble probability.
CHANNEL_STATES: Dict[str, Dict[str, object]] = {
    "excellent": {
        "rates": {"r1": 0.02, "r2": 0.03, "r55": 0.15, "r11": 0.80},
        "short_preamble": 0.9,
    },
    "good": {
        "rates": {"r1": 0.05, "r2": 0.10, "r55": 0.45, "r11": 0.40},
        "short_preamble": 0.8,
    },
    "fair": {
        "rates": {"r1": 0.15, "r2": 0.40, "r55": 0.35, "r11": 0.10},
        "short_preamble": 0.6,
    },
    "poor": {
        "rates": {"r1": 0.60, "r2": 0.30, "r55": 0.08, "r11": 0.02},
        "short_preamble": 0.3,
    },
}

_STATE_ORDER = ("excellent", "good", "fair", "poor")


def channel_trace(
    ctg: ConditionalTaskGraph,
    length: int,
    seed: int,
    dwell_range: Tuple[int, int] = (80, 300),
) -> Trace:
    """A frame-decision trace under a fading channel.

    The channel performs a random walk over the quality states
    (excellent ↔ good ↔ fair ↔ poor), dwelling a random number of
    frames in each — the slowly-varying, regime-structured statistics
    the adaptive framework targets.
    """
    if set(ctg.branch_nodes()) != {"plcp_sync", "rate_select"}:
        raise ValueError("channel_trace expects the 802.11b receiver CTG")
    rng = random.Random(seed)
    state_index = rng.randrange(len(_STATE_ORDER))
    trace: List[Dict[str, str]] = []
    while len(trace) < length:
        state = CHANNEL_STATES[_STATE_ORDER[state_index]]
        dwell = rng.randint(*dwell_range)
        rates: Dict[str, float] = state["rates"]  # type: ignore[assignment]
        short_p: float = state["short_preamble"]  # type: ignore[assignment]
        for _ in range(min(dwell, length - len(trace))):
            roll = rng.random()
            acc = 0.0
            outcome = "r11"
            for label, probability in rates.items():
                acc += probability
                if roll < acc:
                    outcome = label
                    break
            trace.append(
                {
                    "plcp_sync": "p2" if rng.random() < short_p else "p1",
                    "rate_select": outcome,
                }
            )
        state_index += rng.choice((-1, 1))
        state_index = max(0, min(len(_STATE_ORDER) - 1, state_index))
    return trace
