"""The vehicle cruise-controller CTG (paper §IV, after Pop [15]).

The paper's second real-life application: a 32-task conditional task
graph with **two** branching nodes mapped onto **five** PEs, whose
branch decisions track the road (increase vs decrease the reference
speed, and how to brake).  The paper notes the CTG has only **three
minterms**, the two minterms of a common branching node being "almost
equal in energy" — which is why adaptivity only buys ≈5% there.

We reconstruct that structure: a sensing/fusion front-end, a control
branch (accelerate vs decelerate), a braking-strategy branch nested in
the decelerate arm (engine vs friction braking → minterms c₁, c₂g₁,
c₂g₂), near-symmetric arm costs, and an actuation/diagnostics
back-end.  Execution profiles follow typical automotive task weights
(estimation/fusion heavy, actuation light).
"""

from __future__ import annotations

from typing import Dict

from ..ctg.graph import ConditionalTaskGraph, NodeKind
from ..platform.energy import PAPER_MODEL, DvfsModel
from ..platform.mpsoc import Platform
from ..platform.pe import ProcessingElement

_TASK_WCET: Dict[str, float] = {
    # sensing front-end
    "speed_sensor": 3.0,
    "wheel_sensor": 3.0,
    "throttle_sensor": 3.0,
    "brake_sensor": 3.0,
    "incline_sensor": 3.0,
    "filter_speed": 5.0,
    "filter_wheel": 5.0,
    "filter_pedal": 4.0,
    "fusion": 9.0,
    "estimator": 11.0,
    "target_calc": 6.0,
    "control_law": 8.0,          # branch fork #1 (accelerate/decelerate)
    # accelerate arm (minterm c1)
    "throttle_plan": 7.0,
    "fuel_map": 8.0,
    "ignition_adv": 6.0,
    "throttle_drive": 5.0,
    # decelerate arm with nested braking fork (minterms c2g1 / c2g2)
    "decel_plan": 7.0,
    "brake_strategy": 4.0,       # branch fork #2 (engine/friction braking)
    "engine_brake": 9.0,
    "gear_select": 7.0,
    "friction_brake": 8.0,
    "abs_check": 8.0,
    "brake_drive": 5.0,
    # merge + actuation/diagnostics back-end
    "actuate": 4.0,              # or-join of the three control paths
    "speed_limit": 4.0,
    "dashboard": 5.0,
    "can_tx": 4.0,
    "logger": 4.0,
    "watchdog": 3.0,
    "diag": 5.0,
    "idle_mgr": 3.0,
    "radar_sensor": 3.0,
}


def cruise_ctg() -> ConditionalTaskGraph:
    """Build the 32-task, 2-fork cruise-controller CTG."""
    ctg = ConditionalTaskGraph(name="cruise_controller")
    for name in _TASK_WCET:
        # brake_drive joins the two mutually exclusive braking paths;
        # actuate joins the accelerate and decelerate arms.
        kind = NodeKind.OR if name in ("actuate", "brake_drive") else NodeKind.AND
        ctg.add_task(name, kind)

    # Sensing front-end.
    ctg.add_edge("speed_sensor", "filter_speed", comm_kbytes=1.0)
    ctg.add_edge("wheel_sensor", "filter_wheel", comm_kbytes=1.0)
    ctg.add_edge("throttle_sensor", "filter_pedal", comm_kbytes=1.0)
    ctg.add_edge("brake_sensor", "filter_pedal", comm_kbytes=1.0)
    ctg.add_edge("incline_sensor", "fusion", comm_kbytes=1.0)
    ctg.add_edge("radar_sensor", "fusion", comm_kbytes=1.0)
    ctg.add_edge("filter_speed", "fusion", comm_kbytes=2.0)
    ctg.add_edge("filter_wheel", "fusion", comm_kbytes=2.0)
    ctg.add_edge("filter_pedal", "fusion", comm_kbytes=2.0)
    ctg.add_edge("fusion", "estimator", comm_kbytes=3.0)
    ctg.add_edge("estimator", "target_calc", comm_kbytes=2.0)
    ctg.add_edge("target_calc", "control_law", comm_kbytes=2.0)

    # Branch #1: accelerate (c1) vs decelerate (c2).
    ctg.add_conditional_edge("control_law", "throttle_plan", "c1", comm_kbytes=2.0)
    ctg.add_conditional_edge("control_law", "decel_plan", "c2", comm_kbytes=2.0)

    # Accelerate arm.
    ctg.add_edge("throttle_plan", "fuel_map", comm_kbytes=2.0)
    ctg.add_edge("fuel_map", "ignition_adv", comm_kbytes=2.0)
    ctg.add_edge("ignition_adv", "throttle_drive", comm_kbytes=1.0)
    ctg.add_edge("throttle_drive", "actuate", comm_kbytes=1.0)

    # Decelerate arm with the nested braking-strategy fork.
    ctg.add_edge("decel_plan", "brake_strategy", comm_kbytes=2.0)
    ctg.add_conditional_edge("brake_strategy", "engine_brake", "g1", comm_kbytes=1.5)
    ctg.add_conditional_edge("brake_strategy", "friction_brake", "g2", comm_kbytes=1.5)
    ctg.add_edge("engine_brake", "gear_select", comm_kbytes=1.5)
    ctg.add_edge("friction_brake", "abs_check", comm_kbytes=1.5)
    ctg.add_edge("gear_select", "brake_drive", comm_kbytes=1.0)
    ctg.add_edge("abs_check", "brake_drive", comm_kbytes=1.0)
    ctg.add_edge("brake_drive", "actuate", comm_kbytes=1.0)

    # Back-end after the or-join.
    ctg.add_edge("actuate", "speed_limit", comm_kbytes=1.0)
    ctg.add_edge("speed_limit", "dashboard", comm_kbytes=1.0)
    ctg.add_edge("speed_limit", "can_tx", comm_kbytes=1.0)
    ctg.add_edge("can_tx", "logger", comm_kbytes=1.0)
    ctg.add_edge("dashboard", "diag", comm_kbytes=1.0)
    ctg.add_edge("logger", "diag", comm_kbytes=1.0)
    ctg.add_edge("watchdog", "diag", comm_kbytes=0.5)
    ctg.add_edge("diag", "idle_mgr", comm_kbytes=0.5)

    ctg.default_probabilities = {
        "control_law": {"c1": 0.5, "c2": 0.5},
        "brake_strategy": {"g1": 0.5, "g2": 0.5},
    }

    ctg.validate()
    if len(ctg) != 32 or len(ctg.branch_nodes()) != 2:
        raise AssertionError("cruise CTG must have 32 tasks and 2 branch forks")
    return ctg


def cruise_platform(
    pes: int = 5, dvfs: DvfsModel = PAPER_MODEL, min_speed: float = 0.25
) -> Platform:
    """The paper's 5-PE MPSoC for the cruise-controller experiment."""
    platform = Platform(
        [ProcessingElement(f"pe{i}", min_speed=min_speed) for i in range(pes)],
        dvfs=dvfs,
    )
    if pes > 1:
        platform.connect_all(bandwidth=2.0, energy_per_kbyte=0.05)
    factors = [1.0 + 0.1 * ((i % 5) - 2) / 2.0 for i in range(pes)]
    for task, base in _TASK_WCET.items():
        for i, pe in enumerate(platform.pe_names):
            wcet = base * factors[i]
            platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
    return platform
