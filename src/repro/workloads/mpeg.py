"""The MPEG macroblock-decoder CTG of the paper's Figure 3.

The paper models the Berkeley software MPEG player's macroblock
decoding loop as a 40-task CTG with 9 branch fork nodes:

* branch **a** ("Skipped"): a₂ = the macroblock is skipped (copy from
  the reference frame), a₁ = decode it;
* branch **b** (type I?): b₁ = intra block → dequantise + IDCT the
  whole macroblock, b₂ = inter block → motion compensation plus six
  per-block residual paths;
* branches **c…h**: for an inter macroblock, each of the six 8×8
  blocks may or may not carry coded coefficients needing IDCT;
* one further fork (the paper's ninth branching node, unlabeled in the
  figure excerpt) is modelled as the intra DCT-type selection
  (frame/field IDCT variant).

The figure's task-level detail is only partially legible in the paper,
so the pipeline below is reconstructed from the described structure
(40 tasks, 9 forks, skip/intra/inter behaviour, 6 block paths) and the
Berkeley decoder's actual stages; execution profiles are representative
relative costs (IDCT dominant, per §IV's workload discussion).

Scenario structure: 1 (skipped) + 2 (intra × DCT type) + 2⁶ (inter
block combinations) = 67 scenarios.
"""

from __future__ import annotations

from typing import Dict

from ..ctg.graph import ConditionalTaskGraph, NodeKind
from ..platform.energy import PAPER_MODEL, DvfsModel
from ..platform.mpsoc import Platform
from ..platform.pe import ProcessingElement

#: Number of 8×8 blocks in one macroblock (4 luma + 2 chroma).
BLOCK_COUNT = 6

#: Relative worst-case execution times of the decoder stages (time
#: units at nominal speed on the reference PE).  IDCT is the dominant
#: cost, as the paper's IDCT-centric branching implies.
_TASK_WCET: Dict[str, float] = {
    "parse": 4.0,
    "vld_header": 6.0,
    "classify": 2.0,
    "copy_mb": 8.0,
    "mv_decode": 5.0,
    "mc_luma": 12.0,
    "mc_chroma": 8.0,
    "pred_build": 6.0,
    # The intra path dequantises and inverse-transforms the entire
    # macroblock (all six 8×8 blocks), so it is the heavyweight branch:
    # cost ≈ 6 × (deq + idct) of the per-block inter path.
    "dequant_i": 16.0,
    "dct_type": 2.0,
    "idct_frame": 44.0,
    "idct_field": 48.0,
    "store_i": 8.0,
    "inter_add": 8.0,
    "recon": 3.0,
    "output": 4.0,
}
_BLOCK_WCET: Dict[str, float] = {"chk": 1.5, "deq": 4.0, "idct": 9.0, "sum": 2.0}


def mpeg_ctg() -> ConditionalTaskGraph:
    """Build the 40-task, 9-fork MPEG macroblock decoder CTG."""
    ctg = ConditionalTaskGraph(name="mpeg_macroblock")

    for name in _TASK_WCET:
        kind = NodeKind.OR if name in ("store_i", "recon") else NodeKind.AND
        ctg.add_task(name, kind)
    for k in range(1, BLOCK_COUNT + 1):
        ctg.add_task(f"chk{k}")
        ctg.add_task(f"deq{k}")
        ctg.add_task(f"idct{k}")
        ctg.add_task(f"sum{k}", NodeKind.OR)

    # Skip decision (branch a): a1 = decode, a2 = skipped macroblock.
    ctg.add_conditional_edge("parse", "vld_header", "a1", comm_kbytes=2.0)
    ctg.add_conditional_edge("parse", "copy_mb", "a2", comm_kbytes=1.0)
    ctg.add_edge("copy_mb", "recon", comm_kbytes=6.0)

    # Macroblock type (branch b): b1 = intra, b2 = inter.
    ctg.add_edge("vld_header", "classify", comm_kbytes=1.0)
    ctg.add_conditional_edge("classify", "dequant_i", "b1", comm_kbytes=4.0)
    ctg.add_conditional_edge("classify", "mv_decode", "b2", comm_kbytes=2.0)

    # Intra path with the DCT-type fork (the ninth branching node).
    ctg.add_edge("dequant_i", "dct_type", comm_kbytes=4.0)
    ctg.add_conditional_edge("dct_type", "idct_frame", "d1", comm_kbytes=4.0)
    ctg.add_conditional_edge("dct_type", "idct_field", "d2", comm_kbytes=4.0)
    ctg.add_edge("idct_frame", "store_i", comm_kbytes=6.0)
    ctg.add_edge("idct_field", "store_i", comm_kbytes=6.0)
    ctg.add_edge("store_i", "recon", comm_kbytes=6.0)

    # Inter path: motion compensation plus six block residual paths
    # (branches c…h, one per block).
    ctg.add_edge("mv_decode", "mc_luma", comm_kbytes=2.0)
    ctg.add_edge("mv_decode", "mc_chroma", comm_kbytes=2.0)
    ctg.add_edge("mc_luma", "pred_build", comm_kbytes=4.0)
    ctg.add_edge("mc_chroma", "pred_build", comm_kbytes=3.0)
    for k in range(1, BLOCK_COUNT + 1):
        chk, deq, idct, tot = f"chk{k}", f"deq{k}", f"idct{k}", f"sum{k}"
        ctg.add_edge("mv_decode", chk, comm_kbytes=1.0)
        ctg.add_conditional_edge(chk, deq, "c1", comm_kbytes=1.5)  # coded block
        ctg.add_conditional_edge(chk, tot, "c2", comm_kbytes=0.5)  # empty block
        ctg.add_edge(deq, idct, comm_kbytes=1.5)
        ctg.add_edge(idct, tot, comm_kbytes=1.5)
        ctg.add_edge(tot, "inter_add", comm_kbytes=1.5)
    ctg.add_edge("pred_build", "inter_add", comm_kbytes=6.0)
    ctg.add_edge("inter_add", "recon", comm_kbytes=6.0)

    ctg.add_edge("recon", "output", comm_kbytes=6.0)

    # Profiled long-run probabilities of a typical B/P-frame stream
    # (the training values; traces drift around comparable means).
    ctg.default_probabilities = {
        "parse": {"a1": 0.7, "a2": 0.3},
        "classify": {"b1": 0.25, "b2": 0.75},
        "dct_type": {"d1": 0.6, "d2": 0.4},
    }
    for k in range(1, BLOCK_COUNT + 1):
        ctg.default_probabilities[f"chk{k}"] = {"c1": 0.55, "c2": 0.45}

    ctg.validate()
    if len(ctg) != 40 or len(ctg.branch_nodes()) != 9:
        raise AssertionError("MPEG CTG must have 40 tasks and 9 branch forks")
    return ctg


def mpeg_platform(
    pes: int = 3, dvfs: DvfsModel = PAPER_MODEL, min_speed: float = 0.25
) -> Platform:
    """The paper's 3-PE MPSoC for the MPEG experiments.

    PEs are mildly heterogeneous (deterministic ±15% speed spread, unit
    load capacitance so energy tracks cycles), fully connected.
    """
    platform = Platform(
        [ProcessingElement(f"pe{i}", min_speed=min_speed) for i in range(pes)],
        dvfs=dvfs,
    )
    if pes > 1:
        platform.connect_all(bandwidth=2.0, energy_per_kbyte=0.05)
    factors = [1.0 + 0.15 * ((i % 3) - 1) for i in range(pes)]
    ctg = mpeg_ctg()
    wcets = dict(_TASK_WCET)
    for k in range(1, BLOCK_COUNT + 1):
        wcets[f"chk{k}"] = _BLOCK_WCET["chk"]
        wcets[f"deq{k}"] = _BLOCK_WCET["deq"]
        wcets[f"idct{k}"] = _BLOCK_WCET["idct"]
        wcets[f"sum{k}"] = _BLOCK_WCET["sum"]
    for task in ctg.tasks():
        base = wcets[task]
        for i, pe in enumerate(platform.pe_names):
            wcet = base * factors[i]
            platform.set_task_profile(task, pe, wcet=wcet, energy=wcet)
    return platform
