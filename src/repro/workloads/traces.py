"""Branch-decision trace generators.

The paper extracts branch decisions from real movie clips decoded by
the Berkeley MPEG player and from vehicle runs over changing roads;
neither resource is available, so these generators synthesise traces
with the *statistics the paper measures*:

* slowly drifting per-branch probabilities with local fluctuation
  (Figure 4: the window-50 estimate wanders but is "predictable",
  with occasional scene-change jumps);
* average per-branch probability fluctuation of 0.4–0.5 during a run
  (§IV, random-CTG experiments), while the long-run average stays at
  a configured value (the Tables 4/5 vector sets have "average
  probabilities of all branches … equal" across the set);
* segment/regime structure for the cruise controller (uphill,
  downhill, straight, bumpy road stretches).

Every generator is seeded and returns a plain list of decision
vectors (``branch → label``), one per CTG instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..ctg.graph import ConditionalTaskGraph
from ..sim.vectors import Trace


def _normalise(weights: Mapping[str, float]) -> Dict[str, float]:
    total = sum(weights.values())
    if total <= 0:
        n = len(weights)
        return {label: 1.0 / n for label in weights}
    return {label: w / total for label, w in weights.items()}


def _sample(rng: random.Random, distribution: Mapping[str, float]) -> str:
    roll = rng.random()
    acc = 0.0
    last = None
    for label, p in distribution.items():
        acc += p
        last = label
        if roll < acc:
            return label
    return last  # guard against floating-point shortfall


@dataclass
class DriftingBranchModel:
    """Per-branch probability process with drift, jumps and a mean.

    The first outcome's probability follows a bounded random walk
    around ``mean`` with step ``drift`` per instance, amplitude
    ``amplitude``, plus Poisson-like "scene cuts" that re-draw the
    probability uniformly inside the band — together reproducing the
    locality + abrupt-change structure of Figure 4.  Remaining outcomes
    share the complement in fixed proportion.

    Attributes
    ----------
    labels:
        Outcome labels of the branch; the walk controls ``labels[0]``.
    mean:
        Long-run average probability of the first outcome.
    amplitude:
        Half-width of the band the walk is reflected in (the paper's
        "average probability fluctuation per branch was 0.4~0.5" means
        a band of that total width, i.e. amplitude ≈ 0.2–0.25).
    drift:
        Per-instance random-walk step size.
    cut_rate:
        Probability per instance of a scene-change jump.
    """

    labels: Sequence[str]
    mean: float = 0.5
    amplitude: float = 0.25
    drift: float = 0.02
    cut_rate: float = 0.004

    def walk(self, rng: random.Random, length: int) -> List[Dict[str, float]]:
        """Generate ``length`` per-instance distributions."""
        low = max(0.02, self.mean - self.amplitude)
        high = min(0.98, self.mean + self.amplitude)
        p = rng.uniform(low, high)
        rest = list(self.labels[1:])
        shares = [rng.uniform(0.5, 1.5) for _ in rest] or [1.0]
        out: List[Dict[str, float]] = []
        for _ in range(length):
            if rng.random() < self.cut_rate:
                p = rng.uniform(low, high)
            else:
                p += rng.uniform(-self.drift, self.drift)
                if p < low:
                    p = low + (low - p)
                if p > high:
                    p = high - (p - high)
                p = min(high, max(low, p))
            dist = {self.labels[0]: p}
            if rest:
                total = sum(shares)
                for label, share in zip(rest, shares):
                    dist[label] = (1.0 - p) * share / total
            out.append(dist)
        return out


def drifting_trace(
    ctg: ConditionalTaskGraph,
    length: int,
    seed: int,
    models: Optional[Mapping[str, DriftingBranchModel]] = None,
    amplitude: float = 0.25,
    mean_overrides: Optional[Mapping[str, float]] = None,
) -> Trace:
    """A trace whose branch probabilities drift independently.

    Parameters
    ----------
    ctg:
        Supplies the branch set; every vector decides every branch.
    length:
        Number of CTG instances.
    seed:
        Trace RNG seed.
    models:
        Optional per-branch :class:`DriftingBranchModel`; defaults to a
        mean-0.5 walk with the given ``amplitude`` for every branch.
    mean_overrides:
        Shortcut to move the long-run mean of selected branches.
    """
    rng = random.Random(seed)
    trace: List[Dict[str, str]] = [dict() for _ in range(length)]
    for branch in ctg.branch_nodes():
        labels = ctg.outcomes_of(branch)
        if models is not None and branch in models:
            model = models[branch]
        else:
            mean = (mean_overrides or {}).get(branch, 0.5)
            model = DriftingBranchModel(labels=labels, mean=mean, amplitude=amplitude)
        walk = model.walk(rng, length)
        for i, dist in enumerate(walk):
            trace[i][branch] = _sample(rng, dist)
    return trace


# ----------------------------------------------------------------------
# Movie-like traces (MPEG experiments)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MovieProfile:
    """Synthetic stand-in for one of the paper's movie clips.

    Attributes
    ----------
    mbs_per_frame:
        Macroblocks per frame — 330 for the SIF clips (352×240), 99
        for the QCIF ``Shuttle`` (176×144); the paper: "1000 vectors
        constitutes little more than 3 video frames" (SIF) and
        "roughly 10 frames" (Shuttle).
    gop:
        Frame-type pattern repeated over the clip.  I-frames force the
        intra branch (b₁ ≈ 1, no skipped blocks), which is the abrupt
        probability swing that trips even the 0.5 threshold.
    skip_mean / coded_mean:
        Long-run centre of the skip probability (a₂) and of the
        per-block coded probability (c₁) in P/B frames.
    activity_drift / cut_rate:
        Scene-activity walk step and scene-change rate driving the
        local fluctuation of Figure 4.
    seed:
        Clip RNG seed.
    """

    mbs_per_frame: int
    gop: str
    skip_mean: float
    coded_mean: float
    activity_drift: float
    cut_rate: float
    seed: int


#: The eight clips of the paper's Figure 5 / Table 2.  ``Shuttle`` is
#: the QCIF clip: shorter frames mean more I-frames per 1000 vectors,
#: which reproduces its outlier call count (32 vs 5–14 at T=0.5).
MOVIE_PROFILES: Dict[str, MovieProfile] = {
    "Airwolf": MovieProfile(330, "IBBPBBPBB", 0.30, 0.55, 0.020, 0.016, 11),
    "Bike": MovieProfile(330, "IBBPBBPBB", 0.25, 0.60, 0.022, 0.016, 12),
    "Bus": MovieProfile(330, "IBBPBB", 0.20, 0.70, 0.035, 0.026, 43),
    "Coaster": MovieProfile(330, "IBBPBBPBB", 0.28, 0.60, 0.025, 0.018, 24),
    "Flower": MovieProfile(330, "IBBPBBPBB", 0.25, 0.65, 0.028, 0.020, 25),
    "Shuttle": MovieProfile(99, "IBBPBBPBB", 0.45, 0.45, 0.040, 0.030, 16),
    "Tennis": MovieProfile(330, "IBBPBBPBB", 0.27, 0.62, 0.026, 0.020, 17),
    "Train": MovieProfile(330, "IBBPBBPBBPBB", 0.32, 0.55, 0.018, 0.014, 18),
}


def movie_trace(ctg: ConditionalTaskGraph, movie: str, length: int = 2000) -> Trace:
    """A macroblock decision trace mimicking one of the paper's clips.

    Expects the MPEG CTG of :func:`repro.workloads.mpeg.mpeg_ctg`
    (branches ``parse``/``classify``/``dct_type``/``chk1..chk6``).
    The clip is a GOP-structured frame sequence: I-frames pin the
    decisions to intra decoding (a₁, b₁), P/B frames draw skipped and
    per-block-coded decisions from slowly drifting scene statistics.
    The first ``length // 2`` vectors serve as the training sequence
    and the rest as the testing sequence, as in §IV.
    """
    try:
        profile = MOVIE_PROFILES[movie]
    except KeyError as exc:
        raise KeyError(
            f"unknown movie {movie!r}; choose from {sorted(MOVIE_PROFILES)}"
        ) from exc
    branches = set(ctg.branch_nodes())
    expected = {"parse", "classify", "dct_type"} | {f"chk{k}" for k in range(1, 7)}
    if branches != expected:
        raise ValueError("movie_trace expects the 40-task MPEG decoder CTG")

    rng = random.Random(profile.seed)

    def new_scene() -> Dict[str, object]:
        """Draw the statistics of a fresh visual scene.

        The centre values are drawn wide: a static scene skips most
        macroblocks and codes few blocks, an action scene the
        opposite.  The training half of a clip therefore profiles
        scenes that the testing half largely does not repeat — the
        mismatch the adaptive algorithm exploits (paper §IV).
        """
        anchor = rng.random()  # 0 = static scene, 1 = action scene
        return {
            "skip": min(0.9, max(0.05, 0.75 - 0.7 * anchor + rng.uniform(-0.1, 0.1))),
            "coded": [
                min(0.95, max(0.05, 0.15 + 0.75 * anchor + rng.uniform(-0.15, 0.15)))
                for _ in range(6)
            ],
            "dct": rng.uniform(0.3, 0.7),
        }

    scene = new_scene()
    #: expected scene duration in macroblocks, derived from the clip's
    #: cut rate (cuts per 50 macroblocks in the profile's units)
    scene_hazard = profile.cut_rate / 8.0
    #: remaining macroblocks of an intra burst: after a scene change
    #: (and periodically, as intra refresh) encoders emit stretches of
    #: intra macroblocks even inside P/B frames — the paper's Figure 4
    #: shows exactly such 0↔1 swings of the type-I branch probability.
    intra_burst = 0

    trace: List[Dict[str, str]] = []
    frame = 0
    while len(trace) < length:
        frame_type = profile.gop[frame % len(profile.gop)]
        span = min(profile.mbs_per_frame, length - len(trace))
        for _ in range(span):
            if rng.random() < scene_hazard:
                scene = new_scene()
                intra_burst = rng.randint(
                    profile.mbs_per_frame // 4, (3 * profile.mbs_per_frame) // 4
                )
            skip_p: float = scene["skip"]  # type: ignore[assignment]
            coded_p: List[float] = scene["coded"]  # type: ignore[assignment]
            dct_p: float = scene["dct"]  # type: ignore[assignment]
            intra_p = 0.85 if intra_burst > 0 else 0.05
            if intra_burst > 0:
                intra_burst -= 1
            vector: Dict[str, str] = {}
            if frame_type == "I":
                vector["parse"] = "a1"
                vector["classify"] = "b1"
            else:
                vector["parse"] = "a2" if rng.random() < skip_p else "a1"
                vector["classify"] = "b1" if rng.random() < intra_p else "b2"
            vector["dct_type"] = "d1" if rng.random() < dct_p else "d2"
            for k in range(6):
                vector[f"chk{k + 1}"] = "c1" if rng.random() < coded_p[k] else "c2"
            # slow within-scene drift (image locality)
            scene["skip"] = _bounded_walk(rng, skip_p, profile.activity_drift, 0.05, 0.9)
            scene["coded"] = [
                _bounded_walk(rng, p, profile.activity_drift, 0.05, 0.95)
                for p in coded_p
            ]
            scene["dct"] = _bounded_walk(rng, dct_p, profile.activity_drift / 2, 0.2, 0.8)
            trace.append(vector)
        frame += 1
    return trace


def _bounded_walk(
    rng: random.Random, value: float, step: float, low: float, high: float
) -> float:
    value += rng.uniform(-step, step)
    return min(high, max(low, value))


# ----------------------------------------------------------------------
# Road traces (cruise controller)
# ----------------------------------------------------------------------
#: Regime-specific distributions of the cruise controller's two branch
#: decisions.  The first branch chooses accelerate/decelerate, the
#: second (inside the decelerate arm) engine-brake vs friction-brake.
ROAD_REGIMES: Tuple[str, ...] = ("uphill", "downhill", "straight", "bumpy")


def road_trace(
    ctg: ConditionalTaskGraph,
    length: int,
    seed: int,
    segment_range: Tuple[int, int] = (60, 180),
) -> Trace:
    """A cruise-controller trace over changing road conditions.

    The road alternates between regimes (uphill / downhill / straight /
    bumpy), each lasting a random number of control periods; each
    regime induces its own distribution over the two branch decisions
    (uphill → mostly accelerate; downhill → mostly decelerate with
    braking; bumpy → noisy mixtures).
    """
    branches = ctg.branch_nodes()
    rng = random.Random(seed)
    regime_tables: Dict[str, Dict[str, Dict[str, float]]] = {}
    for regime in ROAD_REGIMES:
        table: Dict[str, Dict[str, float]] = {}
        for i, branch in enumerate(branches):
            labels = ctg.outcomes_of(branch)
            if regime == "uphill":
                lead = 0.95 if i == 0 else 0.3
            elif regime == "downhill":
                lead = 0.05 if i == 0 else 0.8
            elif regime == "straight":
                lead = 0.5
            else:  # bumpy
                lead = rng.uniform(0.25, 0.75)
            weights = {labels[0]: lead}
            for label in labels[1:]:
                weights[label] = (1.0 - lead) / (len(labels) - 1)
            table[branch] = weights
        regime_tables[regime] = table

    trace: List[Dict[str, str]] = []
    while len(trace) < length:
        regime = rng.choice(ROAD_REGIMES)
        span = rng.randint(*segment_range)
        for _ in range(min(span, length - len(trace))):
            vector = {
                branch: _sample(rng, regime_tables[regime][branch])
                for branch in branches
            }
            trace.append(vector)
    return trace


# ----------------------------------------------------------------------
# Equal-average fluctuating traces (Tables 4/5) and biased profiles
# ----------------------------------------------------------------------
def fluctuating_trace(
    ctg: ConditionalTaskGraph,
    length: int,
    seed: int,
    fluctuation: float = 0.45,
    block_range: Tuple[int, int] = (40, 120),
) -> Trace:
    """The Tables-4/5 testing vectors: equal long-run averages with
    considerable fluctuation.

    The probability of each branch's first outcome alternates between
    ``0.5 + f/2`` and ``0.5 − f/2`` in random-length blocks (mean-
    preserving by symmetry), with ``f`` the paper's observed 0.4–0.5
    per-branch fluctuation.
    """
    rng = random.Random(seed)
    branches = ctg.branch_nodes()
    high = 0.5 + fluctuation / 2.0
    trace: List[Dict[str, str]] = [dict() for _ in range(length)]
    for branch in branches:
        labels = ctg.outcomes_of(branch)
        level = rng.choice([high, 1.0 - high])
        position = 0
        while position < length:
            span = rng.randint(*block_range)
            for i in range(position, min(position + span, length)):
                weights = {labels[0]: level}
                for label in labels[1:]:
                    weights[label] = (1.0 - level) / (len(labels) - 1)
                trace[i][branch] = _sample(rng, weights)
            position += span
            level = 1.0 - level  # alternate to keep the average at 0.5
    return trace


def biased_profile(
    ctg: ConditionalTaskGraph,
    scenario_product: Mapping[str, str],
    bias: float = 0.85,
) -> Dict[str, Dict[str, float]]:
    """A profiled distribution favouring one minterm (Tables 4/5).

    Branches named in ``scenario_product`` give their chosen outcome
    probability ``bias`` (rest shared equally); unmentioned branches
    stay uniform.  Used to model "profiled average branch probability
    favors the minterm with the lowest/highest energy".
    """
    if not 0.0 < bias < 1.0:
        raise ValueError("bias must be a probability")
    profile: Dict[str, Dict[str, float]] = {}
    for branch in ctg.branch_nodes():
        labels = ctg.outcomes_of(branch)
        chosen = scenario_product.get(branch)
        if chosen is None:
            profile[branch] = {label: 1.0 / len(labels) for label in labels}
        else:
            rest = (1.0 - bias) / (len(labels) - 1)
            profile[branch] = {
                label: bias if label == chosen else rest for label in labels
            }
    return profile
