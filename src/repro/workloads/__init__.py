"""Application models and branch-decision trace generators."""

from .cruise import cruise_ctg, cruise_platform
from .mpeg import BLOCK_COUNT, mpeg_ctg, mpeg_platform
from .wlan import CHANNEL_STATES, channel_trace, wlan_ctg, wlan_platform
from .traces import (
    MOVIE_PROFILES,
    ROAD_REGIMES,
    DriftingBranchModel,
    biased_profile,
    drifting_trace,
    fluctuating_trace,
    movie_trace,
    road_trace,
)

__all__ = [
    "cruise_ctg",
    "cruise_platform",
    "BLOCK_COUNT",
    "mpeg_ctg",
    "mpeg_platform",
    "MOVIE_PROFILES",
    "ROAD_REGIMES",
    "DriftingBranchModel",
    "biased_profile",
    "drifting_trace",
    "fluctuating_trace",
    "movie_trace",
    "road_trace",
    "CHANNEL_STATES",
    "channel_trace",
    "wlan_ctg",
    "wlan_platform",
]
