"""Dependency-free SVG rendering of schedules and experiment figures.

The environment this package targets is offline and matplotlib-free,
so the figures the paper plots (Gantt-style schedules, the Figure-4
probability series, the Figure-5/6 energy bars) are emitted as plain
SVG — viewable in any browser and diffable in version control.

* :func:`gantt_svg` — one lane per PE (sub-lanes for overlapping
  mutually exclusive tasks), bars shaded by DVFS speed, deadline
  marker;
* :func:`series_svg` — one or more 0-1 series over instance index
  (Figure 4);
* :func:`bars_svg` — grouped bar chart (Figure 5 / Figure 6).

Only standard-library string formatting is used; every function
returns the SVG document as a string (callers write it to a file).
"""

from __future__ import annotations

import html
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .scheduling.schedule import Schedule

#: A small colour-blind-safe palette for categorical data.
PALETTE: Tuple[str, ...] = (
    "#4477aa", "#ee6677", "#228833", "#ccbb44",
    "#66ccee", "#aa3377", "#bbbbbb",
)


def _header(width: int, height: int) -> List[str]:
    return [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
        f'height="{height}" viewBox="0 0 {width} {height}" '
        f'font-family="monospace" font-size="11">',
        f'<rect width="{width}" height="{height}" fill="white"/>',
    ]


def _text(x: float, y: float, content: str, anchor: str = "start", size: int = 11) -> str:
    return (
        f'<text x="{x:.1f}" y="{y:.1f}" text-anchor="{anchor}" '
        f'font-size="{size}">{html.escape(content)}</text>'
    )


def _speed_colour(speed: float) -> str:
    """Green (deep stretch) → red (nominal speed) ramp."""
    speed = min(1.0, max(0.0, speed))
    red = int(60 + 180 * speed)
    green = int(200 - 120 * speed)
    return f"rgb({red},{green},80)"


def gantt_svg(
    schedule: Schedule,
    width: int = 900,
    lane_height: int = 26,
    title: str = "",
) -> str:
    """Render the worst-case schedule as an SVG Gantt chart."""
    times = schedule.worst_case_times()
    horizon = max(schedule.makespan(), schedule.ctg.deadline)
    if horizon <= 0:
        raise ValueError("cannot render an empty schedule")
    left, top, right = 70, 40 if title else 24, 20
    plot_width = width - left - right
    scale = plot_width / horizon

    # lay tasks into sub-lanes per PE (mutually exclusive overlap)
    pe_lanes: List[Tuple[str, List[List[str]]]] = []
    for pe in schedule.platform.pe_names:
        lanes: List[List[str]] = []
        ends: List[List[Tuple[float, float]]] = []
        for task in sorted(schedule.tasks_on(pe), key=lambda t: times[t][0]):
            start, finish = times[task]
            placed = False
            for lane, intervals in zip(lanes, ends):
                if all(finish <= a or start >= b for a, b in intervals):
                    lane.append(task)
                    intervals.append((start, finish))
                    placed = True
                    break
            if not placed:
                lanes.append([task])
                ends.append([(start, finish)])
        pe_lanes.append((pe, lanes or [[]]))

    total_lanes = sum(len(lanes) for _pe, lanes in pe_lanes)
    height = top + total_lanes * lane_height + 40
    out = _header(width, height)
    if title:
        out.append(_text(width / 2, 18, title, anchor="middle", size=14))

    y = top
    for pe, lanes in pe_lanes:
        out.append(_text(8, y + lane_height * len(lanes) / 2, pe))
        for lane in lanes:
            for task in lane:
                start, finish = times[task]
                placement = schedule.placement(task)
                x = left + start * scale
                bar_width = max(1.0, (finish - start) * scale)
                out.append(
                    f'<rect x="{x:.1f}" y="{y + 3}" width="{bar_width:.1f}" '
                    f'height="{lane_height - 6}" fill="{_speed_colour(placement.speed)}" '
                    f'stroke="#333" stroke-width="0.5">'
                    f"<title>{html.escape(task)}: [{start:.1f}, {finish:.1f}) "
                    f"speed {placement.speed:.2f}</title></rect>"
                )
                if bar_width > 7 * len(task):
                    out.append(
                        _text(x + bar_width / 2, y + lane_height / 2 + 3, task, "middle", 10)
                    )
            y += lane_height

    axis_y = y + 8
    out.append(
        f'<line x1="{left}" y1="{axis_y}" x2="{left + plot_width}" y2="{axis_y}" '
        f'stroke="#333"/>'
    )
    for tick in range(0, 11):
        tx = left + plot_width * tick / 10
        out.append(f'<line x1="{tx:.1f}" y1="{axis_y}" x2="{tx:.1f}" y2="{axis_y + 4}" stroke="#333"/>')
        out.append(_text(tx, axis_y + 16, f"{horizon * tick / 10:.0f}", "middle", 9))
    deadline_x = left + schedule.ctg.deadline * scale
    out.append(
        f'<line x1="{deadline_x:.1f}" y1="{top - 4}" x2="{deadline_x:.1f}" '
        f'y2="{axis_y}" stroke="#cc0000" stroke-dasharray="4 3"/>'
    )
    out.append(_text(deadline_x, top - 8, "deadline", "middle", 10))
    out.append("</svg>")
    return "\n".join(out)


def series_svg(
    series: Mapping[str, Sequence[float]],
    width: int = 900,
    height: int = 260,
    title: str = "",
    y_range: Tuple[float, float] = (0.0, 1.0),
) -> str:
    """Render named numeric series (e.g. Figure 4's prob curves)."""
    if not series:
        raise ValueError("no series to render")
    left, top, right, bottom = 46, 40 if title else 20, 14, 34
    plot_w = width - left - right
    plot_h = height - top - bottom
    lo, hi = y_range
    if hi <= lo:
        raise ValueError("empty y range")
    length = max(len(values) for values in series.values())
    if length < 2:
        raise ValueError("series need at least two points")

    out = _header(width, height)
    if title:
        out.append(_text(width / 2, 18, title, anchor="middle", size=14))
    # axes + gridlines
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        gy = top + plot_h * (1 - frac)
        out.append(
            f'<line x1="{left}" y1="{gy:.1f}" x2="{left + plot_w}" y2="{gy:.1f}" '
            f'stroke="#ddd"/>'
        )
        out.append(_text(left - 6, gy + 4, f"{lo + frac * (hi - lo):.2f}", "end", 9))
    for index, (name, values) in enumerate(series.items()):
        colour = PALETTE[index % len(PALETTE)]
        points = []
        for i, value in enumerate(values):
            x = left + plot_w * i / (length - 1)
            clamped = min(hi, max(lo, value))
            y = top + plot_h * (1 - (clamped - lo) / (hi - lo))
            points.append(f"{x:.1f},{y:.1f}")
        out.append(
            f'<polyline points="{" ".join(points)}" fill="none" '
            f'stroke="{colour}" stroke-width="1.4"/>'
        )
        out.append(
            f'<rect x="{left + 8 + 150 * index}" y="{height - 18}" width="10" '
            f'height="10" fill="{colour}"/>'
        )
        out.append(_text(left + 22 + 150 * index, height - 9, name, size=10))
    out.append(
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="#333"/>'
    )
    out.append("</svg>")
    return "\n".join(out)


def bars_svg(
    categories: Sequence[str],
    groups: Mapping[str, Sequence[float]],
    width: int = 900,
    height: int = 300,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render a grouped bar chart (Figure 5 / Figure 6 style).

    ``categories`` label the x axis (e.g. movie names); each entry of
    ``groups`` is one bar series (e.g. "online", "adaptive T=0.5") with
    one value per category.
    """
    if not categories or not groups:
        raise ValueError("need categories and at least one group")
    for name, values in groups.items():
        if len(values) != len(categories):
            raise ValueError(f"group {name!r} has {len(values)} values for "
                             f"{len(categories)} categories")
    left, top, right, bottom = 56, 40 if title else 20, 14, 52
    plot_w = width - left - right
    plot_h = height - top - bottom
    peak = max(max(values) for values in groups.values())
    if peak <= 0:
        raise ValueError("all values are non-positive")

    out = _header(width, height)
    if title:
        out.append(_text(width / 2, 18, title, anchor="middle", size=14))
    if y_label:
        out.append(_text(12, top - 6, y_label, size=10))
    for frac in (0.25, 0.5, 0.75, 1.0):
        gy = top + plot_h * (1 - frac)
        out.append(f'<line x1="{left}" y1="{gy:.1f}" x2="{left + plot_w}" y2="{gy:.1f}" stroke="#ddd"/>')
        out.append(_text(left - 6, gy + 4, f"{peak * frac:.0f}", "end", 9))

    slot = plot_w / len(categories)
    bar = slot * 0.8 / len(groups)
    for g_index, (name, values) in enumerate(groups.items()):
        colour = PALETTE[g_index % len(PALETTE)]
        for c_index, value in enumerate(values):
            x = left + slot * c_index + slot * 0.1 + bar * g_index
            bar_height = plot_h * max(0.0, value) / peak
            y = top + plot_h - bar_height
            out.append(
                f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar:.1f}" '
                f'height="{bar_height:.1f}" fill="{colour}">'
                f"<title>{html.escape(name)} / {html.escape(str(categories[c_index]))}: "
                f"{value:.1f}</title></rect>"
            )
        out.append(
            f'<rect x="{left + 8 + 170 * g_index}" y="{height - 14}" width="10" '
            f'height="10" fill="{colour}"/>'
        )
        out.append(_text(left + 22 + 170 * g_index, height - 5, name, size=10))
    for c_index, category in enumerate(categories):
        cx = left + slot * (c_index + 0.5)
        out.append(_text(cx, top + plot_h + 14, str(category), "middle", 9))
    out.append(
        f'<line x1="{left}" y1="{top + plot_h}" x2="{left + plot_w}" '
        f'y2="{top + plot_h}" stroke="#333"/>'
    )
    out.append("</svg>")
    return "\n".join(out)
